#!/usr/bin/env python
"""End-user workflow: load a Matrix Market file, invert, inspect.

Demonstrates the adoption path for someone with their own matrix (e.g.
the real ``audikw_1.mtx`` from the SuiteSparse collection):

1. read the ``.mtx`` file (here we synthesize one first so the example
   is self-contained and offline);
2. run the preprocessing pipeline and report fill statistics and the
   structural parallelism profile;
3. compute selected elements of the inverse sequentially;
4. replay the same inversion through the simulated parallel machine with
   the unsymmetric protocol (works for any structurally symmetrizable
   matrix) and report the communication footprint per tree scheme.

Run:  python examples/load_and_invert.py [path/to/matrix.mtx]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import concurrency_profile, critical_path
from repro.core import (
    ProcessorGrid,
    SimulatedPSelInvUnsym,
    communication_volumes,
    iter_unsym_plans,
    volume_summary,
)
from repro.sparse import (
    analyze,
    factorize,
    read_matrix_market,
    selinv_sequential,
    write_matrix_market,
)
from repro.workloads import random_spd_sparse


def synthesize(path: Path) -> None:
    """Write a small demo matrix so the example runs self-contained."""
    rng = np.random.default_rng(42)
    m = random_spd_sparse(300, 6.0, rng=rng)
    write_matrix_market(path, m, comment="repro demo matrix")
    print(f"(no input given: synthesized {path} -- n={m.n}, nnz={m.nnz})")


def main(path_arg: str | None) -> None:
    if path_arg is None:
        tmp = Path(tempfile.mkdtemp()) / "demo.mtx"
        synthesize(tmp)
        path = tmp
    else:
        path = Path(path_arg)

    matrix = read_matrix_market(path)
    print(f"loaded {path.name}: n={matrix.n}, nnz={matrix.nnz}")

    prob = analyze(matrix, ordering="nd", max_supernode=16)
    st = prob.stats()
    print(
        f"analyzed: nnz(LU)={st['nnz_lu']:,} (fill {st['fill_ratio']:.1f}x), "
        f"{st['nsup']} supernodes"
    )
    prof = concurrency_profile(prob.struct)
    cp = critical_path(prob.struct)
    print(
        f"task DAG: depth {prof['depth']}, max width {prof['max_width']}, "
        f"work/span speedup bound {cp['max_speedup']:.1f}x"
    )

    _, inv = selinv_sequential(prob)
    diag = np.array([inv.entry(i, i) for i in range(prob.n)])
    print(
        f"selected inverse: diag range [{diag.real.min():.4f}, "
        f"{diag.real.max():.4f}], trace {diag.sum():.4f}"
    )

    grid = ProcessorGrid(4, 4)
    raw = factorize(prob.matrix, prob.struct)
    res = SimulatedPSelInvUnsym(
        prob.struct, grid, "shifted", factor=raw, seed=1
    ).run()
    check = np.abs(
        res.inverse.to_dense_at_structure() - inv.to_dense_at_structure()
    ).max()
    print(
        f"\nsimulated unsymmetric PSelInv on {grid.pr}x{grid.pc} ranks: "
        f"max |diff| vs sequential = {check:.2e}"
    )

    plans = list(iter_unsym_plans(prob.struct, grid))
    print("\ncommunication footprint per scheme (total col-bcast MB sent):")
    for scheme in ("flat", "binary", "shifted"):
        rep = communication_volumes(
            prob.struct, grid, scheme, seed=1, plans=plans
        )
        s = volume_summary(rep.col_bcast_sent())
        print(
            f"  {scheme:8s} min={s['min']:.3f} max={s['max']:.3f} "
            f"std={s['std']:.3f}"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
