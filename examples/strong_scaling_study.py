#!/usr/bin/env python
"""Strong-scaling study: PSelInv wall-clock vs simulated processor count.

Sweeps square grids and the three communication schemes on the simulated
machine, printing the Fig. 8-style series with run-to-run spread from the
seeded network-jitter model.

Run:  python examples/strong_scaling_study.py [max-grid-side] [runs]

e.g.  python examples/strong_scaling_study.py 16 2     (fast)
      python examples/strong_scaling_study.py 32 3     (several minutes)
"""

import sys
import time

from repro.analysis import ScalingSeries, Table, speedup_table
from repro.core import ProcessorGrid, SimulatedPSelInv, iter_plans
from repro.simulate import NetworkConfig
from repro.sparse import analyze
from repro.workloads import make_workload

SCHEMES = ("flat", "binary", "shifted")


def main(max_side: int = 16, runs: int = 2) -> None:
    print("generating audikw_1 proxy and analyzing ...")
    matrix = make_workload("audikw_1", "small")
    prob = analyze(matrix, ordering="nd", max_supernode=8)
    print(f"n={prob.n}, nsup={prob.struct.nsup}")

    net = NetworkConfig(
        jitter_sigma=0.2,
        latency_intra_node=1.5e-7,
        latency_intra_group=4e-7,
        latency_inter_group=7e-7,
        injection_overhead=3e-7,
        receive_overhead=2e-7,
        task_overhead=1.5e-7,
        injection_bandwidth=1.5e9,
        ejection_bandwidth=1.5e9,
        bw_intra_node=6e9,
        bw_intra_group=2.0e9,
        bw_inter_group=1.5e9,
        flop_rate=8e9,
    )

    sides = [s for s in (4, 8, 16, 23, 32, 46) if s <= max_side]
    series = {s: ScalingSeries(s) for s in SCHEMES}
    for side in sides:
        grid = ProcessorGrid(side, side)
        plans = list(iter_plans(prob.struct, grid))
        for scheme in SCHEMES:
            cache: dict = {}
            for run in range(runs):
                t0 = time.time()
                res = SimulatedPSelInv(
                    prob.struct,
                    grid,
                    scheme,
                    network=net,
                    seed=7,
                    jitter_seed=run,
                    placement_seed=run + 100,
                    plans=plans,
                    lookahead=4,
                    tree_cache=cache,
                ).run()
                series[scheme].add(grid.size, res.makespan)
                print(
                    f"  P={grid.size:5d} {scheme:8s} run {run}: "
                    f"{res.makespan * 1e3:7.2f} ms simulated "
                    f"({time.time() - t0:.0f}s wall, {res.events} events)"
                )

    table = Table(
        f"Strong scaling (simulated ms, mean ± std over {runs} runs)"
        "  [cf. paper Fig. 8]",
        ["P", *SCHEMES],
    )
    for side in sides:
        p = side * side
        table.add(
            p,
            *(
                f"{series[s].mean(p) * 1e3:.2f}±{series[s].std(p) * 1e3:.2f}"
                for s in SCHEMES
            ),
        )
    print("\n" + table.render())

    sp = speedup_table(series["flat"], series["shifted"])
    print("\nShifted Binary-Tree speedup over Flat-Tree:")
    for p, v in sp.items():
        print(f"  P={p:5d}: {v:.2f}x")
    print(
        "\n[paper] speedup grows with P: avg 3.0x, 4.5x beyond 1,024 procs,"
        " 8x at 12,100 procs (real Cray XC30 at far larger problem scale)"
    )


if __name__ == "__main__":
    max_side = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    main(max_side, runs)
