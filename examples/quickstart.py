#!/usr/bin/env python
"""Quickstart: selected inversion, sequential and simulated-parallel.

Builds a small sparse SPD matrix, computes the selected elements of its
inverse with the sequential Algorithm 1 oracle, verifies them against a
dense inverse, then runs the same computation through the simulated
parallel PSelInv on a 4x4 processor grid with the paper's Shifted
Binary-Tree collectives and prints the communication statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ProcessorGrid, SimulatedPSelInv
from repro.sparse import analyze, selinv_sequential
from repro.sparse.factor import factorize
from repro.workloads import grid_laplacian_2d


def main() -> None:
    # 1. A 2-D Laplacian on a 12x12 grid: the "hello world" of sparse
    #    factorization.
    matrix = grid_laplacian_2d(12, 12, rng=np.random.default_rng(0))
    print(f"matrix: n={matrix.n}, nnz={matrix.nnz}")

    # 2. Preprocessing: symmetrize, nested-dissection order, build the
    #    supernodal symbolic structure.
    prob = analyze(matrix, ordering="nd")
    stats = prob.stats()
    print(
        f"analyzed: nnz(LU)={stats['nnz_lu']}, fill={stats['fill_ratio']:.1f}x, "
        f"{stats['nsup']} supernodes"
    )

    # 3. Sequential selected inversion (the oracle).
    factor, inv = selinv_sequential(prob)
    dense_inv = np.linalg.inv(prob.matrix.to_dense())
    rr, cc = inv.stored_positions()
    err = np.abs(inv.to_dense_at_structure()[rr, cc] - dense_inv[rr, cc]).max()
    print(f"sequential selinv: {len(rr)} selected entries, max |err| = {err:.2e}")

    # A few individual entries through the accessor API:
    for i, j in [(0, 0), (5, 5), (int(rr[7]), int(cc[7]))]:
        print(f"  Ainv[{i},{j}] = {inv.entry(i, j):+.6f}"
              f"   (dense: {dense_inv[i, j]:+.6f})")

    # 4. The same inversion, distributed over a simulated 4x4 processor
    #    grid with Shifted Binary-Tree restricted collectives.
    grid = ProcessorGrid(4, 4)
    raw_factor = factorize(prob.matrix, prob.struct)  # un-normalized panels
    result = SimulatedPSelInv(
        prob.struct, grid, "shifted", factor=raw_factor, seed=42
    ).run()
    par_err = np.abs(
        result.inverse.to_dense_at_structure() - inv.to_dense_at_structure()
    ).max()
    print(
        f"\nsimulated parallel PSelInv on {grid.pr}x{grid.pc} grid "
        f"('shifted' scheme):"
    )
    print(f"  distributed == sequential: max |diff| = {par_err:.2e}")
    print(f"  simulated makespan: {result.makespan * 1e3:.3f} ms")
    print(f"  events processed:   {result.events}")
    sent = result.stats.total_sent() / 1e3
    print(
        f"  per-rank sent volume (KB): min={sent.min():.1f} "
        f"max={sent.max():.1f} mean={sent.mean():.1f}"
    )
    for kind in ("col-bcast", "row-reduce", "cross-send"):
        v = result.stats.total_sent(kind).sum() / 1e3
        print(f"    {kind:<12s} total {v:.1f} KB")


if __name__ == "__main__":
    main()
