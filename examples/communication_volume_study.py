#!/usr/bin/env python
"""Communication-volume study: Tables I/II and the Fig. 5 heat maps.

Computes the exact per-rank communication volumes of one selected
inversion under each tree scheme and prints the paper-style summary
table, the load-distribution histograms, and ASCII heat maps.

Run:  python examples/communication_volume_study.py [workload] [grid-side]

e.g.  python examples/communication_volume_study.py audikw_1 8
      python examples/communication_volume_study.py DG_PNF14000 12
"""

import sys

from repro.analysis import (
    Table,
    diagonal_concentration,
    render_ascii,
    render_histogram,
    stripe_score,
    uniformity,
    volume_histogram,
)
from repro.core import (
    ProcessorGrid,
    communication_volumes,
    iter_plans,
    volume_summary,
)
from repro.sparse import analyze
from repro.workloads import make_workload, workload_names

SCHEMES = ("flat", "binary", "shifted", "randperm")


def main(workload: str = "audikw_1", side: int = 8) -> None:
    if workload not in workload_names():
        raise SystemExit(
            f"unknown workload {workload!r}; choose from {workload_names()}"
        )
    print(f"generating {workload} proxy and analyzing ...")
    matrix = make_workload(workload, "small")
    prob = analyze(matrix, ordering="nd", max_supernode=8)
    grid = ProcessorGrid(side, side)
    plans = list(iter_plans(prob.struct, grid))
    st = prob.stats()
    print(
        f"n={st['n']}  nnz(A)={st['nnz_a']}  nnz(LU)={st['nnz_lu']}  "
        f"nsup={st['nsup']}  grid={side}x{side}\n"
    )

    reports = {
        s: communication_volumes(prob.struct, grid, s, seed=1, plans=plans)
        for s in SCHEMES
    }

    table = Table(
        "Col-Bcast sent volume per rank (MB)  [cf. paper Table I]",
        ["scheme", "min", "max", "median", "std"],
    )
    for s in SCHEMES:
        v = volume_summary(reports[s].col_bcast_sent())
        table.add(s, v["min"], v["max"], v["median"], v["std"])
    print(table.render())

    table2 = Table(
        "\nRow-Reduce received volume per rank (MB)  [cf. paper Table II]",
        ["scheme", "min", "max", "median", "std"],
    )
    for s in SCHEMES:
        v = volume_summary(reports[s].row_reduce_received())
        table2.add(s, v["min"], v["max"], v["median"], v["std"])
    print(table2.render())

    print("\nVolume distributions  [cf. paper Fig. 4]")
    vmax = max(reports[s].col_bcast_sent().max() for s in SCHEMES) / 1e6
    for s in ("flat", "binary", "shifted"):
        counts, edges = volume_histogram(
            reports[s].col_bcast_sent(), bins=12, range_=(0, vmax)
        )
        print(f"\n[{s}]")
        print(render_histogram(counts, edges, width=40))

    print("\nHeat maps (darker = more volume)  [cf. paper Fig. 5]")
    shared = max(
        reports["flat"].heatmap("col-bcast-total").max(),
        reports["shifted"].heatmap("col-bcast-total").max(),
    )
    for s in ("flat", "binary", "shifted"):
        hm = reports[s].heatmap("col-bcast-total")
        print(
            f"\n[{s}]  diag={diagonal_concentration(hm):.2f} "
            f"stripes={stripe_score(hm):.2f} cv={uniformity(hm):.3f}"
        )
        print(render_ascii(hm, vmax=shared if s != "binary" else None))


if __name__ == "__main__":
    wl = sys.argv[1] if len(sys.argv) > 1 else "audikw_1"
    side = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(wl, side)
