#!/usr/bin/env python
"""Render the paper's Fig. 3 communication trees (and more).

Shows the Flat, Binary and Shifted Binary trees for the paper's worked
example -- ranks P1..P6 with root P4 -- then a larger group to make the
structural properties visible: the binary tree always picks the lowest
ranks as forwarders (the hot-spot stripes of Fig. 5(b)), while different
shift seeds move the forwarding role around the group.

Run:  python examples/tree_shapes.py
"""

from repro.comm import binary_tree, flat_tree, random_perm_tree, shifted_binary_tree


def render(tree, label: str) -> None:
    print(f"\n{label}  (root P{tree.root}, depth {tree.depth()})")

    def walk(rank: int, prefix: str, last: bool) -> None:
        branch = "`-- " if last else "|-- "
        print(f"{prefix}{branch}P{rank}")
        kids = tree.children.get(rank, ())
        ext = "    " if last else "|   "
        for n, c in enumerate(kids):
            walk(c, prefix + ext, n == len(kids) - 1)

    print(f"P{tree.root}")
    kids = tree.children.get(tree.root, ())
    for n, c in enumerate(kids):
        walk(c, "", n == len(kids) - 1)


def main() -> None:
    participants = {1, 2, 3, 4, 5, 6}
    root = 4
    print("=" * 60)
    print("Paper Fig. 3: ranks P1..P6, root P4")
    print("=" * 60)
    render(flat_tree(root, participants), "(a) Flat-Tree")
    render(binary_tree(root, participants), "(b) Binary-Tree")
    shifted = shifted_binary_tree(root, participants, seed=0)
    render(shifted, "(c) Shifted Binary-Tree")
    print(f"    construction order: {['P%d' % r for r in shifted.order]}")
    print("    (seed 0 reproduces the paper's exact Fig. 3(c) sequence "
          "P4,P6,P1,P2,P3,P5)")

    print("\n" + "=" * 60)
    print("Forwarding-load concentration in a 16-rank group, root 0")
    print("=" * 60)
    group = set(range(16))
    tree = binary_tree(0, group)
    print("\nBinary-Tree internal (forwarding) ranks:",
          sorted(tree.internal_ranks()))
    print("-> identical for EVERY broadcast in this group: these ranks "
          "become the stripes of Fig. 5(b).")
    print("\nShifted Binary-Tree internal ranks across seeds:")
    for seed in range(5):
        t = shifted_binary_tree(0, group, seed=seed)
        print(f"  seed {seed}: {sorted(t.internal_ranks())}")
    print("-> the random circular shift rotates the forwarding role, "
          "spreading the load (Fig. 5(c)).")
    t = random_perm_tree(0, group, seed=0)
    print("\nRandom-permutation tree (rejected by the paper) order:",
          list(t.order))
    print("-> ranks that are logically adjacent (same node) end up far "
          "apart in the tree, losing locality.")


if __name__ == "__main__":
    main()
