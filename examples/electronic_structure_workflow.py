#!/usr/bin/env python
"""PEXSI-style electronic-structure workflow (the paper's motivating app).

The pole expansion and selected inversion (PEXSI) method evaluates the
density matrix of a Kohn-Sham Hamiltonian ``H`` as a weighted sum of
selected inverses at complex shifts ("poles"):

    density  ~  sum_l  w_l * diag( (H - z_l S)^{-1} )

Each pole needs only the *selected* elements of an inverse -- exactly
what PSelInv provides -- and different poles are independent, which is
why PEXSI runs many selected inversions concurrently on processor
subgroups (the paper's motivation for taming run-to-run variability).

This example runs a miniature version of that workflow on a DG
discretized Hamiltonian proxy: a loop over complex poles, each a complex
*symmetric* selected inversion verified against the exact
eigendecomposition, followed by one simulated-parallel pole showing the
per-pole communication profile.

Run:  python examples/electronic_structure_workflow.py
"""

import numpy as np

from repro.core import ProcessorGrid, SimulatedPSelInv
from repro.sparse import analyze, from_coo, selinv_sequential
from repro.sparse.factor import factorize
from repro.workloads import dg_hamiltonian


def shifted_matrix(h, shift):
    """H + shift*I in sparse form (pattern unchanged: H has a full
    diagonal).  A complex ``shift`` promotes the matrix to complex
    symmetric."""
    data = h.data.astype(np.result_type(h.data.dtype, type(shift)))
    n = h.n
    for j in range(n):
        lo, hi = h.indptr[j], h.indptr[j + 1]
        rows = h.indices[lo:hi]
        k = np.searchsorted(rows, j)
        data[lo + k] += shift
    return from_coo(
        n,
        h.indices,
        np.repeat(np.arange(n), np.diff(h.indptr)),
        data,
    )


def main() -> None:
    rng = np.random.default_rng(2016)
    h = dg_hamiltonian((4, 4), 8, rng=rng)
    n = h.n
    print(f"DG Hamiltonian proxy: n={n}, nnz={h.nnz}")

    dense_h = h.to_dense()
    eigvals = np.linalg.eigvalsh(dense_h)
    print(f"spectrum: [{eigvals[0]:.2f}, {eigvals[-1]:.2f}]")

    # A miniature "pole loop": resolvent traces at complex poles around
    # a chemical potential inside the spectrum.  H - z*I is complex
    # *symmetric* (not Hermitian) -- exactly the matrices PEXSI feeds to
    # PSelInv, and the case our transpose-based (no conjugation) kernels
    # are built for.
    mu = float(np.median(eigvals))
    etas = np.array([0.5, 1.0, 2.0, 4.0])
    shifts = mu + 1j * etas
    weights = np.array([0.4, 0.3, 0.2, 0.1])

    print("\npole loop (sequential selected inversion per pole):")
    trace_sum = 0.0
    exact_sum = 0.0
    for shift, w in zip(shifts, weights):
        m = shifted_matrix(h, -shift)  # H - z*I, complex symmetric
        prob = analyze(m, ordering="nd")
        _, inv = selinv_sequential(prob)
        trace = complex(np.sum([inv.entry(i, i) for i in range(n)]))
        exact = complex(np.sum(1.0 / (eigvals - shift)))
        trace_sum += w * trace.imag
        exact_sum += w * exact.imag
        print(
            f"  z={shift:.3f}  tr[(H-zI)^-1] = {trace:.4f}"
            f"   exact {exact:.4f}   |err| {abs(trace - exact):.2e}"
        )
    print(
        f"weighted Im-trace sum (density proxy): selinv {trace_sum:.6f} "
        f"vs exact {exact_sum:.6f}"
    )

    # One pole through the simulated parallel machine: in production each
    # pole runs on its own processor subgroup; the shifted binary trees
    # keep per-pole runtimes uniform so the pole loop load-balances.
    print("\nsimulated parallel inversion of one pole (4x4 grid, shifted tree):")
    m = shifted_matrix(h, -complex(shifts[0]))
    prob = analyze(m, ordering="nd")
    raw = factorize(prob.matrix, prob.struct)
    res = SimulatedPSelInv(
        prob.struct, ProcessorGrid(4, 4), "shifted", factor=raw, seed=1
    ).run()
    trace = complex(np.sum([res.inverse.entry(i, i) for i in range(n)]))
    exact = complex(np.sum(1.0 / (eigvals - shifts[0])))
    print(f"  parallel trace {trace:.6f}  (|err| vs exact: "
          f"{abs(trace - exact):.2e})")
    print(f"  simulated makespan {res.makespan*1e3:.3f} ms, "
          f"{res.events} events")
    v = res.stats.total_sent() / 1e3
    print(
        f"  per-rank sent volume: min {v.min():.1f} / "
        f"median {np.median(v):.1f} / max {v.max():.1f} KB"
    )


if __name__ == "__main__":
    main()
