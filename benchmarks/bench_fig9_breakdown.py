"""Fig. 9 + §IV-B text: computation vs communication time breakdown.

Paper: for DG_PNF14000 under the Flat-Tree, communication:computation is
27:73 at P=256 but 89:11 at P=4,096; switching to the Shifted
Binary-Tree cuts the ratio at P=4,096 from 11.8 to 1.9.  We reproduce
the two mechanisms: the ratio explodes with P for Flat, and Shifted cuts
it substantially at the large grid.
"""

from time import perf_counter

from repro.analysis import Table
from repro.core import ProcessorGrid, SimulatedPSelInv

from _harness import (
    SCALE,
    emit,
    get_plans,
    get_problem,
    record_throughput,
    run_once,
    timing_network,
)

GRIDS = [(4, 4), (16, 16)] if SCALE == "quick" else [(16, 16), (32, 32)]


def test_fig9_comm_comp_breakdown(benchmark):
    prob = get_problem("DG_PNF14000", max_supernode=16)
    net = timing_network(jitter_sigma=0.0)

    def compute():
        out = {}
        events = 0
        for shape in GRIDS:
            grid = ProcessorGrid(*shape)
            plans = get_plans(prob, grid)
            for scheme in ("flat", "shifted"):
                res = SimulatedPSelInv(
                    prob.struct, grid, scheme,
                    network=net, seed=20160523, plans=plans, lookahead=4,
                ).run()
                events += res.events
                out[(grid.size, scheme)] = (
                    res.compute_time,
                    res.communication_time,
                )
        return out, events

    t0 = perf_counter()
    results, total_events = run_once(benchmark, compute)
    wall = perf_counter() - t0

    table = Table(
        f"Fig. 9 -- computation vs communication (mean per-rank seconds), "
        f"DG_PNF14000 proxy (n={prob.n})",
        ["P", "scheme", "compute", "comm", "comm/comp", "comm share"],
    )
    ratios = {}
    for (p, scheme), (comp, comm) in sorted(results.items()):
        r = comm / comp
        ratios[(p, scheme)] = r
        table.add(
            p, scheme, f"{comp*1e3:.3f}ms", f"{comm*1e3:.3f}ms",
            f"{r:.1f}", f"{100 * comm / (comm + comp):.0f}%",
        )
    note = (
        "  [paper] flat: 27% comm at P=256 -> 89% at P=4096;\n"
        "  [paper] shifted cuts comm/comp at P=4096 from 11.8 to 1.9."
    )
    thr = record_throughput(
        "fig9_breakdown", wall_seconds=wall, events=total_events
    )
    emit("fig9_breakdown", table.render() + "\n" + note + "\n" + thr)

    p_small = GRIDS[0][0] * GRIDS[0][1]
    p_big = GRIDS[1][0] * GRIDS[1][1]
    # Communication share explodes with P under Flat.
    assert ratios[(p_big, "flat")] > 2 * ratios[(p_small, "flat")]
    # Shifted reduces the large-grid communication burden.
    assert ratios[(p_big, "shifted")] < ratios[(p_big, "flat")]
