"""Fig. 4: distribution of per-rank Col-Bcast volume, per tree scheme.

Paper shapes: Flat-Tree is a wide bell with a heavy right tail (ranks
above twice the average); Binary-Tree is spread to both extremes
(near-idle leaf-only ranks + overloaded internal ranks); Shifted
Binary-Tree collapses into a tight peak.
"""

import numpy as np

from repro.analysis import render_histogram, tail_fraction, volume_histogram
from repro.core import communication_volumes

from time import perf_counter

from _harness import (
    emit,
    get_plans,
    get_problem,
    record_throughput,
    run_once,
    volume_grid,
)

SCHEMES = ["flat", "binary", "shifted"]


def test_fig4_volume_distribution(benchmark):
    prob = get_problem("audikw_1")
    grid = volume_grid()
    plans = get_plans(prob, grid)

    def compute():
        return {
            s: communication_volumes(
                prob.struct, grid, s, seed=20160523, plans=plans
            ).col_bcast_sent()
            for s in SCHEMES
        }

    t0 = perf_counter()
    volumes = run_once(benchmark, compute)
    wall = perf_counter() - t0

    vmax = max(v.max() for v in volumes.values()) / 1e6
    sections = [
        f"Fig. 4 -- Col-Bcast volume distribution, audikw_1 proxy, "
        f"{grid.pr}x{grid.pc} grid ({grid.size} ranks)"
    ]
    spreads = {}
    for s in SCHEMES:
        counts, edges = volume_histogram(volumes[s], bins=16, range_=(0, vmax))
        nz = np.flatnonzero(counts)
        spreads[s] = int(nz[-1] - nz[0]) if len(nz) else 0
        sections.append(f"\n[{s}]  (tail>2x mean: {tail_fraction(volumes[s]):.1%})")
        sections.append(render_histogram(counts, edges))
    sections.append(record_throughput("fig4_histograms", wall_seconds=wall))
    emit("fig4_histograms", "\n".join(sections))

    # Shifted occupies the narrowest bin span; binary the widest.
    assert spreads["shifted"] <= spreads["flat"] <= spreads["binary"]
    # Binary pushes ranks beyond 1.5x the mean; shifted pushes none.
    assert tail_fraction(volumes["binary"], factor=1.5) > 0
    assert tail_fraction(volumes["shifted"], factor=1.5) == 0
