"""Fig. 7: Row-Reduce received-volume heat maps, Flat vs Shifted.

The reverse operation of the broadcast: the quantity of interest is the
amount of data *received* by each rank.  Paper shape: the Shifted
Binary-Tree map is visibly more balanced than the Flat-Tree map.
"""

from repro.analysis import render_ascii, uniformity
from repro.core import communication_volumes

from time import perf_counter

from _harness import (
    emit,
    get_plans,
    get_problem,
    record_throughput,
    run_once,
    volume_grid,
)

SCHEMES = ["flat", "shifted"]


def test_fig7_rowreduce_heatmaps(benchmark):
    prob = get_problem("audikw_1")
    grid = volume_grid()
    plans = get_plans(prob, grid)

    def compute():
        return {
            s: communication_volumes(
                prob.struct, grid, s, seed=20160523, plans=plans
            ).heatmap("row-reduce", "received")
            for s in SCHEMES
        }

    t0 = perf_counter()
    maps = run_once(benchmark, compute)
    wall = perf_counter() - t0

    vmax = max(m.max() for m in maps.values())
    sections = [
        f"Fig. 7 -- Row-Reduce received-volume heat maps, audikw_1 proxy, "
        f"{grid.pr}x{grid.pc} grid (shared scale)"
    ]
    cv = {}
    for s in SCHEMES:
        cv[s] = uniformity(maps[s])
        sections.append(f"\n[{s}] coeff-of-variation={cv[s]:.3f}")
        sections.append(render_ascii(maps[s], vmax=vmax))
    sections.append(
        record_throughput("fig7_rowreduce_heatmaps", wall_seconds=wall)
    )
    emit("fig7_rowreduce_heatmaps", "\n".join(sections))

    assert cv["shifted"] < cv["flat"]
