"""CI gate: the tree cache must actually work on the volume sweep.

Reads the ``BENCH_volume_engine.json`` that ``bench_perf_volume.py``
just wrote and asserts the structure cache's effectiveness on the full
Table I sweep:

* cold-pass hit rate at least ``--min-hit-rate`` (default 90%; the
  structure-keyed cache measures ~99.9% -- the old rank-keyed cache
  measured ~5%, which is the regression this gate exists to catch);
* zero evictions in either section (the structure keyspace is bounded
  by participant counts x offsets, so any eviction at the default
  capacity means the keys regressed to per-rank-set identity);
* warm-pass hit rate of exactly 100% (every structure is already
  cached after the cold pass).

Exit status 0 on pass, 1 with a per-check report on failure::

    PYTHONPATH=../src:. python check_cache_effectiveness.py \
        results/BENCH_volume_engine.json --min-hit-rate 0.90
"""

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", help="path to BENCH_volume_engine.json")
    parser.add_argument(
        "--min-hit-rate",
        type=float,
        default=0.90,
        help="cold-pass hit-rate floor (default: 0.90)",
    )
    args = parser.parse_args(argv)

    with open(args.result) as fh:
        data = json.load(fh)
    cache = data["tree_cache"]
    cold, warm = cache["cold"], cache["warm"]

    checks = [
        (
            f"cold hit rate {cold['hit_rate']:.1%} >= {args.min_hit_rate:.0%}",
            cold["hit_rate"] >= args.min_hit_rate,
        ),
        (f"cold evictions {cold['evictions']} == 0", cold["evictions"] == 0),
        (f"warm evictions {warm['evictions']} == 0", warm["evictions"] == 0),
        (f"warm hit rate {warm['hit_rate']:.1%} == 100%", warm["hit_rate"] == 1.0),
    ]
    failed = [label for label, ok in checks if not ok]
    for label, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    print(
        f"tree cache: {cold['size']} structure(s), "
        f"{cold['hits'] + cold['misses']} cold lookup(s), "
        f"scale={data.get('scale', '?')}"
    )
    if failed:
        print(
            f"cache-effectiveness gate FAILED ({len(failed)} check(s)); "
            "the tree cache is thrashing or keyed too finely",
            file=sys.stderr,
        )
        return 1
    print("cache-effectiveness gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
