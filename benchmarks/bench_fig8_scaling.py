"""Fig. 8: strong scaling of PSelInv under the three communication schemes.

Paper setup: DG_PNF14000 and audikw_1 on 64..12,100 processors, 6 runs
per point with error bars; curves for PSelInv with Flat-Tree (new code),
Binary-Tree, Shifted Binary-Tree, the v0.7.3 Flat-Tree release, and
SuperLU_DIST's factorization as a reference.  Headline claims:

* Binary beats Flat by 2.4x on average (3.4x beyond 1,024 procs);
* Shifted reaches 4.5x beyond 1,024 procs, up to 8x at 12,100;
* the run-to-run std dev shrinks by 1.72x (Binary) and >4x (Shifted);
* Flat stops scaling near 1,024 procs while the trees keep going.

Our simulated sweep is necessarily smaller (quick tier: 16..1,024 simulated
ranks on the small proxy).  The reproduced *shape*: all schemes coincide at
small P; beyond the strong-scaling knee the Flat curve flattens and turns
upward while Binary/Shifted stay below it, and the Flat-vs-Shifted gap
widens with P.  The paper-scale gap factors require the ``paper`` tier
(medium proxy, grids to 46x46), where the gap reaches ~1.6x and keeps
growing with grid size.
"""

from time import perf_counter

from repro.analysis import ScalingSeries, Table, modeled_superlu_time, speedup_table
from repro.runner import ExperimentSpec, run_experiments
from repro.sparse.factor import factorization_flops

from _harness import (
    SCALE,
    default_scale,
    emit,
    get_problem,
    progress_printer,
    record_throughput,
    run_once,
    scaling_processor_counts,
    timing_network,
)

SCHEMES = ["flat", "binary", "shifted"]
N_RUNS = 2 if SCALE == "quick" else 3
WORKLOAD = "DG_PNF14000" if SCALE == "paper" else "audikw_1"


def sweep_specs() -> list[ExperimentSpec]:
    """The full Fig. 8 sweep as runner specs (shared with the runner
    benchmark, which measures this exact sweep serial vs parallel)."""
    sides = scaling_processor_counts()
    net = timing_network(jitter_sigma=0.2)
    common = dict(
        workload="audikw_1",
        scale=default_scale(),
        network=net,
        seed=20160523,
        lookahead=4,
    )
    specs = []
    for p in sides:
        for run in range(N_RUNS):
            for scheme in SCHEMES:
                specs.append(
                    ExperimentSpec(
                        grid=(p, p),
                        scheme=scheme,
                        jitter_seed=run,
                        placement_seed=run + 1000,
                        label=scheme,
                        **common,
                    )
                )
            # v0.7.3: flat tree plus un-optimized per-message handling.
            specs.append(
                ExperimentSpec(
                    grid=(p, p),
                    scheme="flat",
                    jitter_seed=run,
                    placement_seed=run + 1000,
                    per_message_cpu_overhead=2.0e-6,
                    label="v0.7.3-flat",
                    **common,
                )
            )
    return specs


def collect_series(records) -> dict[str, ScalingSeries]:
    """Fold run records into per-label scaling series."""
    series = {s: ScalingSeries(s) for s in SCHEMES + ["v0.7.3-flat"]}
    for rec in records:
        p = rec.spec.grid[0] * rec.spec.grid[1]
        series[rec.spec.label].add(p, rec.makespan)
    return series


def test_fig8_strong_scaling(benchmark):
    prob = get_problem("audikw_1")
    specs = sweep_specs()

    def compute():
        # REPRO_JOBS workers; bit-identical to the serial loop this
        # replaced (see tests/test_runner.py and bench_runner_scaling).
        return run_experiments(specs, progress=progress_printer("fig8"))

    t0 = perf_counter()
    records = run_once(benchmark, compute)
    wall = perf_counter() - t0
    series = collect_series(records)
    total_events = sum(rec.events for rec in records)

    flops = factorization_flops(prob.struct)
    nnz_l = prob.struct.factor_nnz()
    table = Table(
        f"Fig. 8 -- strong scaling, audikw_1 proxy (n={prob.n}, "
        f"nsup={prob.struct.nsup}), {N_RUNS} runs/point, time in ms",
        ["P"] + SCHEMES + ["v0.7.3-flat", "SuperLU (model)"],
    )
    for p in sorted(series["flat"].samples):
        row = [p]
        for s in SCHEMES + ["v0.7.3-flat"]:
            row.append(
                f"{series[s].mean(p) * 1e3:.2f}±{series[s].std(p) * 1e3:.2f}"
            )
        row.append(
            f"{modeled_superlu_time(flops, nnz_l, p, nsup=prob.struct.nsup) * 1e3:.2f}"
        )
        table.add(*row)

    sp_bin = speedup_table(series["flat"], series["binary"])
    sp_sh = speedup_table(series["flat"], series["shifted"])
    big = sorted(series["flat"].samples)[-1]
    lines = [
        table.render(),
        "",
        "speedup vs Flat-Tree (ratio of mean times):",
        "  binary : "
        + "  ".join(f"P={p}: {v:.2f}x" for p, v in sp_bin.items()),
        "  shifted: "
        + "  ".join(f"P={p}: {v:.2f}x" for p, v in sp_sh.items()),
        "",
        "  [paper] binary avg 2.4x (3.4x beyond 1,024P, 6.15x at 12,100P);",
        "  [paper] shifted avg 3.0x (4.5x beyond 1,024P, 8x at 12,100P);",
        "  [paper] std-dev reduced 1.72x (binary) / >4x (shifted) at scale.",
        "",
        record_throughput(
            "fig8_scaling",
            wall_seconds=wall,
            events=total_events,
            extra=dict(specs=len(specs)),
        ),
    ]
    emit("fig8_scaling", "\n".join(lines))

    # Shape assertions.
    small = sorted(series["flat"].samples)[0]
    # Strong scaling happens initially for every scheme.
    assert series["shifted"].mean(big) < series["shifted"].mean(small)
    # At the largest grid, trees beat flat, and v0.7.3 is the slowest flat.
    assert series["binary"].mean(big) < series["flat"].mean(big)
    assert series["shifted"].mean(big) < series["flat"].mean(big)
    assert series["v0.7.3-flat"].mean(big) > series["flat"].mean(big)
    # The flat-vs-shifted gap widens with scale.
    assert sp_sh[big] > sp_sh[small]
