"""Per-engine bit-identity smoke over the Fig. 8 quick sweep.

Runs the exact Fig. 8 sweep specs once under each simulation engine
(``legacy``, ``batch``, ``vectorized``) and asserts every
:class:`~repro.runner.RunRecord` agrees bitwise with the legacy
reference (:meth:`RunRecord.same_outcome`: makespan, event count,
compute and communication split, and every per-rank byte/message/
busy-time array).  This is the CI guard for the batch-dispatch and
vectorized engines: the calendar-queue scheduler and the compiled
collective state machines are optimizations, never behavior changes.

Run from ``benchmarks/`` with ``PYTHONPATH=../src:.``:

    REPRO_BENCH_SCALE=quick python check_engine_identity.py --limit 12

``--limit`` caps the spec count for CI time budgets (specs are ordered
smallest grid first, so a prefix still covers every scheme).  Exits
non-zero and names the offending specs on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from time import perf_counter

from bench_fig8_scaling import sweep_specs

from repro.runner import run_experiments

ENGINES = ("legacy", "batch", "vectorized")
REFERENCE = ENGINES[0]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--limit",
        type=int,
        default=None,
        help="cap the number of sweep specs (CI time budget)",
    )
    ap.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per sweep (default: REPRO_JOBS / all cores)",
    )
    ap.add_argument(
        "-o",
        "--output",
        default=None,
        help="write a JSON summary of the comparison here",
    )
    args = ap.parse_args(argv)

    specs = sweep_specs()
    if args.limit is not None:
        specs = specs[: args.limit]

    records = {}
    timings = {}
    for engine in ENGINES:
        eng_specs = [replace(s, engine=engine) for s in specs]
        t0 = perf_counter()
        records[engine] = run_experiments(eng_specs, jobs=args.jobs)
        timings[engine] = perf_counter() - t0
        events = sum(r.events for r in records[engine])
        print(
            f"engine={engine:10s}  {len(specs)} specs, {events:,} events, "
            f"{timings[engine]:.1f}s wall",
            flush=True,
        )

    mismatches = []
    for engine in ENGINES[1:]:
        for spec, ref, rec in zip(specs, records[REFERENCE], records[engine]):
            if not ref.same_outcome(rec):
                mismatches.append(
                    dict(
                        spec=spec.describe(),
                        engine=engine,
                        reference=dict(makespan=ref.makespan, events=ref.events),
                        candidate=dict(makespan=rec.makespan, events=rec.events),
                    )
                )

    summary = dict(
        specs=len(specs),
        engines=list(ENGINES),
        events=sum(r.events for r in records[REFERENCE]),
        wall_seconds={e: round(timings[e], 3) for e in ENGINES},
        outcome_bit_identical=not mismatches,
        mismatches=mismatches,
    )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")

    if mismatches:
        print(f"ENGINE MISMATCH on {len(mismatches)} spec/engine pairs:")
        for m in mismatches:
            print(
                f"  {m['spec']} [{m['engine']}]: "
                f"reference={m['reference']} candidate={m['candidate']}"
            )
        return 1
    walls = ", ".join(f"{e} {timings[e]:.1f}s" for e in ENGINES)
    print(f"OK: {len(specs)} specs bitwise-identical across engines ({walls})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
