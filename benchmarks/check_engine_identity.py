"""Per-engine bit-identity smoke over the Fig. 8 quick sweep.

Runs the exact Fig. 8 sweep specs once under ``engine="legacy"`` and
once under ``engine="batch"`` and asserts every
:class:`~repro.runner.RunRecord` pair agrees bitwise
(:meth:`RunRecord.same_outcome`: makespan, event count, compute and
communication split, and every per-rank byte/message/busy-time array).
This is the CI guard for the batch-dispatch engine: the calendar-queue
scheduler is an optimization, never a behavior change.

Run from ``benchmarks/`` with ``PYTHONPATH=../src:.``:

    REPRO_BENCH_SCALE=quick python check_engine_identity.py --limit 12

``--limit`` caps the spec count for CI time budgets (specs are ordered
smallest grid first, so a prefix still covers every scheme).  Exits
non-zero and names the offending specs on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from time import perf_counter

from bench_fig8_scaling import sweep_specs

from repro.runner import run_experiments

ENGINES = ("legacy", "batch")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--limit",
        type=int,
        default=None,
        help="cap the number of sweep specs (CI time budget)",
    )
    ap.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per sweep (default: REPRO_JOBS / all cores)",
    )
    ap.add_argument(
        "-o",
        "--output",
        default=None,
        help="write a JSON summary of the comparison here",
    )
    args = ap.parse_args(argv)

    specs = sweep_specs()
    if args.limit is not None:
        specs = specs[: args.limit]

    records = {}
    timings = {}
    for engine in ENGINES:
        eng_specs = [replace(s, engine=engine) for s in specs]
        t0 = perf_counter()
        records[engine] = run_experiments(eng_specs, jobs=args.jobs)
        timings[engine] = perf_counter() - t0
        events = sum(r.events for r in records[engine])
        print(
            f"engine={engine:6s}  {len(specs)} specs, {events:,} events, "
            f"{timings[engine]:.1f}s wall",
            flush=True,
        )

    mismatches = []
    for spec, rl, rb in zip(specs, records["legacy"], records["batch"]):
        if not rl.same_outcome(rb):
            mismatches.append(
                dict(
                    spec=spec.describe(),
                    legacy=dict(makespan=rl.makespan, events=rl.events),
                    batch=dict(makespan=rb.makespan, events=rb.events),
                )
            )

    summary = dict(
        specs=len(specs),
        events=sum(r.events for r in records["batch"]),
        legacy_wall_seconds=round(timings["legacy"], 3),
        batch_wall_seconds=round(timings["batch"], 3),
        outcome_bit_identical=not mismatches,
        mismatches=mismatches,
    )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")

    if mismatches:
        print(f"ENGINE MISMATCH on {len(mismatches)}/{len(specs)} specs:")
        for m in mismatches:
            print(f"  {m['spec']}: legacy={m['legacy']} batch={m['batch']}")
        return 1
    print(
        f"OK: {len(specs)} specs bitwise-identical across engines "
        f"(legacy {timings['legacy']:.1f}s, batch {timings['batch']:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
