"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. *Circular shift vs full permutation* -- the paper rejects the full
   random permutation: it destroys the rank locality the binary split
   exploits ("putting ranks which are logically closer far from each
   other").  We measure both volume balance and simulated time; the
   locality cost shows up as extra inter-node traffic.
2. *Hybrid threshold* -- §IV-B suggests flat below a group-size
   threshold, shifted-binary above; we sweep the threshold.
3. *Lookahead window* -- bounded buffering is what exposes tree shape on
   the critical path; infinite lookahead (an idealized runtime with
   unlimited buffers and perfectly eager transfers) hides most of it.
4. *NIC serialization* -- removing injection/ejection serialization
   (infinite-rate ports) erases the flat-tree penalty, confirming the
   paper's hot-spot mechanism rather than some other artifact.
"""

from time import perf_counter

from repro.analysis import Table
from repro.core import SimulatedPSelInv, volume_summary
from repro.runner import ExperimentSpec, VolumeSpec, run_experiments
from repro.simulate import Network, NetworkConfig

from _harness import (
    TIMING_NET,
    default_scale,
    emit,
    get_plans,
    get_problem,
    record_throughput,
    run_once,
    timing_network,
    volume_grid,
)


def _spec_kwargs(grid):
    return dict(
        workload="audikw_1",
        scale=default_scale(),
        grid=(grid.pr, grid.pc),
        seed=20160523,
        lookahead=4,
    )


def test_ablation_shift_vs_permutation(benchmark):
    prob = get_problem("audikw_1")
    grid = volume_grid()
    plans = get_plans(prob, grid)
    # Few ranks per node so locality matters on this small grid.
    net = NetworkConfig(
        jitter_sigma=0.0, cores_per_node=4, nodes_per_group=4, **TIMING_NET
    )
    schemes = ("shifted", "randperm")

    def compute():
        specs = [
            ExperimentSpec(scheme=s, network=net, **_spec_kwargs(grid))
            for s in schemes
        ] + [
            VolumeSpec(
                "audikw_1",
                (grid.pr, grid.pc),
                s,
                scale=default_scale(),
                seed=20160523,
            )
            for s in schemes
        ]
        results = run_experiments(specs)
        runs = dict(zip(schemes, results[: len(schemes)]))
        reps = dict(zip(schemes, results[len(schemes):]))
        out = {}
        for scheme in schemes:
            # Locality: fraction of transferred bytes that stay in-node.
            network = Network(grid.size, net)
            local = far = 0.0
            for plan in plans:
                for spec in plan.collectives():
                    from repro.comm import build_tree
                    from repro.core import collective_seed

                    tree = build_tree(
                        scheme, spec.root, spec.participants,
                        collective_seed(20160523, spec.key),
                    )
                    for r in tree.ranks():
                        if r == tree.root:
                            continue
                        if network.distance_class(tree.parent[r], r) == 0:
                            local += spec.nbytes
                        else:
                            far += spec.nbytes
            out[scheme] = (reps[scheme], runs[scheme], local / (local + far))
        return out

    t0 = perf_counter()
    results = run_once(benchmark, compute)
    wall = perf_counter() - t0
    total_events = sum(res.events for _, res, _ in results.values())

    table = Table(
        "Ablation -- circular shift vs full random permutation "
        f"({grid.pr}x{grid.pc} grid, 4 ranks/node)",
        ["scheme", "vol std MB", "intra-node byte frac", "sim time ms"],
    )
    vals = {}
    for scheme, (rep, res, loc) in results.items():
        s = volume_summary(rep.col_bcast_sent())
        vals[scheme] = (s["std"], loc, res.makespan)
        table.add(scheme, s["std"], f"{loc:.1%}", res.makespan * 1e3)
    thr = record_throughput(
        "ablation_shift_vs_perm", wall_seconds=wall, events=total_events
    )
    emit("ablation_shift_vs_perm", table.render() + "\n" + thr)

    # The full permutation must not preserve MORE locality than the
    # rotation (it breaks the consecutive-rank adjacency on purpose).
    assert vals["randperm"][1] <= vals["shifted"][1] + 1e-9


def test_ablation_hybrid_threshold(benchmark):
    prob = get_problem("audikw_1")
    grid = volume_grid()
    plans = get_plans(prob, grid)
    net = timing_network(jitter_sigma=0.0)
    thresholds = [1, 4, 8, 16, 10**6]

    def compute():
        specs = [
            ExperimentSpec(
                scheme="hybrid",
                network=net,
                hybrid_threshold=th,
                **_spec_kwargs(grid),
            )
            for th in thresholds
        ]
        records = run_experiments(specs)
        events = sum(rec.events for rec in records)
        return {th: rec.makespan for th, rec in zip(thresholds, records)}, events

    t0 = perf_counter()
    times, total_events = run_once(benchmark, compute)
    wall = perf_counter() - t0
    table = Table(
        "Ablation -- hybrid flat/shifted threshold (paper §IV-B proposal)",
        ["threshold", "time ms", "note"],
    )
    for th, t in times.items():
        note = "pure shifted" if th == 1 else ("pure flat" if th == 10**6 else "")
        table.add(th, t * 1e3, note)
    thr = record_throughput(
        "ablation_hybrid_threshold", wall_seconds=wall, events=total_events
    )
    emit("ablation_hybrid_threshold", table.render() + "\n" + thr)

    # Sanity: hybrid at extreme thresholds reproduces the pure schemes.
    pure_sh = SimulatedPSelInv(
        prob.struct, grid, "shifted", network=net, seed=20160523,
        plans=plans, lookahead=4,
    ).run().makespan
    assert times[1] == pure_sh


def test_ablation_lookahead_window(benchmark):
    grid = volume_grid()
    net = timing_network(jitter_sigma=0.0)
    windows = [1, 2, 4, 16, None]

    def compute():
        kwargs = _spec_kwargs(grid)
        del kwargs["lookahead"]
        keys = [(w, scheme) for w in windows for scheme in ("flat", "shifted")]
        specs = [
            ExperimentSpec(scheme=scheme, network=net, lookahead=w, **kwargs)
            for w, scheme in keys
        ]
        records = run_experiments(specs)
        events = sum(rec.events for rec in records)
        return {key: rec.makespan for key, rec in zip(keys, records)}, events

    t0 = perf_counter()
    times, total_events = run_once(benchmark, compute)
    wall = perf_counter() - t0
    table = Table(
        "Ablation -- lookahead window (bounded supernode pipelining)",
        ["window", "flat ms", "shifted ms", "flat/shifted"],
    )
    for w in windows:
        f, s = times[(w, "flat")], times[(w, "shifted")]
        table.add("inf" if w is None else w, f * 1e3, s * 1e3, f"{f/s:.2f}")
    thr = record_throughput(
        "ablation_lookahead", wall_seconds=wall, events=total_events
    )
    emit("ablation_lookahead", table.render() + "\n" + thr)

    # Pipelining monotonically helps, and the flat-tree penalty is larger
    # at small windows than with infinite buffering.
    for scheme in ("flat", "shifted"):
        assert times[(None, scheme)] <= times[(1, scheme)]
    gap_small = times[(2, "flat")] / times[(2, "shifted")]
    gap_inf = times[(None, "flat")] / times[(None, "shifted")]
    assert gap_small >= gap_inf * 0.98


def test_ablation_nic_serialization(benchmark):
    """Infinite-rate NICs: the flat root's fan-out becomes free, so the
    flat-vs-shifted gap should (mostly) vanish -- the paper's hot-spot
    mechanism is the injection/ejection serialization."""
    grid = volume_grid()
    normal = timing_network(jitter_sigma=0.0)
    cfg = dict(TIMING_NET)
    cfg.update(injection_bandwidth=1e15, ejection_bandwidth=1e15, injection_overhead=0.0)
    no_nic = NetworkConfig(jitter_sigma=0.0, **cfg)

    def compute():
        keys = [
            (label, scheme)
            for label in ("normal", "no-nic-serialization")
            for scheme in ("flat", "shifted")
        ]
        nets = {"normal": normal, "no-nic-serialization": no_nic}
        specs = [
            ExperimentSpec(scheme=scheme, network=nets[label], **_spec_kwargs(grid))
            for label, scheme in keys
        ]
        records = run_experiments(specs)
        events = sum(rec.events for rec in records)
        return {key: rec.makespan for key, rec in zip(keys, records)}, events

    t0 = perf_counter()
    times, total_events = run_once(benchmark, compute)
    wall = perf_counter() - t0
    table = Table(
        "Ablation -- NIC serialization on/off",
        ["network", "flat ms", "shifted ms", "flat/shifted"],
    )
    gaps = {}
    for label in ("normal", "no-nic-serialization"):
        f, s = times[(label, "flat")], times[(label, "shifted")]
        gaps[label] = f / s
        table.add(label, f * 1e3, s * 1e3, f"{f/s:.2f}")
    thr = record_throughput(
        "ablation_nic", wall_seconds=wall, events=total_events
    )
    emit("ablation_nic", table.render() + "\n" + thr)

    assert gaps["no-nic-serialization"] <= gaps["normal"]
