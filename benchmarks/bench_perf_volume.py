"""Old-vs-new volume-engine throughput (the PR-over-PR perf tracker).

Times the full Table I computation (flat, binary, binomial, shifted over
the audikw_1 proxy) under both engines:

* ``_communication_volumes_reference`` -- one dict-based tree per
  collective, per-rank Python loops (the original implementation);
* ``communication_volumes`` -- the vectorized engine (grouped
  collectives, cached tree arrays, bulk numpy charging).

Asserts the two produce bit-identical counters, then writes a
machine-readable ``benchmarks/results/BENCH_volume_engine.json`` so later
PRs can track the perf trajectory (see docs/performance.md for the
format).
"""

import json
import time

import numpy as np

from repro.analysis import Table
from repro.comm.trees import (
    tree_cache_clear,
    tree_cache_info,
    tree_cache_reset_counters,
)
from repro.core import communication_volumes
from repro.core.volume import _communication_volumes_reference

from _harness import (
    RESULTS_DIR,
    SCALE,
    emit,
    get_plans,
    get_problem,
    record_throughput,
    run_once,
    volume_grid,
)

SCHEMES = ["flat", "binary", "binomial", "shifted"]
SEED = 20160523

# The vectorized engine must beat the reference by at least this factor
# (the ISSUE-1 acceptance bar is 5x at paper tier; quick tier is smaller
# and keeps a margin for noisy CI boxes).
MIN_SPEEDUP = {"quick": 3.0, "paper": 5.0}


def _table1(engine, struct, grid, plans):
    return {
        scheme: engine(struct, grid, scheme, seed=SEED, plans=plans)
        for scheme in SCHEMES
    }


def test_perf_volume_engine(benchmark):
    prob = get_problem("audikw_1")
    grid = volume_grid()
    plans = get_plans(prob, grid)
    ncoll = sum(1 for plan in plans for _ in plan.collectives())

    # Reference engine: one timed pass (it is the slow path by design).
    t0 = time.perf_counter()
    ref_reports = _table1(
        _communication_volumes_reference, prob.struct, grid, plans
    )
    ref_seconds = time.perf_counter() - t0

    # Vectorized engine: timed via the benchmark fixture, then best-of-2
    # warm repeats for the headline number (the tree cache is part of the
    # engine, so warm timings are the steady-state figure).  Counters are
    # reset (not the contents) between the cold and warm sections so each
    # section reports its own hit rate instead of cumulative bleed-through.
    tree_cache_clear()
    t0 = time.perf_counter()
    vec_reports = run_once(
        benchmark, lambda: _table1(communication_volumes, prob.struct, grid, plans)
    )
    vec_cold_seconds = time.perf_counter() - t0
    cache_cold = tree_cache_info()
    tree_cache_reset_counters()
    vec_seconds = vec_cold_seconds
    for _ in range(2):
        t0 = time.perf_counter()
        _table1(communication_volumes, prob.struct, grid, plans)
        vec_seconds = min(vec_seconds, time.perf_counter() - t0)
    cache_warm = tree_cache_info()

    # Bit-identical counters -- the speedup is worthless otherwise.
    for scheme in SCHEMES:
        ref, vec = ref_reports[scheme], vec_reports[scheme]
        assert ref.max_degree == vec.max_degree
        for table_name in ("sent", "received", "messages"):
            rt, vt = getattr(ref, table_name), getattr(vec, table_name)
            assert set(rt) == set(vt)
            for kind in rt:
                np.testing.assert_array_equal(
                    rt[kind], vt[kind], err_msg=f"{scheme}/{kind}/{table_name}"
                )

    def _rate(info):
        lookups = info["hits"] + info["misses"]
        return round(info["hits"] / lookups, 4) if lookups else 0.0

    speedup = ref_seconds / vec_seconds
    cache = {
        # Per-section counters: "cold" is the first pass on an empty
        # cache (its misses are the compulsory structure builds), "warm"
        # covers the two steady-state repeats.
        "cold": {**cache_cold, "hit_rate": _rate(cache_cold)},
        "warm": {**cache_warm, "hit_rate": _rate(cache_warm)},
    }
    result = {
        "bench": "table1_colbcast_4schemes",
        "scale": SCALE,
        "grid": [grid.pr, grid.pc],
        "nsup": prob.struct.nsup,
        "collectives": ncoll,
        "schemes": SCHEMES,
        "reference_seconds": round(ref_seconds, 4),
        "vectorized_seconds_cold": round(vec_cold_seconds, 4),
        "vectorized_seconds": round(vec_seconds, 4),
        "speedup": round(speedup, 2),
        "reference_collectives_per_sec": round(
            len(SCHEMES) * ncoll / ref_seconds
        ),
        "vectorized_collectives_per_sec": round(
            len(SCHEMES) * ncoll / vec_seconds
        ),
        "tree_cache": cache,
        "unix_time": int(time.time()),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_volume_engine.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )

    table = Table(
        f"Volume-engine throughput -- Table I x {len(SCHEMES)} schemes, "
        f"audikw_1 proxy, {grid.pr}x{grid.pc} grid, {ncoll} collectives "
        f"({SCALE} tier)",
        ["engine", "seconds", "collectives/s"],
    )
    table.add("reference", f"{ref_seconds:.3f}", result["reference_collectives_per_sec"])
    table.add("vectorized", f"{vec_seconds:.3f}", result["vectorized_collectives_per_sec"])
    thr = record_throughput(
        "bench_perf_volume",
        wall_seconds=vec_seconds,
        extra=dict(speedup=result["speedup"], collectives=ncoll),
    )
    emit(
        "bench_perf_volume",
        table.render()
        + f"\n  speedup: {speedup:.1f}x (floor {MIN_SPEEDUP[SCALE]}x)"
        + "".join(
            f"\n  tree cache [{sec}]: {c['hits']} hits / {c['misses']} misses"
            f" / {c['evictions']} evictions (hit rate {c['hit_rate']:.1%})"
            for sec, c in cache.items()
        )
        + "\n" + thr,
    )

    assert speedup >= MIN_SPEEDUP.get(SCALE, 3.0), (
        f"vectorized engine only {speedup:.1f}x faster than reference"
    )
