"""Parallel experiment runner: wall-clock scaling + hot-path slimming.

Two measurements back the runner PR:

1. *Process-pool fan-out* -- the exact Fig. 8 quick sweep (imported from
   :mod:`bench_fig8_scaling`, so this measures the real workload, not a
   synthetic one) is executed serially and with 2 and 4 workers.  The
   records must be bit-identical in every configuration; on a >= 4-core
   host the 4-worker sweep must be >= 2.5x faster than serial.  On
   smaller hosts (CI containers are often 1-2 cores) the timings are
   still recorded but the speedup floor is not asserted -- pool overhead
   with one core is real and expected.
2. *Per-message hot path* -- one representative large run is timed with
   the slimmed :class:`repro.simulate.Network` and with a faithful
   re-creation of the pre-optimization query path (per-call config
   attribute chasing, divisions instead of multiply-by-inverse, tuple
   -keyed jitter memo), reported as DES events/second.

Results land in ``benchmarks/results/BENCH_runner.json``.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

from repro.analysis import Table
from repro.runner import cache, run_experiments
from repro.simulate import Network
from repro.core import ProcessorGrid, SimulatedPSelInv

from bench_fig8_scaling import sweep_specs
from _harness import (
    RESULTS_DIR,
    SCALE,
    default_scale,
    emit,
    get_plans,
    get_problem,
    run_once,
    scaling_processor_counts,
    timing_network,
)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_sweep(specs, jobs):
    t0 = perf_counter()
    records = run_experiments(specs, jobs=jobs, prewarm=False)
    return records, perf_counter() - t0


class _LegacyNetwork(Network):
    """The pre-optimization per-message query path, for the before/after
    events/sec comparison: config attribute chasing and a division on
    every call, distance class via an indexed table, and a tuple-keyed
    dict memo for the pair jitter."""

    def injection_time(self, nbytes):
        cfg = self.config
        return cfg.injection_overhead + nbytes / cfg.injection_bandwidth

    def ejection_time(self, nbytes):
        return nbytes / self.config.ejection_bandwidth

    def _legacy_pair_jitter(self, src, dst):
        if self.config.jitter_sigma <= 0:
            return 1.0
        a, b = self.node_of[src], self.node_of[dst]
        if a == b:
            return 1.0
        if a > b:
            a, b = b, a
        key = (int(a), int(b))
        j = self._jitter.get(key)
        if j is None:
            j = self._draw_jitter(*key)
            self._jitter[key] = j
        return j

    def transit_time(self, src, dst, nbytes):
        cfg = self.config
        d = self.distance_class(src, dst)
        lat = (cfg.latency_intra_node, cfg.latency_intra_group,
               cfg.latency_inter_group)[d]
        bw = (cfg.bw_intra_node, cfg.bw_intra_group, cfg.bw_inter_group)[d]
        return (lat + nbytes / bw) * self._legacy_pair_jitter(src, dst)


def _timed_single_run(network_cls):
    """One large jittered run under the given Network class; the class is
    swapped via the simulate module so :class:`SimulatedPSelInv` (and the
    Machine's pre-bound query methods) pick it up at construction."""
    import repro.core.pselinv as pselinv_mod

    side = scaling_processor_counts()[-1]
    prob = get_problem("audikw_1")
    grid = ProcessorGrid(side, side)
    plans = get_plans(prob, grid)
    orig = pselinv_mod.Network
    pselinv_mod.Network = network_cls
    try:
        sim = SimulatedPSelInv(
            prob.struct,
            grid,
            "shifted",
            network=timing_network(jitter_sigma=0.2),
            seed=20160523,
            plans=plans,
            lookahead=4,
        )
        t0 = perf_counter()
        res = sim.run()
        dt = perf_counter() - t0
    finally:
        pselinv_mod.Network = orig
    return res, dt


def test_runner_scaling(benchmark):
    specs = sweep_specs()
    cache.prewarm(specs)  # pay analysis once, outside every timer
    jobs_grid = [1, 2, 4]
    cores = _cpu_count()

    def compute():
        out = {}
        for jobs in jobs_grid:
            out[jobs] = _timed_sweep(specs, jobs)
        return out

    results = run_once(benchmark, compute)

    base_records, base_time = results[1]
    total_events = sum(r.events for r in base_records)
    table = Table(
        f"Parallel runner -- Fig. 8 {SCALE} sweep ({len(specs)} runs, "
        f"{total_events} DES events, host has {cores} core(s))",
        ["jobs", "wall s", "speedup", "events/s", "identical"],
    )
    rows = []
    for jobs in jobs_grid:
        records, wall = results[jobs]
        identical = len(records) == len(base_records) and all(
            a.same_outcome(b) for a, b in zip(base_records, records)
        )
        rows.append(
            dict(
                jobs=jobs,
                wall_seconds=round(wall, 4),
                speedup=round(base_time / wall, 3),
                events_per_sec=round(total_events / wall),
                identical=identical,
            )
        )
        table.add(
            jobs,
            f"{wall:.2f}",
            f"{base_time / wall:.2f}x",
            f"{total_events / wall:,.0f}",
            identical,
        )

    # Hot-path slimming: one large run, legacy vs slimmed network.
    res_new, dt_new = _timed_single_run(Network)
    res_old, dt_old = _timed_single_run(_LegacyNetwork)
    net_cmp = dict(
        run=f"audikw_1 {scaling_processor_counts()[-1]}^2 ranks, shifted, jitter 0.2",
        events=res_new.events,
        legacy_seconds=round(dt_old, 4),
        slimmed_seconds=round(dt_new, 4),
        legacy_events_per_sec=round(res_old.events / dt_old),
        slimmed_events_per_sec=round(res_new.events / dt_new),
        speedup=round(dt_old / dt_new, 3),
    )
    lines = [
        table.render(),
        "",
        "per-message hot path (single large run, DES events/sec):",
        f"  legacy  network: {net_cmp['legacy_events_per_sec']:,}/s"
        f" ({dt_old:.2f}s)",
        f"  slimmed network: {net_cmp['slimmed_events_per_sec']:,}/s"
        f" ({dt_new:.2f}s)  -> {net_cmp['speedup']:.2f}x",
    ]
    emit("runner_scaling", "\n".join(lines))

    payload = dict(
        bench="runner_scaling_fig8_sweep",
        scale=SCALE,
        workload_scale=default_scale(),
        cpu_count=cores,
        specs=len(specs),
        total_events=total_events,
        sweeps=rows,
        network_hot_path=net_cmp,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_runner.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Bit-identity is unconditional; the speedup floor needs real cores.
    assert all(r["identical"] for r in rows)
    if cores >= 4:
        four = next(r for r in rows if r["jobs"] == 4)
        assert four["speedup"] >= 2.5, four
    # The slimmed per-message path must not be slower than the legacy one
    # (single-run timing noise aside: require >= 0.9x).
    assert dt_new <= dt_old / 0.9
    # Both network variants walk the same event structure.
    assert res_new.events == res_old.events
