"""Parallel experiment runner: wall-clock scaling + hot-path slimming.

Measurements recorded here:

0. *Engine head-to-head* -- the reference run on the legacy binary-heap
   engine vs the calendar-queue batch engine vs the vectorized engine
   (compiled collective state machines + batched delivery), alternated
   round-robin with best-of per engine, asserting bitwise-identical
   outcomes and per-engine speedup floors.

1. *Process-pool fan-out* -- the exact Fig. 8 quick sweep (imported from
   :mod:`bench_fig8_scaling`, so this measures the real workload, not a
   synthetic one) is executed serially and with 2 and 4 workers.  The
   records must be bit-identical in every configuration; on a >= 4-core
   host the 4-worker sweep must be >= 2.5x faster than serial.  On
   smaller hosts (CI containers are often 1-2 cores) the timings are
   still recorded but the speedup floor is not asserted -- pool overhead
   with one core is real and expected.
2. *Per-message hot path* -- one representative large run is timed with
   the slimmed :class:`repro.simulate.Network` and with a faithful
   re-creation of the pre-optimization query path (per-call config
   attribute chasing, divisions instead of multiply-by-inverse, tuple
   -keyed jitter memo), reported as DES events/second.
3. *Telemetry overhead* -- the same reference run timed against a
   guard-free re-creation of the pre-telemetry :class:`Machine` hot path
   (no ``recorder is not None`` tests), and with full telemetry
   (timeline + metrics + hot-spot monitor) enabled.  Disabled telemetry
   must stay within the 5% overhead budget and must not change the DES
   outcome; enabled overhead is recorded for reference.

Results land in ``benchmarks/results/BENCH_runner.json``.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

from repro.analysis import Table
from repro.obs import Telemetry
from repro.runner import cache, run_experiments
from repro.simulate import Network
from repro.simulate.machine import Machine
from repro.core import ProcessorGrid, SimulatedPSelInv

from bench_fig8_scaling import sweep_specs
from _harness import (
    RESULTS_DIR,
    SCALE,
    default_scale,
    emit,
    get_plans,
    get_problem,
    record_throughput,
    run_once,
    scaling_processor_counts,
    timing_network,
)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_sweep(specs, jobs):
    t0 = perf_counter()
    # force_jobs: this sweep deliberately measures fixed worker counts
    # (including oversubscription on small CI hosts); the runner's
    # clamp-to-cores guard would silently change what is being timed.
    records = run_experiments(specs, jobs=jobs, prewarm=False, force_jobs=True)
    return records, perf_counter() - t0


class _LegacyNetwork(Network):
    """The pre-optimization per-message query path, for the before/after
    events/sec comparison: config attribute chasing and a division on
    every call, distance class via an indexed table, and a tuple-keyed
    dict memo for the pair jitter."""

    def injection_time(self, nbytes):
        cfg = self.config
        return cfg.injection_overhead + nbytes / cfg.injection_bandwidth

    def ejection_time(self, nbytes):
        return nbytes / self.config.ejection_bandwidth

    def _legacy_pair_jitter(self, src, dst):
        if self.config.jitter_sigma <= 0:
            return 1.0
        a, b = self.node_of[src], self.node_of[dst]
        if a == b:
            return 1.0
        if a > b:
            a, b = b, a
        key = (int(a), int(b))
        j = self._jitter.get(key)
        if j is None:
            j = self._draw_jitter(*key)
            self._jitter[key] = j
        return j

    def transit_time(self, src, dst, nbytes):
        cfg = self.config
        d = self.distance_class(src, dst)
        lat = (cfg.latency_intra_node, cfg.latency_intra_group,
               cfg.latency_inter_group)[d]
        bw = (cfg.bw_intra_node, cfg.bw_intra_group, cfg.bw_inter_group)[d]
        return (lat + nbytes / bw) * self._legacy_pair_jitter(src, dst)


class _PreTelemetryMachine(Machine):
    """The pre-telemetry Machine hot path: the same scheduling arithmetic
    with no recorder guards, for measuring what the ``_rec is not None``
    tests cost when telemetry is disabled."""

    def post_send(self, src, dst, tag, nbytes, category, payload=None):
        from repro.simulate.machine import Message, TraceEvent

        nbytes = int(nbytes)
        msg = Message(src, dst, tag, nbytes, category, payload)
        sim = self.sim
        if self._event_log is not None:
            self._event_log.append(
                TraceEvent("send", sim.now, src, dst, tag, nbytes)
            )
        if src == dst:
            sim.schedule_at(sim.now, self._deliver, msg)
            return
        self.stats.on_send(msg)
        inj = self._injection_time(nbytes)
        now = sim.now
        nic = self._nic_free[src]
        start = nic if nic > now else now
        finish = start + inj
        self._nic_free[src] = finish
        self.stats._nic_out_busy[src] += inj
        arrival = finish + self._transit_time(src, dst, nbytes)
        ch = self._channel_last
        if self._flat_channels:
            idx = src * self.nranks + dst
            if arrival < ch[idx]:
                arrival = ch[idx]
            ch[idx] = arrival
        else:
            key = (src, dst)
            last = ch.get(key, 0.0)
            if arrival < last:
                arrival = last
            ch[key] = arrival
        sim.schedule_at(arrival, self._receive, msg)

    def _receive(self, msg):
        self.stats.on_receive(msg)
        dst = msg.dst
        now = self.sim.now
        eject = self._ejection_time(msg.nbytes)
        nic = self._nic_in_free[dst]
        nic_start = nic if nic > now else now
        nic_done = nic_start + eject
        self._nic_in_free[dst] = nic_done
        self.stats._nic_in_busy[dst] += eject
        oh = self._recv_overhead
        cpu = self._cpu_free[dst]
        start = cpu if cpu > nic_done else nic_done
        self._cpu_free[dst] = start + oh
        self.stats._recv_overhead_busy[dst] += oh
        self.sim.schedule_at(start + oh, self._deliver, msg)

    def _deliver(self, msg):
        if self._event_log is not None:
            from repro.simulate.machine import TraceEvent

            self._event_log.append(
                TraceEvent(
                    "deliver", self.sim.now, msg.src, msg.dst, msg.tag,
                    msg.nbytes,
                )
            )
        fn = self._handlers[msg.dst]
        if fn is None:
            raise RuntimeError(f"no handler installed on rank {msg.dst}")
        fn(msg)

    def post_compute(self, rank, seconds, fn=None, *, flops=None, label=None):
        if flops is not None:
            seconds = self.network.compute_time(flops)
        if seconds < 0:
            raise ValueError("negative compute time")
        now = self.sim.now
        cpu = self._cpu_free[rank]
        start = cpu if cpu > now else now
        finish = start + seconds
        self._cpu_free[rank] = finish
        self.stats._compute_busy[rank] += seconds
        if fn is not None:
            self.sim.schedule_at(finish, fn)


def _timed_single_run(
    network_cls, *, machine_cls=Machine, telemetry=None, engine="legacy"
):
    """One large jittered run under the given Network/Machine classes; the
    classes are swapped via the pselinv module so :class:`SimulatedPSelInv`
    (and the Machine's pre-bound query methods) pick them up at
    construction.  The network/machine comparisons replicate legacy-path
    variants, so they pin ``engine="legacy"``; the engine head-to-head
    passes ``engine="batch"`` explicitly."""
    import repro.core.pselinv as pselinv_mod

    side = scaling_processor_counts()[-1]
    prob = get_problem("audikw_1")
    grid = ProcessorGrid(side, side)
    plans = get_plans(prob, grid)
    orig_net = pselinv_mod.Network
    orig_machine = pselinv_mod.Machine
    pselinv_mod.Network = network_cls
    pselinv_mod.Machine = machine_cls
    try:
        sim = SimulatedPSelInv(
            prob.struct,
            grid,
            "shifted",
            network=timing_network(jitter_sigma=0.2),
            seed=20160523,
            plans=plans,
            lookahead=4,
            telemetry=telemetry,
            engine=engine,
        )
        t0 = perf_counter()
        res = sim.run()
        dt = perf_counter() - t0
    finally:
        pselinv_mod.Network = orig_net
        pselinv_mod.Machine = orig_machine
    return res, dt


def _reference_side() -> int:
    return scaling_processor_counts()[-1]


def test_runner_scaling(benchmark):
    specs = sweep_specs()
    cache.prewarm(specs)  # pay analysis once, outside every timer
    jobs_grid = [1, 2, 4]
    cores = _cpu_count()

    def compute():
        out = {}
        for jobs in jobs_grid:
            out[jobs] = _timed_sweep(specs, jobs)
        return out

    results = run_once(benchmark, compute)

    base_records, base_time = results[1]
    total_events = sum(r.events for r in base_records)
    table = Table(
        f"Parallel runner -- Fig. 8 {SCALE} sweep ({len(specs)} runs, "
        f"{total_events} DES events, host has {cores} core(s))",
        ["jobs", "wall s", "speedup", "events/s", "identical"],
    )
    rows = []
    for jobs in jobs_grid:
        records, wall = results[jobs]
        identical = len(records) == len(base_records) and all(
            a.same_outcome(b) for a, b in zip(base_records, records)
        )
        rows.append(
            dict(
                jobs=jobs,
                wall_seconds=round(wall, 4),
                speedup=round(base_time / wall, 3),
                events_per_sec=round(total_events / wall),
                identical=identical,
            )
        )
        table.add(
            jobs,
            f"{wall:.2f}",
            f"{base_time / wall:.2f}x",
            f"{total_events / wall:,.0f}",
            identical,
        )

    # Engine head-to-head: the same reference run on the legacy heapq
    # engine, the calendar-queue batch engine, and the vectorized engine
    # (compiled collective state machines + batched delivery).
    # Alternated round-robin with best-of per engine: single-shot wall
    # clock on shared hosts swings by 20%+, and in-process heap growth
    # penalizes whichever run goes last, so no ordering is allowed to
    # decide the comparison.
    engines = ("legacy", "batch", "vectorized")
    best = {e: float("inf") for e in engines}
    eng_res = {}
    for _ in range(3):
        for eng in engines:
            r, dt = _timed_single_run(Network, engine=eng)
            eng_res[eng] = r
            best[eng] = min(best[eng], dt)
    ref = eng_res["legacy"]
    engine_cmp = dict(
        run=f"audikw_1 {_reference_side()}^2 ranks, shifted, jitter 0.2",
        events=ref.events,
        legacy_seconds=round(best["legacy"], 4),
        batch_seconds=round(best["batch"], 4),
        vectorized_seconds=round(best["vectorized"], 4),
        legacy_events_per_sec=round(ref.events / best["legacy"]),
        batch_events_per_sec=round(ref.events / best["batch"]),
        vectorized_events_per_sec=round(ref.events / best["vectorized"]),
        speedup=round(best["legacy"] / best["batch"], 3),
        vectorized_speedup=round(best["legacy"] / best["vectorized"], 3),
        vectorized_vs_batch=round(best["batch"] / best["vectorized"], 3),
        outcome_bit_identical=bool(
            all(eng_res[e].events == ref.events for e in engines)
            and all(eng_res[e].makespan == ref.makespan for e in engines)
        ),
    )

    # Hot-path slimming: one large run, legacy vs slimmed network.
    res_new, dt_new = _timed_single_run(Network)
    res_old, dt_old = _timed_single_run(_LegacyNetwork)
    net_cmp = dict(
        run=f"audikw_1 {_reference_side()}^2 ranks, shifted, jitter 0.2",
        events=res_new.events,
        legacy_seconds=round(dt_old, 4),
        slimmed_seconds=round(dt_new, 4),
        legacy_events_per_sec=round(res_old.events / dt_old),
        slimmed_events_per_sec=round(res_new.events / dt_new),
        speedup=round(dt_old / dt_new, 3),
    )

    # Telemetry overhead on the same reference run.  The two
    # disabled-path variants back a 5% budget assertion, so they run in
    # alternated best-of-2 rounds (like the engine head-to-head): host
    # load drifting between a block of guarded runs and a block of
    # pre-telemetry runs would otherwise fabricate overhead either way.
    # Single run for enabled.
    dt_guarded = dt_new
    dt_pre = float("inf")
    res_pre = None
    for _ in range(2):
        res_pre, dt_pre_i = _timed_single_run(
            Network, machine_cls=_PreTelemetryMachine)
        dt_pre = min(dt_pre, dt_pre_i)
        dt_guarded = min(dt_guarded, _timed_single_run(Network)[1])
    nranks = _reference_side() ** 2
    res_tel, dt_tel = _timed_single_run(
        Network,
        telemetry=Telemetry.full(nranks, workload="audikw_1", scheme="shifted"),
    )
    tel_cmp = dict(
        run=net_cmp["run"],
        pre_telemetry_seconds=round(dt_pre, 4),
        disabled_seconds=round(dt_guarded, 4),
        enabled_seconds=round(dt_tel, 4),
        disabled_overhead_pct=round((dt_guarded / dt_pre - 1) * 100, 2),
        enabled_overhead_pct=round((dt_tel / dt_pre - 1) * 100, 2),
        disabled_budget_pct=5.0,
        outcome_bit_identical=bool(
            res_tel.events == res_new.events == res_pre.events
            and res_tel.makespan == res_new.makespan == res_pre.makespan
        ),
    )

    throughput_note = record_throughput(
        "runner_scaling",
        wall_seconds=base_time,
        events=total_events,
        extra=dict(jobs=1, specs=len(specs)),
    )
    lines = [
        table.render(),
        "",
        "engine head-to-head (reference run, best of 3 alternated rounds):",
        f"  legacy (heapq):          {engine_cmp['legacy_events_per_sec']:,}/s"
        f" ({best['legacy']:.2f}s)",
        f"  batch (calendar queue):  {engine_cmp['batch_events_per_sec']:,}/s"
        f" ({best['batch']:.2f}s)  -> {engine_cmp['speedup']:.2f}x",
        "  vectorized (compiled):   "
        f"{engine_cmp['vectorized_events_per_sec']:,}/s"
        f" ({best['vectorized']:.2f}s)"
        f"  -> {engine_cmp['vectorized_speedup']:.2f}x"
        f" ({engine_cmp['vectorized_vs_batch']:.2f}x over batch)",
        f"  outcome bit-identical:   {engine_cmp['outcome_bit_identical']}",
        "",
        "per-message hot path (single large run, DES events/sec):",
        f"  legacy  network: {net_cmp['legacy_events_per_sec']:,}/s"
        f" ({dt_old:.2f}s)",
        f"  slimmed network: {net_cmp['slimmed_events_per_sec']:,}/s"
        f" ({dt_new:.2f}s)  -> {net_cmp['speedup']:.2f}x",
        "",
        "telemetry overhead (same reference run):",
        f"  pre-telemetry machine: {dt_pre:.2f}s",
        f"  disabled (guards only): {dt_guarded:.2f}s"
        f"  ({tel_cmp['disabled_overhead_pct']:+.1f}%, budget 5%)",
        f"  enabled (full bundle):  {dt_tel:.2f}s"
        f"  ({tel_cmp['enabled_overhead_pct']:+.1f}%)",
        f"  outcome bit-identical:  {tel_cmp['outcome_bit_identical']}",
        "",
        throughput_note,
    ]
    emit("runner_scaling", "\n".join(lines))

    payload = dict(
        bench="runner_scaling_fig8_sweep",
        scale=SCALE,
        workload_scale=default_scale(),
        cpu_count=cores,
        specs=len(specs),
        total_events=total_events,
        sweeps=rows,
        engine_head_to_head=engine_cmp,
        network_hot_path=net_cmp,
        telemetry_overhead=tel_cmp,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_runner.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Bit-identity is unconditional; the speedup floor needs real cores.
    assert all(r["identical"] for r in rows)
    # The batch engine must beat the heapq engine on its outcome-
    # preserving reference run, and the vectorized engine must in turn
    # beat batch.  Measured best-of ratios swing with host load
    # (batch-vs-legacy 1.10-1.45x, vectorized-vs-batch 1.20-1.41x
    # across recorded runs on this box); 1.05x floors catch a real
    # regression -- an accidentally disabled fast path is a >1.2x hit --
    # without tripping on shared-host noise.
    assert engine_cmp["outcome_bit_identical"], engine_cmp
    assert engine_cmp["speedup"] >= 1.05, engine_cmp
    assert engine_cmp["vectorized_vs_batch"] >= 1.05, engine_cmp
    if cores >= 4:
        four = next(r for r in rows if r["jobs"] == 4)
        assert four["speedup"] >= 2.5, four
    # The slimmed per-message path must not be slower than the legacy one
    # (single-run timing noise aside: require >= 0.9x).
    assert dt_new <= dt_old / 0.9
    # Both network variants walk the same event structure.
    assert res_new.events == res_old.events
    # Telemetry must never perturb the simulated outcome, and the
    # disabled-telemetry guards must stay inside the 5% overhead budget.
    assert tel_cmp["outcome_bit_identical"], tel_cmp
    assert dt_guarded <= dt_pre * 1.05, tel_cmp
