"""Dev helper: paired batch/legacy timing on the reference run.

Alternates the two engines and reports the median per-pair ratio, which
is robust against the CPU frequency drift that makes single-shot
wall-clock numbers on shared hosts swing by 20%+.  Used interactively
while tuning; the recorded benchmark lives in bench_runner_scaling.py.
"""

from __future__ import annotations

import statistics
import sys
from time import perf_counter

from repro.core import ProcessorGrid, SimulatedPSelInv
from _harness import (
    get_plans,
    get_problem,
    scaling_processor_counts,
    timing_network,
)


def reference_run(engine: str):
    side = scaling_processor_counts()[-1]
    prob = get_problem("audikw_1")
    grid = ProcessorGrid(side, side)
    plans = get_plans(prob, grid)
    sim = SimulatedPSelInv(
        prob.struct,
        grid,
        "shifted",
        network=timing_network(jitter_sigma=0.2),
        seed=20160523,
        plans=plans,
        lookahead=4,
        engine=engine,
    )
    t0 = perf_counter()
    res = sim.run()
    return res, perf_counter() - t0


def main(pairs: int = 4) -> None:
    ratios = []
    tl_all, tb_all = [], []
    rl = rb = None
    for i in range(pairs):
        rl, tl = reference_run("legacy")
        rb, tb = reference_run("batch")
        tl_all.append(tl)
        tb_all.append(tb)
        ratios.append(tl / tb)
        print(f"pair {i}: legacy {tl:.2f}s  batch {tb:.2f}s  ratio {tl/tb:.2f}x")
    med = statistics.median(ratios)
    tl, tb = min(tl_all), min(tb_all)
    print(f"median ratio {med:.2f}x   best legacy {rl.events/tl:,.0f} ev/s"
          f"   best batch {rb.events/tb:,.0f} ev/s")
    print(f"identical: {rl.events == rb.events and rl.makespan == rb.makespan}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
