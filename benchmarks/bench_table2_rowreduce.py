"""Table II: volume received during Row-Reduce for all six matrices.

The paper reports (min, max, median, std) of per-rank received volume for
DG_Graphene_32768, DG_PNF14000, DG_Water_12888, LU_C_BN_C_4by2, audikw_1
and Flan_1565, with the same signature in every case: Binary-Tree has a
collapsed minimum and an inflated maximum/std; Shifted Binary-Tree is
the tightest.  Paper std-dev columns (Flat / Binary / Shifted), MB:

    DG_Graphene_32768   18.10 / 109.37 / 11.11
    DG_PNF14000          8.41 /  37.06 /  5.75
    DG_Water_12888       2.73 /  15.36 /  3.04
    LU_C_BN_C_4by2       5.79 /  39.94 /  3.18
    audikw_1             7.07 /  25.26 /  3.79
    Flan_1565            8.63 /  28.80 /  4.83
"""

from repro.analysis import Table
from repro.core import volume_summary
from repro.runner import VolumeSpec, run_experiments
from repro.workloads import WORKLOADS, workload_names

from time import perf_counter

from _harness import (
    SCALE,
    emit,
    get_problem,
    record_throughput,
    run_once,
    volume_grid,
)

SCHEMES = ["flat", "binary", "shifted"]

PAPER_STD = {
    "DG_Graphene_32768": (18.10, 109.37, 11.11),
    "DG_PNF14000": (8.41, 37.06, 5.75),
    "DG_Water_12888": (2.73, 15.36, 3.04),
    "LU_C_BN_C_4by2": (5.79, 39.94, 3.18),
    "audikw_1": (7.07, 25.26, 3.79),
    "Flan_1565": (8.63, 28.80, 4.83),
}


def test_table2_rowreduce_volume(benchmark):
    grid = volume_grid()
    scale = "small" if SCALE == "quick" else "medium"

    def compute():
        # One spec per (matrix, scheme): 18 independent volume
        # computations fanned out across REPRO_JOBS workers.
        specs = [
            VolumeSpec(name, (grid.pr, grid.pc), s, scale=scale, seed=20160523)
            for name in workload_names()
            for s in SCHEMES
        ]
        reports = run_experiments(specs)
        out = {}
        for spec, rep in zip(specs, reports):
            out.setdefault(spec.workload, (get_problem(spec.workload, scale), {}))[
                1
            ][spec.scheme] = rep
        return out

    t0 = perf_counter()
    results = run_once(benchmark, compute)
    wall = perf_counter() - t0

    table = Table(
        f"Table II -- Row-Reduce received volume (MB), {grid.pr}x{grid.pc} grid",
        ["matrix", "n", "nnz(A)", "nnz(LU)", "scheme", "min", "max", "median", "std"],
    )
    shape_ok = []
    for name, (prob, reports) in results.items():
        w = WORKLOADS[name]
        st = prob.stats()
        stats = {}
        for i, scheme in enumerate(SCHEMES):
            s = volume_summary(reports[scheme].row_reduce_received())
            stats[scheme] = s
            table.add(
                name if i == 0 else "",
                st["n"] if i == 0 else "",
                st["nnz_a"] if i == 0 else "",
                st["nnz_lu"] if i == 0 else "",
                scheme,
                s["min"],
                s["max"],
                s["median"],
                s["std"],
            )
        p = PAPER_STD[name]
        table.add(
            "", "", "", "", "[paper std]", "", "", "",
            f"{p[0]}/{p[1]}/{p[2]}",
        )
        shape_ok.append(
            stats["binary"]["std"] > stats["flat"]["std"]
            and stats["shifted"]["std"] < stats["binary"]["std"]
            and stats["binary"]["min"] <= stats["flat"]["min"]
        )
    note = (
        "  paper n/nnzA for reference: "
        + ", ".join(
            f"{n}: n={WORKLOADS[n].paper_n:,}" for n in workload_names()
        )
    )
    thr = record_throughput("table2_rowreduce", wall_seconds=wall)
    emit("table2_rowreduce", table.render() + "\n" + note + "\n" + thr)

    # Every matrix must show the Binary blow-up / Shifted tightening.
    assert all(shape_ok), shape_ok
