"""Fig. 6 + §IV-A text: Flat-Tree imbalance is milder on small grids.

Paper: on a 16x16 grid the Flat-Tree Col-Bcast volume has std-dev 10.2%
of the mean, versus 19.2% on the 46x46 grid -- load imbalance is a
large-scale phenomenon.  We sweep grid sizes and reproduce the monotone
growth of relative imbalance.
"""

from repro.analysis import Table, render_ascii
from repro.runner import VolumeSpec, run_experiments

from time import perf_counter

from _harness import SCALE, default_scale, emit, record_throughput, run_once


def test_fig6_small_grid_imbalance(benchmark):
    sides = [4, 8, 12] if SCALE == "quick" else [8, 16, 24]
    specs = [
        VolumeSpec(
            "audikw_1", (p, p), "flat", scale=default_scale(), seed=20160523
        )
        for p in sides
    ]

    def compute():
        reports = run_experiments(specs)
        return {p: rep.col_bcast_sent() for p, rep in zip(sides, reports)}

    t0 = perf_counter()
    volumes = run_once(benchmark, compute)
    wall = perf_counter() - t0

    table = Table(
        "Fig. 6 -- Flat-Tree Col-Bcast imbalance vs grid size (audikw_1 proxy)",
        ["grid", "mean MB", "std MB", "std/mean"],
    )
    rel = {}
    for p in sides:
        v = volumes[p] / 1e6
        rel[p] = v.std() / v.mean()
        table.add(f"{p}x{p}", v.mean(), v.std(), f"{rel[p]:.1%}")
    small_map = render_ascii(
        (volumes[sides[0]]).reshape(sides[0], sides[0])
    )
    note = (
        "  [paper] 16x16: std = 10.2% of mean; 46x46: 19.2%\n"
        f"\nFlat-Tree heat map on the {sides[0]}x{sides[0]} grid:\n{small_map}"
    )
    thr = record_throughput("fig6_smallgrid", wall_seconds=wall)
    emit("fig6_smallgrid", table.render() + "\n" + note + "\n" + thr)

    assert rel[sides[0]] < rel[sides[-1]]
