"""CI gate on the engine head-to-head throughput artifact.

Reads ``results/BENCH_runner.json`` (written by
``bench_runner_scaling.py``) and enforces the reference-run contract:

* every engine produced the bit-identical outcome;
* the calendar-queue batch engine beats the legacy heap engine
  (``--min-batch-speedup``, default 1.05x);
* the vectorized engine beats the batch engine
  (``--min-vectorized-speedup``, default 1.05x);
* absolute end-to-end throughput of the vectorized engine stays above
  ``--min-events-per-sec`` (default 40,000 ev/s -- a deliberately loose
  floor that catches order-of-magnitude regressions such as an
  accidentally disabled fast path, while tolerating slow shared CI
  hosts; raise it when gating on known hardware).

The relative floors are the primary regression signal: wall-clock on
shared runners swings too much for a tight absolute gate, but the
engines run alternated in one process, so their *ratio* is stable.

Run from ``benchmarks/`` after the runner benchmark:

    python check_throughput_floor.py results/BENCH_runner.json

Exits non-zero with a one-line reason per violated floor.
"""

from __future__ import annotations

import argparse
import json
import sys


def check(payload: dict, *, min_events_per_sec: float,
          min_batch_speedup: float, min_vectorized_speedup: float) -> list[str]:
    """Return a list of violation messages (empty = gate passes)."""
    failures = []
    cmp_ = payload.get("engine_head_to_head")
    if not cmp_:
        return ["no engine_head_to_head section in the artifact"]
    if not cmp_.get("outcome_bit_identical"):
        failures.append(
            "engines disagree on the reference-run outcome "
            f"(run: {cmp_.get('run')})"
        )
    speedup = cmp_.get("speedup", 0.0)
    if speedup < min_batch_speedup:
        failures.append(
            f"batch-vs-legacy speedup {speedup:.3f}x below the "
            f"{min_batch_speedup:.2f}x floor"
        )
    vec_vs_batch = cmp_.get("vectorized_vs_batch", 0.0)
    if vec_vs_batch < min_vectorized_speedup:
        failures.append(
            f"vectorized-vs-batch speedup {vec_vs_batch:.3f}x below the "
            f"{min_vectorized_speedup:.2f}x floor"
        )
    ev_s = cmp_.get("vectorized_events_per_sec", 0)
    if ev_s < min_events_per_sec:
        failures.append(
            f"vectorized reference throughput {ev_s:,} ev/s below the "
            f"{min_events_per_sec:,.0f} ev/s floor"
        )
    for row in payload.get("sweeps", []):
        if not row.get("identical", False):
            failures.append(
                f"jobs={row.get('jobs')} sweep records diverged from serial"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "artifact",
        nargs="?",
        default="results/BENCH_runner.json",
        help="BENCH_runner.json produced by bench_runner_scaling.py",
    )
    ap.add_argument("--min-events-per-sec", type=float, default=40_000)
    ap.add_argument("--min-batch-speedup", type=float, default=1.05)
    ap.add_argument("--min-vectorized-speedup", type=float, default=1.05)
    args = ap.parse_args(argv)

    try:
        with open(args.artifact) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"throughput floor: cannot read {args.artifact}: {exc}")
        return 2

    failures = check(
        payload,
        min_events_per_sec=args.min_events_per_sec,
        min_batch_speedup=args.min_batch_speedup,
        min_vectorized_speedup=args.min_vectorized_speedup,
    )
    cmp_ = payload.get("engine_head_to_head", {})
    if failures:
        print(f"throughput floor FAILED for {args.artifact}:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        f"throughput floor OK: vectorized "
        f"{cmp_.get('vectorized_events_per_sec', 0):,} ev/s "
        f"(>= {args.min_events_per_sec:,.0f}), "
        f"batch speedup {cmp_.get('speedup')}x (>= {args.min_batch_speedup}), "
        f"vectorized-vs-batch {cmp_.get('vectorized_vs_batch')}x "
        f"(>= {args.min_vectorized_speedup}), outcomes bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
