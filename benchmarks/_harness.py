"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one table or figure of the paper.  Scale is
controlled by ``REPRO_BENCH_SCALE``:

* ``quick`` (default) -- scaled-down matrices and grids; every qualitative
  claim is still exercised, total wall time stays in minutes.
* ``paper`` -- medium-scale proxies and larger grids for higher-fidelity
  shapes (tens of minutes; run it when you care about the curves).

Analyzed problems and communication plans are memoized per session
through :mod:`repro.runner.cache` -- the same per-process caches the
parallel experiment runner's pool workers use -- so benchmarks sharing a
workload pay for symbolic analysis once, and a sweep fanned out with
``REPRO_JOBS > 1`` shares the parent's caches on fork platforms.  Each
benchmark prints its paper-style table and mirrors it to
``benchmarks/results/<name>.txt`` so the artifacts survive pytest's
output capture.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.core import ProcessorGrid
from repro.runner import cache as _cache
from repro.simulate import NetworkConfig
from repro.sparse import AnalyzedProblem

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")
RESULTS_DIR = Path(__file__).resolve().parent / "results"

# The network model used by all timing benchmarks (calibrated so the
# critical path is bandwidth/fan-out bound at the grids we sweep, like
# the paper's platform at its much larger scale).
TIMING_NET = dict(
    latency_intra_node=1.5e-7,
    latency_intra_group=4e-7,
    latency_inter_group=7e-7,
    injection_overhead=3e-7,
    receive_overhead=2e-7,
    task_overhead=1.5e-7,
    injection_bandwidth=1.5e9,
    ejection_bandwidth=1.5e9,
    bw_intra_node=6e9,
    bw_intra_group=2.0e9,
    bw_inter_group=1.5e9,
    flop_rate=8e9,
)

def timing_network(jitter_sigma: float = 0.2) -> NetworkConfig:
    return NetworkConfig(jitter_sigma=jitter_sigma, **TIMING_NET)


def default_scale() -> str:
    """The workload scale implied by ``REPRO_BENCH_SCALE``."""
    return "small" if SCALE == "quick" else "medium"


def get_problem(
    workload: str, scale: str | None = None, *, max_supernode: int = 8
) -> AnalyzedProblem:
    """Memoized workload generation + symbolic analysis."""
    return _cache.get_problem(workload, scale or default_scale(), max_supernode)


def _problem_key(prob: AnalyzedProblem) -> tuple | None:
    """The ``(workload, scale, max_supernode)`` key ``prob`` was memoized
    under, or None for problems not created by :func:`get_problem`.

    O(1): the runner cache keeps an ``id(problem) -> key`` reverse map
    stamped at insertion (cached problems are never evicted, so the id
    stays valid), instead of scanning the whole cache per lookup.
    """
    return _cache.problem_key_of(prob)


def get_plans(prob: AnalyzedProblem, grid: ProcessorGrid) -> list:
    """Memoized communication plans per (problem, grid).

    Keyed on ``(workload, scale, max_supernode, pr, pc)`` -- NOT on
    ``id(prob)`` alone, which the allocator can reuse after garbage
    collection and silently serve plans for the wrong problem.  Problems
    that did not come from :func:`get_problem` are computed fresh,
    uncached.
    """
    return _cache.get_plans(prob, grid)


def progress_printer(prefix: str):
    """A runner progress callback printing per-item elapsed-time lines."""

    def progress(done: int, total: int, item, result, elapsed: float) -> None:
        name = item.describe() if hasattr(item, "describe") else str(item)
        print(
            f"  [{prefix} {done}/{total}] {name}  ({elapsed:.1f}s elapsed)",
            file=sys.stderr,
        )

    return progress


def volume_grid() -> ProcessorGrid:
    """Grid used by the volume studies (Table I / Figs. 4-7)."""
    return ProcessorGrid(8, 8) if SCALE == "quick" else ProcessorGrid(24, 24)


def scaling_processor_counts() -> list[int]:
    """Square-grid sides for the strong-scaling sweep (Fig. 8)."""
    if SCALE == "quick":
        return [4, 8, 16, 23, 32]
    return [8, 16, 24, 32, 46]


def emit(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def record_throughput(
    name: str,
    *,
    wall_seconds: float,
    events: int | None = None,
    extra: dict | None = None,
) -> str:
    """Record a benchmark's DES event count and wall-clock throughput.

    Every ``bench_*.py`` funnels through here so the BENCH_* artifacts
    carry comparable numbers: the entry is merged into
    ``results/BENCH_throughput.json`` (keyed by benchmark name) and the
    returned note line is appended to the benchmark's txt report.
    Analytic benchmarks (no simulator) pass ``events=None``.
    """
    events_per_sec = None
    if events is not None and wall_seconds > 0:
        events_per_sec = round(events / wall_seconds, 1)
    entry = {
        "bench": name,
        "scale": SCALE,
        "wall_seconds": round(wall_seconds, 4),
        "events": None if events is None else int(events),
        "events_per_sec": events_per_sec,
    }
    if extra:
        entry.update(extra)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_throughput.json"
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            data = {}
    if not isinstance(data, dict):
        data = {}
    data[name] = entry
    path.write_text(json.dumps(dict(sorted(data.items())), indent=2) + "\n")
    if events is None:
        return (
            f"[throughput] {name}: analytic (no DES events), "
            f"wall {wall_seconds:.2f}s"
        )
    return (
        f"[throughput] {name}: {int(events):,} DES events in "
        f"{wall_seconds:.2f}s -> {events_per_sec:,.0f} events/s"
    )


def fmt_mb(x: float) -> str:
    return f"{x:.3f}"


def paper_note(lines: list[str]) -> str:
    """Format the paper's reference numbers as an indented footnote."""
    return "\n".join("  [paper] " + line for line in lines)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
