"""Scheduler microbenchmark: calendar-queue batch engine vs binary heap.

Pure schedule/drain churn through :class:`repro.simulate.Simulator`
(heapq reference) and :class:`repro.simulate.BatchSimulator` (calendar
queue + handler table), with no machine, network, or protocol on top --
this isolates the event-loop cost the batch-dispatch PR targets.

Three traffic shapes bracket the design space:

* ``convergent`` -- hop times snap to a microsecond grid with thousands
  of events in flight, so many events collide on identical timestamps
  and drain as batches.  This is the shape of collective traffic (the
  audikw_1 reference run drains ~31 events per batch on average), and
  where the calendar queue wins: one bucket pop replaces dozens of
  heap sift-downs.
* ``sparse`` -- sub-bucket hop deltas with only 64 events in flight:
  single-event buckets, frequent in-bucket insorts, shallow heap.  The
  worst case for batching, reported so the trade-off stays visible
  (the heap's O(log 64) is tiny; the calendar pays its bucket
  bookkeeping for nothing).
* ``collective`` -- handler-inclusive: overlapping binary-tree
  broadcast waves where every delivery runs a real forwarding handler
  (child-index arithmetic + two downstream schedules), the event mix of
  the PSelInv collectives.  Run on all three engines -- heapq,
  calendar-queue batch, and :class:`repro.simulate.VecSimulator` (the
  vectorized engine's loop with its run-scan for batchable slices) --
  with the vec run's per-bucket occupancy summary recorded so the
  scheduler-vs-handler split is measured, not inferred.

All engines consume an identical precomputed delta stream, so they
execute the same virtual schedule; each run asserts the engines agree
on the event count and final virtual time before timing is recorded.
Results land in ``results/BENCH_throughput.json``.
"""

from __future__ import annotations

from time import perf_counter

from _harness import emit, record_throughput, run_once

from repro.analysis import Table
from repro.simulate import BatchSimulator, Simulator, VecSimulator

# Events per measured drain (small enough for the quick tier; the
# per-event cost is flat in N well before this point).
N_EVENTS = 200_000
_PAIRS = 3  # alternated measurement pairs; best-of is reported


def _delta_stream(shape: str, n: int) -> list[float]:
    """Deterministic hop-time stream (LCG; no RNG state at run time)."""
    deltas = []
    x = 123456789
    for _ in range(n):
        x = (1103515245 * x + 12345) % (1 << 31)
        if shape == "convergent":
            # 1-8 us, snapped to the microsecond grid: heavy timestamp
            # collision across the in-flight population.
            deltas.append((1 + x % 8) * 1e-6)
        else:
            # 0-1 us continuous: almost never collides, often lands in
            # the bucket currently draining.
            deltas.append((x % 1000) * 1e-9)
    return deltas


def _shape_actors(shape: str) -> int:
    return 8192 if shape == "convergent" else 64


def _run_legacy(shape: str) -> tuple[float, int, float]:
    deltas = _delta_stream(shape, N_EVENTS + _shape_actors(shape))
    sim = Simulator()
    it = iter(deltas)
    left = [N_EVENTS]

    def hop(_):
        if left[0] > 0:
            left[0] -= 1
            sim.schedule_at(sim.now + next(it), hop, None)

    for _ in range(_shape_actors(shape)):
        sim.schedule_at(next(it), hop, None)
    t0 = perf_counter()
    end = sim.run()
    return perf_counter() - t0, sim.events_processed, end


def _run_batch(shape: str) -> tuple[float, int, float]:
    deltas = _delta_stream(shape, N_EVENTS + _shape_actors(shape))
    sim = BatchSimulator()
    it = iter(deltas)
    left = [N_EVENTS]

    def hop(_):
        if left[0] > 0:
            left[0] -= 1
            sim.schedule_msg(sim.now + next(it), hid, None)

    hid = sim.register_handler(hop)
    for _ in range(_shape_actors(shape)):
        sim.schedule_msg(next(it), hid, None)
    t0 = perf_counter()
    end = sim.run()
    return perf_counter() - t0, sim.events_processed, end


# Collective shape: _WAVES overlapping binary-tree broadcasts over
# _TREE_RANKS positions; every delivery runs the forwarding handler.
_TREE_RANKS = 4096
_WAVES = 50


def _hop_delta(wave: int, pos: int) -> float:
    """Deterministic per-edge hop time, 1-8 us on the microsecond grid."""
    x = (1103515245 * (wave * _TREE_RANKS + pos) + 12345) % (1 << 31)
    return (1 + x % 8) * 1e-6


def _run_collective_legacy() -> tuple[float, int, float]:
    sim = Simulator()

    def deliver(arg):
        wave, pos = arg
        now = sim.now
        c = 2 * pos + 1
        if c < _TREE_RANKS:
            sim.schedule_at(now + _hop_delta(wave, c), deliver, (wave, c))
        c += 1
        if c < _TREE_RANKS:
            sim.schedule_at(now + _hop_delta(wave, c), deliver, (wave, c))

    for wave in range(_WAVES):
        sim.schedule_at(wave * 64e-6 + _hop_delta(wave, 0), deliver, (wave, 0))
    t0 = perf_counter()
    end = sim.run()
    return perf_counter() - t0, sim.events_processed, end


def _run_collective_bucketed(sim_cls) -> tuple[float, int, float, object]:
    sim = sim_cls()

    def deliver(arg):
        wave, pos = arg
        now = sim.now
        c = 2 * pos + 1
        if c < _TREE_RANKS:
            sim.schedule_msg(now + _hop_delta(wave, c), hid, (wave, c))
        c += 1
        if c < _TREE_RANKS:
            sim.schedule_msg(now + _hop_delta(wave, c), hid, (wave, c))

    hid = sim.register_handler(deliver)
    for wave in range(_WAVES):
        sim.schedule_msg(wave * 64e-6 + _hop_delta(wave, 0), hid, (wave, 0))
    t0 = perf_counter()
    end = sim.run()
    return perf_counter() - t0, sim.events_processed, end, sim


def _collective_case() -> dict:
    """Best-of alternated rounds of the handler-inclusive broadcast mix."""
    best = dict.fromkeys(("legacy", "batch", "vectorized"), float("inf"))
    occupancy = {}
    for _ in range(_PAIRS):
        dt_l, ev_l, end_l = _run_collective_legacy()
        dt_b, ev_b, end_b, _sim = _run_collective_bucketed(BatchSimulator)
        dt_v, ev_v, end_v, vsim = _run_collective_bucketed(VecSimulator)
        assert ev_l == ev_b == ev_v == _WAVES * _TREE_RANKS, (ev_l, ev_b, ev_v)
        assert end_l == end_b == end_v, (end_l, end_b, end_v)
        best["legacy"] = min(best["legacy"], dt_l)
        best["batch"] = min(best["batch"], dt_b)
        best["vectorized"] = min(best["vectorized"], dt_v)
        occupancy = vsim.occupancy_stats()
    events = _WAVES * _TREE_RANKS
    return dict(
        events=events,
        legacy_seconds=best["legacy"],
        batch_seconds=best["batch"],
        vectorized_seconds=best["vectorized"],
        legacy_events_per_sec=round(events / best["legacy"]),
        batch_events_per_sec=round(events / best["batch"]),
        vectorized_events_per_sec=round(events / best["vectorized"]),
        speedup=round(best["legacy"] / best["batch"], 3),
        vectorized_speedup=round(best["legacy"] / best["vectorized"], 3),
        occupancy={
            k: round(v, 3) if isinstance(v, float) else v
            for k, v in occupancy.items()
        },
    )


def test_event_loop_throughput(benchmark):
    def compute():
        out = {}
        for shape in ("convergent", "sparse"):
            best_l = best_b = float("inf")
            for _ in range(_PAIRS):
                dt_l, ev_l, end_l = _run_legacy(shape)
                dt_b, ev_b, end_b = _run_batch(shape)
                # Same schedule -> same count and same final clock.
                assert ev_l == ev_b and end_l == end_b, (shape, ev_l, ev_b)
                best_l = min(best_l, dt_l)
                best_b = min(best_b, dt_b)
            out[shape] = dict(
                events=ev_l,
                legacy_seconds=best_l,
                batch_seconds=best_b,
                legacy_events_per_sec=round(ev_l / best_l),
                batch_events_per_sec=round(ev_b / best_b),
                speedup=round(best_l / best_b, 3),
            )
        out["collective"] = _collective_case()
        return out

    results = run_once(benchmark, compute)

    table = Table(
        f"Event-loop churn (best of {_PAIRS} alternated rounds)",
        ["shape", "events", "legacy ev/s", "batch ev/s", "vec ev/s",
         "batch speedup"],
    )
    for shape, r in results.items():
        vec = r.get("vectorized_events_per_sec")
        table.add(
            shape,
            f"{r['events']:,}",
            f"{r['legacy_events_per_sec']:,}",
            f"{r['batch_events_per_sec']:,}",
            f"{vec:,}" if vec is not None else "-",
            f"{r['speedup']:.2f}x",
        )
    conv = results["convergent"]
    coll = results["collective"]
    occ = coll["occupancy"]
    note = record_throughput(
        "event_loop",
        wall_seconds=conv["batch_seconds"],
        events=conv["events"],
        extra={f"{s}_{k}": v for s, r in results.items()
               for k, v in r.items() if k != "events"},
    )
    occupancy_line = (
        "collective-shape bucket occupancy (vectorized engine): "
        f"{occ['buckets_drained']:,} buckets for {occ['events']:,} events, "
        f"mean {occ['mean_bucket_events']:.2f} events/bucket, "
        f"max {occ['max_bucket_events']}"
    )
    emit("event_loop", table.render() + "\n\n" + occupancy_line + "\n" + note)

    # The batch engine must win decisively on the traffic shape it was
    # built for; the sparse shape is informational (it is allowed to
    # lose there -- that is the documented trade-off).
    assert conv["speedup"] >= 1.3, conv
    # The vectorized loop's run-scan must stay in the noise next to the
    # plain batch loop when no slice handler fires (this shape registers
    # none) -- it is pure overhead here, budgeted at 25%.
    assert coll["vectorized_seconds"] <= coll["batch_seconds"] * 1.25, coll
