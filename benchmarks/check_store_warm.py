"""CI gate: a second identical sweep must be served from the result store.

Runs a small Fig. 8-shaped experiment sweep twice against a throwaway
store root (so CI caches never leak into or out of the check):

* the **cold** pass simulates every spec and populates the store;
* the **warm** pass must replay at least ``--min-hit-rate`` of its
  records from disk (default 95%) and produce bit-identical outcomes
  (``RunRecord.same_outcome``).

Store hit/miss tallies come from ``ParallelRunner``'s merged worker
stats, so the check exercises the cross-process stats shipping path
too, not just the store itself.  Exit status 0 on pass, 1 on failure::

    PYTHONPATH=../src:. python check_store_warm.py --jobs 2
"""

import argparse
import sys
import tempfile

from repro.runner import ExperimentSpec, ParallelRunner, store


def _specs():
    return [
        ExperimentSpec(
            "audikw_1",
            (4, 4),
            scheme,
            scale="tiny",
            jitter_seed=seed,
            label=f"{scheme}/j{seed}",
        )
        for scheme in ("flat", "binary", "shifted")
        for seed in (0, 1)
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-hit-rate",
        type=float,
        default=0.95,
        help="warm-pass store hit-rate floor (default: 0.95)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, help="worker processes (default: 2)"
    )
    args = parser.parse_args(argv)

    store.configure(
        enabled=True,
        refresh=False,
        directory=tempfile.mkdtemp(prefix="repro-store-smoke-"),
    )
    specs = _specs()

    cold_runner = ParallelRunner(args.jobs)
    cold = cold_runner.run(specs)
    warm_runner = ParallelRunner(args.jobs)
    warm = warm_runner.run(specs)

    hits = warm_runner.stats.get("store.hits", 0)
    misses = warm_runner.stats.get("store.misses", 0)
    rate = hits / (hits + misses) if hits + misses else 0.0
    identical = all(a.same_outcome(b) for a, b in zip(cold, warm))

    print(
        f"warm pass: {hits} store hit(s) / {misses} miss(es) "
        f"over {len(specs)} spec(s) -- hit rate {rate:.1%} "
        f"(floor {args.min_hit_rate:.0%}), bit-identical={identical}"
    )
    if rate < args.min_hit_rate:
        print(
            "warm-store gate FAILED: the re-run re-simulated instead of "
            "replaying from the store (spec hash unstable, store not "
            "consulted, or worker stats not shipped)",
            file=sys.stderr,
        )
        return 1
    if not identical:
        print(
            "warm-store gate FAILED: replayed records differ from the "
            "cold run",
            file=sys.stderr,
        )
        return 1
    print("warm-store gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
