"""Table I: volume sent during Col-Bcast for the audikw_1 proxy.

Paper (audikw_1, 46x46 grid, MB):

    Flat-Tree             min 28.99   max 69.49   median 40.80   std 8.25
    Binary-Tree           min  1.46   max 97.14   median 36.87   std 27.36
    Shifted Binary-Tree   min 33.64   max 54.10   median 42.63   std  3.33

Reproduction target: the *shape* -- Binary collapses the minimum and
blows up the maximum/std; Shifted raises the minimum, cuts the maximum,
and shrinks the std well below Flat's.
"""

from repro.analysis import Table
from repro.core import volume_summary
from repro.runner import VolumeSpec, run_experiments

from time import perf_counter

from _harness import (
    default_scale,
    emit,
    get_problem,
    paper_note,
    record_throughput,
    run_once,
    volume_grid,
)

SCHEMES = ["flat", "binary", "binomial", "shifted"]
PAPER = {
    "flat": (28.99, 69.49, 40.80, 8.25),
    "binary": (1.46, 97.14, 36.87, 27.36),
    "shifted": (33.64, 54.10, 42.63, 3.33),
}


def test_table1_colbcast_volume(benchmark):
    prob = get_problem("audikw_1")
    grid = volume_grid()
    specs = [
        VolumeSpec(
            "audikw_1",
            (grid.pr, grid.pc),
            scheme,
            scale=default_scale(),
            seed=20160523,
        )
        for scheme in SCHEMES
    ]

    def compute():
        return dict(zip(SCHEMES, run_experiments(specs)))

    t0 = perf_counter()
    reports = run_once(benchmark, compute)
    wall = perf_counter() - t0

    table = Table(
        f"Table I -- Col-Bcast sent volume (MB), audikw_1 proxy, "
        f"{grid.pr}x{grid.pc} grid, n={prob.n}, nsup={prob.struct.nsup}",
        ["scheme", "min", "max", "median", "std"],
    )
    stats = {}
    for scheme in SCHEMES:
        s = volume_summary(reports[scheme].col_bcast_sent())
        stats[scheme] = s
        table.add(scheme, s["min"], s["max"], s["median"], s["std"])
    note = paper_note(
        [
            f"{k}: min {v[0]} max {v[1]} median {v[2]} std {v[3]}"
            for k, v in PAPER.items()
        ]
        + ["binomial: not in the paper -- MPI's standard bcast tree, "
           "included as an extra baseline (binary-like pathology)"]
    )
    thr = record_throughput("table1_colbcast", wall_seconds=wall)
    emit("table1_colbcast", table.render() + "\n" + note + "\n" + thr)

    # The Table I shape must hold at any scale.
    assert stats["binary"]["min"] < stats["flat"]["min"]
    assert stats["binary"]["max"] > stats["flat"]["max"]
    assert stats["binary"]["std"] > stats["flat"]["std"]
    assert stats["shifted"]["min"] > stats["flat"]["min"]
    assert stats["shifted"]["max"] < stats["flat"]["max"]
    assert stats["shifted"]["std"] < stats["flat"]["std"]
