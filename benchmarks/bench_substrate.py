"""Library micro-benchmarks: the sparse substrate and the simulator.

Not paper figures -- these track the performance of the building blocks
(ordering, symbolic analysis, numeric factorization, sequential selected
inversion, tree construction, DES message throughput) so regressions in
the substrate are visible independently of the experiment harness.
Unlike the figure benches these use real repetition (pytest-benchmark's
adaptive rounds) since each operation is cheap.
"""

from time import perf_counter

import numpy as np
import pytest

from _harness import record_throughput

from repro.comm import build_tree
from repro.core import ProcessorGrid, SimulatedPSelInv, iter_plans
from repro.simulate import Machine, Network, NetworkConfig
from repro.sparse import (
    analyze,
    column_counts,
    elimination_tree,
    factorize,
    nested_dissection,
    minimum_degree,
    selinv_sequential,
)
from repro.sparse.selinv import normalize, selected_inversion
from repro.workloads import grid_laplacian_2d, grid_laplacian_3d


@pytest.fixture(scope="module")
def lap2d():
    return grid_laplacian_2d(24, 24, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def lap3d():
    return grid_laplacian_3d(8, 8, 8, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def analyzed(lap2d):
    return analyze(lap2d, ordering="nd")


class TestOrderingThroughput:
    def test_nested_dissection_2d(self, benchmark, lap2d):
        from repro.sparse import symmetrize_pattern

        sym = symmetrize_pattern(lap2d)
        perm = benchmark.pedantic(
            nested_dissection, args=(sym,), rounds=3, iterations=1
        )
        assert len(perm) == lap2d.n

    def test_minimum_degree_2d(self, benchmark, lap2d):
        from repro.sparse import symmetrize_pattern

        sym = symmetrize_pattern(lap2d)
        perm = benchmark.pedantic(
            minimum_degree, args=(sym,), rounds=3, iterations=1
        )
        assert len(perm) == lap2d.n


class TestSymbolicThroughput:
    def test_elimination_tree(self, benchmark, analyzed):
        parent = benchmark(elimination_tree, analyzed.matrix)
        assert len(parent) == analyzed.n

    def test_column_counts(self, benchmark, analyzed):
        counts = benchmark(column_counts, analyzed.matrix, analyzed.parent)
        assert counts.sum() == analyzed.struct.factor_nnz() or counts.sum() > 0


class TestNumericThroughput:
    def test_factorize(self, benchmark, analyzed):
        fac = benchmark.pedantic(
            factorize, args=(analyzed.matrix, analyzed.struct),
            rounds=3, iterations=1,
        )
        assert fac.nsup == analyzed.struct.nsup

    def test_selected_inversion(self, benchmark, analyzed):
        def run():
            fac = factorize(analyzed.matrix, analyzed.struct)
            normalize(fac)
            return selected_inversion(fac)

        inv = benchmark.pedantic(run, rounds=3, iterations=1)
        assert inv.struct is analyzed.struct

    def test_selinv_3d(self, benchmark, lap3d):
        prob = analyze(lap3d, ordering="nd")
        _, inv = benchmark.pedantic(
            selinv_sequential, args=(prob,), rounds=2, iterations=1
        )
        assert inv.struct is prob.struct


class TestCommThroughput:
    def test_shifted_tree_construction(self, benchmark):
        participants = set(range(0, 2048, 2))

        def build():
            return build_tree("shifted", 0, participants, seed=7)

        tree = benchmark(build)
        assert tree.size == 1024

    def test_des_message_throughput(self, benchmark):
        """Raw machine throughput: 10k point-to-point messages."""
        tally = {"events": 0}

        def run():
            m = Machine(64, Network(64, NetworkConfig()))
            for r in range(64):
                m.set_handler(r, lambda msg: None)
            rng = np.random.default_rng(0)
            src = rng.integers(0, 64, 10_000)
            dst = rng.integers(0, 64, 10_000)
            for s, d in zip(src, dst):
                m.post_send(int(s), int(d), "t", 1024, "x")
            makespan = m.run()
            tally["events"] += m.sim.events_processed
            return makespan

        t0 = perf_counter()
        makespan = benchmark.pedantic(run, rounds=3, iterations=1)
        wall = perf_counter() - t0
        print(record_throughput(
            "substrate_des_messages", wall_seconds=wall, events=tally["events"]
        ))
        assert makespan > 0

    def test_pselinv_symbolic_throughput(self, benchmark, analyzed):
        grid = ProcessorGrid(8, 8)
        plans = list(iter_plans(analyzed.struct, grid))
        tally = {"events": 0}

        def run():
            res = SimulatedPSelInv(
                analyzed.struct, grid, "shifted", plans=plans, lookahead=4
            ).run()
            tally["events"] += res.events
            return res

        t0 = perf_counter()
        res = benchmark.pedantic(run, rounds=3, iterations=1)
        wall = perf_counter() - t0
        print(record_throughput(
            "substrate_pselinv_symbolic", wall_seconds=wall,
            events=tally["events"]
        ))
        assert res.makespan > 0


class TestPlanThroughput:
    def test_plan_enumeration(self, benchmark, analyzed):
        grid = ProcessorGrid(16, 16)
        plans = benchmark.pedantic(
            lambda: list(iter_plans(analyzed.struct, grid)),
            rounds=3, iterations=1,
        )
        assert len(plans) == analyzed.struct.nsup
