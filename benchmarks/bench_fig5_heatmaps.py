"""Fig. 5: Col-Bcast communication-volume heat maps on the processor grid.

Paper shapes: (a) Flat-Tree concentrates volume near the grid diagonal
(diagonal-block broadcast roots) with strong variation; (b) Binary-Tree
shows regular stripes perpendicular to the broadcast direction (the
always-chosen internal ranks); (c) Shifted Binary-Tree is uniformly
"cool" on the same colour scale as (a).
"""

from repro.analysis import (
    diagonal_concentration,
    render_ascii,
    stripe_score,
    uniformity,
)
from repro.core import communication_volumes

from time import perf_counter

from _harness import (
    emit,
    get_plans,
    get_problem,
    record_throughput,
    run_once,
    volume_grid,
)

SCHEMES = ["flat", "binary", "shifted"]


def test_fig5_colbcast_heatmaps(benchmark):
    prob = get_problem("audikw_1")
    grid = volume_grid()
    plans = get_plans(prob, grid)

    def compute():
        return {
            s: communication_volumes(
                prob.struct, grid, s, seed=20160523, plans=plans
            ).heatmap("col-bcast-total")
            for s in SCHEMES
        }

    t0 = perf_counter()
    maps = run_once(benchmark, compute)
    wall = perf_counter() - t0

    # Shared colour scale between flat and shifted, as in the paper.
    vmax = max(maps["flat"].max(), maps["shifted"].max())
    sections = [
        f"Fig. 5 -- Col-Bcast heat maps, audikw_1 proxy, "
        f"{grid.pr}x{grid.pc} grid (darker = more bytes sent)"
    ]
    metrics = {}
    for s in SCHEMES:
        metrics[s] = dict(
            diag=diagonal_concentration(maps[s]),
            stripes=stripe_score(maps[s], axis=0),
            cv=uniformity(maps[s]),
        )
        sections.append(
            f"\n[{s}] diag-concentration={metrics[s]['diag']:.2f} "
            f"stripe-score={metrics[s]['stripes']:.2f} "
            f"coeff-of-variation={metrics[s]['cv']:.3f}"
        )
        sections.append(render_ascii(maps[s], vmax=vmax if s != "binary" else None))
    sections.append(record_throughput("fig5_heatmaps", wall_seconds=wall))
    emit("fig5_heatmaps", "\n".join(sections))

    assert metrics["flat"]["diag"] > metrics["shifted"]["diag"]
    assert metrics["binary"]["stripes"] > 2 * metrics["shifted"]["stripes"]
    assert metrics["shifted"]["cv"] < metrics["flat"]["cv"] < metrics["binary"]["cv"]
