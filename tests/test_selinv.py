"""Tests for sequential selected inversion (the Algorithm 1 oracle)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import analyze, from_dense, selinv_sequential
from repro.sparse.factor import factorize
from repro.sparse.selinv import gather_ainv_cc, normalize, selected_inversion
from repro.workloads import grid_laplacian_2d
from tests.conftest import random_symmetric_dense, random_unsymmetric_dense


def check_against_dense(prob, inv, *, tol=1e-9):
    dense_inv = np.linalg.inv(prob.matrix.to_dense())
    rr, cc = inv.stored_positions()
    got = inv.to_dense_at_structure()[rr, cc]
    want = dense_inv[rr, cc]
    err = np.abs(got - want).max()
    assert err < tol, f"max error {err}"


class TestSelectedInversionOracle:
    @pytest.mark.parametrize("ordering", ["amd", "nd", "rcm", "natural"])
    def test_symmetric_all_orderings(self, ordering, rng):
        a = random_symmetric_dense(45, 3.5, rng)
        prob = analyze(from_dense(a), ordering=ordering, validate=True)
        _, inv = selinv_sequential(prob)
        check_against_dense(prob, inv)

    def test_unsymmetric(self, rng):
        a = random_unsymmetric_dense(50, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        _, inv = selinv_sequential(prob)
        check_against_dense(prob, inv)

    def test_2d_laplacian(self):
        prob = analyze(grid_laplacian_2d(7, 7), ordering="nd")
        _, inv = selinv_sequential(prob)
        check_against_dense(prob, inv)

    def test_tridiagonal(self):
        n = 20
        a = np.eye(n) * 4 + np.eye(n, k=1) + np.eye(n, k=-1)
        prob = analyze(from_dense(a), ordering="natural")
        _, inv = selinv_sequential(prob)
        check_against_dense(prob, inv)

    def test_diagonal_matrix(self):
        prob = analyze(from_dense(np.diag([2.0, 4.0, 8.0])), ordering="natural")
        _, inv = selinv_sequential(prob)
        np.testing.assert_allclose(
            np.diag(inv.to_dense_at_structure()), [0.5, 0.25, 0.125]
        )

    def test_dense_matrix(self, rng):
        a = rng.normal(size=(12, 12))
        a = a @ a.T + 12 * np.eye(12)
        prob = analyze(from_dense(a), ordering="natural")
        _, inv = selinv_sequential(prob)
        check_against_dense(prob, inv)

    def test_symmetric_inverse_is_symmetric(self, rng):
        a = random_symmetric_dense(30, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        _, inv = selinv_sequential(prob)
        d = inv.to_dense_at_structure()
        np.testing.assert_allclose(d, d.T, atol=1e-10)

    def test_relaxed_vs_unrelaxed_agree(self, rng):
        a = random_symmetric_dense(40, 3.0, rng)
        m = from_dense(a)
        p1 = analyze(m, ordering="amd", relax=True)
        p2 = analyze(m, ordering="amd", relax=False)
        _, i1 = selinv_sequential(p1)
        _, i2 = selinv_sequential(p2)
        # Where both store entries, values agree (both are exact).
        d1, d2 = i1.to_dense_at_structure(), i2.to_dense_at_structure()
        rr, cc = i2.stored_positions()
        np.testing.assert_allclose(d1[rr, cc], d2[rr, cc], atol=1e-9)


class TestEntryAccess:
    def test_entry_matches_dense(self, rng):
        a = random_symmetric_dense(25, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        _, inv = selinv_sequential(prob)
        dense_inv = np.linalg.inv(prob.matrix.to_dense())
        rr, cc = inv.stored_positions()
        for i, j in list(zip(rr, cc))[::17]:
            assert abs(inv.entry(int(i), int(j)) - dense_inv[i, j]) < 1e-9

    def test_entry_outside_structure_raises(self):
        n = 14
        a = np.eye(n) * 4 + np.eye(n, k=1) + np.eye(n, k=-1)
        prob = analyze(from_dense(a), ordering="natural")
        _, inv = selinv_sequential(prob)
        with pytest.raises(KeyError):
            inv.entry(0, n - 1)


class TestGather:
    def test_gather_matches_dense_inverse(self, rng):
        a = random_symmetric_dense(35, 4.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        fac = factorize(prob.matrix, prob.struct)
        normalize(fac)
        inv = selected_inversion(fac)
        dense_inv = np.linalg.inv(prob.matrix.to_dense())
        for k in range(prob.struct.nsup):
            rows = prob.struct.rows_below[k]
            if len(rows) == 0:
                continue
            g = gather_ainv_cc(inv, rows)
            np.testing.assert_allclose(
                g, dense_inv[np.ix_(rows, rows)], atol=1e-9
            )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=25), st.integers(0, 2**31 - 1))
def test_selinv_oracle_property(n, seed):
    """Selected inversion equals the dense inverse at every stored
    position, for random symmetric diagonally dominant matrices."""
    rng = np.random.default_rng(seed)
    a = random_symmetric_dense(n, 2.5, rng)
    prob = analyze(from_dense(a), ordering="amd")
    _, inv = selinv_sequential(prob)
    dense_inv = np.linalg.inv(prob.matrix.to_dense())
    rr, cc = inv.stored_positions()
    err = np.abs(inv.to_dense_at_structure()[rr, cc] - dense_inv[rr, cc]).max()
    assert err < 1e-8
