"""Property-based tests of the simulated machine's global invariants.

Random message storms must preserve: byte conservation (everything sent
is received), per-channel FIFO order, causality (no event before its
cause), and determinism (same seed, same trace).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulate import Machine, Network, NetworkConfig


def storm(machine, sends):
    """Post a batch of (src, dst, size) sends; returns delivery log."""
    log = []
    for r in range(machine.nranks):
        machine.set_handler(
            r, lambda msg, r=r: log.append((msg.src, r, msg.tag, machine.now))
        )
    for t, (s, d, b) in enumerate(sends):
        machine.post_send(s, d, t, b, "storm")
    machine.run()
    return log


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 7), st.integers(0, 7), st.integers(1, 10**6)
        ),
        min_size=1,
        max_size=60,
    ),
    st.integers(0, 2**31 - 1),
)
def test_conservation_and_fifo_property(sends, seed):
    cfg = NetworkConfig(jitter_sigma=0.3, cores_per_node=2, nodes_per_group=2)
    m = Machine(8, Network(8, cfg, jitter_seed=seed))
    log = storm(m, sends)
    # Every message is delivered exactly once.
    assert len(log) == len(sends)
    delivered_tags = sorted(tag for _, _, tag, _ in log)
    assert delivered_tags == list(range(len(sends)))
    # Byte conservation per category.
    total = sum(b for s, d, b in sends if s != d)
    assert m.stats.total_sent().sum() == total
    assert m.stats.total_received().sum() == total
    # FIFO per (src, dst): delivery order respects posting order.
    per_channel: dict = {}
    for src, dst, tag, t in log:
        per_channel.setdefault((src, dst), []).append(tag)
    for chan, tags in per_channel.items():
        assert tags == sorted(tags), f"channel {chan} reordered: {tags}"
    # Causality: all delivery times nonnegative and finite.
    for _, _, _, t in log:
        assert 0 <= t < np.inf


@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 10**5)),
        min_size=1,
        max_size=30,
    ),
    st.integers(0, 2**31 - 1),
)
def test_determinism_property(sends, seed):
    def trace():
        cfg = NetworkConfig(jitter_sigma=0.25, cores_per_node=2)
        m = Machine(6, Network(6, cfg, jitter_seed=seed))
        return tuple(tuple(e) for e in storm(m, sends))

    assert trace() == trace()


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 64), st.integers(1, 10**7))
def test_broadcast_reaches_everyone_property(nranks, nbytes):
    """A shifted-tree broadcast over random machine sizes delivers to all
    participants, with total traffic (p-1) * nbytes."""
    from repro.comm import TreeBroadcast, build_tree

    m = Machine(nranks, Network(nranks, NetworkConfig()))
    participants = set(range(nranks))
    tree = build_tree("shifted", nranks // 2, participants, seed=nbytes)
    got = set()
    bc = TreeBroadcast(
        m, tree, "b", nbytes, "x", lambda rank, payload: got.add(rank)
    )
    for r in range(nranks):
        m.set_handler(r, lambda msg: bc.on_message(msg))
    bc.start()
    m.run()
    assert got == participants
    assert m.stats.total_sent().sum() == (nranks - 1) * nbytes


def test_compute_busy_never_exceeds_makespan():
    # Note: a compute task only advances the clock when it has a
    # completion callback (fireless tasks merely occupy the CPU clock for
    # later tasks), so give each task a no-op continuation.
    m = Machine(4, Network(4, NetworkConfig()))
    rng = np.random.default_rng(0)
    for _ in range(50):
        m.post_compute(
            int(rng.integers(0, 4)), float(rng.random()) * 1e-3, lambda: None
        )
    end = m.run()
    assert (m.stats.compute_busy <= end + 1e-12).all()
