"""Tests for the 2D processor grid and the communication plan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BYTES_PER_ENTRY,
    ProcessorGrid,
    iter_plans,
    square_grids,
    supernode_plan,
)
from repro.sparse import analyze, from_dense
from tests.conftest import random_symmetric_dense


class TestProcessorGrid:
    def test_rank_coords_roundtrip(self):
        g = ProcessorGrid(4, 3)
        for r in range(g.size):
            row, col = g.coords(r)
            assert g.rank(row, col) == r

    def test_row_major_numbering(self):
        # Fig. 1(a): ranks walk along grid rows.
        g = ProcessorGrid(4, 3)
        assert g.rank(0, 0) == 0
        assert g.rank(0, 2) == 2
        assert g.rank(1, 0) == 3

    def test_block_cyclic_owner(self):
        g = ProcessorGrid(2, 3)
        assert g.owner(0, 0) == 0
        assert g.owner(2, 3) == g.owner(0, 0)
        assert g.owner(1, 4) == g.rank(1, 1)

    def test_row_and_col_groups(self):
        g = ProcessorGrid(3, 4)
        assert np.array_equal(g.row_ranks(1), [4, 5, 6, 7])
        assert np.array_equal(g.col_ranks(2), [2, 6, 10])

    def test_heatmap_reshape(self):
        g = ProcessorGrid(2, 3)
        hm = g.volume_heatmap(np.arange(6))
        assert hm.shape == (2, 3)
        assert hm[1, 2] == 5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ProcessorGrid(0, 3)
        g = ProcessorGrid(2, 2)
        with pytest.raises(ValueError):
            g.rank(2, 0)
        with pytest.raises(ValueError):
            g.coords(4)
        with pytest.raises(ValueError):
            g.volume_heatmap(np.zeros(3))

    def test_square_grids(self):
        grids = square_grids(150)
        assert [g.size for g in grids] == [1, 4, 9, 16, 25, 36, 49, 64, 81, 100, 121, 144]


@pytest.fixture(scope="module")
def plan_problem():
    rng = np.random.default_rng(99)
    a = random_symmetric_dense(70, 4.0, rng)
    return analyze(from_dense(a), ordering="amd")


class TestSupernodePlan:
    def test_plan_covers_every_supernode(self, plan_problem):
        grid = ProcessorGrid(3, 3)
        plans = list(iter_plans(plan_problem.struct, grid))
        assert len(plans) == plan_problem.struct.nsup
        assert [p.k for p in plans] == list(range(plan_problem.struct.nsup))

    def test_block_sizes_match_structure(self, plan_problem):
        struct = plan_problem.struct
        grid = ProcessorGrid(2, 3)
        for plan in iter_plans(struct, grid):
            for b in plan.blocks:
                assert b.nrows == struct.block_row_count(plan.k, b.snode)
                assert b.nrows > 0

    def test_colbcast_roots_and_participants(self, plan_problem):
        struct = plan_problem.struct
        grid = ProcessorGrid(3, 2)
        for plan in iter_plans(struct, grid):
            k = plan.k
            c_rows = {b.snode % grid.pr for b in plan.blocks}
            for spec in plan.col_bcasts:
                i = spec.key[2]
                # Root owns U(K, I).
                assert spec.root == grid.owner(k, i)
                # All participants sit in grid column i mod pc.
                for r in spec.participants:
                    _, col = grid.coords(r)
                    assert col == i % grid.pc
                # Participants are exactly the Ainv block owners + root.
                want = {grid.rank(jr, i % grid.pc) for jr in c_rows}
                want.add(spec.root)
                assert set(spec.participants) == want

    def test_rowreduce_roots_and_participants(self, plan_problem):
        struct = plan_problem.struct
        grid = ProcessorGrid(3, 2)
        for plan in iter_plans(struct, grid):
            k = plan.k
            c_cols = {b.snode % grid.pc for b in plan.blocks}
            for spec in plan.row_reduces:
                j = spec.key[2]
                assert spec.root == grid.owner(j, k)
                for r in spec.participants:
                    row, _ = grid.coords(r)
                    assert row == j % grid.pr
                want = {grid.rank(j % grid.pr, c) for c in c_cols}
                want.add(spec.root)
                assert set(spec.participants) == want

    def test_message_sizes(self, plan_problem):
        struct = plan_problem.struct
        grid = ProcessorGrid(2, 2)
        for plan in iter_plans(struct, grid):
            s = plan.width
            for spec in plan.col_bcasts:
                i = spec.key[2]
                ri = struct.block_row_count(plan.k, i)
                assert spec.nbytes == s * ri * BYTES_PER_ENTRY
            if plan.diag_bcast is not None:
                assert plan.diag_bcast.nbytes == s * s * BYTES_PER_ENTRY

    def test_cross_send_endpoints(self, plan_problem):
        struct = plan_problem.struct
        grid = ProcessorGrid(3, 3)
        for plan in iter_plans(struct, grid):
            k = plan.k
            for p2p in plan.cross_sends:
                i = p2p.key[2]
                assert p2p.src == grid.owner(i, k)  # L(I,K) owner
                assert p2p.dst == grid.owner(k, i)  # U(K,I) owner

    def test_empty_supernode_plan(self, plan_problem):
        struct = plan_problem.struct
        grid = ProcessorGrid(2, 2)
        last = supernode_plan(struct, grid, struct.nsup - 1)
        # The final (root) supernode has no ancestors.
        assert last.blocks == []
        assert last.diag_bcast is None
        assert last.col_reduce is None

    def test_single_rank_grid(self, plan_problem):
        # On a 1x1 grid every collective degenerates to one rank.
        struct = plan_problem.struct
        grid = ProcessorGrid(1, 1)
        for plan in iter_plans(struct, grid):
            for spec in plan.collectives():
                assert spec.participants == (0,)


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(0, 2**31 - 1),
)
def test_plan_participants_within_grid_property(pr, pc, seed):
    rng = np.random.default_rng(seed)
    a = random_symmetric_dense(30, 3.0, rng)
    prob = analyze(from_dense(a), ordering="amd")
    grid = ProcessorGrid(pr, pc)
    for plan in iter_plans(prob.struct, grid):
        for spec in plan.collectives():
            assert all(0 <= r < grid.size for r in spec.participants)
            assert spec.root in spec.participants
            assert spec.nbytes > 0
