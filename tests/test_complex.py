"""Complex symmetric matrices: the PEXSI pole case.

PEXSI feeds PSelInv matrices of the form ``H - z S`` with complex ``z``:
complex *symmetric*, not Hermitian.  All kernels here use transposes
without conjugation, so the same code path handles them; these tests pin
that end to end (sequential oracle, distributed protocol, byte
accounting at 16 bytes/entry).
"""

import numpy as np
import pytest

from repro.core import BYTES_PER_ENTRY, ProcessorGrid, SimulatedPSelInv, iter_plans
from repro.sparse import analyze, from_dense, selinv_sequential
from repro.sparse.factor import factorize
from repro.sparse.selinv import normalize, selected_inversion


def random_complex_symmetric(n, nnz_factor, rng):
    a = np.zeros((n, n), dtype=complex)
    for _ in range(int(nnz_factor * n)):
        i, j = rng.integers(0, n, 2)
        v = rng.normal() + 1j * rng.normal()
        a[i, j] += v
        a[j, i] += v
    a += np.diag(np.abs(a).sum(axis=1) + 1.0 + 0.5j)
    return a


@pytest.fixture(scope="module")
def complex_problem():
    rng = np.random.default_rng(11)
    a = random_complex_symmetric(50, 3.5, rng)
    prob = analyze(from_dense(a), ordering="amd")
    return prob


class TestSequentialComplex:
    def test_oracle_matches_dense_inverse(self, complex_problem):
        prob = complex_problem
        _, inv = selinv_sequential(prob)
        dense_inv = np.linalg.inv(prob.matrix.to_dense())
        rr, cc = inv.stored_positions()
        err = np.abs(
            inv.to_dense_at_structure()[rr, cc] - dense_inv[rr, cc]
        ).max()
        assert err < 1e-9

    def test_inverse_is_complex_symmetric(self, complex_problem):
        _, inv = selinv_sequential(complex_problem)
        d = inv.to_dense_at_structure()
        np.testing.assert_allclose(d, d.T, atol=1e-10)  # transpose, no conj

    def test_factor_satisfies_lu(self, complex_problem):
        prob = complex_problem
        fac = factorize(prob.matrix, prob.struct)
        L, U = fac.unpack_dense()
        assert np.abs(L @ U - prob.matrix.to_dense()).max() < 1e-9

    def test_resolvent_trace_against_eigendecomposition(self):
        rng = np.random.default_rng(4)
        a = np.zeros((30, 30))
        for _ in range(90):
            i, j = rng.integers(0, 30, 2)
            v = rng.normal()
            a[i, j] += v
            a[j, i] += v
        a += np.diag(np.abs(a).sum(axis=1) + 1.0)
        z = 0.3 + 1.5j
        shifted = a - z * np.eye(30)
        prob = analyze(from_dense(shifted), ordering="amd")
        _, inv = selinv_sequential(prob)
        trace = sum(inv.entry(i, i) for i in range(30))
        eig = np.linalg.eigvalsh(a)
        exact = np.sum(1.0 / (eig - z))
        assert abs(trace - exact) < 1e-9


class TestParallelComplex:
    @pytest.mark.parametrize("scheme", ["flat", "shifted"])
    def test_distributed_matches_sequential(self, complex_problem, scheme):
        prob = complex_problem
        fac_seq = factorize(prob.matrix, prob.struct)
        normalize(fac_seq)
        want = selected_inversion(fac_seq).to_dense_at_structure()
        raw = factorize(prob.matrix, prob.struct)
        res = SimulatedPSelInv(
            prob.struct, ProcessorGrid(3, 3), scheme, factor=raw, seed=5
        ).run()
        got = res.inverse.to_dense_at_structure()
        assert np.abs(got - want).max() < 1e-9

    def test_complex_payloads_count_sixteen_bytes(self, complex_problem):
        prob = complex_problem
        grid = ProcessorGrid(3, 3)
        raw = factorize(prob.matrix, prob.struct)
        res_c = SimulatedPSelInv(prob.struct, grid, "flat", factor=raw).run()
        res_r = SimulatedPSelInv(prob.struct, grid, "flat").run()  # symbolic: real
        np.testing.assert_allclose(
            res_c.stats.total_sent(), 2 * res_r.stats.total_sent()
        )

    def test_explicit_bytes_per_entry_plans(self, complex_problem):
        prob = complex_problem
        grid = ProcessorGrid(2, 2)
        plans8 = list(iter_plans(prob.struct, grid))
        plans16 = list(
            iter_plans(prob.struct, grid, bytes_per_entry=2 * BYTES_PER_ENTRY)
        )
        for p8, p16 in zip(plans8, plans16):
            for s8, s16 in zip(p8.collectives(), p16.collectives()):
                assert s16.nbytes == 2 * s8.nbytes
