"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["volumes"])
        assert args.workload == "audikw_1"
        assert args.grid == 8

    def test_overrides(self):
        args = build_parser().parse_args(
            ["heatmap", "DG_PNF14000", "-g", "12", "--scale", "tiny"]
        )
        assert args.workload == "DG_PNF14000"
        assert args.grid == 12
        assert args.scale == "tiny"


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "audikw_1" in out and "DG_PNF14000" in out

    def test_analyze_tiny(self, capsys):
        assert main(["analyze", "audikw_1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "nnz_lu" in out

    def test_volumes_tiny(self, capsys):
        assert main(
            ["volumes", "audikw_1", "--scale", "tiny", "-g", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "shifted" in out

    def test_heatmap_tiny(self, capsys):
        assert main(
            ["heatmap", "audikw_1", "--scale", "tiny", "-g", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "[binary]" in out

    def test_selinv(self, capsys):
        assert main(["selinv"]) == 0
        out = capsys.readouterr().out
        assert "max |err|" in out

    def test_scaling_minimal(self, capsys, tmp_path, monkeypatch):
        # Hermetic store: point at a throwaway dir so the test neither
        # reads nor pollutes the user's cache, and leave no env behind
        # (store.configure writes os.environ for pool workers).
        for var in ("REPRO_STORE", "REPRO_STORE_REFRESH", "REPRO_STORE_DIR"):
            monkeypatch.delenv(var, raising=False)
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        assert main(
            ["scaling", "audikw_1", "--scale", "tiny", "-g", "4", "-r", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup over flat" in out

    def test_scaling_warm_rerun_uses_store(self, capsys, tmp_path, monkeypatch):
        for var in ("REPRO_STORE", "REPRO_STORE_REFRESH", "REPRO_STORE_DIR"):
            monkeypatch.delenv(var, raising=False)
        argv = [
            "scaling", "audikw_1", "--scale", "tiny", "-g", "4", "-r", "1",
            "-j", "1", "--store-dir", str(tmp_path / "store"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert main(argv) == 0
        warm = capsys.readouterr()
        # Identical printed tables, and the warm sweep reports store hits.
        assert warm.out == cold.out
        assert "result store" in warm.err
        assert " 0 miss(es)" in warm.err

    def test_scaling_no_store_flag_disables_store(self, tmp_path, monkeypatch):
        for var in ("REPRO_STORE", "REPRO_STORE_REFRESH", "REPRO_STORE_DIR"):
            monkeypatch.delenv(var, raising=False)
        store_dir = tmp_path / "store"
        assert main(
            ["scaling", "audikw_1", "--scale", "tiny", "-g", "4", "-r", "1",
             "-j", "1", "--no-store", "--store-dir", str(store_dir)]
        ) == 0
        assert not store_dir.exists()

    def test_concurrency_tiny(self, capsys):
        assert main(
            ["concurrency", "audikw_1", "--scale", "tiny", "-g", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "max speedup bound" in out
