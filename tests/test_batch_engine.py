"""Batch-dispatch DES core: calendar queue, SoA machine, engine parity.

Three layers of guarantees, mirroring the engine's design contract:

* The calendar-queue :class:`BatchSimulator` executes ANY mix of
  ``schedule``/``schedule_at``/``schedule_msg`` calls in exactly the
  (time, seq) order of the binary-heap :class:`Simulator` -- pinned by
  a Hypothesis property over random schedules, including mid-run
  scheduling into the bucket currently draining.
* The bounded-run contract (``until`` leaves ``now`` at the last
  executed event; ``max_events`` raises with the queue intact) holds
  identically on both engines.
* :class:`BatchMachine` reproduces :class:`Machine` bit-for-bit: same
  timestamps, same stats dicts, same trace events, for the same
  traffic -- and full protocol runs are bit-identical across engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProcessorGrid, SimulatedPSelInv
from repro.simulate import (
    BatchMachine,
    BatchSimulator,
    Machine,
    Network,
    NetworkConfig,
    Simulator,
)
from repro.sparse import analyze
from repro.workloads import dg_hamiltonian


# ---------------------------------------------------------------------------
# Calendar queue vs heapq: exact execution-order equivalence
# ---------------------------------------------------------------------------

# Times spanning sub-bucket spacing, exact ties, and multi-bucket jumps
# (bucket width is 1e-7): the regimes where calendar ordering can break.
_time_st = st.one_of(
    st.sampled_from([0.0, 1e-9, 5e-8, 1e-7, 1.0000001e-7, 2e-7, 1e-6, 3.7e-6]),
    st.floats(min_value=0.0, max_value=1e-5, allow_nan=False),
)

# A schedule program: initial events, each optionally chaining one
# follow-up event at now + delta when it executes (exercises mid-drain
# scheduling, including into the active bucket).
_program_st = st.lists(
    st.tuples(_time_st, st.one_of(st.none(), _time_st)),
    min_size=0,
    max_size=40,
)


def _execute(sim, program, use_msg_api: bool):
    """Run ``program`` on ``sim``; returns the (label, now) trace."""
    trace = []

    def make_cb(idx, chain):
        def cb(_arg=None):
            trace.append((idx, sim.now))
            if chain is not None:
                if use_msg_api:
                    sim.schedule_msg(sim.now + chain, hid, (idx, "chained"))
                else:
                    sim.schedule(chain, chained, (idx, "chained"))

        return cb

    def chained(tag):
        trace.append((tag, sim.now))

    if use_msg_api:
        hid = sim.register_handler(chained)
    cbs = [make_cb(i, chain) for i, (t, chain) in enumerate(program)]
    for i, (t, _chain) in enumerate(program):
        sim.schedule_at(t, cbs[i])
    end = sim.run()
    return trace, end, sim.events_processed


@settings(max_examples=200, deadline=None)
@given(program=_program_st)
def test_calendar_queue_matches_heapq_order(program):
    legacy = _execute(Simulator(), program, use_msg_api=False)
    batch = _execute(BatchSimulator(), program, use_msg_api=False)
    assert batch == legacy


@settings(max_examples=100, deadline=None)
@given(program=_program_st)
def test_schedule_msg_matches_heapq_order(program):
    legacy = _execute(Simulator(), program, use_msg_api=False)
    batch = _execute(BatchSimulator(), program, use_msg_api=True)
    assert batch == legacy


@settings(max_examples=100, deadline=None)
@given(
    program=_program_st,
    until=st.one_of(st.none(), _time_st),
    max_events=st.one_of(st.none(), st.integers(min_value=1, max_value=50)),
)
def test_bounded_run_equivalence(program, until, max_events):
    """until/max_events behave identically: same trace, same now, same
    error, and the queue survives a max_events abort intact."""
    results = []
    for sim in (Simulator(), BatchSimulator()):
        trace = []
        for i, (t, _chain) in enumerate(program):
            sim.schedule_at(t, lambda i=i: trace.append((i, sim.now)))
        try:
            sim.run(until=until, max_events=max_events)
            err = None
        except RuntimeError as e:
            err = str(e)
        # Draining the remainder must pick up exactly where the bounded
        # run stopped, in the same order.
        sim.run()
        results.append((trace, sim.now, sim.events_processed, err))
    assert results[0] == results[1]


class TestBatchSimulatorUnit:
    def test_tie_break_is_schedule_order(self):
        sim = BatchSimulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_same_bucket_different_times_sorted(self):
        # Distinct timestamps inside one bucket must still execute in
        # time order, not append order.
        sim = BatchSimulator()
        w = sim.bucket_width
        log = []
        sim.schedule_at(0.9 * w, lambda: log.append("late"))
        sim.schedule_at(0.1 * w, lambda: log.append("early"))
        sim.run()
        assert log == ["early", "late"]

    def test_mid_drain_insert_into_active_bucket(self):
        # An event scheduled while its own bucket drains must run within
        # the same drain, in time order.
        sim = BatchSimulator()
        w = sim.bucket_width
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule_at(0.5 * w, lambda: log.append(("mid", sim.now)))

        sim.schedule_at(0.1 * w, first)
        sim.schedule_at(0.9 * w, lambda: log.append(("last", sim.now)))
        sim.run()
        assert log == [
            ("first", 0.1 * w), ("mid", 0.5 * w), ("last", 0.9 * w)
        ]

    def test_negative_delay_rejected(self):
        sim = BatchSimulator()
        with pytest.raises(ValueError, match="negative delay"):
            sim.schedule(-1e-9, lambda: None)

    def test_past_scheduling_rejected(self):
        sim = BatchSimulator()
        sim.schedule(5.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(ValueError, match="in the past"):
            sim.run()

    def test_max_events_guard_message(self):
        sim = BatchSimulator()

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError, match="exceeded 100 events"):
            sim.run(max_events=100)

    def test_until_leaves_now_at_last_executed_event(self):
        # The documented bounded-run contract: now is the timestamp of
        # the last executed event, never advanced to the horizon.
        for sim in (Simulator(), BatchSimulator()):
            sim.schedule_at(1.0, lambda: None)
            sim.schedule_at(10.0, lambda: None)
            assert sim.run(until=5.0) == 1.0
            assert sim.now == 1.0
            assert sim.pending() == 1
            # Horizons are absolute: a second bounded run resumes.
            assert sim.run(until=10.0) == 10.0
            assert sim.pending() == 0

    def test_repeated_bounded_runs_drain_everything(self):
        for cls in (Simulator, BatchSimulator):
            sim = cls()
            log = []
            for i in range(10):
                sim.schedule_at(float(i), lambda i=i: log.append(i))
            for horizon in (2.5, 4.0, 100.0):
                sim.run(until=horizon)
            assert log == list(range(10))
            assert sim.events_processed == 10

    def test_handler_table_dispatch(self):
        sim = BatchSimulator()
        got = []
        hid = sim.register_handler(got.append)
        assert hid >= 2
        sim.schedule_msg(1e-6, hid, "payload")
        sim.run()
        assert got == ["payload"]


# ---------------------------------------------------------------------------
# BatchMachine vs Machine: identical behavior on scripted traffic
# ---------------------------------------------------------------------------


def _machines(n=4, **cfg):
    net_cfg = NetworkConfig(**cfg)
    return (
        Machine(n, Network(n, net_cfg)),
        BatchMachine(n, Network(n, net_cfg)),
    )


class TestBatchMachineParity:
    def test_legacy_handler_compat(self):
        # set_handler-based delivery (Message view) works on both.
        for m in _machines():
            got = []
            m.set_handler(1, lambda msg: got.append((msg.src, msg.payload)))
            m.post_send(0, 1, "t", 100, "test", payload="hello")
            m.run()
            assert got == [(0, "hello")]

    def test_fast_handler_takes_precedence(self):
        _, m = _machines()
        got = []
        m.set_handler(1, lambda msg: got.append("legacy"))
        m.set_fast_handler(1, lambda tag, payload, aux: got.append(
            ("fast", tag, payload, aux)))
        m.post_send(0, 1, "t", 100, "test", payload="p")
        m.run()
        assert got == [("fast", "t", "p", 0)]

    def test_delivery_callback_routes_past_handlers(self):
        _, m = _machines()
        got = []
        m.set_fast_handler(1, lambda *a: got.append("handler"))
        cid = m.category_id("test")
        m.send(0, 1, "t", 64, cid, "p", lambda dst, payload, aux: got.append(
            ("cb", dst, payload, aux)), 7)
        m.run()
        assert got == [("cb", 1, "p", 7)]

    def test_missing_handler_raises(self):
        for m in _machines():
            m.post_send(0, 1, "t", 10, "x")
            with pytest.raises(RuntimeError, match="no handler"):
                m.run()

    def test_identical_timestamps_and_stats(self):
        # A deterministic traffic script (fan-in, fan-out, self-sends,
        # repeated channels) must produce bit-identical delivery times
        # and stats dicts on both machines.
        mlegacy, mbatch = _machines(8, jitter_sigma=0.0)
        outs = []
        for m in (mlegacy, mbatch):
            log = []
            for r in range(8):
                m.set_handler(r, lambda msg, m=m: log.append(
                    (msg.src, msg.dst, msg.tag, m.now)))
            for i in range(6):
                m.post_send(0, 1 + i % 3, ("msg", i), 1000 * (i + 1), "a")
                m.post_send(i % 4, 5, ("fan", i), 512, "b")
                m.post_send(2, 2, ("self", i), 9999, "c")
            m.post_compute(3, 0.0, flops=1e6)
            end = m.run()
            outs.append((
                log,
                end,
                {k: list(v) for k, v in m.stats._sent.items()},
                {k: list(v) for k, v in m.stats._messages_sent.items()},
                {k: list(v) for k, v in m.stats._received.items()},
                list(m.stats._compute_busy),
                list(m.stats._nic_out_busy),
                list(m.stats._nic_in_busy),
                list(m.stats._recv_overhead_busy),
            ))
        assert outs[0] == outs[1]

    def test_trace_event_log_identical(self):
        # The HB-checker hook: both machines emit the same TraceEvents.
        net_cfg = NetworkConfig()
        log_a, log_b = [], []
        ma = Machine(4, Network(4, net_cfg), event_log=log_a)
        mb = BatchMachine(4, Network(4, net_cfg), event_log=log_b)
        for m, log in ((ma, log_a), (mb, log_b)):
            m.set_handler(1, lambda msg: None)
            m.set_handler(2, lambda msg: None)
            m.post_send(0, 1, "x", 100, "cat")
            m.post_send(0, 2, "y", 200, "cat")
            m.post_send(1, 1, "self", 50, "cat")
            m.run()
        assert log_a == log_b

    def test_negative_compute_rejected(self):
        for m in _machines():
            with pytest.raises(ValueError, match="negative compute"):
                m.post_compute(0, -1.0)


# ---------------------------------------------------------------------------
# Full-protocol engine equivalence
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def problem():
    m = dg_hamiltonian((6, 6), 20, neighbor_hops=1,
                       rng=np.random.default_rng(5))
    return analyze(m, ordering="nd", max_supernode=8)


def _outcome(problem, scheme, grid, engine, event_log=None):
    sim = SimulatedPSelInv(
        problem.struct,
        ProcessorGrid(*grid),
        scheme,
        network=NetworkConfig(jitter_sigma=0.3),
        jitter_seed=77,
        seed=123,
        engine=engine,
        event_log=event_log,
    )
    res = sim.run()
    st = sim.machine.stats
    return (
        res.makespan,
        res.events,
        {k: list(v) for k, v in st._sent.items()},
        {k: list(v) for k, v in st._messages_sent.items()},
        {k: list(v) for k, v in st._received.items()},
        list(st._compute_busy),
        list(st._nic_out_busy),
        list(st._nic_in_busy),
        list(st._recv_overhead_busy),
    )


@pytest.mark.parametrize("scheme", ["shifted", "binary", "flat", "hybrid"])
def test_engines_bit_identical(problem, scheme):
    for grid in ((2, 2), (4, 4), (1, 1)):
        legacy = _outcome(problem, scheme, grid, "legacy")
        batch = _outcome(problem, scheme, grid, "batch")
        assert batch == legacy, (scheme, grid)


def test_engines_identical_event_log(problem):
    """The repro-check trace hook sees the same send/deliver stream."""
    log_l: list = []
    log_b: list = []
    _outcome(problem, "shifted", (2, 2), "legacy", event_log=log_l)
    _outcome(problem, "shifted", (2, 2), "batch", event_log=log_b)
    assert log_l == log_b


def test_unknown_engine_rejected(problem):
    with pytest.raises(ValueError, match="unknown engine"):
        SimulatedPSelInv(
            problem.struct, ProcessorGrid(2, 2), "shifted", engine="turbo"
        )
