"""Tests for asynchronous tree broadcast / reduce over the machine."""

import numpy as np
import pytest

from repro.comm import TreeBroadcast, TreeReduce, build_tree
from repro.simulate import Machine, Network, NetworkConfig


def make_machine(n=16):
    return Machine(n, Network(n, NetworkConfig()))


def wire(machine, registry):
    for r in range(machine.nranks):
        machine.set_handler(
            r, lambda msg: registry[msg.tag].on_message(msg)
        )


@pytest.mark.parametrize("scheme", ["flat", "binary", "shifted", "randperm", "hybrid"])
@pytest.mark.parametrize("nparticipants", [1, 2, 5, 13])
class TestBroadcast:
    def test_payload_reaches_every_participant(self, scheme, nparticipants):
        m = make_machine()
        participants = set(range(0, nparticipants))
        root = nparticipants - 1
        tree = build_tree(scheme, root, participants, seed=3)
        delivered = {}
        registry = {}
        bc = TreeBroadcast(
            m, tree, "tag", 1000, "col-bcast",
            lambda rank, payload: delivered.setdefault(rank, payload),
        )
        registry["tag"] = bc
        wire(m, registry)
        bc.start(payload="DATA")
        m.run()
        assert set(delivered) == participants
        assert all(v == "DATA" for v in delivered.values())

    def test_message_count_is_p_minus_1(self, scheme, nparticipants):
        m = make_machine()
        participants = set(range(nparticipants))
        tree = build_tree(scheme, 0, participants, seed=3)
        registry = {}
        bc = TreeBroadcast(m, tree, "t", 64, "col-bcast", lambda r, p: None)
        registry["t"] = bc
        wire(m, registry)
        bc.start()
        m.run()
        total_msgs = sum(
            arr.sum() for arr in m.stats.messages_sent.values()
        )
        assert total_msgs == nparticipants - 1


class TestBroadcastMisuse:
    def test_double_start_rejected(self):
        m = make_machine()
        tree = build_tree("flat", 0, {0, 1})
        bc = TreeBroadcast(m, tree, "t", 8, "x", lambda r, p: None)
        m.set_handler(1, lambda msg: bc.on_message(msg))
        bc.start()
        with pytest.raises(RuntimeError, match="started twice"):
            bc.start()


@pytest.mark.parametrize("scheme", ["flat", "binary", "shifted"])
@pytest.mark.parametrize("nparticipants", [1, 2, 6, 12])
class TestReduce:
    def test_sum_reaches_root(self, scheme, nparticipants):
        m = make_machine()
        participants = set(range(nparticipants))
        root = 0
        tree = build_tree(scheme, root, participants, seed=9)
        result = []
        registry = {}
        red = TreeReduce(
            m, tree, "r", 256, "row-reduce",
            contributors=participants,
            on_complete=lambda v: result.append(v),
        )
        registry["r"] = red
        wire(m, registry)
        for r in sorted(participants):
            red.contribute(r, np.array([float(r)]))
        m.run()
        assert len(result) == 1
        assert result[0][0] == pytest.approx(sum(range(nparticipants)))

    def test_symbolic_mode_counts_only(self, scheme, nparticipants):
        m = make_machine()
        participants = set(range(nparticipants))
        tree = build_tree(scheme, 0, participants, seed=9)
        done = []
        registry = {}
        red = TreeReduce(
            m, tree, "r", 128, "row-reduce",
            contributors=participants,
            on_complete=lambda v: done.append(v),
        )
        registry["r"] = red
        wire(m, registry)
        for r in participants:
            red.contribute(r, None)
        m.run()
        assert done == [None]


class TestReduceEdgeCases:
    def test_root_not_a_contributor(self):
        m = make_machine()
        participants = {0, 1, 2, 3}
        tree = build_tree("binary", 0, participants, seed=0)
        out = []
        red = TreeReduce(
            m, tree, "r", 64, "row-reduce",
            contributors={1, 2, 3},
            on_complete=lambda v: out.append(v),
        )
        wire(m, {"r": red})
        for r in (1, 2, 3):
            red.contribute(r, np.array([1.0]))
        m.run()
        assert out and out[0][0] == pytest.approx(3.0)

    def test_contributions_arrive_late(self):
        # Contributions staggered in virtual time must still all combine.
        m = make_machine()
        participants = set(range(5))
        tree = build_tree("shifted", 2, participants, seed=4)
        out = []
        red = TreeReduce(
            m, tree, "r", 64, "row-reduce",
            contributors=participants,
            on_complete=lambda v: out.append(v),
        )
        wire(m, {"r": red})
        for i, r in enumerate(sorted(participants)):
            m.sim.schedule(
                0.1 * (i + 1), lambda r=r: red.contribute(r, np.array([2.0]))
            )
        m.run()
        assert out[0][0] == pytest.approx(10.0)

    def test_unknown_contributor_rejected(self):
        m = make_machine()
        tree = build_tree("flat", 0, {0, 1})
        red = TreeReduce(
            m, tree, "r", 8, "x", contributors={0, 1}, on_complete=lambda v: None
        )
        with pytest.raises(ValueError, match="not a contributor"):
            red.contribute(3, None)

    def test_contributor_outside_tree_rejected(self):
        m = make_machine()
        tree = build_tree("flat", 0, {0, 1})
        with pytest.raises(ValueError, match="not in the tree"):
            TreeReduce(
                m, tree, "r", 8, "x", contributors={5},
                on_complete=lambda v: None,
            )

    def test_double_contribution_rejected(self):
        m = make_machine()
        tree = build_tree("flat", 0, {0})
        red = TreeReduce(
            m, tree, "r", 8, "x", contributors={0}, on_complete=lambda v: None
        )
        red.contribute(0, None)
        with pytest.raises(RuntimeError, match="after completion"):
            red.contribute(0, None)

    def test_custom_combine(self):
        m = make_machine()
        participants = {0, 1, 2}
        tree = build_tree("flat", 0, participants)
        out = []
        red = TreeReduce(
            m, tree, "r", 8, "x",
            contributors=participants,
            on_complete=lambda v: out.append(v),
            combine=max,
        )
        wire(m, {"r": red})
        for r, v in ((0, 5), (1, 9), (2, 3)):
            red.contribute(r, v)
        m.run()
        assert out == [9]


class TestConcurrentCollectives:
    def test_many_overlapping_broadcasts(self):
        """Multiple restricted collectives in flight simultaneously --
        the paper's central requirement."""
        m = make_machine(12)
        registry = {}
        delivered = {t: set() for t in range(10)}
        for t in range(10):
            participants = set(range(t % 3, 12, t % 4 + 1))
            root = min(participants)
            tree = build_tree("shifted", root, participants, seed=t)
            bc = TreeBroadcast(
                m, tree, t, 100 * (t + 1), "col-bcast",
                lambda rank, payload, t=t: delivered[t].add(rank),
            )
            registry[t] = bc
        wire(m, registry)
        for t, bc in registry.items():
            bc.start()
        m.run()
        for t, bc in registry.items():
            assert delivered[t] == set(bc.tree.ranks())
