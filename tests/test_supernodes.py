"""Tests for supernode partitioning and the supernodal structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    column_counts,
    column_structures,
    elimination_tree,
    from_dense,
    permute_symmetric,
    postorder,
    supernodal_structure,
    symmetrize_pattern,
)
from repro.sparse.supernodes import (
    fundamental_partition,
    relax_partition,
    split_partition,
)
from repro.workloads import grid_laplacian_2d
from tests.conftest import random_symmetric_dense


def prepared(a):
    m = symmetrize_pattern(a)
    parent = elimination_tree(m)
    post = postorder(parent)
    return permute_symmetric(m, post)


class TestFundamentalPartition:
    def test_dense_matrix_is_one_supernode(self):
        m = from_dense(np.ones((6, 6)))
        parent = elimination_tree(m)
        counts = column_counts(m, parent)
        sn_ptr = fundamental_partition(parent, counts)
        assert np.array_equal(sn_ptr, [0, 6])

    def test_diagonal_matrix_is_singletons(self):
        m = from_dense(np.eye(5))
        parent = elimination_tree(m)
        counts = column_counts(m, parent)
        sn_ptr = fundamental_partition(parent, counts)
        assert np.array_equal(sn_ptr, np.arange(6))

    def test_partition_is_contiguous_cover(self, rng):
        m = prepared(from_dense(random_symmetric_dense(40, 3.0, rng)))
        parent = elimination_tree(m)
        counts = column_counts(m, parent)
        sn_ptr = fundamental_partition(parent, counts)
        assert sn_ptr[0] == 0 and sn_ptr[-1] == m.n
        assert np.all(np.diff(sn_ptr) >= 1)

    def test_columns_share_structure(self, rng):
        m = prepared(from_dense(random_symmetric_dense(40, 3.0, rng)))
        parent = elimination_tree(m)
        counts = column_counts(m, parent)
        sn_ptr = fundamental_partition(parent, counts)
        structs = column_structures(m, parent)
        for k in range(len(sn_ptr) - 1):
            fc, lc = sn_ptr[k], sn_ptr[k + 1] - 1
            below_first = structs[fc][structs[fc] > lc]
            assert np.array_equal(below_first, structs[lc])


class TestSplitPartition:
    def test_splits_wide_supernodes(self):
        out = split_partition(np.array([0, 10]), 4)
        assert np.array_equal(out, [0, 4, 8, 10])

    def test_noop_when_narrow(self):
        ptr = np.array([0, 2, 5, 6])
        assert np.array_equal(split_partition(ptr, 8), ptr)

    def test_rejects_bad_max(self):
        with pytest.raises(ValueError):
            split_partition(np.array([0, 3]), 0)


class TestRelaxPartition:
    def test_merges_chain_of_singletons(self):
        # Tridiagonal: all supernodes are pairs/singletons and adjacent in
        # the tree; relaxation should merge small runs.
        n = 12
        a = np.eye(n) * 4 + np.eye(n, k=1) + np.eye(n, k=-1)
        m = from_dense(a)
        parent = elimination_tree(m)
        counts = column_counts(m, parent)
        fund = fundamental_partition(parent, counts)
        relaxed = relax_partition(parent, counts, fund, max_size=4, small=4)
        assert len(relaxed) < len(fund)
        assert relaxed[0] == 0 and relaxed[-1] == n
        assert np.all(np.diff(relaxed) <= 4)

    def test_max_size_respected(self, rng):
        m = prepared(from_dense(random_symmetric_dense(60, 3.0, rng)))
        parent = elimination_tree(m)
        counts = column_counts(m, parent)
        fund = fundamental_partition(parent, counts)
        relaxed = relax_partition(parent, counts, fund, max_size=6, small=3)
        # relax never creates supernodes beyond max_size from merging
        # (pre-existing wider fundamental supernodes are allowed through;
        # split_partition handles those).
        widths_f = np.diff(fund)
        widths_r = np.diff(relaxed)
        assert widths_r.max() <= max(6, widths_f.max())


class TestSupernodalStructure:
    def test_validate_on_random(self, rng):
        for _ in range(5):
            m = prepared(from_dense(random_symmetric_dense(45, 3.0, rng)))
            s = supernodal_structure(m, max_size=6)
            s.validate()

    def test_rows_match_column_structures_unrelaxed(self, rng):
        m = prepared(from_dense(random_symmetric_dense(40, 3.0, rng)))
        s = supernodal_structure(m, relax=False, max_size=10**9)
        structs = column_structures(m)
        for k in range(s.nsup):
            lc = s.last_col(k)
            assert np.array_equal(s.rows_below[k], structs[lc])

    def test_relaxed_structure_is_superset(self, rng):
        m = prepared(from_dense(random_symmetric_dense(40, 3.0, rng)))
        s = supernodal_structure(m, relax=True, max_size=8)
        structs = column_structures(m)
        for k in range(s.nsup):
            lc = s.last_col(k)
            assert np.all(np.isin(structs[lc], s.rows_below[k]))

    def test_block_rows_consistency(self, rng):
        m = prepared(from_dense(random_symmetric_dense(40, 3.0, rng)))
        s = supernodal_structure(m, max_size=6)
        for k in range(s.nsup):
            blocks = s.block_rows[k]
            assert np.all(blocks > k)
            total = sum(s.block_row_count(k, int(i)) for i in blocks)
            assert total == len(s.rows_below[k])
            for i in blocks:
                rows = s.block_row_indices(k, int(i))
                assert len(rows) >= 1
                assert np.all(s.snode_of[rows] == i)

    def test_factor_nnz_counts(self):
        m = grid_laplacian_2d(6, 6)
        m = prepared(m)
        s = supernodal_structure(m)
        nnz_l = s.factor_nnz()
        assert nnz_l >= (m.nnz + m.n) // 2  # at least the lower triangle
        assert s.factor_nnz_lu() == 2 * nnz_l - m.n

    def test_sparent_is_valid_tree(self, rng):
        m = prepared(from_dense(random_symmetric_dense(50, 3.0, rng)))
        s = supernodal_structure(m, max_size=6)
        for k in range(s.nsup):
            p = s.sparent[k]
            assert p == -1 or p > k


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=4, max_value=30),
    st.integers(0, 2**31 - 1),
    st.integers(min_value=1, max_value=8),
)
def test_structure_invariants_property(n, seed, max_size):
    """The chain-closure invariant (validate) must hold for any random
    symmetric pattern and any supernode width cap."""
    rng = np.random.default_rng(seed)
    m = prepared(from_dense(random_symmetric_dense(n, 2.5, rng)))
    s = supernodal_structure(m, max_size=max_size)
    s.validate()
    assert np.all(np.diff(s.sn_ptr) <= max_size) or max_size >= n
