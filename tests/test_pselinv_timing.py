"""Timing-behaviour tests of the simulated PSelInv (deterministic DES).

The simulator is fully deterministic given its seeds, so these are exact
regression tests of the *mechanisms* behind the paper's Fig. 8/9 claims,
exercised on a compact high-fill DG workload with a stressed network
(slow NICs) where fan-out serialization is the bottleneck:

* tree schemes beat the flat scheme once groups are large;
* the shifted tree's run-to-run variability under network jitter is no
  worse than flat's (the paper reports a >4x reduction at scale);
* larger lookahead windows (more pipelining) never hurt;
* the modelled v0.7.3 per-message overhead slows the flat scheme down.

The quantitative, paper-shaped versions of these claims live in
``benchmarks/`` where the medium-scale matrices are affordable.
"""

import numpy as np
import pytest

from repro.core import ProcessorGrid, SimulatedPSelInv, iter_plans
from repro.simulate import NetworkConfig
from repro.sparse import analyze
from repro.workloads import dg_hamiltonian

STRESS_NET = dict(
    injection_bandwidth=3e8,
    ejection_bandwidth=3e8,
    bw_intra_node=2e9,
    bw_intra_group=1e9,
    bw_inter_group=8e8,
)


@pytest.fixture(scope="module")
def dg_problem():
    rng = np.random.default_rng(5)
    m = dg_hamiltonian((6, 6), 20, neighbor_hops=1, rng=rng)
    return analyze(m, ordering="nd", max_supernode=8)


def run(prob, grid, scheme, *, net=None, plans=None, **kw):
    cfg = NetworkConfig(**(net or STRESS_NET))
    return SimulatedPSelInv(
        prob.struct, grid, scheme, network=cfg, seed=3, plans=plans,
        lookahead=kw.pop("lookahead", 4), **kw
    ).run()


@pytest.fixture(scope="module")
def grid_and_plans(dg_problem):
    grid = ProcessorGrid(12, 12)
    plans = list(iter_plans(dg_problem.struct, grid))
    return grid, plans


class TestSchemeOrdering:
    def test_trees_beat_flat_at_scale(self, dg_problem, grid_and_plans):
        grid, plans = grid_and_plans
        t = {
            s: run(dg_problem, grid, s, plans=plans).makespan
            for s in ("flat", "binary", "shifted")
        }
        assert t["binary"] < t["flat"]
        assert t["shifted"] < t["flat"]

    def test_flat_competitive_on_tiny_grid(self, dg_problem):
        # Paper §IV-B: at small processor counts the flat scheme is fine
        # (intra-node copies, no serialization pressure).
        grid = ProcessorGrid(2, 2)
        t_flat = run(dg_problem, grid, "flat").makespan
        t_sh = run(dg_problem, grid, "shifted").makespan
        assert t_flat <= t_sh * 1.10

    def test_hybrid_interpolates(self, dg_problem, grid_and_plans):
        grid, plans = grid_and_plans
        t_flat = run(dg_problem, grid, "flat", plans=plans).makespan
        t_sh = run(dg_problem, grid, "shifted", plans=plans).makespan
        t_hy = run(dg_problem, grid, "hybrid", plans=plans).makespan
        assert t_hy <= t_flat * 1.02
        assert t_hy <= max(t_flat, t_sh) * 1.02


class TestVariability:
    def _spread(self, prob, grid, plans, scheme, nseeds=5):
        net = dict(STRESS_NET)
        net.update(jitter_sigma=0.35, cores_per_node=4, nodes_per_group=8)
        times = [
            run(
                prob, grid, scheme, net=net, plans=plans,
                jitter_seed=js, placement_seed=js + 100,
            ).makespan
            for js in range(nseeds)
        ]
        v = np.asarray(times)
        return v.std() / v.mean()

    def test_shifted_variability_comparable_at_toy_scale(
        self, dg_problem, grid_and_plans
    ):
        # At this toy scale both schemes sit under 1% relative spread and
        # their ordering flips with the grid; the paper's >4x variance
        # reduction is a large-scale effect, measured in the Fig. 8
        # benchmark.  Here we pin that neither scheme is pathological.
        grid, plans = grid_and_plans
        rel_flat = self._spread(dg_problem, grid, plans, "flat")
        rel_sh = self._spread(dg_problem, grid, plans, "shifted")
        assert rel_sh < 0.05 and rel_flat < 0.05
        assert rel_sh <= rel_flat * 2.5

    def test_jitter_actually_moves_the_makespan(self, dg_problem, grid_and_plans):
        grid, plans = grid_and_plans
        net = dict(STRESS_NET)
        net.update(jitter_sigma=0.35, cores_per_node=4, nodes_per_group=8)
        a = run(dg_problem, grid, "flat", net=net, plans=plans, jitter_seed=0).makespan
        b = run(dg_problem, grid, "flat", net=net, plans=plans, jitter_seed=1).makespan
        assert a != b

    def test_no_jitter_is_reproducible(self, dg_problem, grid_and_plans):
        grid, plans = grid_and_plans
        a = run(dg_problem, grid, "shifted", plans=plans).makespan
        b = run(dg_problem, grid, "shifted", plans=plans).makespan
        assert a == b


class TestLookaheadAblation:
    @pytest.mark.parametrize("scheme", ["flat", "shifted"])
    def test_more_lookahead_never_hurts(self, dg_problem, grid_and_plans, scheme):
        grid, plans = grid_and_plans
        t1 = run(dg_problem, grid, scheme, plans=plans, lookahead=1).makespan
        t4 = run(dg_problem, grid, scheme, plans=plans, lookahead=4).makespan
        tinf = run(dg_problem, grid, scheme, plans=plans, lookahead=None).makespan
        assert t4 <= t1 * 1.01
        assert tinf <= t4 * 1.01

    def test_infinite_lookahead_hides_tree_differences(
        self, dg_problem, grid_and_plans
    ):
        """Ablation: with unbounded buffering every broadcast is issued at
        t=0 and fully overlapped, so the flat scheme's serialization
        mostly leaves the critical path -- evidence that the *bounded*
        window is what exposes tree shape, as on the real machine."""
        grid, plans = grid_and_plans
        gap_small = run(
            dg_problem, grid, "flat", plans=plans, lookahead=2
        ).makespan - run(dg_problem, grid, "shifted", plans=plans, lookahead=2).makespan
        gap_inf = run(
            dg_problem, grid, "flat", plans=plans, lookahead=None
        ).makespan - run(
            dg_problem, grid, "shifted", plans=plans, lookahead=None
        ).makespan
        assert gap_small > gap_inf


class TestV073Model:
    def test_extra_message_overhead_slows_flat(self, dg_problem, grid_and_plans):
        grid, plans = grid_and_plans
        base = run(dg_problem, grid, "flat", plans=plans).makespan
        v073 = run(
            dg_problem, grid, "flat", plans=plans,
            per_message_cpu_overhead=2e-6,
        ).makespan
        assert v073 > base


class TestBreakdown:
    def test_comm_ratio_grows_with_processors(self, dg_problem):
        """Fig. 9 direction: communication/computation grows with P for
        the flat scheme (27:73 at 256 -> 89:11 at 4096 in the paper)."""
        ratios = []
        for p in (2, 8):
            grid = ProcessorGrid(p, p)
            res = run(dg_problem, grid, "flat")
            ratios.append(res.communication_time / res.compute_time)
        assert ratios[1] > ratios[0]

    def test_compute_time_strong_scales(self, dg_problem):
        t = []
        for p in (2, 8):
            res = run(dg_problem, ProcessorGrid(p, p), "shifted")
            t.append(res.compute_time)
        # Mean per-rank compute should shrink roughly like 1/P.
        assert t[1] < t[0] / 4
