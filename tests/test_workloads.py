"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.sparse import analyze
from repro.workloads import (
    WORKLOADS,
    dg_hamiltonian,
    grid_laplacian_2d,
    grid_laplacian_3d,
    make_workload,
    random_spd_sparse,
    workload_names,
)


class TestLaplacians:
    def test_2d_shape_and_symmetry(self):
        m = grid_laplacian_2d(5, 7)
        assert m.n == 35
        assert m.is_structurally_symmetric()
        d = m.to_dense()
        np.testing.assert_allclose(d, d.T)

    def test_2d_5pt_degree(self):
        m = grid_laplacian_2d(4, 4, stencil=5)
        # Interior vertex has 4 neighbours + diagonal.
        counts = np.diff(m.indptr)
        assert counts.max() == 5

    def test_2d_9pt_denser(self):
        m5 = grid_laplacian_2d(6, 6, stencil=5)
        m9 = grid_laplacian_2d(6, 6, stencil=9)
        assert m9.nnz > m5.nnz

    def test_3d_7pt(self):
        m = grid_laplacian_3d(3, 4, 5)
        assert m.n == 60
        assert m.is_structurally_symmetric()

    def test_3d_27pt_denser(self):
        m7 = grid_laplacian_3d(4, 4, 4, stencil=7)
        m27 = grid_laplacian_3d(4, 4, 4, stencil=27)
        assert m27.nnz > 2 * m7.nnz

    def test_diagonal_dominance(self):
        rng = np.random.default_rng(1)
        for m in (
            grid_laplacian_2d(5, 5, rng=rng),
            grid_laplacian_3d(3, 3, 3, rng=rng),
        ):
            d = m.to_dense()
            off = np.abs(d).sum(axis=1) - np.abs(np.diag(d))
            assert np.all(np.diag(d) >= off - 1e-12)

    def test_invalid_stencils(self):
        with pytest.raises(ValueError):
            grid_laplacian_2d(3, 3, stencil=7)
        with pytest.raises(ValueError):
            grid_laplacian_3d(3, 3, 3, stencil=9)

    def test_1x1_grid(self):
        m = grid_laplacian_2d(1, 1)
        assert m.n == 1 and m.nnz == 1

    def test_rng_perturbs_values_not_pattern(self):
        a = grid_laplacian_2d(4, 4)
        b = grid_laplacian_2d(4, 4, rng=np.random.default_rng(7))
        assert np.array_equal(a.indices, b.indices)
        assert not np.allclose(a.data, b.data)


class TestDG:
    def test_block_structure(self):
        m = dg_hamiltonian((3, 3), 6)
        assert m.n == 54
        assert m.is_structurally_symmetric()
        # The local block of an element must be fully dense.
        d = m.to_dense()
        assert np.all(d[:6, :6] != 0)

    def test_3d_elements(self):
        m = dg_hamiltonian((2, 2, 2), 4)
        assert m.n == 32
        assert m.is_structurally_symmetric()

    def test_denser_with_more_hops(self):
        m1 = dg_hamiltonian((4, 4), 5, neighbor_hops=1)
        m2 = dg_hamiltonian((4, 4), 5, neighbor_hops=2)
        assert m2.nnz > m1.nnz

    def test_values_symmetric(self):
        m = dg_hamiltonian((3, 2), 5)
        d = m.to_dense()
        np.testing.assert_allclose(d, d.T, atol=1e-12)

    def test_diagonally_dominant(self):
        d = dg_hamiltonian((2, 3), 7).to_dense()
        off = np.abs(d).sum(axis=1) - np.abs(np.diag(d))
        assert np.all(np.diag(d) >= off)

    def test_dg_is_factorizable(self):
        m = dg_hamiltonian((3, 3), 5)
        prob = analyze(m, ordering="nd")
        from repro.sparse import selinv_sequential

        _, inv = selinv_sequential(prob)
        dense_inv = np.linalg.inv(prob.matrix.to_dense())
        rr, cc = inv.stored_positions()
        err = np.abs(inv.to_dense_at_structure()[rr, cc] - dense_inv[rr, cc]).max()
        assert err < 1e-8

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            dg_hamiltonian((2,), 4)
        with pytest.raises(ValueError):
            dg_hamiltonian((2, 2), 0)


class TestRandomSpd:
    def test_is_symmetric_and_dominant(self, rng):
        m = random_spd_sparse(50, 4.0, rng=rng)
        assert m.is_structurally_symmetric()
        d = m.to_dense()
        off = np.abs(d).sum(axis=1) - np.abs(np.diag(d))
        assert np.all(np.diag(d) > off - 1e-12)


class TestRegistry:
    def test_all_names_present(self):
        assert set(workload_names()) == set(WORKLOADS)

    def test_paper_metadata_recorded(self):
        w = WORKLOADS["audikw_1"]
        assert w.paper_n == 943_695
        assert w.paper_nnz_a == 77_651_847
        assert w.regime == "sparse"
        assert WORKLOADS["DG_PNF14000"].regime == "dense"

    @pytest.mark.parametrize("name", workload_names())
    def test_tiny_scale_generates(self, name):
        m = make_workload(name, "tiny")
        assert m.n > 0
        assert m.is_structurally_symmetric()

    def test_density_regimes_differ(self):
        dense = make_workload("DG_PNF14000", "tiny")
        sparse = make_workload("audikw_1", "tiny")
        assert dense.nnz / dense.n**2 > 5 * sparse.nnz / sparse.n**2

    def test_seed_reproducible(self):
        a = make_workload("audikw_1", "tiny", seed=5)
        b = make_workload("audikw_1", "tiny", seed=5)
        np.testing.assert_allclose(a.data, b.data)

    def test_unknown_name_and_scale(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("nope")
        with pytest.raises(ValueError, match="unknown scale"):
            WORKLOADS["audikw_1"].make("huge")
