"""Repo-wide determinism guard.

Runs the ``repro.check.ast_lint`` pass over the whole ``repro`` package
so any future commit introducing an unseeded RNG, a wall-clock read in a
tag, raw set iteration feeding tree construction, or float accumulation
into a volume counter fails CI with the offending file and line.
"""

from repro.check import format_diagnostics, lint_package


def test_repro_package_is_determinism_clean():
    diags = lint_package()
    assert diags == [], "determinism lint findings:\n" + format_diagnostics(diags)
