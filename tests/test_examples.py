"""Smoke tests: the runnable examples must actually run.

Each example is executed in-process via ``runpy`` (same interpreter, no
subprocess overhead).  Only the fast examples run here; the scaling
study is exercised through its library pieces elsewhere.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "max |err|" in out
    assert "distributed == sequential" in out


def test_tree_shapes(capsys):
    run_example("tree_shapes.py")
    out = capsys.readouterr().out
    assert "P4" in out and "Fig. 3(c)" in out


def test_electronic_structure(capsys):
    run_example("electronic_structure_workflow.py")
    out = capsys.readouterr().out
    assert "pole loop" in out
    assert "parallel trace" in out


def test_load_and_invert(capsys):
    run_example("load_and_invert.py")
    out = capsys.readouterr().out
    assert "selected inverse" in out
    assert "max |diff| vs sequential" in out


@pytest.mark.slow
def test_communication_volume_study(capsys):
    run_example("communication_volume_study.py", ["audikw_1", "4"])
    out = capsys.readouterr().out
    assert "Table I" in out and "Heat maps" in out
