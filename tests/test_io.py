"""Tests for Matrix Market I/O."""

import gzip

import numpy as np
import pytest

from repro.sparse import (
    analyze,
    from_dense,
    read_matrix_market,
    selinv_sequential,
    write_matrix_market,
)
from tests.conftest import random_symmetric_dense


class TestRoundtrip:
    def test_real_roundtrip(self, tmp_path, rng):
        a = random_symmetric_dense(20, 3.0, rng)
        m = from_dense(a)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, m, comment="test matrix")
        m2 = read_matrix_market(path)
        np.testing.assert_allclose(m2.to_dense(), a)

    def test_complex_roundtrip(self, tmp_path, rng):
        a = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        m = from_dense(a)
        path = tmp_path / "c.mtx"
        write_matrix_market(path, m)
        m2 = read_matrix_market(path)
        np.testing.assert_allclose(m2.to_dense(), a)

    def test_gzip_roundtrip(self, tmp_path, rng):
        a = random_symmetric_dense(15, 2.0, rng)
        path = tmp_path / "m.mtx.gz"
        write_matrix_market(path, from_dense(a))
        with gzip.open(path, "rt") as fh:
            assert fh.readline().startswith("%%MatrixMarket")
        np.testing.assert_allclose(read_matrix_market(path).to_dense(), a)


class TestReaderFormats:
    def _write(self, tmp_path, text):
        p = tmp_path / "t.mtx"
        p.write_text(text)
        return p

    def test_symmetric_storage_expanded(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% UF-style lower-triangle storage\n"
            "3 3 4\n"
            "1 1 2.0\n2 2 2.0\n3 3 2.0\n3 1 -1.0\n",
        )
        m = read_matrix_market(p)
        d = m.to_dense()
        assert d[2, 0] == -1.0 and d[0, 2] == -1.0
        assert m.is_structurally_symmetric()

    def test_skew_symmetric(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n",
        )
        d = read_matrix_market(p).to_dense()
        assert d[1, 0] == 3.0 and d[0, 1] == -3.0

    def test_pattern_field(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n"
            "1 1\n2 2\n",
        )
        d = read_matrix_market(p).to_dense()
        np.testing.assert_allclose(d, np.eye(2))

    def test_hermitian(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate complex hermitian\n"
            "2 2 2\n"
            "1 1 2.0 0.0\n2 1 1.0 1.0\n",
        )
        d = read_matrix_market(p).to_dense()
        assert d[1, 0] == 1 + 1j and d[0, 1] == 1 - 1j

    def test_rejects_bad_header(self, tmp_path):
        p = self._write(tmp_path, "garbage\n1 1 0\n")
        with pytest.raises(ValueError, match="header"):
            read_matrix_market(p)

    def test_rejects_rectangular(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 3 0\n",
        )
        with pytest.raises(ValueError, match="square"):
            read_matrix_market(p)

    def test_rejects_truncated(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
        )
        with pytest.raises(ValueError, match="expected 2 entries"):
            read_matrix_market(p)


class TestEndToEnd:
    def test_selinv_on_loaded_matrix(self, tmp_path, rng):
        """The promised workflow: drop an .mtx file in, run the pipeline."""
        a = random_symmetric_dense(25, 3.0, rng)
        path = tmp_path / "user.mtx"
        write_matrix_market(path, from_dense(a))
        m = read_matrix_market(path)
        prob = analyze(m, ordering="amd")
        _, inv = selinv_sequential(prob)
        dense_inv = np.linalg.inv(prob.matrix.to_dense())
        rr, cc = inv.stored_positions()
        err = np.abs(inv.to_dense_at_structure()[rr, cc] - dense_inv[rr, cc]).max()
        assert err < 1e-9
