"""Telemetry subsystem tests (ISSUE 5).

Four contracts are pinned here:

1. **Perfetto round-trip** -- a quick-tier laplacian run under full
   telemetry exports Chrome trace-event JSON that loads back and passes
   :func:`repro.obs.validate_chrome_trace`: per-rank lanes, nonnegative
   durations, nondecreasing timestamps per lane, paired flows and
   collective-phase spans.
2. **Bit-identity** -- enabling telemetry never perturbs the simulated
   outcome: makespan, event count, and every per-rank counter of a
   seed-pinned run are identical with telemetry off and fully on.
3. **Fig. 5 agreement** -- the streaming :class:`HotSpotMonitor` tallies
   the exact byte loads of the analytic Fig. 5 heatmap pipeline
   (``VolumeReport.col_bcast_sent``), so its top-k hottest ranks match
   for the flat, binary, and shifted schemes.
4. **Integer message counts** -- ``CommStats.messages_sent`` stays an
   integer dtype all the way into ``message_count_heatmap``, which
   rejects float counts.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import message_count_heatmap
from repro.cli import main
from repro.core import ProcessorGrid, SimulatedPSelInv, communication_volumes
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    HotSpotMonitor,
    MetricsRegistry,
    NullMetrics,
    Telemetry,
    TraceSchemaError,
    gini,
    imbalance_stats,
    merge_snapshots,
    validate_chrome_trace,
    validate_trace_file,
)
from repro.sparse import analyze
from repro.workloads import grid_laplacian_2d

SCHEMES = ["flat", "binary", "shifted"]


@pytest.fixture(scope="module")
def lap_problem():
    """The quick-tier laplacian the ``repro trace`` CLI defaults to."""
    m = grid_laplacian_2d(12, 12, rng=np.random.default_rng(0))
    return analyze(m, ordering="nd")


@pytest.fixture(scope="module")
def grid():
    return ProcessorGrid(4, 4)


def _run(problem, grid, scheme="shifted", telemetry=None, seed=20160523):
    return SimulatedPSelInv(
        problem.struct, grid, scheme, seed=seed, telemetry=telemetry
    ).run()


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry(workload="w")
        c = reg.counter("msgs", dclass=1)
        c.inc()
        c.inc(4)
        assert isinstance(c, Counter) and c.value == 5
        g = reg.gauge("depth")
        g.update_max(3)
        g.update_max(1)
        assert isinstance(g, Gauge) and g.value == 3
        h = reg.histogram("bytes")
        assert isinstance(h, Histogram)
        h.observe(3)
        h.observe(3)
        h.observe(10**9)
        assert h.count == 3 and h.total == 2 * 3 + 10**9

    def test_same_series_is_memoized(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1) is reg.counter("x", a=1)
        assert reg.counter("x", a=1) is not reg.counter("x", a=2)

    def test_snapshot_is_deterministic_and_labeled(self):
        reg = MetricsRegistry(scheme="flat")
        reg.counter("msgs", dclass=2).inc(7)
        reg.counter("msgs", dclass=0).inc(1)
        snap1 = reg.snapshot()
        snap2 = reg.snapshot()
        assert snap1 == snap2
        keys = list(snap1["counters"])
        assert keys == sorted(keys)
        assert any("scheme=flat" in k and "dclass=2" in k for k in keys)
        # Snapshots are plain JSON data.
        json.dumps(snap1)

    def test_merge_snapshots(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.gauge("hw").update_max(5)
        b.gauge("hw").update_max(9)
        a.histogram("h").observe(1)
        b.histogram("h").observe(100)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["n"] == 5
        assert merged["gauges"]["hw"] == 9
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["total"] == 101

    def test_null_metrics_is_inert(self):
        null = NullMetrics()
        null.counter("x", a=1).inc(5)
        null.gauge("y").update_max(2)
        null.histogram("z").observe(3)
        assert null.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


# ---------------------------------------------------------------------------
# hot-spot statistics
# ---------------------------------------------------------------------------


class TestImbalanceStats:
    def test_gini_bounds(self):
        assert gini(np.full(8, 3.0)) == pytest.approx(0.0)
        concentrated = np.zeros(100)
        concentrated[0] = 1.0
        assert gini(concentrated) > 0.9
        assert gini(np.array([])) == 0.0

    def test_imbalance_stats_uniform(self):
        s = imbalance_stats(np.full(16, 7.0))
        assert s["max_over_mean"] == pytest.approx(1.0)
        assert s["p99_over_median"] == pytest.approx(1.0)
        assert s["gini"] == pytest.approx(0.0)

    def test_imbalance_stats_hot_rank(self):
        v = np.ones(64)
        v[5] = 100.0
        s = imbalance_stats(v)
        assert s["max"] == 100.0
        assert s["max_over_mean"] > 10.0


# ---------------------------------------------------------------------------
# trace export + schema round-trip
# ---------------------------------------------------------------------------


class TestTraceRoundTrip:
    @pytest.fixture(scope="class")
    def trace(self, lap_problem, grid, tmp_path_factory):
        telemetry = Telemetry.full(grid.size, workload="laplacian-quick")
        res = _run(lap_problem, grid, telemetry=telemetry)
        path = tmp_path_factory.mktemp("trace") / "out.trace.json"
        telemetry.timeline.write(path, makespan=res.makespan)
        return path, json.loads(path.read_text()), res

    def test_file_validates(self, trace):
        path, _, _ = trace
        summary = validate_trace_file(path)
        assert summary["n_events"] > 0
        # Complete slices, flow pairs, and phase begin/end all present.
        for ph in ("X", "s", "f", "b", "e", "M"):
            assert summary["phase_counts"].get(ph, 0) > 0, ph

    def test_per_rank_lanes(self, trace, grid):
        _, obj, _ = trace
        summary = validate_chrome_trace(obj)
        # Every rank appears as a pid, plus the synthetic phase track.
        assert set(range(grid.size)) <= set(summary["pids"])
        assert grid.size in summary["pids"]
        assert summary["n_lanes"] > grid.size

    def test_times_within_makespan(self, trace):
        _, obj, res = trace
        summary = validate_chrome_trace(obj)
        assert summary["ts_min"] >= 0.0
        assert summary["ts_max"] <= res.makespan * 1e6 * (1 + 1e-9)

    def test_phase_spans_cover_collectives(self, lap_problem, grid):
        telemetry = Telemetry.full(grid.size)
        _run(lap_problem, grid, telemetry=telemetry)
        kinds = {kind for kind, _ in telemetry.timeline.phases}
        assert "col-bcast" in kinds and "row-reduce" in kinds
        for (kind, k), (start, end) in telemetry.timeline.phases.items():
            assert isinstance(k, int) and start <= end

    def test_lane_timestamps_nondecreasing(self, trace):
        _, obj, _ = trace
        seen: dict[tuple, float] = {}
        for ev in obj["traceEvents"]:
            if ev["ph"] == "M":
                continue
            lane = (ev["pid"], ev["tid"])
            assert ev["ts"] >= seen.get(lane, 0.0)
            seen[lane] = ev["ts"]

    def test_metadata_passthrough(self, grid, lap_problem):
        telemetry = Telemetry.full(grid.size)
        _run(lap_problem, grid, telemetry=telemetry)
        obj = telemetry.timeline.to_chrome_trace(workload="lap", extra=1)
        assert obj["otherData"]["workload"] == "lap"
        assert obj["otherData"]["extra"] == 1
        assert obj["otherData"]["nranks"] == grid.size


class TestTraceSchemaRejects:
    def _one(self, **kw):
        ev = {"ph": "X", "pid": 0, "tid": 0, "ts": 0.0, "dur": 1.0,
              "name": "x"}
        ev.update(kw)
        return {"traceEvents": [ev]}

    def test_rejects_non_object(self):
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace([])

    def test_rejects_empty(self):
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_negative_dur(self):
        with pytest.raises(TraceSchemaError, match="dur"):
            validate_chrome_trace(self._one(dur=-1.0))

    def test_rejects_unknown_phase(self):
        with pytest.raises(TraceSchemaError, match="phase"):
            validate_chrome_trace(self._one(ph="Z"))

    def test_rejects_decreasing_lane_time(self):
        trace = {
            "traceEvents": [
                self._one(ts=5.0)["traceEvents"][0],
                self._one(ts=1.0)["traceEvents"][0],
            ]
        }
        with pytest.raises(TraceSchemaError, match="decreases"):
            validate_chrome_trace(trace)

    def test_rejects_unbalanced_flow(self):
        trace = self._one()
        trace["traceEvents"].append(
            {"ph": "s", "pid": 0, "tid": 1, "ts": 0.0, "id": 9, "name": "m"}
        )
        with pytest.raises(TraceSchemaError, match="flow"):
            validate_chrome_trace(trace)

    def test_accepts_out_of_order_flow_pair(self):
        # Events are lane-sorted, so a finish may precede its start in
        # file order; pairing is by id, not position.
        trace = {
            "traceEvents": [
                {"ph": "f", "pid": 0, "tid": 0, "ts": 3.0, "id": 1,
                 "name": "m"},
                {"ph": "s", "pid": 1, "tid": 0, "ts": 2.0, "id": 1,
                 "name": "m"},
            ]
        }
        summary = validate_chrome_trace(trace)
        assert summary["phase_counts"] == {"f": 1, "s": 1}


# ---------------------------------------------------------------------------
# bit-identity: telemetry observes, never perturbs
# ---------------------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_outcome_identical_with_full_telemetry(
        self, lap_problem, grid, scheme
    ):
        base = _run(lap_problem, grid, scheme)
        instrumented = _run(
            lap_problem, grid, scheme,
            telemetry=Telemetry.full(grid.size, scheme=scheme),
        )
        assert instrumented.makespan == base.makespan
        assert instrumented.events == base.events
        for name in ("sent", "received", "messages_sent"):
            a, b = getattr(base.stats, name), getattr(instrumented.stats, name)
            assert set(a) == set(b)
            for kind in a:
                np.testing.assert_array_equal(a[kind], b[kind])
        np.testing.assert_array_equal(
            base.stats.compute_busy, instrumented.stats.compute_busy
        )

    def test_run_record_same_outcome(self, tmp_path):
        """Runner-level contract: ``ExperimentSpec.telemetry`` toggles
        instrumentation without changing ``RunRecord.same_outcome``."""
        from dataclasses import replace

        from repro.runner import ExperimentSpec
        from repro.runner.pool import run_experiment

        spec = ExperimentSpec(
            workload="audikw_1", scale="tiny", grid=(2, 2), scheme="shifted",
            seed=20160523,
        )
        plain = run_experiment(spec)
        instrumented = run_experiment(replace(spec, telemetry=True))
        assert plain.same_outcome(instrumented)
        assert instrumented.metrics  # telemetry payload is attached...
        assert not plain.metrics  # ...only when asked for
        json.dumps(instrumented.metrics)  # and it is JSON-exportable


# ---------------------------------------------------------------------------
# hot-spot monitor vs the Fig. 5 analytic pipeline
# ---------------------------------------------------------------------------


class TestHotSpotAgreement:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_matches_volume_report(self, lap_problem, grid, scheme):
        monitor = HotSpotMonitor(grid.size)
        _run(lap_problem, grid, scheme, telemetry=Telemetry(hotspots=monitor))
        rep = communication_volumes(
            lap_problem.struct, grid, scheme, seed=20160523
        )
        np.testing.assert_array_equal(
            monitor.col_bcast_sent(), rep.col_bcast_sent()
        )
        np.testing.assert_array_equal(
            monitor.sent("row-reduce"), rep.sent["row-reduce"]
        )

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_top_ranks_match_heatmap_pipeline(self, lap_problem, grid, scheme):
        """The live monitor must rank the same hottest ranks as the
        Fig. 5 heatmap (``heatmap("col-bcast-total")``) read-out."""
        monitor = HotSpotMonitor(grid.size)
        _run(lap_problem, grid, scheme, telemetry=Telemetry(hotspots=monitor))
        rep = communication_volumes(
            lap_problem.struct, grid, scheme, seed=20160523
        )
        flat_map = rep.heatmap("col-bcast-total").reshape(-1)
        load = np.zeros(grid.size)
        for rank in range(grid.size):
            pr, pc = grid.coords(rank)
            load[rank] = rep.heatmap("col-bcast-total")[pr, pc]
        expected = [
            (int(r), int(load[r]))
            for r in np.argsort(-load, kind="stable")[:5]
        ]
        assert monitor.top_ranks(5, "col-bcast", direction="sent") != []
        got = [
            (rank, nbytes)
            for rank, nbytes in monitor.top_ranks(5, None, direction="sent")
        ]
        # Same byte totals per rank implies the same stable ranking for
        # the col-bcast aggregate.
        colb = monitor.col_bcast_sent()
        got_colb = [
            (int(r), int(colb[r]))
            for r in np.argsort(-colb, kind="stable")[:5]
        ]
        assert got_colb == expected
        assert flat_map.sum() == colb.sum()
        assert len(got) == 5

    def test_report_renders(self, lap_problem, grid):
        monitor = HotSpotMonitor(grid.size)
        _run(lap_problem, grid, "flat", telemetry=Telemetry(hotspots=monitor))
        text = monitor.report(3, label="flat")
        assert "hot-spot report (flat)" in text
        assert "col-bcast" in text and "max/mean" in text

    def test_imbalance_ordering_matches_paper(self, lap_problem, grid):
        """Shifted must be at least as balanced as flat on Col-Bcast."""
        stats = {}
        for scheme in ("flat", "shifted"):
            monitor = HotSpotMonitor(grid.size)
            _run(
                lap_problem, grid, scheme,
                telemetry=Telemetry(hotspots=monitor),
            )
            stats[scheme] = imbalance_stats(monitor.col_bcast_sent())
        assert (
            stats["shifted"]["max_over_mean"]
            <= stats["flat"]["max_over_mean"] + 1e-12
        )


# ---------------------------------------------------------------------------
# satellite: integer message counts end to end
# ---------------------------------------------------------------------------


class TestIntegerMessageCounts:
    def test_stats_dtype_is_integer(self, lap_problem, grid):
        res = _run(lap_problem, grid, "flat")
        for kind, counts in res.stats.messages_sent.items():
            assert np.issubdtype(counts.dtype, np.integer), kind

    def test_heatmap_accepts_integer_counts(self, lap_problem, grid):
        res = _run(lap_problem, grid, "flat")
        hm = message_count_heatmap(grid, res.stats.messages_sent["col-bcast"])
        assert hm.shape == (grid.pr, grid.pc)
        assert hm.sum() == res.stats.messages_sent["col-bcast"].sum()

    def test_heatmap_rejects_float_counts(self, grid):
        with pytest.raises(TypeError, match="integer dtype"):
            message_count_heatmap(grid, np.ones(grid.size, dtype=float))


# ---------------------------------------------------------------------------
# engine/runner metrics payload
# ---------------------------------------------------------------------------


class TestEngineMetrics:
    def test_sim_counters_recorded(self, lap_problem, grid):
        reg = MetricsRegistry()
        res = _run(lap_problem, grid, telemetry=Telemetry(metrics=reg))
        snap = reg.snapshot()
        assert snap["counters"]["sim.events"] == res.events
        assert snap["gauges"]["sim.queue_depth_high_water"] >= 1
        assert snap["gauges"]["sim.events_per_sec"] > 0

    def test_network_class_counters(self, lap_problem, grid):
        reg = MetricsRegistry()
        _run(lap_problem, grid, telemetry=Telemetry(metrics=reg))
        snap = reg.snapshot()
        inj = [k for k in snap["counters"] if k.startswith("net.injections")]
        assert inj, snap["counters"].keys()
        total_inj = sum(snap["counters"][k] for k in inj)
        ej = [k for k in snap["counters"] if k.startswith("net.ejections")]
        assert total_inj == sum(snap["counters"][k] for k in ej)

    def test_collective_shape_metrics(self, lap_problem, grid):
        reg = MetricsRegistry()
        _run(lap_problem, grid, "binary", telemetry=Telemetry(metrics=reg))
        snap = reg.snapshot()
        fanouts = [
            k for k in snap["histograms"] if k.startswith("coll.fanout")
        ]
        assert fanouts
        # A binary tree never fans out to more than 2 children.
        for k in fanouts:
            assert snap["histograms"][k]["max"] <= 2


# ---------------------------------------------------------------------------
# CLI: repro trace / repro hotspots
# ---------------------------------------------------------------------------


class TestCli:
    def test_trace_command(self, tmp_path, capsys):
        out = tmp_path / "out.trace.json"
        metrics_out = tmp_path / "metrics.json"
        rc = main(
            [
                "trace", "--workload", "laplacian-quick", "--scheme",
                "shifted", "-o", str(out), "--metrics-out", str(metrics_out),
            ]
        )
        assert rc == 0
        summary = validate_trace_file(out)
        assert summary["n_events"] > 0
        metrics = json.loads(metrics_out.read_text())
        sim_events = [
            v for k, v in metrics["counters"].items()
            if k.startswith("sim.events")
        ]
        assert sim_events and sim_events[0] > 0
        text = capsys.readouterr().out
        assert "trace events" in text and "hot-spot report" in text

    def test_hotspots_command(self, capsys):
        rc = main(
            ["hotspots", "--workload", "laplacian-quick", "-g", "4",
             "--schemes", "flat,shifted"]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "hot-spot report" in text
        assert "scheme=flat" in text and "scheme=shifted" in text
