"""Tests for elimination-tree construction and tree utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import from_dense, symmetrize_pattern
from repro.sparse.etree import (
    children_lists,
    elimination_tree,
    is_postordered,
    postorder,
    subtree_sizes,
    tree_levels,
)
from tests.conftest import random_symmetric_dense


def brute_force_etree(a: np.ndarray) -> np.ndarray:
    """Reference: parent[j] = min{i > j : L[i, j] != 0} via dense
    symbolic Cholesky-style fill."""
    n = a.shape[0]
    pattern = (a != 0).astype(float)
    # Symbolic fill: struct(j) entries create a clique among themselves.
    for j in range(n):
        rows = np.flatnonzero(pattern[j + 1 :, j]) + j + 1
        if len(rows):
            first = rows[0]
            pattern[rows, first] = 1
            pattern[first, rows] = 1
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        rows = np.flatnonzero(pattern[j + 1 :, j]) + j + 1
        if len(rows):
            parent[j] = rows[0]
    return parent


class TestEliminationTree:
    def test_tridiagonal_is_a_chain(self):
        n = 6
        a = np.eye(n) * 4 + np.eye(n, k=1) + np.eye(n, k=-1)
        parent = elimination_tree(from_dense(a))
        assert np.array_equal(parent, [1, 2, 3, 4, 5, -1])

    def test_diagonal_matrix_is_a_forest(self):
        parent = elimination_tree(from_dense(np.eye(5)))
        assert np.array_equal(parent, [-1] * 5)

    def test_arrow_matrix(self):
        # Arrow pointing at the last column: every node hangs off n-1.
        n = 5
        a = np.eye(n) * 4
        a[-1, :] = 1
        a[:, -1] = 1
        parent = elimination_tree(from_dense(a))
        assert np.array_equal(parent, [n - 1] * (n - 1) + [-1])

    def test_against_brute_force(self, rng):
        for _ in range(10):
            a = random_symmetric_dense(25, 2.5, rng)
            parent = elimination_tree(from_dense(a))
            want = brute_force_etree(a)
            assert np.array_equal(parent, want)

    def test_parent_always_larger(self, rng):
        a = random_symmetric_dense(40, 3.0, rng)
        parent = elimination_tree(from_dense(a))
        for v, p in enumerate(parent):
            assert p == -1 or p > v


class TestPostorder:
    def test_postorder_is_permutation(self, rng):
        a = random_symmetric_dense(30, 2.0, rng)
        parent = elimination_tree(from_dense(a))
        post = postorder(parent)
        assert np.array_equal(np.sort(post), np.arange(len(parent)))

    def test_children_before_parents(self, rng):
        a = random_symmetric_dense(30, 2.0, rng)
        parent = elimination_tree(from_dense(a))
        post = postorder(parent)
        position = np.empty(len(post), dtype=int)
        position[post] = np.arange(len(post))
        for v, p in enumerate(parent):
            if p >= 0:
                assert position[v] < position[p]

    def test_relabeled_tree_is_topological(self, rng):
        a = random_symmetric_dense(30, 2.0, rng)
        m = symmetrize_pattern(from_dense(a))
        parent = elimination_tree(m)
        post = postorder(parent)
        from repro.sparse import permute_symmetric

        m2 = permute_symmetric(m, post)
        parent2 = elimination_tree(m2)
        assert is_postordered(parent2)


class TestTreeUtilities:
    def test_children_lists(self):
        parent = np.array([2, 2, 4, 4, -1])
        kids = children_lists(parent)
        assert kids[2] == [0, 1]
        assert kids[4] == [2, 3]
        assert kids[0] == []

    def test_subtree_sizes(self):
        parent = np.array([2, 2, 4, 4, -1])
        sizes = subtree_sizes(parent)
        assert np.array_equal(sizes, [1, 1, 3, 1, 5])

    def test_subtree_sizes_rejects_unordered(self):
        with pytest.raises(ValueError, match="topologically"):
            subtree_sizes(np.array([-1, 0]))

    def test_tree_levels(self):
        parent = np.array([2, 2, 4, 4, -1])
        levels = tree_levels(parent)
        assert np.array_equal(levels, [2, 2, 1, 1, 0])

    def test_is_postordered(self):
        assert is_postordered(np.array([1, 2, -1]))
        assert not is_postordered(np.array([-1, 0, 1]))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=40), st.integers(0, 2**31 - 1))
def test_etree_invariants_property(n, seed):
    """Property: on random symmetric patterns the etree is a valid forest
    with parent[v] > v, and its postorder is consistent."""
    rng = np.random.default_rng(seed)
    a = random_symmetric_dense(n, 2.0, rng)
    m = from_dense(a)
    parent = elimination_tree(m)
    assert len(parent) == n
    for v, p in enumerate(parent):
        assert p == -1 or (v < p < n)
    post = postorder(parent)
    assert np.array_equal(np.sort(post), np.arange(n))
