"""Tests for fill-reducing orderings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    column_counts,
    elimination_tree,
    fill_statistics,
    from_dense,
    minimum_degree,
    natural_order,
    nested_dissection,
    permute_symmetric,
    postorder,
    reverse_cuthill_mckee,
    symmetrize_pattern,
)
from repro.workloads import grid_laplacian_2d
from tests.conftest import random_symmetric_dense

ORDERINGS = {
    "amd": minimum_degree,
    "nd": nested_dissection,
    "rcm": reverse_cuthill_mckee,
    "natural": natural_order,
}


def fill_of(matrix, perm) -> int:
    pm = permute_symmetric(matrix, perm)
    parent = elimination_tree(pm)
    post = postorder(parent)
    pm2 = permute_symmetric(matrix, perm[post])
    return int(column_counts(pm2).sum())


@pytest.mark.parametrize("name", list(ORDERINGS))
class TestPermutationValidity:
    def test_returns_permutation(self, name, rng):
        a = symmetrize_pattern(from_dense(random_symmetric_dense(35, 3.0, rng)))
        perm = ORDERINGS[name](a)
        assert np.array_equal(np.sort(perm), np.arange(a.n))

    def test_single_vertex(self, name):
        a = from_dense(np.array([[2.0]]))
        perm = ORDERINGS[name](a)
        assert np.array_equal(perm, [0])

    def test_disconnected_graph(self, name):
        a = from_dense(np.diag([1.0, 2.0, 3.0, 4.0]))
        perm = ORDERINGS[name](a)
        assert np.array_equal(np.sort(perm), np.arange(4))


class TestFillQuality:
    def test_md_beats_natural_on_2d_grid(self):
        m = grid_laplacian_2d(9, 9)
        assert fill_of(m, minimum_degree(m)) <= fill_of(m, natural_order(m))

    def test_nd_beats_natural_on_2d_grid(self):
        m = grid_laplacian_2d(12, 12)
        assert fill_of(m, nested_dissection(m)) < fill_of(m, natural_order(m))

    def test_nd_scales_on_larger_grid(self):
        # Fill ratio for ND on a k x k grid should stay modest.
        m = grid_laplacian_2d(20, 20)
        perm = nested_dissection(m)
        pm = permute_symmetric(m, perm)
        parent = elimination_tree(pm)
        post = postorder(parent)
        pm = permute_symmetric(m, perm[post])
        stats = fill_statistics(pm)
        assert stats["fill_ratio"] < 12.0

    def test_amd_arrow_matrix_orders_hub_near_last(self):
        # Arrow matrix: minimum degree keeps the hub until (almost) the
        # end -- once one leaf remains, hub and leaf tie at degree 1 and
        # the tie breaks by vertex id, so the hub may go second-to-last.
        n = 12
        a = np.eye(n) * 4
        a[0, :] = 1
        a[:, 0] = 1
        perm = minimum_degree(from_dense(a))
        assert 0 in (perm[-1], perm[-2])

    def test_rcm_reduces_bandwidth(self, rng):
        m = grid_laplacian_2d(8, 8)
        perm = reverse_cuthill_mckee(m)
        pm = permute_symmetric(m, perm)

        def bandwidth(mat):
            best = 0
            for j in range(mat.n):
                rows = mat.column_rows(j)
                if len(rows):
                    best = max(best, int(np.abs(rows - j).max()))
            return best

        # Row-major natural numbering of an 8x8 grid already has bandwidth
        # 8; RCM should not exceed it (and usually matches or improves).
        assert bandwidth(pm) <= 9


class TestNestedDissection:
    def test_leaf_size_respected(self):
        m = grid_laplacian_2d(10, 10)
        perm = nested_dissection(m, leaf_size=10)
        assert np.array_equal(np.sort(perm), np.arange(100))

    def test_separator_ordered_last_on_path(self):
        # A path graph's first bisection separator must be ordered last.
        n = 16
        a = np.eye(n) * 3 + np.eye(n, k=1) + np.eye(n, k=-1)
        perm = nested_dissection(from_dense(a), leaf_size=2)
        # The last-ordered vertex should sit near the middle of the path.
        assert n // 4 <= perm[-1] <= 3 * n // 4


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=3, max_value=30), st.integers(0, 2**31 - 1))
def test_all_orderings_are_permutations_property(n, seed):
    rng = np.random.default_rng(seed)
    a = symmetrize_pattern(from_dense(random_symmetric_dense(n, 2.0, rng)))
    for fn in ORDERINGS.values():
        perm = fn(a)
        assert np.array_equal(np.sort(perm), np.arange(n))
