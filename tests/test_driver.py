"""Tests for the analysis driver pipeline (repro.sparse.driver)."""

import numpy as np
import pytest

from repro.sparse import analyze, from_dense, selinv_sequential
from repro.sparse.etree import is_postordered
from tests.conftest import random_symmetric_dense, random_unsymmetric_dense


class TestAnalyze:
    def test_result_is_topologically_ordered(self, rng):
        a = random_symmetric_dense(40, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        assert is_postordered(prob.parent)

    def test_perm_maps_back_to_original(self, rng):
        a = random_symmetric_dense(35, 3.0, rng)
        prob = analyze(from_dense(a), ordering="nd")
        d = prob.matrix.to_dense()
        np.testing.assert_allclose(d, a[np.ix_(prob.perm, prob.perm)])

    def test_explicit_permutation_accepted(self, rng):
        a = random_symmetric_dense(30, 3.0, rng)
        perm = rng.permutation(30)
        prob = analyze(from_dense(a), ordering=perm)
        # The composite perm must still be a permutation of range(n).
        assert np.array_equal(np.sort(prob.perm), np.arange(30))

    def test_unknown_ordering_rejected(self, rng):
        a = random_symmetric_dense(10, 2.0, rng)
        with pytest.raises(ValueError, match="unknown ordering"):
            analyze(from_dense(a), ordering="metis")

    def test_unsymmetric_input_symmetrized(self, rng):
        a = random_unsymmetric_dense(30, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        assert prob.matrix.is_structurally_symmetric()
        # Values of A preserved at original positions.
        inv_perm = np.empty(30, dtype=int)
        inv_perm[prob.perm] = np.arange(30)
        d = prob.matrix.to_dense()
        orig = np.nonzero(a)
        for i, j in zip(*orig):
            assert d[inv_perm[i], inv_perm[j]] == a[i, j]

    def test_max_supernode_respected(self, rng):
        a = random_symmetric_dense(60, 5.0, rng)
        prob = analyze(from_dense(a), ordering="amd", max_supernode=4)
        assert prob.struct.widths().max() <= 4

    def test_validate_flag(self, rng):
        a = random_symmetric_dense(25, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd", validate=True)
        assert prob.n == 25

    def test_stats_fields(self, small_problem):
        st = small_problem.stats()
        for key in ("n", "nnz_a", "nnz_lu", "nnz_l", "nsup", "fill_ratio"):
            assert key in st
        assert st["nnz_lu"] == 2 * st["nnz_l"] - st["n"]

    def test_norelax_gives_finer_partition(self, rng):
        a = random_symmetric_dense(50, 3.0, rng)
        m = from_dense(a)
        fine = analyze(m, ordering="amd", relax=False)
        coarse = analyze(m, ordering="amd", relax=True)
        assert fine.struct.nsup >= coarse.struct.nsup


class TestSelinvSequentialDriver:
    def test_returns_consistent_pair(self, small_problem):
        factor, inv = selinv_sequential(small_problem)
        assert factor.struct is small_problem.struct
        assert inv.struct is small_problem.struct

    def test_roundtrip_through_permutation(self, rng):
        """Selected entries, mapped back to the ORIGINAL indices, match
        the dense inverse of the original matrix."""
        a = random_symmetric_dense(30, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        _, inv = selinv_sequential(prob)
        dense_inv_orig = np.linalg.inv(a)
        rr, cc = inv.stored_positions()
        vals = inv.to_dense_at_structure()[rr, cc]
        # permuted index -> original index
        orr = prob.perm[rr]
        occ = prob.perm[cc]
        err = np.abs(vals - dense_inv_orig[orr, occ]).max()
        assert err < 1e-9
