"""Persistent result store: hashing stability, round-trips, corruption.

The store's contract (see ``docs/caching.md``) has three legs:

1. **Spec-hash stability** -- the hash keys on exactly the fields that
   influence execution: ``label`` is excluded, floats are exact, nested
   ``NetworkConfig`` fields count, and telemetry specs are uncacheable.
2. **Round-trip fidelity** -- a stored record replays bit-identically
   (``same_outcome``) with the caller's spec re-attached.
3. **Corruption tolerance** -- truncated, bit-flipped, or garbage
   entries are detected (magic/length/crc) and treated as misses; the
   run recomputes and overwrites, never crashes.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.runner import ExperimentSpec, RunRecord, run_experiment
from repro.runner import store as store_mod
from repro.runner.store import RunStore, cacheable, spec_hash
from repro.simulate import NetworkConfig


@pytest.fixture(autouse=True)
def _hermetic_store(tmp_path, monkeypatch):
    """Every test gets its own store root and clean knobs/stats."""
    for var in ("REPRO_STORE", "REPRO_STORE_REFRESH", "REPRO_STORE_DIR"):
        monkeypatch.delenv(var, raising=False)
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    store_mod.reset_stats()
    yield
    store_mod.reset_stats()


SPEC = ExperimentSpec(
    "audikw_1",
    (4, 4),
    "shifted",
    scale="tiny",
    network=NetworkConfig(jitter_sigma=0.1),
    jitter_seed=3,
)


class TestSpecHash:
    def test_stable_across_calls_and_processes(self):
        # Hex sha256 of canonical JSON: no id()/hash() randomization.
        h1, h2 = spec_hash(SPEC), spec_hash(SPEC)
        assert h1 == h2
        assert len(h1) == 64 and int(h1, 16) >= 0

    def test_label_excluded(self):
        relabeled = dataclasses.replace(SPEC, label="fig8/run3")
        assert spec_hash(relabeled) == spec_hash(SPEC)

    def test_every_execution_field_matters(self):
        variants = [
            dataclasses.replace(SPEC, scheme="flat"),
            dataclasses.replace(SPEC, grid=(8, 8)),
            dataclasses.replace(SPEC, seed=SPEC.seed + 1),
            dataclasses.replace(SPEC, jitter_seed=SPEC.jitter_seed + 1),
            dataclasses.replace(SPEC, placement_seed=5),
            dataclasses.replace(SPEC, lookahead=8),
            dataclasses.replace(SPEC, engine="legacy"),
            dataclasses.replace(SPEC, per_message_cpu_overhead=1e-9),
            dataclasses.replace(
                SPEC, network=NetworkConfig(jitter_sigma=0.2)
            ),
            dataclasses.replace(SPEC, network=None),
        ]
        hashes = {spec_hash(v) for v in variants}
        assert len(hashes) == len(variants)
        assert spec_hash(SPEC) not in hashes

    def test_float_fields_hash_exactly(self):
        # 0.1 + 0.2 != 0.3 in binary: the hash must see the difference
        # (float.hex canonicalization, no decimal rounding).
        a = dataclasses.replace(SPEC, per_message_cpu_overhead=0.1 + 0.2)
        b = dataclasses.replace(SPEC, per_message_cpu_overhead=0.3)
        assert spec_hash(a) != spec_hash(b)

    def test_telemetry_specs_not_cacheable(self):
        assert cacheable(SPEC)
        assert not cacheable(dataclasses.replace(SPEC, telemetry=True))

    def test_non_experiment_specs_not_cacheable(self):
        from repro.runner import VolumeSpec

        assert not cacheable(VolumeSpec("audikw_1", (4, 4), "flat"))


class TestRoundTrip:
    def test_record_round_trips_bit_identically(self):
        record = run_experiment(SPEC)
        rs = RunStore()
        rs.put(SPEC, record)
        loaded = rs.get(SPEC)
        assert loaded is not None
        assert loaded.same_outcome(record)
        assert np.array_equal(loaded.compute_busy, record.compute_busy)
        assert loaded.wall_seconds == record.wall_seconds

    def test_loaded_record_carries_callers_spec(self):
        record = run_experiment(SPEC)
        RunStore().put(SPEC, record)
        relabeled = dataclasses.replace(SPEC, label="warm/17")
        loaded = RunStore().get(relabeled)
        assert loaded is not None
        assert loaded.spec.label == "warm/17"
        assert loaded.same_outcome(record)

    def test_miss_on_absent_entry(self):
        assert RunStore().get(SPEC) is None
        assert store_mod.store_stats()["misses"] == 1

    def test_stats_count_round_trip(self):
        record = run_experiment(SPEC)
        rs = RunStore()
        rs.put(SPEC, record)
        rs.get(SPEC)
        stats = store_mod.store_stats()
        assert stats["writes"] == 1 and stats["hits"] == 1
        assert stats["bytes_written"] > 0
        assert stats["bytes_read"] == stats["bytes_written"]


class TestCorruptionTolerance:
    def _stored(self) -> tuple[RunStore, str, RunRecord]:
        record = run_experiment(SPEC)
        rs = RunStore()
        rs.put(SPEC, record)
        return rs, rs.path_for(spec_hash(SPEC)), record

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda blob: blob[: len(blob) // 2],  # truncated
            lambda blob: b"",  # emptied
            lambda blob: b"garbage" * 40,  # wrong magic
            lambda blob: blob[:20] + bytes([blob[20] ^ 0xFF]) + blob[21:],
        ],
        ids=["truncated", "empty", "garbage", "bitflip"],
    )
    def test_corrupt_entry_is_a_miss_then_recomputes(self, corrupt):
        rs, path, record = self._stored()
        with open(path, "rb") as fh:
            blob = fh.read()
        with open(path, "wb") as fh:
            fh.write(corrupt(blob))
        store_mod.reset_stats()
        assert rs.get(SPEC) is None  # detected, not raised
        stats = store_mod.store_stats()
        assert stats["errors"] == 1 and stats["misses"] == 1
        # The recompute path overwrites the bad entry with a good one.
        rs.put(SPEC, record)
        loaded = rs.get(SPEC)
        assert loaded is not None and loaded.same_outcome(record)

    def test_unpicklable_payload_with_valid_crc_is_a_miss(self):
        # crc/length fine, pickle garbage: the last line of defense.
        import struct as structlib
        import zlib

        rs, path, _ = self._stored()
        payload = b"\x80\x05not really a pickle"
        blob = (
            store_mod._HEADER.pack(
                store_mod._MAGIC, zlib.crc32(payload), len(payload)
            )
            + payload
        )
        with open(path, "wb") as fh:
            fh.write(blob)
        store_mod.reset_stats()
        assert rs.get(SPEC) is None
        assert store_mod.store_stats()["errors"] == 1

    def test_put_failure_is_counted_not_raised(self, tmp_path, monkeypatch):
        # Unwritable root: the store is an accelerator, not a dependency.
        record = run_experiment(SPEC)
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the store root should be\n")
        rs = RunStore(str(blocked))
        store_mod.reset_stats()
        rs.put(SPEC, record)  # must not raise
        assert store_mod.store_stats()["errors"] == 1
        assert store_mod.store_stats()["writes"] == 0


class TestRunnerIntegration:
    def test_warm_run_skips_simulation(self, monkeypatch):
        store_mod.configure(enabled=True)
        cold = run_experiment(SPEC)
        # Any attempt to simulate on the warm path is a loud failure.
        import repro.core.pselinv as pselinv

        def _boom(*a, **k):
            raise AssertionError("simulated on a store hit")

        monkeypatch.setattr(pselinv, "SimulatedPSelInv", _boom)
        warm = run_experiment(SPEC)
        assert warm.same_outcome(cold)

    def test_refresh_recomputes_and_overwrites(self):
        store_mod.configure(enabled=True)
        cold = run_experiment(SPEC)
        path = RunStore().path_for(spec_hash(SPEC))
        mtime = os.stat(path).st_mtime_ns
        store_mod.configure(refresh=True)
        refreshed = run_experiment(SPEC)
        assert refreshed.same_outcome(cold)
        assert os.stat(path).st_mtime_ns != mtime  # rewritten

    def test_disabled_store_never_touches_disk(self, tmp_path):
        store_mod.configure(enabled=False)
        run_experiment(SPEC)
        assert not (tmp_path / "store").exists()

    def test_parallel_sweep_merges_store_stats(self):
        from repro.runner import ParallelRunner

        store_mod.configure(enabled=True)
        specs = [
            dataclasses.replace(SPEC, jitter_seed=j, label=f"run{j}")
            for j in range(4)
        ]
        runner = ParallelRunner(jobs=2)
        runner.run(specs)
        warm = ParallelRunner(jobs=2)
        records = warm.run(specs)
        assert len(records) == 4
        # Worker-side store hits made it back to the parent's stats.
        assert warm.stats.get("store.hits") == 4
        snap = warm.metrics_snapshot()
        assert snap["gauges"]["runner.store.hit_rate"] == 1.0
