"""Reproduction tests for the paper's communication-volume claims.

Pins the qualitative content of Table I, Table II, Fig. 4 and Figs. 5-7:

* Flat-Tree: moderate spread, heavy diagonal concentration in the
  Col-Bcast heat map, some ranks far above the mean.
* Binary-Tree: *worse* extremes than Flat -- the minimum collapses (the
  highest rank of a group never forwards) and the maximum and std-dev
  blow up (the lowest ranks forward for every broadcast), showing up as
  stripes in the heat map.
* Shifted Binary-Tree: min raised, max cut, std-dev well below Flat's --
  the "much cooler" heat map of Fig. 5(c).

These hold on our scaled-down proxies just as in the paper because they
are combinatorial properties of the tree families, not of machine speed.
"""

import pytest

from repro.analysis import (
    diagonal_concentration,
    stripe_score,
    tail_fraction,
    uniformity,
    volume_histogram,
)
from repro.core import ProcessorGrid, communication_volumes, volume_summary, iter_plans
from repro.sparse import analyze
from repro.workloads import make_workload

SEED = 20160523


@pytest.fixture(scope="module")
def audikw():
    """The paper's Table I matrix (proxy), narrow supernodes, 8x8 grid."""
    m = make_workload("audikw_1", "small")
    prob = analyze(m, ordering="nd", max_supernode=8)
    grid = ProcessorGrid(8, 8)
    plans = list(iter_plans(prob.struct, grid))
    reports = {
        scheme: communication_volumes(
            prob.struct, grid, scheme, seed=SEED, plans=plans
        )
        for scheme in ("flat", "binary", "shifted", "randperm")
    }
    return prob, grid, reports


class TestTableI:
    """Col-Bcast sent volume statistics (Table I shape)."""

    def test_binary_min_collapses(self, audikw):
        _, _, reports = audikw
        s_flat = volume_summary(reports["flat"].col_bcast_sent())
        s_bin = volume_summary(reports["binary"].col_bcast_sent())
        # Paper: 1.46 MB vs 28.99 MB -- a collapse by an order of
        # magnitude; we require at least 2x.
        assert s_bin["min"] < s_flat["min"] / 2

    def test_binary_max_exceeds_flat(self, audikw):
        _, _, reports = audikw
        s_flat = volume_summary(reports["flat"].col_bcast_sent())
        s_bin = volume_summary(reports["binary"].col_bcast_sent())
        # Paper: 97.1 MB vs 69.5 MB.
        assert s_bin["max"] > s_flat["max"]

    def test_binary_std_exceeds_flat(self, audikw):
        _, _, reports = audikw
        s_flat = volume_summary(reports["flat"].col_bcast_sent())
        s_bin = volume_summary(reports["binary"].col_bcast_sent())
        # Paper: 27.4 MB vs 8.2 MB.
        assert s_bin["std"] > 2 * s_flat["std"]

    def test_binary_median_not_worse_than_flat(self, audikw):
        _, _, reports = audikw
        s_flat = volume_summary(reports["flat"].col_bcast_sent())
        s_bin = volume_summary(reports["binary"].col_bcast_sent())
        # Paper: median drops 40.8 -> 36.9 MB ("most nodes see their
        # load decreased").
        assert s_bin["median"] <= s_flat["median"] * 1.05

    def test_shifted_tightens_both_ends(self, audikw):
        _, _, reports = audikw
        s_flat = volume_summary(reports["flat"].col_bcast_sent())
        s_sh = volume_summary(reports["shifted"].col_bcast_sent())
        # Paper: [29.0, 69.5] -> [33.6, 54.1] MB.
        assert s_sh["min"] > s_flat["min"]
        assert s_sh["max"] < s_flat["max"]

    def test_shifted_std_well_below_flat(self, audikw):
        _, _, reports = audikw
        s_flat = volume_summary(reports["flat"].col_bcast_sent())
        s_sh = volume_summary(reports["shifted"].col_bcast_sent())
        # Paper: 8.2 -> 3.3 MB (2.5x); we require at least 1.5x.
        assert s_sh["std"] < s_flat["std"] / 1.5

    def test_shifted_std_well_below_binary(self, audikw):
        _, _, reports = audikw
        s_bin = volume_summary(reports["binary"].col_bcast_sent())
        s_sh = volume_summary(reports["shifted"].col_bcast_sent())
        assert s_sh["std"] < s_bin["std"] / 3


class TestTableII:
    """Row-Reduce received volume across all six workload proxies."""

    @pytest.mark.parametrize(
        "name",
        [
            "DG_PNF14000",
            "DG_Water_12888",
            "audikw_1",
        ],
    )
    def test_shifted_balances_rowreduce(self, name):
        m = make_workload(name, "tiny")
        prob = analyze(m, ordering="nd", max_supernode=6)
        grid = ProcessorGrid(4, 4)
        plans = list(iter_plans(prob.struct, grid))
        rep = {
            s: communication_volumes(
                prob.struct, grid, s, seed=SEED, plans=plans
            )
            for s in ("flat", "binary", "shifted")
        }
        s_bin = volume_summary(rep["binary"].row_reduce_received())
        s_sh = volume_summary(rep["shifted"].row_reduce_received())
        # Universal signature at any scale: shifted's spread is far
        # tighter than binary's.
        assert s_sh["std"] <= s_bin["std"]
        assert s_sh["min"] >= s_bin["min"]


class TestFig4Histograms:
    def test_flat_has_heavy_tail_binary_bimodal_shifted_tight(self, audikw):
        _, _, reports = audikw
        flat = reports["flat"].col_bcast_sent()
        bin_ = reports["binary"].col_bcast_sent()
        sh = reports["shifted"].col_bcast_sent()
        # Binary: a substantial fraction of ranks nearly idle AND a
        # substantial fraction far above the mean (bimodal extremes).
        assert (bin_ < 0.5 * bin_.mean()).mean() > 0.1
        assert tail_fraction(bin_, factor=1.5) > 0.05
        # Shifted: nobody above 1.5x mean.
        assert tail_fraction(sh, factor=1.5) == 0.0
        # Shifted's histogram mass concentrates in fewer bins than flat's
        # on a shared axis.
        rng = (0.0, float(max(flat.max(), sh.max())) / 1e6)
        cf, _ = volume_histogram(flat, bins=20, range_=rng)
        cs, _ = volume_histogram(sh, bins=20, range_=rng)
        assert (cs > 0).sum() <= (cf > 0).sum()


class TestFig5Heatmaps:
    def test_flat_concentrates_near_diagonal(self, audikw):
        # The diagonal-block broadcasts root at (K mod P, K mod P): on a
        # square grid those are the grid-diagonal ranks, and under Flat
        # they bear the whole group's volume -- Fig. 5(a)'s hot diagonal.
        _, grid, reports = audikw
        hm_flat = reports["flat"].heatmap("col-bcast-total")
        hm_sh = reports["shifted"].heatmap("col-bcast-total")
        assert diagonal_concentration(hm_flat) > 1.02
        assert diagonal_concentration(hm_flat) > diagonal_concentration(hm_sh)

    def test_binary_shows_stripes(self, audikw):
        _, _, reports = audikw
        hm_bin = reports["binary"].heatmap("col-bcast-total")
        hm_sh = reports["shifted"].heatmap("col-bcast-total")
        # Column broadcasts forward along grid columns; the hot internal
        # ranks make horizontal stripes: row structure explains much of
        # the binary map's variance and almost none of the shifted map's.
        assert stripe_score(hm_bin, axis=0) > 0.8  # near-pure stripes
        assert stripe_score(hm_bin, axis=0) > 2 * stripe_score(hm_sh, axis=0)

    def test_shifted_map_is_coolest(self, audikw):
        _, _, reports = audikw
        u = {
            s: uniformity(reports[s].heatmap("col-bcast-total"))
            for s in ("flat", "binary", "shifted")
        }
        assert u["shifted"] < u["flat"] < u["binary"]


class TestFig6SmallGridEffect:
    def test_imbalance_grows_with_grid(self):
        """Paper §IV-A: relative std of Flat-Tree volume is much lower on
        a 16x16 grid (10.2%) than on 46x46 (19.2%).  Same direction here
        with 4x4 vs 12x12."""
        m = make_workload("audikw_1", "small")
        prob = analyze(m, ordering="nd", max_supernode=8)
        rel = {}
        for p in (4, 12):
            grid = ProcessorGrid(p, p)
            rep = communication_volumes(prob.struct, grid, "flat", seed=SEED)
            v = rep.col_bcast_sent()
            rel[p] = v.std() / v.mean()
        assert rel[4] < rel[12]


class TestRandPermAblation:
    def test_randperm_no_better_balanced_than_shifted(self, audikw):
        """The paper rejects the full random permutation; at minimum it
        must not beat the shifted tree's balance, and it destroys rank
        locality (checked in the timing ablation bench)."""
        _, _, reports = audikw
        s_rp = volume_summary(reports["randperm"].col_bcast_sent())
        s_sh = volume_summary(reports["shifted"].col_bcast_sent())
        assert s_rp["std"] >= s_sh["std"] * 0.8
