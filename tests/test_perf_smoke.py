"""Tier-1 perf smoke test: the vectorized engine must actually engage.

Not a benchmark -- the wall-clock budget is deliberately generous (an
order of magnitude above observed time) so the test only fails when the
fast path silently falls back to per-collective work or a refactor
reintroduces a quadratic loop.  The cache-counter assertions catch the
sneakier failure mode: everything still *works* but nothing is cached,
so every collective rebuilds its tree from scratch.
"""

import time

import pytest

from repro.comm.trees import tree_cache_clear, tree_cache_info
from repro.core import ProcessorGrid, communication_volumes
from repro.core.volume import reset_volume_engine_stats, volume_engine_stats
from repro.sparse import analyze
from repro.workloads import make_workload

# Generous: the computation below takes well under a second on any
# machine this repo targets.
WALL_BUDGET_SECONDS = 20.0


@pytest.fixture(scope="module")
def problem():
    return analyze(make_workload("audikw_1", "tiny"), ordering="nd")


def test_volume_engine_fast_path_engaged(problem):
    tree_cache_clear()
    reset_volume_engine_stats()
    grid = ProcessorGrid(6, 6)

    t0 = time.perf_counter()
    for scheme in ("flat", "binary", "shifted", "randperm"):
        for seed in (1, 1):  # repeated seed: the second pass must hit caches
            communication_volumes(problem.struct, grid, scheme, seed=seed)
    elapsed = time.perf_counter() - t0
    assert elapsed < WALL_BUDGET_SECONDS, (
        f"volume computation took {elapsed:.1f}s -- vectorized path "
        "regressed or is not being taken"
    )

    stats = volume_engine_stats()
    # The vectorized engine ran (and the reference oracle did not).
    assert stats["vectorized_calls"] == 8
    assert stats["reference_calls"] == 0
    assert stats["collectives"] > 0
    # Grouping is effective: strictly fewer groups than collectives.
    assert 0 < stats["groups"] < stats["collectives"]

    # The tree cache saw traffic and produced hits (randperm resolves
    # every collective through it; the second identical pass must reuse
    # the first pass's entries).
    cache = tree_cache_info()
    assert cache["hits"] > 0, f"tree cache never hit: {cache}"
    assert cache["misses"] > 0


def test_des_trees_share_the_cache(problem):
    """The simulator's build_tree calls go through the same cache."""
    from repro.core import SimulatedPSelInv

    tree_cache_clear()
    grid = ProcessorGrid(4, 4)
    SimulatedPSelInv(problem.struct, grid, "shifted", seed=3).run()
    first = tree_cache_info()
    assert first["misses"] > 0
    # The analytic model over the same configuration reuses the DES's
    # shifted trees (same canonical keys) instead of rebuilding them.
    communication_volumes(problem.struct, grid, "randperm", seed=3)
    SimulatedPSelInv(problem.struct, grid, "shifted", seed=3).run()
    assert tree_cache_info()["hits"] > first["hits"]
