"""Tests for communication-tree construction (the paper's §III schemes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    CommTree,
    binary_tree,
    build_tree,
    derive_seed,
    flat_tree,
    hybrid_tree,
    random_perm_tree,
    shifted_binary_tree,
)


def check_valid_tree(tree: CommTree, root: int, participants: set[int]):
    """Structural invariants every scheme must satisfy."""
    assert tree.root == root
    assert set(tree.ranks()) == participants
    assert tree.size == len(participants)
    # Every non-root has exactly one parent, and edges are consistent.
    seen = {root}
    for r in tree.ranks():
        for c in tree.children.get(r, ()):
            assert tree.parent[c] == r
            assert c not in seen, "rank reached twice: not a tree"
            seen.add(c)
    assert seen == participants, "tree does not span the participants"


PARTICIPANT_SETS = [
    {4},
    {1, 4},
    {1, 2, 3, 4, 5, 6},
    set(range(0, 40, 3)),
    set(range(100)),
]


@pytest.mark.parametrize("participants", PARTICIPANT_SETS)
@pytest.mark.parametrize(
    "scheme", ["flat", "binary", "shifted", "randperm", "hybrid"]
)
def test_all_schemes_produce_valid_trees(scheme, participants):
    root = max(participants)
    tree = build_tree(scheme, root, participants, seed=7)
    check_valid_tree(tree, root, set(participants))


class TestFlatTree:
    def test_star_shape(self):
        tree = flat_tree(4, {1, 2, 3, 4, 5, 6})
        assert tree.child_count(4) == 5
        assert tree.depth() == 1
        for r in (1, 2, 3, 5, 6):
            assert tree.is_leaf(r)

    def test_root_only(self):
        tree = flat_tree(0, {0})
        assert tree.size == 1 and tree.depth() == 0


class TestBinaryTree:
    def test_paper_figure_3b(self):
        # Root P4, participants P1..P6: P4 -> {P1, P5}; P1 -> {P2, P3};
        # P5 -> {P6}.  (Paper Fig. 3(b), 1-based labels.)
        tree = binary_tree(4, {1, 2, 3, 4, 5, 6})
        assert set(tree.children[4]) == {1, 5}
        assert set(tree.children[1]) == {2, 3}
        assert set(tree.children[5]) == {6}
        assert tree.depth() == 2

    def test_root_degree_at_most_two(self):
        for n in (2, 5, 17, 64, 200):
            tree = binary_tree(0, set(range(n)))
            assert tree.child_count(0) <= 2

    def test_logarithmic_depth(self):
        for n in (2, 8, 33, 100, 257):
            tree = binary_tree(0, set(range(n)))
            assert tree.depth() <= int(np.ceil(np.log2(n))) + 1

    def test_lowest_nonroot_is_internal_highest_is_leaf(self):
        # The paper's §III observation: with the sorted ordering, the
        # highest rank never forwards; the lowest non-root rank always
        # does (for groups of more than ~3 ranks).
        for n in (8, 20, 50):
            ranks = set(range(10, 10 + n))
            tree = binary_tree(10 + n // 2, ranks)
            assert tree.is_leaf(10 + n - 1) or 10 + n - 1 == 10 + n // 2
            lowest = 10
            assert tree.child_count(lowest) > 0

    def test_deterministic(self):
        t1 = binary_tree(3, {1, 2, 3, 4, 5})
        t2 = binary_tree(3, {1, 2, 3, 4, 5})
        assert t1.order == t2.order and t1.parent == t2.parent


class TestShiftedBinaryTree:
    def test_paper_figure_3c_is_a_rotation(self):
        # The construction order must be the root followed by a circular
        # rotation of the sorted non-root ranks (paper Fig. 3(c)).
        tree = shifted_binary_tree(4, {1, 2, 3, 4, 5, 6}, seed=123)
        order = list(tree.order)
        assert order[0] == 4
        rest = order[1:]
        sorted_rest = [1, 2, 3, 5, 6]
        k = sorted_rest.index(rest[0])
        assert rest == sorted_rest[k:] + sorted_rest[:k]

    def test_seed_changes_rotation(self):
        participants = set(range(20))
        orders = {
            shifted_binary_tree(0, participants, seed=s).order
            for s in range(12)
        }
        assert len(orders) > 1, "seed must influence the rotation"

    def test_same_seed_same_tree(self):
        p = set(range(15))
        t1 = shifted_binary_tree(3, p, seed=42)
        t2 = shifted_binary_tree(3, p, seed=42)
        assert t1.order == t2.order

    def test_internal_nodes_vary_across_seeds(self):
        # The whole point of the heuristic: different collectives pick
        # different internal (forwarding) nodes.
        p = set(range(24))
        internal_sets = set()
        for s in range(30):
            t = shifted_binary_tree(0, p, seed=s)
            internal_sets.add(tuple(sorted(t.internal_ranks())))
        assert len(internal_sets) >= 10

    def test_depth_still_logarithmic(self):
        for n in (8, 64, 150):
            t = shifted_binary_tree(0, set(range(n)), seed=5)
            assert t.depth() <= int(np.ceil(np.log2(n))) + 1


class TestRandomPermTree:
    def test_order_is_permutation_not_rotation(self):
        p = set(range(30))
        rotations = 0
        trials = 20
        for s in range(trials):
            t = random_perm_tree(0, p, seed=s)
            rest = list(t.order[1:])
            sorted_rest = sorted(rest)
            k = sorted_rest.index(rest[0])
            if rest == sorted_rest[k:] + sorted_rest[:k]:
                rotations += 1
        assert rotations < trials // 2


class TestHybridTree:
    def test_small_groups_are_flat(self):
        t = hybrid_tree(0, set(range(6)), seed=1, threshold=8)
        assert t.depth() == 1

    def test_large_groups_are_shifted_binary(self):
        t = hybrid_tree(0, set(range(30)), seed=1, threshold=8)
        assert t.depth() > 1
        assert t.child_count(0) <= 2


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_component_sensitivity(self):
        seeds = {derive_seed(7, k, i) for k in range(10) for i in range(10)}
        assert len(seeds) == 100

    def test_nonnegative_31bit(self):
        for k in range(50):
            s = derive_seed(123456789, k)
            assert 0 <= s < 2**31


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError, match="unknown tree scheme"):
        build_tree("bogus", 0, {0, 1})


@settings(max_examples=60, deadline=None)
@given(
    st.sets(st.integers(0, 500), min_size=1, max_size=64),
    st.integers(0, 2**31 - 1),
    st.sampled_from(["flat", "binary", "shifted", "randperm", "hybrid"]),
)
def test_tree_invariants_property(participants, seed, scheme):
    """Any scheme, any participant set: a valid spanning tree rooted at
    the designated root, with binary-family degree/depth bounds."""
    root = sorted(participants)[len(participants) // 2]
    tree = build_tree(scheme, root, participants, seed)
    check_valid_tree(tree, root, set(participants))
    if scheme in ("binary", "shifted", "randperm"):
        assert tree.child_count(root) <= 2
        for r in tree.ranks():
            assert tree.child_count(r) <= 2
        if tree.size > 1:
            assert tree.depth() <= int(np.ceil(np.log2(tree.size))) + 1


class TestMemoizedRandomness:
    """The rotation offset / permutation memoization must be invisible:
    identical draws to constructing a fresh Generator per collective."""

    def test_rotation_offset_matches_fresh_generator(self):
        from repro.comm.trees import rotation_offset

        for seed in (0, 1, 42, 123, 20160523, 2**31 - 1):
            for n in (2, 3, 8, 23, 46, 100):
                expect = int(np.random.default_rng(seed).integers(n))
                assert rotation_offset(seed, n) == expect
                # Second (cached) call returns the same value.
                assert rotation_offset(seed, n) == expect

    def test_rotation_offset_pinned_values(self):
        # Hard-pinned against numpy's PCG64 stream: a numpy upgrade that
        # changes these silently changes every shifted-tree experiment.
        from repro.comm.trees import rotation_offset

        assert rotation_offset(0, 5) == 4
        assert rotation_offset(42, 8) == 0
        assert rotation_offset(123, 23) == 0
        assert rotation_offset(20160523, 46) == 5
        assert rotation_offset(7, 2) == 1

    def test_permutation_matches_fresh_generator(self):
        from repro.comm.trees import permutation_indices

        for seed in (0, 99, 20160523):
            for n in (2, 6, 17):
                expect = tuple(
                    int(i) for i in np.random.default_rng(seed).permutation(n)
                )
                assert permutation_indices(seed, n) == expect

    def test_permutation_pinned_values(self):
        from repro.comm.trees import permutation_indices

        assert permutation_indices(99, 6) == (0, 3, 4, 5, 2, 1)

    def test_shifted_tree_shape_pinned(self):
        # Full regression pin of one shifted tree (construction order and
        # edges), guarding both the memoization and the array fast path.
        t = shifted_binary_tree(4, {1, 2, 3, 4, 5, 6}, seed=123)
        assert t.order == (4, 1, 2, 3, 5, 6)
        assert t.parent == {1: 4, 5: 4, 6: 5, 2: 1, 3: 1}

    def test_random_perm_tree_shape_pinned(self):
        t = random_perm_tree(0, set(range(7)), seed=99)
        assert t.order == (0, 1, 4, 5, 6, 3, 2)


class TestArrayFastPath:
    """build_tree routes through the cached array engine; the per-scheme
    dict constructors above are the spec it must reproduce exactly."""

    @pytest.mark.parametrize(
        "scheme", ["flat", "binary", "binomial", "shifted", "randperm", "hybrid"]
    )
    def test_build_tree_matches_dict_constructors(self, scheme):
        import random

        from repro.comm.trees import binomial_tree

        constructors = {
            "flat": lambda r, p, s: flat_tree(r, p),
            "binary": lambda r, p, s: binary_tree(r, p),
            "binomial": lambda r, p, s: binomial_tree(r, p),
            "shifted": shifted_binary_tree,
            "randperm": random_perm_tree,
            "hybrid": lambda r, p, s: hybrid_tree(r, p, s, threshold=8),
        }
        rnd = random.Random(1234)
        for _ in range(60):
            n = rnd.randint(1, 50)
            parts = set(rnd.sample(range(300), n))
            root = rnd.choice(sorted(parts))
            seed = rnd.randint(0, 2**31 - 1)
            fast = build_tree(scheme, root, parts, seed)
            ref = constructors[scheme](root, parts, seed)
            assert fast.order == ref.order
            assert fast.parent == ref.parent
            assert fast.children == ref.children

    def test_tree_arrays_consistent_with_comm_tree(self):
        from repro.comm.trees import tree_arrays

        arrs = tree_arrays("shifted", 3, range(20), seed=5)
        tree = arrs.to_comm_tree()
        assert tree.root == 3
        assert list(arrs.ranks) == list(tree.order)
        for i, r in enumerate(tree.order):
            assert arrs.child_counts[i] == tree.child_count(r)
            if r != tree.root:
                assert tree.parent[r] == tree.order[arrs.parent_pos[i]]
        assert arrs.max_degree == max(
            tree.child_count(r) for r in tree.ranks()
        )


class TestStructureCacheRelabeling:
    """The structure cache + relabel path must be *bit-identical* to
    direct construction: the cache stores rank-free shapes keyed on
    ``(scheme, p, offset/perm)`` and lays the caller's ranks on at
    lookup, so any divergence here silently changes every experiment."""

    CONSTRUCTORS = {
        "flat": lambda r, p, s: flat_tree(r, p),
        "binary": lambda r, p, s: binary_tree(r, p),
        "shifted": shifted_binary_tree,
        "randperm": random_perm_tree,
        "hybrid": lambda r, p, s: hybrid_tree(r, p, s, threshold=8),
    }

    @settings(max_examples=120, deadline=None)
    @given(
        st.sets(st.integers(0, 2000), min_size=1, max_size=48),
        st.integers(0, 2**31 - 1),
        st.sampled_from(["flat", "binary", "binomial", "shifted", "randperm", "hybrid"]),
        st.integers(0, 2**31 - 1),
    )
    def test_relabel_bit_identical_to_direct_construction(
        self, participants, seed, scheme, root_pick
    ):
        from repro.comm.trees import binomial_tree, tree_arrays

        ranks = sorted(participants)
        root = ranks[root_pick % len(ranks)]
        arrs = tree_arrays(scheme, root, participants, seed)
        fast = arrs.to_comm_tree()
        ctors = {**self.CONSTRUCTORS, "binomial": lambda r, p, s: binomial_tree(r, p)}
        ref = ctors[scheme](root, set(participants), seed)
        assert fast.order == ref.order
        assert fast.parent == ref.parent
        assert fast.children == ref.children
        # The ndarray view agrees elementwise with the dict order too
        # (int64 exactness, not just same set of ranks).
        assert arrs.ranks.dtype == np.int64
        assert tuple(int(r) for r in arrs.ranks) == ref.order

    @settings(max_examples=40, deadline=None)
    @given(
        st.sets(st.integers(0, 500), min_size=2, max_size=32),
        st.sets(st.integers(600, 1100), min_size=2, max_size=32),
        st.integers(0, 2**31 - 1),
        st.sampled_from(["flat", "binary", "binomial", "shifted", "randperm"]),
    )
    def test_same_size_groups_share_one_structure(self, a, b, seed, scheme):
        """Two disjoint rank sets of equal size (same seed) must share
        the cached structure object -- the property that collapses the
        keyspace from per-collective to per-(size, offset)."""
        from repro.comm.trees import tree_arrays

        size = min(len(a), len(b))
        a, b = sorted(a)[:size], sorted(b)[:size]
        ta = tree_arrays(scheme, a[0], a, seed)
        tb = tree_arrays(scheme, b[0], b, seed)
        assert ta.parent_pos is tb.parent_pos
        assert ta.child_counts is tb.child_counts
        assert ta.family == tb.family


class TestBinomialTree:
    def test_parent_clears_highest_bit(self):
        from repro.comm import binomial_tree

        tree = binomial_tree(0, set(range(16)))
        for r in range(1, 16):
            expect = r - (1 << (r.bit_length() - 1))
            assert tree.parent[r] == expect

    def test_root_degree_is_log_p(self):
        from repro.comm import binomial_tree

        for k in (2, 3, 4, 5):
            tree = binomial_tree(0, set(range(1 << k)))
            assert tree.child_count(0) == k
            assert tree.depth() == k

    def test_valid_spanning_tree_arbitrary_sets(self):
        from repro.comm import binomial_tree

        for participants in ({3}, {1, 9}, set(range(0, 77, 3))):
            root = max(participants)
            tree = binomial_tree(root, participants)
            check_valid_tree(tree, root, set(participants))

    def test_depth_logarithmic_non_power_of_two(self):
        from repro.comm import binomial_tree

        tree = binomial_tree(0, set(range(100)))
        assert tree.depth() <= 7

    def test_build_tree_dispatch(self):
        from repro.comm import build_tree

        tree = build_tree("binomial", 5, set(range(10)))
        check_valid_tree(tree, 5, set(range(10)))

    def test_deterministic_forwarders_like_binary(self):
        """Binomial shares binary's flaw: fixed internal nodes across
        collectives (the motivation for the shifted variant applies)."""
        from repro.comm import binomial_tree

        group = set(range(12))
        t1 = binomial_tree(0, group)
        t2 = binomial_tree(0, group)
        assert t1.internal_ranks() == t2.internal_ranks()
