"""The vectorized volume engine must match the reference bit-for-bit.

``communication_volumes`` groups collectives and charges them with bulk
numpy operations; ``_communication_volumes_reference`` builds one tree
per collective and loops over ranks in Python.  Any divergence -- in any
counter, for any scheme, on any participant set -- is a bug in the
vectorized engine, because the reference is the spec the DES is pinned
against.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.trees import (
    TREE_SCHEMES,
    build_tree,
    tree_arrays,
    tree_cache_clear,
    tree_cache_info,
    tree_cache_resize,
)
from repro.core import ProcessorGrid, communication_volumes
from repro.core.plan import CollectiveSpec, PointToPointSpec, SupernodePlan
from repro.core.volume import _communication_volumes_reference

KINDS = ["diag-bcast", "col-bcast", "row-reduce", "col-reduce"]


def _plan_from_specs(k, collectives, p2ps):
    """Wrap raw specs in a SupernodePlan (the engines only iterate)."""
    return SupernodePlan(
        k=k,
        width=1,
        blocks=[],
        diag_owner=0,
        diag_bcast=None,
        cross_sends=list(p2ps),
        col_bcasts=list(collectives),
        row_reduces=[],
        col_reduce=None,
        cross_backs=[],
    )


def assert_reports_equal(ref, vec):
    assert ref.scheme == vec.scheme
    assert set(ref.sent) == set(vec.sent)
    assert set(ref.received) == set(vec.received)
    assert set(ref.messages) == set(vec.messages)
    assert ref.max_degree == vec.max_degree
    for table_name in ("sent", "received", "messages"):
        rt, vt = getattr(ref, table_name), getattr(vec, table_name)
        for kind, arr in rt.items():
            assert arr.dtype == np.int64
            assert vt[kind].dtype == np.int64
            np.testing.assert_array_equal(
                arr, vt[kind], err_msg=f"{kind}/{table_name}"
            )


@st.composite
def synthetic_plans(draw):
    """A random batch of collectives + point-to-points on a small grid."""
    size = draw(st.integers(4, 40))
    n_coll = draw(st.integers(1, 25))
    collectives = []
    for i in range(n_coll):
        kind = draw(st.sampled_from(KINDS))
        participants = tuple(
            sorted(
                draw(
                    st.sets(
                        st.integers(0, size - 1), min_size=1, max_size=size
                    )
                )
            )
        )
        root = draw(st.sampled_from(participants))
        nbytes = draw(st.integers(0, 10**6))
        collectives.append(
            CollectiveSpec(
                kind=kind,
                key=(kind[:2], i),
                root=root,
                participants=participants,
                nbytes=nbytes,
            )
        )
    p2ps = []
    for i in range(draw(st.integers(0, 8))):
        src = draw(st.integers(0, size - 1))
        dst = draw(st.integers(0, size - 1))
        kind = draw(st.sampled_from(["cross-send", "cross-back"]))
        p2ps.append(
            PointToPointSpec(
                kind=kind,
                key=("p2p", i),
                src=src,
                dst=dst,
                nbytes=draw(st.integers(0, 10**6)),
            )
        )
    return size, [_plan_from_specs(0, collectives, p2ps)]


@settings(max_examples=120, deadline=None)
@given(
    synthetic_plans(),
    st.sampled_from(TREE_SCHEMES),
    st.integers(0, 2**31 - 1),
    st.booleans(),
)
def test_vectorized_matches_reference_property(plans_spec, scheme, seed, cross):
    size, plans = plans_spec
    grid = ProcessorGrid(1, size)
    ref = _communication_volumes_reference(
        None, grid, scheme, seed=seed, include_cross=cross, plans=plans
    )
    vec = communication_volumes(
        None, grid, scheme, seed=seed, include_cross=cross, plans=plans
    )
    assert_reports_equal(ref, vec)


@pytest.mark.parametrize("scheme", TREE_SCHEMES)
@pytest.mark.parametrize("grid_shape", [(4, 4), (3, 5), (1, 1)])
def test_vectorized_matches_reference_workload(scheme, grid_shape):
    from repro.sparse import analyze
    from repro.workloads import make_workload

    prob = analyze(make_workload("audikw_1", "tiny"), ordering="nd")
    grid = ProcessorGrid(*grid_shape)
    for seed in (0, 20160523):
        ref = _communication_volumes_reference(
            prob.struct, grid, scheme, seed=seed
        )
        vec = communication_volumes(prob.struct, grid, scheme, seed=seed)
        assert_reports_equal(ref, vec)


def test_unknown_scheme_rejected_upfront():
    with pytest.raises(ValueError, match="unknown tree scheme"):
        communication_volumes(None, ProcessorGrid(2, 2), "bogus", plans=[])


def test_heatmap_direction_validated():
    grid = ProcessorGrid(2, 2)
    rep = communication_volumes(None, grid, "flat", plans=[])
    with pytest.raises(ValueError, match="unknown heatmap direction"):
        rep.heatmap("col-bcast", "snet")
    # The two valid spellings still work.
    assert rep.heatmap("col-bcast", "sent").shape == (2, 2)
    assert rep.heatmap("col-bcast", "received").shape == (2, 2)


class TestTreeCacheEviction:
    """A tiny cache must still return *correct* trees, just more slowly."""

    def teardown_method(self):
        tree_cache_resize(1 << 16)
        tree_cache_clear()

    def test_eviction_preserves_correctness(self):
        tree_cache_clear()
        tree_cache_resize(4)
        groups = [set(range(r, r + 9)) for r in range(30)]
        expected = {}
        for i, g in enumerate(groups):
            root = min(g)
            expected[i] = build_tree("shifted", root, g, seed=i)
        info = tree_cache_info()
        assert info["size"] <= 4
        assert info["evictions"] > 0
        # Re-request everything (all evicted by now): same trees again.
        for i, g in enumerate(groups):
            root = min(g)
            t = build_tree("shifted", root, g, seed=i)
            e = expected[i]
            assert t.order == e.order
            assert t.parent == e.parent
            assert t.children == e.children

    def test_cache_hit_shares_structure_arrays(self):
        # The cache holds rank-free structures: repeated calls return
        # equal TreeArrays whose shape arrays are the *same* objects
        # (relabeling only lays ranks onto the cached structure).
        tree_cache_clear()
        a1 = tree_arrays("binary", 0, range(10))
        a2 = tree_arrays("binary", 0, range(10))
        assert (a1.ranks == a2.ranks).all()
        assert a1.parent_pos is a2.parent_pos
        assert a1.child_counts is a2.child_counts
        assert a1.max_degree == a2.max_degree and a1.family == a2.family
        info = tree_cache_info()
        assert info["hits"] >= 1

    def test_structure_cache_shared_across_rank_sets(self):
        # The tentpole property: collectives over *different* rank sets
        # of the same size hit the same cache entry instead of each
        # claiming their own — the keyspace no longer scales with the
        # number of distinct (root, participants) pairs.
        tree_cache_clear()
        tree_arrays("binary", 0, range(10))
        info = tree_cache_info()
        for base in range(1, 50):
            tree_arrays("binary", base, range(base, base + 10))
        after = tree_cache_info()
        assert after["size"] == info["size"] == 1
        assert after["hits"] == info["hits"] + 49
        assert after["misses"] == info["misses"]

    def test_resize_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            tree_cache_resize(0)

    def test_resize_shrink_counts_evictions_exactly(self):
        # Shrinking must evict through the same counter as put(): the
        # eviction count rises by exactly the number of dropped entries
        # and size lands at the new capacity (no drift between the two
        # code paths -- the old resize duplicated the loop and could).
        tree_cache_clear()
        for n in range(2, 12):  # 10 distinct (scheme, p) structures
            tree_arrays("binary", 0, range(n))
        before = tree_cache_info()
        assert before["size"] == 10 and before["evictions"] == 0
        tree_cache_resize(3)
        after = tree_cache_info()
        assert after["size"] == 3
        assert after["evictions"] == before["size"] - 3
        assert after["maxsize"] == 3
        # Growing evicts nothing.
        tree_cache_resize(100)
        assert tree_cache_info()["evictions"] == after["evictions"]

    def test_eviction_counter_consistent_under_churn(self):
        # Invariant: evictions == total inserts (misses) - live entries,
        # under any interleaving of puts and resizes.
        tree_cache_clear()
        tree_cache_resize(4)
        for n in range(2, 30):
            tree_arrays("binary", 0, range(n))
        tree_cache_resize(2)
        for n in range(2, 12):
            tree_arrays("flat", 0, range(n))
        info = tree_cache_info()
        assert info["evictions"] == info["misses"] - info["size"]

    def test_env_cache_size_invalid_raises_clear_error(self, monkeypatch):
        # A malformed REPRO_TREE_CACHE_SIZE must fail at first cache use
        # with an error naming the knob -- not crash `import repro`.
        from repro.comm import trees

        monkeypatch.setattr(trees, "_TREE_CACHE", None)
        monkeypatch.setenv("REPRO_TREE_CACHE_SIZE", "lots")
        with pytest.raises(ValueError, match="REPRO_TREE_CACHE_SIZE"):
            tree_arrays("binary", 0, range(4))
        monkeypatch.setenv("REPRO_TREE_CACHE_SIZE", "-3")
        with pytest.raises(ValueError, match="REPRO_TREE_CACHE_SIZE"):
            tree_cache_info()
        # Valid value: the lazy init succeeds and applies the capacity.
        monkeypatch.setenv("REPRO_TREE_CACHE_SIZE", "17")
        assert tree_cache_info()["maxsize"] == 17
        # Restore the shared cache for other tests (teardown_method then
        # resizes/clears it).
        monkeypatch.setattr(trees, "_TREE_CACHE", None)
        monkeypatch.delenv("REPRO_TREE_CACHE_SIZE")
        assert tree_cache_info()["maxsize"] == 1 << 16
