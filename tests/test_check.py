"""Tests for the communication-correctness analyzer (``repro.check``).

Covers the three passes on clean inputs (every diagnostic list empty on
real plans of a tiny workload, trace validation of full DES runs) and on
the seeded known-bad fixtures the issue demands: a deliberately cyclic
wait-for graph, a tag duplicated across overlapping liveness windows, a
tree with an orphaned rank, and an unseeded random construction -- each
yielding exactly one diagnostic with a stable code.
"""

import numpy as np
import pytest

from repro.check import (
    CODE_DESCRIPTIONS,
    Diagnostic,
    HBGraph,
    build_hb_model,
    check_deadlock_freedom,
    diagnose_graph,
    lint_source,
    lint_tree,
    liveness_windows,
    validate_trace,
    verify_plans,
)
from repro.cli import main
from repro.comm import TreeBroadcast, TreeReduce, build_tree
from repro.comm.trees import CommTree
from repro.core import ProcessorGrid, SimulatedPSelInv, iter_plans
from repro.core.plan import BlockInfo, CollectiveSpec, SupernodePlan
from repro.simulate import Machine, Network, NetworkConfig
from repro.sparse import analyze
from repro.workloads import grid_laplacian_2d


@pytest.fixture(scope="module")
def problem():
    return analyze(
        grid_laplacian_2d(10, 10, rng=np.random.default_rng(0)), ordering="nd"
    )


@pytest.fixture(scope="module")
def grid():
    return ProcessorGrid(3, 3)


@pytest.fixture(scope="module")
def plans(problem, grid):
    return list(iter_plans(problem.struct, grid))


def _plan(k, *, blocks=(), diag_bcast=None, col_bcasts=(), row_reduces=(),
          cross_sends=(), cross_backs=(), col_reduce=None, diag_owner=0):
    """Minimal hand-rolled SupernodePlan for known-bad fixtures."""
    return SupernodePlan(
        k=k,
        width=2,
        blocks=list(blocks),
        diag_owner=diag_owner,
        diag_bcast=diag_bcast,
        cross_sends=list(cross_sends),
        col_bcasts=list(col_bcasts),
        row_reduces=list(row_reduces),
        col_reduce=col_reduce,
        cross_backs=list(cross_backs),
    )


def _bcast(key, root=0, parts=(0, 1, 2), nbytes=64):
    return CollectiveSpec(
        kind="diag-bcast", key=key, root=root,
        participants=tuple(parts), nbytes=nbytes,
    )


class TestPlanLintClean:
    @pytest.mark.parametrize("scheme", ["flat", "binary", "shifted"])
    def test_real_plans_verify_clean(self, plans, grid, scheme):
        assert verify_plans(plans, grid, scheme, seed=7) == []


class TestPlanLintKnownBad:
    def test_root_not_participant(self, grid):
        bad = _plan(0, diag_bcast=_bcast(("db", 0), root=5, parts=(0, 1)))
        diags = verify_plans([bad], grid, "flat", check_trees=False)
        assert [d.code for d in diags] == ["PLAN001"]

    def test_duplicate_participants(self, grid):
        bad = _plan(0, diag_bcast=_bcast(("db", 0), parts=(0, 1, 1)))
        diags = verify_plans([bad], grid, "flat", check_trees=False)
        assert [d.code for d in diags] == ["PLAN002"]

    def test_off_grid_participant(self, grid):
        bad = _plan(0, diag_bcast=_bcast(("db", 0), parts=(0, 1, 99)))
        diags = verify_plans([bad], grid, "flat", check_trees=False)
        assert [d.code for d in diags] == ["PLAN003"]
        assert "99" in diags[0].message

    def test_nonpositive_payload(self, grid):
        bad = _plan(0, diag_bcast=_bcast(("db", 0), nbytes=0))
        diags = verify_plans([bad], grid, "flat", check_trees=False)
        assert [d.code for d in diags] == ["PLAN006"]

    def test_duplicated_tag_overlapping_windows(self, grid):
        # Supernode 2 depends on supernode 3, so their liveness windows
        # overlap; both carry a collective tagged ("db", 3).
        p3 = _plan(3, diag_bcast=_bcast(("db", 3)))
        p2 = _plan(
            2,
            blocks=[BlockInfo(snode=3, nrows=1)],
            diag_bcast=_bcast(("db", 3)),
        )
        diags = verify_plans([p3, p2], grid, "flat", check_trees=False)
        assert [d.code for d in diags] == ["PLAN004"]
        assert "('db', 3)" in diags[0].subject

    def test_duplicated_tag_disjoint_windows_is_clean(self, grid):
        # Independent supernodes 0 and 3 of a 4-supernode plan retire in
        # provably disjoint windows, so tag reuse is legal.
        ps = [
            _plan(3, diag_bcast=_bcast(("db", 3))),
            _plan(2, diag_bcast=_bcast(("db", 2))),
            _plan(1, diag_bcast=_bcast(("db", 1))),
            _plan(0, diag_bcast=_bcast(("db", 3))),
        ]
        assert verify_plans(ps, grid, "flat", check_trees=False) == []

    def test_payload_mismatch_between_sides(self, grid):
        cb = CollectiveSpec(
            kind="col-bcast", key=("cb", 0, 1), root=0,
            participants=(0, 1), nbytes=64,
        )
        rr = CollectiveSpec(
            kind="row-reduce", key=("rr", 0, 1), root=0,
            participants=(0, 1), nbytes=128,
        )
        bad = _plan(0, col_bcasts=[cb], row_reduces=[rr])
        diags = verify_plans([bad], grid, "flat", check_trees=False)
        assert [d.code for d in diags] == ["PLAN007"]


class TestTreeLint:
    def test_orphaned_rank_exactly_one_diagnostic(self):
        tree = CommTree(
            root=0,
            order=(0, 1, 2),
            parent={1: 0},
            children={0: (1,), 1: (), 2: ()},
        )
        diag = lint_tree(tree, participants=(0, 1, 2))
        assert diag is not None and diag.code == "PLAN005"
        assert "orphaned" in diag.message and "2" in diag.message

    def test_duplicate_parent_edges(self):
        tree = CommTree(
            root=0,
            order=(0, 1, 2),
            parent={1: 0, 2: 0},
            children={0: (1, 2), 1: (2,), 2: ()},
        )
        diag = lint_tree(tree)
        assert diag is not None and diag.code == "PLAN005"
        assert "duplicate parents" in diag.message

    def test_wrong_span(self):
        tree = build_tree("binary", 0, range(4))
        diag = lint_tree(tree, participants=(0, 1, 2, 3, 4))
        assert diag is not None and "does not span" in diag.message

    @pytest.mark.parametrize(
        "scheme", ["flat", "binary", "binomial", "shifted", "randperm", "hybrid"]
    )
    def test_all_schemes_build_valid_trees(self, scheme):
        for n in (1, 2, 7, 16):
            tree = build_tree(scheme, 3, range(3, 3 + n), seed=11)
            assert lint_tree(tree, participants=range(3, 3 + n)) is None


class TestLivenessWindows:
    def test_ancestors_finish_no_later(self, plans):
        windows = liveness_windows(plans)
        for p in plans:
            lo, hi = windows[p.k]
            assert lo < hi
            for b in p.blocks:  # ancestors cannot outlive their dependents
                assert windows[b.snode][1] <= hi

    def test_release_order_is_descending(self, plans):
        windows = liveness_windows(plans)
        ks = sorted(windows)
        for a, b in zip(ks, ks[1:]):
            assert windows[a][0] > windows[b][0]


class TestHBGraph:
    def test_cyclic_wait_for_graph_one_diagnostic(self):
        g = HBGraph()
        g.add_edge("recv-a", "send-b")
        g.add_edge("send-b", "recv-b")
        g.add_edge("recv-b", "send-a")
        g.add_edge("send-a", "recv-a")  # closes the wait-for cycle
        diags = diagnose_graph(g)
        assert [d.code for d in diags] == ["HB001"]
        assert "deadlock" in diags[0].message

    def test_acyclic_graph_clean(self):
        g = HBGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("a", "c")
        assert diagnose_graph(g) == []

    def test_find_cycle_returns_closed_path(self):
        g = HBGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 1)
        cycle = g.find_cycle()
        assert cycle is not None and cycle[0] == cycle[-1]
        assert set(cycle) == {1, 2, 3}

    @pytest.mark.parametrize("scheme", ["flat", "binary", "shifted"])
    def test_real_plans_deadlock_free(self, plans, grid, scheme):
        assert check_deadlock_freedom(plans, grid, scheme, seed=7) == []

    def test_model_has_messages_and_edges(self, plans, grid):
        model = build_hb_model(plans, grid, "shifted", seed=7)
        assert len(model.messages) > 0
        assert model.graph.edge_count() > len(model.messages)


class TestTraceValidation:
    @pytest.fixture(scope="class")
    def traced(self, problem, grid, plans):
        out = {}
        for scheme in ("flat", "binary", "shifted"):
            log = []
            SimulatedPSelInv(
                problem.struct, grid, scheme, seed=7, plans=plans,
                event_log=log,
            ).run()
            model = build_hb_model(plans, grid, scheme, seed=7)
            out[scheme] = (log, model)
        return out

    @pytest.mark.parametrize("scheme", ["flat", "binary", "shifted"])
    def test_full_des_trace_is_hb_consistent(self, traced, scheme):
        log, model = traced[scheme]
        assert len(log) > 0
        assert validate_trace(log, model) == []

    def test_lost_message_detected(self, traced):
        log, model = traced["shifted"]
        victim = next(ev for ev in log if ev.kind == "send" and ev.src != ev.dst)
        key = (victim.tag, victim.src, victim.dst)
        tampered = [
            ev for ev in log if (ev.tag, ev.src, ev.dst) != key
        ]
        diags = validate_trace(tampered, model)
        assert [d.code for d in diags] == ["HB005"]

    def test_unplanned_message_detected(self, traced):
        log, model = traced["shifted"]
        bogus = log[0]._replace(
            kind="send", tag=("zz", 10**6), src=0, dst=1, nbytes=8
        )
        diags = validate_trace([*log, bogus], model)
        assert [d.code for d in diags] == ["HB002"]
        assert "absent from the static plan" in diags[0].message

    def test_clock_inversion_detected(self, traced):
        log, model = traced["shifted"]
        idx, victim = next(
            (i, ev) for i, ev in enumerate(log)
            if ev.kind == "deliver" and ev.src != ev.dst and ev.time > 0
        )
        tampered = list(log)
        tampered[idx] = victim._replace(time=-1.0)
        diags = validate_trace(tampered, model)
        assert "HB003" in {d.code for d in diags}

    def test_size_mismatch_detected(self, traced):
        log, model = traced["shifted"]
        idx, victim = next(
            (i, ev) for i, ev in enumerate(log) if ev.kind == "send"
        )
        tampered = list(log)
        tampered[idx] = victim._replace(nbytes=victim.nbytes + 1)
        diags = validate_trace(tampered, model)
        assert "HB002" in {d.code for d in diags}


class TestDeterminismLintKnownBad:
    def test_unseeded_default_rng_exactly_one_diagnostic(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        diags = lint_source(src, "fixture.py")
        assert [d.code for d in diags] == ["DET005"]
        assert diags[0].subject == "fixture.py:2"

    def test_stdlib_global_random(self):
        diags = lint_source("import random\nx = random.random()\n")
        assert [d.code for d in diags] == ["DET001"]

    def test_from_import_alias_resolved(self):
        diags = lint_source("from random import randint as ri\nx = ri(0, 9)\n")
        assert [d.code for d in diags] == ["DET001"]

    def test_legacy_numpy_random(self):
        diags = lint_source("import numpy as np\nx = np.random.rand(3)\n")
        assert [d.code for d in diags] == ["DET002"]

    def test_wall_clock_read(self):
        diags = lint_source("import time\nt = time.time()\n")
        assert [d.code for d in diags] == ["DET003"]

    def test_id_in_dict_key(self):
        diags = lint_source("d = {id(obj): 1}\n")
        assert [d.code for d in diags] == ["DET003"]

    def test_set_iteration(self):
        diags = lint_source("for x in {1, 2, 3}:\n    pass\n")
        assert [d.code for d in diags] == ["DET004"]

    def test_tuple_of_set(self):
        diags = lint_source("t = tuple({1, 2})\n")
        assert [d.code for d in diags] == ["DET004"]

    def test_float_accumulation_into_counter(self):
        diags = lint_source("count = 0\ncount += total / 8\n")
        assert [d.code for d in diags] == ["DET006"]

    def test_clean_idioms_not_flagged(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
            "order = sorted({3, 1, 2})\n"
            "for x in sorted({1, 2}):\n    pass\n"
            "gen = np.random.Generator(np.random.PCG64(7))\n"
        )
        assert lint_source(src) == []

    def test_allow_pragma_suppresses_named_rule(self):
        src = "import time\nt = time.time()  # det: allow(DET003)\n"
        assert lint_source(src) == []

    def test_allow_pragma_bare_suppresses_all(self):
        src = "import time\nt = time.time()  # det: allow\n"
        assert lint_source(src) == []

    def test_allow_pragma_wrong_code_does_not_suppress(self):
        src = "import time\nt = time.time()  # det: allow(DET001)\n"
        assert [d.code for d in lint_source(src)] == ["DET003"]

    def test_allow_pragma_only_covers_its_own_line(self):
        src = (
            "import time\n"
            "a = time.time()  # det: allow(DET003)\n"
            "b = time.time()\n"
        )
        diags = lint_source(src, "fixture.py")
        assert [d.subject for d in diags] == ["fixture.py:3"]


class TestDiagnostics:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("XYZ999", "s", "m")

    def test_every_code_documented(self):
        for code in CODE_DESCRIPTIONS:
            assert code[:-3] in ("PLAN", "HB", "DET")


class TestCommTreeValidation:
    def test_duplicate_participants_rejected(self):
        with pytest.raises(ValueError, match="duplicate participants"):
            CommTree(
                root=0, order=(0, 1, 1), parent={1: 0}, children={0: (1, 1)}
            )

    def test_root_not_in_participants_rejected(self):
        with pytest.raises(ValueError, match="root 5"):
            CommTree(root=5, order=(0, 1), parent={1: 0}, children={0: (1,)})


class TestCollectiveTagHandling:
    def _machine(self, n=4):
        return Machine(n, Network(n, NetworkConfig()))

    def test_broadcast_unhashable_tag_fails_fast(self):
        m = self._machine()
        tree = build_tree("flat", 0, range(4))
        with pytest.raises(TypeError, match="hashable"):
            TreeBroadcast(m, tree, ["not", "hashable"], 64, "c", lambda r, p: None)

    def test_reduce_unhashable_tag_fails_fast(self):
        m = self._machine()
        tree = build_tree("flat", 0, range(4))
        with pytest.raises(TypeError, match="hashable"):
            TreeReduce(
                m, tree, {"tag": 1}, 64, "c", set(range(4)), lambda v: None
            )

    def test_double_start_message_includes_tag(self):
        m = self._machine()
        tree = build_tree("flat", 0, range(4))
        bc = TreeBroadcast(m, tree, ("db", 7), 64, "c", lambda r, p: None)
        bc.start()
        with pytest.raises(RuntimeError, match=r"\('db', 7\)"):
            bc.start()


class TestCheckCLI:
    def test_quick_workload_clean(self, capsys):
        assert main(["check", "--workload", "laplacian", "-g", "3"]) == 0
        out = capsys.readouterr().out
        assert "check: clean" in out
        assert "laplacian/shifted" in out

    def test_codes_listing(self, capsys):
        assert main(["check", "--codes"]) == 0
        out = capsys.readouterr().out
        assert "PLAN004" in out and "HB001" in out and "DET005" in out
