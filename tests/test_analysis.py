"""Tests for the analysis/reporting helpers."""

import numpy as np
import pytest

from repro.analysis import (
    ScalingSeries,
    Table,
    diagonal_concentration,
    modeled_superlu_time,
    render_ascii,
    render_histogram,
    speedup_table,
    stripe_score,
    summary_row,
    tail_fraction,
    timing_summary,
    uniformity,
    volume_histogram,
)


class TestSummaryRow:
    def test_basic_stats(self):
        v = np.array([1e6, 2e6, 3e6, 4e6])
        s = summary_row(v)
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["median"] == 2.5 and s["mean"] == 2.5
        assert s["std"] == pytest.approx(np.std([1, 2, 3, 4]))

    def test_unit_conversion(self):
        s = summary_row(np.array([1000.0]), unit=1e3)
        assert s["max"] == 1.0


class TestTimingSummary:
    def test_stats(self):
        s = timing_summary([1.0, 2.0, 3.0])
        assert s["mean"] == 2.0 and s["runs"] == 3
        assert s["min"] == 1.0 and s["max"] == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            timing_summary([])


class TestTable:
    def test_render_contains_data(self):
        t = Table("Title", ["a", "b"])
        t.add("x", 1.2345)
        out = t.render()
        assert "Title" in out and "x" in out and "1.234" in out

    def test_wrong_arity_rejected(self):
        t = Table("T", ["a"])
        with pytest.raises(ValueError):
            t.add(1, 2)

    def test_number_formatting(self):
        t = Table("T", ["v"])
        t.add(0.00001)
        t.add(123456.0)
        t.add(0)
        out = t.render()
        assert "1e-05" in out and "0" in out


class TestHeatmapMetrics:
    def test_render_ascii_shape(self):
        hm = np.arange(12.0).reshape(3, 4)
        art = render_ascii(hm)
        lines = art.splitlines()
        assert len(lines) == 3 and all(len(l) == 4 for l in lines)
        # Largest value renders darkest.
        assert lines[2][3] == "@"

    def test_render_shared_scale(self):
        hm = np.ones((2, 2))
        art = render_ascii(hm, vmax=10.0)
        assert "@" not in art

    def test_diagonal_concentration_detects_hot_diagonal(self):
        hm = np.ones((8, 8))
        np.fill_diagonal(hm, 10.0)
        assert diagonal_concentration(hm) > 3
        assert diagonal_concentration(np.ones((8, 8))) == pytest.approx(1.0)

    def test_stripe_score_detects_stripes(self):
        hm = np.ones((8, 8))
        hm[::2, :] = 5.0  # horizontal stripes
        assert stripe_score(hm, axis=0) == pytest.approx(1.0)
        assert stripe_score(hm, axis=1) == pytest.approx(0.0)
        rng = np.random.default_rng(0)
        noise = rng.random((8, 8))
        assert stripe_score(noise, axis=0) < 0.5

    def test_uniformity(self):
        assert uniformity(np.ones((4, 4))) == 0.0
        assert uniformity(np.diag([1.0] * 4)) > 0.5


class TestHistogram:
    def test_histogram_and_render(self):
        v = np.array([1e6, 1.5e6, 2e6, 8e6])
        counts, edges = volume_histogram(v, bins=4, range_=(0, 8))
        assert counts.sum() == 4
        art = render_histogram(counts, edges)
        assert art.count("\n") == 3

    def test_tail_fraction(self):
        v = np.array([1.0, 1.0, 1.0, 10.0])
        assert tail_fraction(v, factor=2.0) == 0.25
        assert tail_fraction(np.ones(5)) == 0.0
        assert tail_fraction(np.zeros(5)) == 0.0


class TestScalingSeries:
    def test_add_and_summarize(self):
        s = ScalingSeries("flat")
        s.add(64, 10.0)
        s.add(64, 12.0)
        s.add(256, 6.0)
        assert s.procs() == [64, 256]
        assert s.mean(64) == 11.0
        assert s.std(64) == 1.0
        assert s.summary()[256]["runs"] == 1

    def test_speedup_table(self):
        base = ScalingSeries("flat")
        fast = ScalingSeries("shifted")
        for p, t in ((64, 10.0), (256, 12.0)):
            base.add(p, t)
        fast.add(64, 5.0)
        fast.add(256, 2.0)
        fast.add(1024, 1.0)  # not in baseline: ignored
        table = speedup_table(base, fast)
        assert table == {64: 2.0, 256: 6.0}


class TestSuperLUModel:
    def test_decreases_then_flattens(self):
        t = [
            modeled_superlu_time(1e12, 10**7, p, nsup=500)
            for p in (64, 256, 1024, 4096)
        ]
        assert t[0] > t[1] > t[2]

    def test_latency_floor_at_huge_p(self):
        t_small = modeled_superlu_time(1e10, 10**6, 4096, nsup=2000)
        t_big = modeled_superlu_time(1e10, 10**6, 65536, nsup=2000)
        # The log-latency term eventually dominates.
        assert t_big > t_small * 0.5


class TestConcurrency:
    @staticmethod
    def _struct():
        from repro.sparse import analyze
        from repro.workloads import grid_laplacian_2d

        return analyze(grid_laplacian_2d(10, 10), ordering="nd").struct

    def test_profile_consistency(self):
        from repro.analysis import concurrency_profile

        struct = self._struct()
        prof = concurrency_profile(struct)
        assert prof["nsup"] == struct.nsup
        assert prof["widths"].sum() == struct.nsup
        assert prof["depth"] == len(prof["widths"])
        # The top level holds exactly the root supernodes.
        roots = int((struct.sparent == -1).sum())
        assert prof["widths"][0] == roots

    def test_critical_path_bounds(self):
        from repro.analysis import critical_path

        struct = self._struct()
        cp = critical_path(struct)
        assert 0 < cp["span"] <= cp["work"]
        assert cp["max_speedup"] >= 1.0

    def test_chain_structure_has_no_speedup(self):
        """A tridiagonal matrix's tree is a chain: span == work."""
        import numpy as np

        from repro.analysis import critical_path
        from repro.sparse import analyze, from_dense

        n = 16
        a = np.eye(n) * 4 + np.eye(n, k=1) + np.eye(n, k=-1)
        struct = analyze(from_dense(a), ordering="natural", relax=False).struct
        cp = critical_path(struct)
        assert cp["max_speedup"] == 1.0

    def test_pipeline_estimate(self):
        from repro.analysis import pipeline_depth_estimate

        struct = self._struct()
        est = pipeline_depth_estimate(struct, 16)
        assert 1 <= est["suggested_window"] <= struct.nsup
        assert est["total_gemms"] >= est["mean_gemms_per_supernode"]


class TestRenderEdgeCases:
    def test_render_ascii_zero_matrix(self):
        from repro.analysis import render_ascii

        art = render_ascii(np.zeros((2, 3)))
        assert art == "   \n   "

    def test_render_histogram_empty_bins(self):
        from repro.analysis import render_histogram, volume_histogram

        counts, edges = volume_histogram(np.zeros(4), bins=3, range_=(0, 1))
        art = render_histogram(counts, edges)
        assert "4" in art  # all mass in the first bin

    def test_diagonal_concentration_rectangular(self):
        from repro.analysis import diagonal_concentration

        hm = np.ones((4, 8))
        assert diagonal_concentration(hm) == 1.0

    def test_stripe_score_single_row(self):
        from repro.analysis import stripe_score

        assert stripe_score(np.ones((1, 5))) == 0.0
