"""Tests for the unsymmetric simulated PSelInv (the paper's future work).

Exactness against the sequential unsymmetric oracle is the headline; the
rest pins the mirrored plan structure (row broadcasts, column reductions,
doubled diagonal broadcasts, no cross-backs).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ProcessorGrid,
    SimulatedPSelInvUnsym,
    iter_unsym_plans,
    run_pselinv_unsym,
    unsym_supernode_plan,
)
from repro.sparse import analyze, from_dense
from repro.sparse.factor import factorize
from repro.sparse.selinv import normalize, selected_inversion
from tests.conftest import random_symmetric_dense, random_unsymmetric_dense


def make_problem(n, rng):
    a = random_unsymmetric_dense(n, 3.5, rng)
    prob = analyze(from_dense(a), ordering="amd")
    fs = factorize(prob.matrix, prob.struct)
    normalize(fs)
    want = selected_inversion(fs).to_dense_at_structure()
    raw = factorize(prob.matrix, prob.struct)
    return prob, raw, want


@pytest.fixture(scope="module")
def unsym_problem():
    return make_problem(65, np.random.default_rng(271828))


SCHEMES = ["flat", "binary", "shifted", "randperm", "hybrid"]


@pytest.mark.parametrize("scheme", SCHEMES)
class TestUnsymMatchesOracle:
    def test_square_grid(self, scheme, unsym_problem):
        prob, raw, want = unsym_problem
        res = SimulatedPSelInvUnsym(
            prob.struct, ProcessorGrid(3, 3), scheme, factor=raw, seed=6
        ).run()
        assert np.abs(res.inverse.to_dense_at_structure() - want).max() < 1e-9

    def test_rectangular_grid(self, scheme, unsym_problem):
        prob, raw, want = unsym_problem
        res = SimulatedPSelInvUnsym(
            prob.struct, ProcessorGrid(2, 5), scheme, factor=raw, seed=7
        ).run()
        assert np.abs(res.inverse.to_dense_at_structure() - want).max() < 1e-9


class TestUnsymWindowing:
    @pytest.mark.parametrize("lookahead", [1, 3, None])
    def test_windows_are_exact(self, lookahead, unsym_problem):
        prob, raw, want = unsym_problem
        res = SimulatedPSelInvUnsym(
            prob.struct, ProcessorGrid(4, 2), "shifted", factor=raw,
            lookahead=lookahead,
        ).run()
        assert np.abs(res.inverse.to_dense_at_structure() - want).max() < 1e-9


class TestUnsymOnSymmetricInput:
    def test_agrees_with_symmetric_protocol(self, rng):
        """On a symmetric matrix both protocols must produce the same
        inverse (different communication, same math)."""
        from repro.core import SimulatedPSelInv

        a = random_symmetric_dense(50, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        raw = factorize(prob.matrix, prob.struct)
        grid = ProcessorGrid(3, 3)
        r_sym = SimulatedPSelInv(prob.struct, grid, "shifted", factor=raw).run()
        r_uns = SimulatedPSelInvUnsym(
            prob.struct, grid, "shifted", factor=raw
        ).run()
        np.testing.assert_allclose(
            r_sym.inverse.to_dense_at_structure(),
            r_uns.inverse.to_dense_at_structure(),
            atol=1e-10,
        )

    def test_unsym_moves_more_bytes(self, rng):
        """The U side carries real data, so total traffic roughly doubles
        vs the symmetric algorithm's transposed reuse."""
        from repro.core import SimulatedPSelInv

        a = random_symmetric_dense(50, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        grid = ProcessorGrid(3, 3)
        t_sym = SimulatedPSelInv(prob.struct, grid, "flat").run()
        t_uns = SimulatedPSelInvUnsym(prob.struct, grid, "flat").run()
        assert t_uns.stats.total_sent().sum() > t_sym.stats.total_sent().sum()


class TestUnsymPlan:
    def test_mirrored_collectives_present(self, unsym_problem):
        prob, _, _ = unsym_problem
        grid = ProcessorGrid(3, 3)
        kinds = set()
        for plan in iter_unsym_plans(prob.struct, grid):
            for spec in plan.collectives():
                kinds.add(spec.kind)
        assert {
            "diag-bcast",
            "diag-rbcast",
            "col-bcast",
            "row-bcast",
            "row-reduce",
            "col-ureduce",
            "diag-rreduce",
        } <= kinds

    def test_row_bcast_stays_in_grid_row(self, unsym_problem):
        prob, _, _ = unsym_problem
        grid = ProcessorGrid(3, 4)
        for plan in iter_unsym_plans(prob.struct, grid):
            for spec in plan.row_bcasts:
                i = spec.key[2]
                rows = {grid.coords(r)[0] for r in spec.participants}
                assert rows == {i % grid.pr}

    def test_col_ureduce_stays_in_grid_col(self, unsym_problem):
        prob, _, _ = unsym_problem
        grid = ProcessorGrid(3, 4)
        for plan in iter_unsym_plans(prob.struct, grid):
            for spec in plan.col_ureduces:
                j = spec.key[2]
                cols = {grid.coords(r)[1] for r in spec.participants}
                assert cols == {j % grid.pc}

    def test_empty_supernode(self, unsym_problem):
        prob, _, _ = unsym_problem
        grid = ProcessorGrid(2, 2)
        plan = unsym_supernode_plan(prob.struct, grid, prob.struct.nsup - 1)
        assert plan.blocks == [] and plan.diag_rreduce is None


class TestUnsymComplex:
    def test_complex_unsymmetric(self):
        rng = np.random.default_rng(5)
        n = 40
        a = np.zeros((n, n), dtype=complex)
        for _ in range(3 * n):
            i, j = rng.integers(0, n, 2)
            a[i, j] += rng.normal() + 1j * rng.normal()
        a += np.diag(
            np.abs(a).sum(axis=1) + np.abs(a).sum(axis=0) + 1.0
        )
        prob = analyze(from_dense(a), ordering="amd")
        fs = factorize(prob.matrix, prob.struct)
        normalize(fs)
        want = selected_inversion(fs).to_dense_at_structure()
        raw = factorize(prob.matrix, prob.struct)
        res = run_pselinv_unsym(
            prob.struct, ProcessorGrid(2, 3), "shifted", factor=raw
        )
        assert np.abs(res.inverse.to_dense_at_structure() - want).max() < 1e-9


@settings(max_examples=6, deadline=None)
@given(
    st.integers(min_value=12, max_value=40),
    st.integers(0, 2**31 - 1),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
def test_unsym_parallel_equals_sequential_property(n, seed, pr, pc):
    rng = np.random.default_rng(seed)
    prob, raw, want = make_problem(n, rng)
    res = SimulatedPSelInvUnsym(
        prob.struct, ProcessorGrid(pr, pc), "shifted", factor=raw,
        seed=seed & 0xFFFF,
    ).run()
    assert np.abs(res.inverse.to_dense_at_structure() - want).max() < 1e-8


class TestUnsymVolumeParity:
    """The analytic volume model must also match the unsymmetric DES."""

    def test_volumes_match_simulation(self, unsym_problem):
        from repro.core import communication_volumes

        prob, _, _ = unsym_problem
        grid = ProcessorGrid(3, 4)
        plans = list(iter_unsym_plans(prob.struct, grid))
        for scheme in ("flat", "shifted"):
            res = SimulatedPSelInvUnsym(
                prob.struct, grid, scheme, seed=13, plans=plans
            ).run()
            rep = communication_volumes(
                prob.struct, grid, scheme, seed=13, plans=plans
            )
            for kind in (
                "col-bcast",
                "row-bcast",
                "row-reduce",
                "col-ureduce",
                "diag-bcast",
                "diag-rbcast",
                "diag-rreduce",
                "cross-l2u",
                "cross-u2l",
            ):
                np.testing.assert_array_equal(
                    res.stats.total_sent(kind),
                    rep.sent.get(kind, np.zeros(grid.size)),
                    err_msg=f"{scheme}/{kind}",
                )
