"""Tests for the DES kernel, network model, and machine."""

import numpy as np
import pytest

from repro.simulate import Machine, Network, NetworkConfig, Simulator


class TestSimulator:
    def test_time_ordering(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        assert sim.run() == 3.0
        assert log == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(0.5, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 1.5)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_run_until_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(2))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.pending() == 1

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 7


class TestNetwork:
    def test_distance_classes(self):
        cfg = NetworkConfig(cores_per_node=4, nodes_per_group=2)
        net = Network(32, cfg)
        assert net.distance_class(0, 3) == 0  # same node
        assert net.distance_class(0, 4) == 1  # same group
        assert net.distance_class(0, 31) == 2  # across groups

    def test_transit_monotone_in_distance(self):
        cfg = NetworkConfig(cores_per_node=4, nodes_per_group=2)
        net = Network(64, cfg)
        b = 10_000
        t0 = net.transit_time(0, 1, b)
        t1 = net.transit_time(0, 5, b)
        t2 = net.transit_time(0, 63, b)
        assert t0 < t1 < t2

    def test_transit_monotone_in_size(self):
        net = Network(8)
        assert net.transit_time(0, 1, 100) < net.transit_time(0, 1, 10**6)

    def test_jitter_deterministic_per_seed(self):
        cfg = NetworkConfig(cores_per_node=1, jitter_sigma=0.3)
        n1 = Network(16, cfg, jitter_seed=5)
        n2 = Network(16, cfg, jitter_seed=5)
        n3 = Network(16, cfg, jitter_seed=6)
        t1 = [n1.transit_time(0, j, 1000) for j in range(1, 16)]
        t2 = [n2.transit_time(0, j, 1000) for j in range(1, 16)]
        t3 = [n3.transit_time(0, j, 1000) for j in range(1, 16)]
        assert t1 == t2
        assert t1 != t3

    def test_jitter_symmetric(self):
        cfg = NetworkConfig(cores_per_node=1, jitter_sigma=0.3)
        net = Network(8, cfg, jitter_seed=1)
        assert net.transit_time(2, 6, 500) == net.transit_time(6, 2, 500)

    def test_no_jitter_by_default(self):
        net = Network(8)
        assert net._pair_jitter(0, 7) == 1.0

    def test_placement_shuffles_nodes(self):
        cfg = NetworkConfig(cores_per_node=2)
        a = Network(32, cfg, placement_seed=None)
        b = Network(32, cfg, placement_seed=3)
        assert not np.array_equal(a.node_of, b.node_of)
        # Same multiset of node ids.
        assert sorted(a.node_of.tolist()) == sorted(b.node_of.tolist())

    def test_injection_and_ejection(self):
        cfg = NetworkConfig(
            injection_overhead=1e-6,
            injection_bandwidth=1e9,
            ejection_bandwidth=2e9,
        )
        net = Network(4, cfg)
        assert net.injection_time(1000) == pytest.approx(2e-6)
        assert net.ejection_time(1000) == pytest.approx(5e-7)


class TestMachine:
    def _machine(self, n=4, **cfg):
        return Machine(n, Network(n, NetworkConfig(**cfg)))

    def test_send_delivers_to_handler(self):
        m = self._machine()
        got = []
        m.set_handler(1, lambda msg: got.append((msg.src, msg.payload)))
        m.post_send(0, 1, "t", 100, "test", payload="hello")
        m.run()
        assert got == [(0, "hello")]

    def test_self_send_costs_nothing_and_is_uncounted(self):
        m = self._machine()
        got = []
        m.set_handler(2, lambda msg: got.append(msg.tag))
        m.post_send(2, 2, "t", 10**9, "test")
        end = m.run()
        assert got == ["t"]
        assert end == 0.0
        assert m.stats.total_sent().sum() == 0

    def test_stats_accounting(self):
        m = self._machine()
        m.set_handler(1, lambda msg: None)
        m.set_handler(2, lambda msg: None)
        m.post_send(0, 1, "a", 500, "cat1")
        m.post_send(0, 2, "b", 300, "cat2")
        m.run()
        assert m.stats.total_sent("cat1")[0] == 500
        assert m.stats.total_sent("cat2")[0] == 300
        assert m.stats.total_sent()[0] == 800
        assert m.stats.total_received("cat1")[1] == 500
        assert m.stats.total_received("cat2")[2] == 300

    def test_nic_serialization(self):
        # Two messages from one sender must serialize through its NIC.
        m = self._machine(injection_overhead=1e-3, injection_bandwidth=1e12)
        arrivals = []
        m.set_handler(1, lambda msg: arrivals.append(m.now))
        m.set_handler(2, lambda msg: arrivals.append(m.now))
        m.post_send(0, 1, "a", 8, "x")
        m.post_send(0, 2, "b", 8, "x")
        m.run()
        assert arrivals[1] - arrivals[0] >= 1e-3 * 0.99

    def test_channel_fifo(self):
        # A big message followed by a small one on the same channel must
        # not be overtaken.
        m = self._machine(injection_bandwidth=1e12)
        order = []
        m.set_handler(1, lambda msg: order.append(msg.tag))
        m.post_send(0, 1, "big", 10**7, "x")
        m.post_send(0, 1, "small", 1, "x")
        m.run()
        assert order == ["big", "small"]

    def test_compute_serializes_on_cpu(self):
        m = self._machine()
        times = []
        m.post_compute(0, 1.0, lambda: times.append(m.now))
        m.post_compute(0, 2.0, lambda: times.append(m.now))
        m.run()
        assert times == [1.0, 3.0]
        assert m.stats.compute_busy[0] == pytest.approx(3.0)

    def test_compute_flops_conversion(self):
        m = self._machine(flop_rate=1e9, task_overhead=0.0)
        done = []
        m.post_compute(0, 0.0, lambda: done.append(m.now), flops=2e9)
        m.run()
        assert done[0] == pytest.approx(2.0)

    def test_missing_handler_raises(self):
        m = self._machine()
        m.post_send(0, 1, "t", 10, "x")
        with pytest.raises(RuntimeError, match="no handler"):
            m.run()

    def test_makespan_is_final_event_time(self):
        m = self._machine()
        m.set_handler(3, lambda msg: None)
        m.post_send(0, 3, "t", 10**6, "x")
        end = m.run()
        assert end > 0


class TestNetworkConfigImmutability:
    def test_frozen(self):
        cfg = NetworkConfig()
        with pytest.raises(Exception):
            cfg.flop_rate = 1.0  # type: ignore[misc]

    def test_machine_rejects_undersized_network(self):
        net = Network(4)
        with pytest.raises(ValueError, match="fewer ranks"):
            Machine(8, net)


class TestRunUntilWithGuard:
    def test_until_and_max_events_combine(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(until=4.5, max_events=100)
        assert sim.events_processed == 5
        assert sim.pending() == 5
