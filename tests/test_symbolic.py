"""Tests for symbolic factorization: column counts and structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    column_counts,
    column_structures,
    elimination_tree,
    fill_statistics,
    from_dense,
    permute_symmetric,
    postorder,
    symmetrize_pattern,
)
from tests.conftest import random_symmetric_dense


def dense_symbolic_cholesky(a: np.ndarray) -> np.ndarray:
    """Reference: boolean fill pattern of L via dense elimination."""
    n = a.shape[0]
    pattern = (a != 0).copy()
    for k in range(n):
        rows = np.flatnonzero(pattern[k + 1 :, k]) + k + 1
        for i in rows:
            pattern[i, rows] = True
    return np.tril(pattern)


def topologically_ordered(a):
    m = symmetrize_pattern(a)
    parent = elimination_tree(m)
    post = postorder(parent)
    return permute_symmetric(m, post)


class TestColumnCounts:
    def test_tridiagonal_no_fill(self):
        n = 7
        a = np.eye(n) * 4 + np.eye(n, k=1) + np.eye(n, k=-1)
        counts = column_counts(from_dense(a))
        assert np.array_equal(counts, [2] * (n - 1) + [1])

    def test_dense_matrix(self):
        n = 5
        counts = column_counts(from_dense(np.ones((n, n))))
        assert np.array_equal(counts, [5, 4, 3, 2, 1])

    def test_against_dense_reference(self, rng):
        for _ in range(8):
            a = random_symmetric_dense(24, 2.0, rng)
            m = topologically_ordered(from_dense(a))
            counts = column_counts(m)
            ref = dense_symbolic_cholesky(m.to_dense())
            want = ref.sum(axis=0)
            assert np.array_equal(counts, want)

    def test_rejects_unordered_matrix(self):
        # A matrix whose etree is not topologically ordered must be
        # rejected loudly rather than silently miscounted.
        bad = np.array([[4.0, 1, 0], [1, 4.0, 0], [0, 0, 4.0]])
        # Reverse the order so a parent precedes its child.
        m = permute_symmetric(from_dense(bad), np.array([1, 0, 2]))
        parent = elimination_tree(m)
        if parent[0] > 0:  # pragma: no cover - permutation-dependent
            pytest.skip("pattern happened to stay ordered")
        with pytest.raises(ValueError, match="topological"):
            column_counts(m, np.array([-1, 0, -1]))


class TestColumnStructures:
    def test_structures_match_counts(self, rng):
        a = random_symmetric_dense(30, 3.0, rng)
        m = topologically_ordered(from_dense(a))
        counts = column_counts(m)
        structs = column_structures(m)
        for j, s in enumerate(structs):
            assert len(s) + 1 == counts[j]
            assert np.all(s > j)
            assert np.all(np.diff(s) > 0)

    def test_structures_against_dense_reference(self, rng):
        a = random_symmetric_dense(20, 2.0, rng)
        m = topologically_ordered(from_dense(a))
        structs = column_structures(m)
        ref = dense_symbolic_cholesky(m.to_dense())
        for j in range(m.n):
            want = np.flatnonzero(ref[:, j])
            want = want[want > j]
            assert np.array_equal(structs[j], want)

    def test_supersets_of_matrix_pattern(self, rng):
        a = random_symmetric_dense(30, 3.0, rng)
        m = topologically_ordered(from_dense(a))
        structs = column_structures(m)
        for j in range(m.n):
            arows = m.column_rows(j)
            below = arows[arows > j]
            assert np.all(np.isin(below, structs[j]))


class TestFillStatistics:
    def test_keys_and_consistency(self, rng):
        a = random_symmetric_dense(30, 3.0, rng)
        m = topologically_ordered(from_dense(a))
        st_ = fill_statistics(m)
        assert st_["n"] == m.n
        assert st_["nnz_a"] == m.nnz
        assert st_["nnz_lu"] == 2 * st_["nnz_l"] - m.n
        assert st_["fill_ratio"] >= 0.99  # filled pattern includes A


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=28), st.integers(0, 2**31 - 1))
def test_counts_equal_structure_sizes_property(n, seed):
    rng = np.random.default_rng(seed)
    a = random_symmetric_dense(n, 2.0, rng)
    m = topologically_ordered(from_dense(a))
    counts = column_counts(m)
    structs = column_structures(m)
    assert np.array_equal(counts, [len(s) + 1 for s in structs])
