"""Shared fixtures: small matrices, analyzed problems, and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import SparseMatrix, analyze, from_dense
from repro.workloads import random_spd_sparse


def random_symmetric_dense(
    n: int, nnz_factor: float, rng: np.random.Generator
) -> np.ndarray:
    """Dense random symmetric diagonally dominant matrix."""
    a = np.zeros((n, n))
    m = int(nnz_factor * n)
    for _ in range(m):
        i, j = rng.integers(0, n, 2)
        v = rng.normal()
        a[i, j] += v
        a[j, i] += v
    a += np.diag(np.abs(a).sum(axis=1) + 1.0)
    return a


def random_unsymmetric_dense(
    n: int, nnz_factor: float, rng: np.random.Generator
) -> np.ndarray:
    """Dense random unsymmetric diagonally dominant matrix."""
    a = np.zeros((n, n))
    m = int(nnz_factor * n)
    for _ in range(m):
        i, j = rng.integers(0, n, 2)
        a[i, j] += rng.normal()
    a += np.diag(np.abs(a).sum(axis=1) + np.abs(a).sum(axis=0) + 1.0)
    return a


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20160523)


@pytest.fixture
def small_spd(rng) -> SparseMatrix:
    """A ~80-column random SPD-ish sparse matrix."""
    return random_spd_sparse(80, 4.0, rng=rng)


@pytest.fixture
def small_problem(small_spd):
    """Analyzed problem for the small SPD matrix (AMD ordering)."""
    return analyze(small_spd, ordering="amd", validate=True)


@pytest.fixture
def dense_symmetric(rng) -> np.ndarray:
    return random_symmetric_dense(50, 4.0, rng)


@pytest.fixture
def matrix_symmetric(dense_symmetric) -> SparseMatrix:
    return from_dense(dense_symmetric)
