"""Unit tests for the CSC container (repro.sparse.matrix)."""

import numpy as np
import pytest

from repro.sparse import (
    SparseMatrix,
    from_coo,
    from_dense,
    permute_symmetric,
    symmetrize_pattern,
)


class TestFromCoo:
    def test_basic_roundtrip(self):
        m = from_coo(3, [0, 1, 2], [0, 1, 2], [1.0, 2.0, 3.0])
        assert m.nnz == 3
        np.testing.assert_allclose(m.to_dense(), np.diag([1.0, 2.0, 3.0]))

    def test_duplicates_are_summed(self):
        m = from_coo(2, [0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0])
        dense = m.to_dense()
        assert dense[0, 1] == 3.0
        assert dense[1, 0] == 5.0
        assert m.nnz == 2

    def test_duplicates_rejected_when_disabled(self):
        with pytest.raises(ValueError, match="duplicate"):
            from_coo(2, [0, 0], [1, 1], [1.0, 2.0], sum_duplicates=False)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            from_coo(2, [0, 2], [0, 0], [1.0, 1.0])

    def test_row_indices_sorted_within_columns(self):
        m = from_coo(4, [3, 1, 2, 0], [1, 1, 1, 1], [1.0, 2.0, 3.0, 4.0])
        rows = m.column_rows(1)
        assert np.array_equal(rows, [0, 1, 2, 3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            from_coo(3, [0, 1], [0], [1.0])

    def test_default_values_are_ones(self):
        m = from_coo(2, [0, 1], [0, 1])
        np.testing.assert_allclose(m.data, [1.0, 1.0])


class TestFromDense:
    def test_roundtrip(self, dense_symmetric):
        m = from_dense(dense_symmetric)
        np.testing.assert_allclose(m.to_dense(), dense_symmetric)

    def test_tolerance_drops_small_entries(self):
        a = np.array([[1.0, 1e-12], [0.5, 2.0]])
        m = from_dense(a, tol=1e-9)
        assert m.nnz == 3

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            from_dense(np.zeros((2, 3)))


class TestStructure:
    def test_indptr_validation(self):
        with pytest.raises(ValueError):
            SparseMatrix(2, np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_nnz_and_column_access(self):
        m = from_coo(3, [0, 2, 1], [0, 0, 2], [1.0, 2.0, 3.0])
        assert m.nnz == 3
        rows, vals = m.column(0)
        assert np.array_equal(rows, [0, 2])
        np.testing.assert_allclose(vals, [1.0, 2.0])
        assert len(m.column_rows(1)) == 0

    def test_diagonal(self):
        m = from_coo(3, [0, 1, 2, 0], [0, 1, 2, 1], [5.0, 6.0, 7.0, 1.0])
        np.testing.assert_allclose(m.diagonal(), [5.0, 6.0, 7.0])

    def test_transpose_involution(self, matrix_symmetric):
        t = matrix_symmetric.transpose().transpose()
        assert np.array_equal(t.indptr, matrix_symmetric.indptr)
        assert np.array_equal(t.indices, matrix_symmetric.indices)
        np.testing.assert_allclose(t.data, matrix_symmetric.data)

    def test_transpose_values(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        m = from_dense(a)
        np.testing.assert_allclose(m.transpose().to_dense(), a.T)

    def test_structural_symmetry_detection(self, matrix_symmetric):
        assert matrix_symmetric.is_structurally_symmetric()
        m = from_coo(3, [0, 1], [1, 1], [1.0, 1.0])
        assert not m.is_structurally_symmetric()

    def test_lower_pattern(self):
        a = np.array([[1.0, 2.0, 0], [3.0, 4.0, 5.0], [0, 6.0, 7.0]])
        lp = from_dense(a).lower_pattern()
        dense = lp.to_dense()
        assert dense[0, 1] == 0 and dense[1, 0] == 1
        assert dense[1, 2] == 0 and dense[2, 1] == 1
        np.testing.assert_allclose(np.diag(dense), 1.0)

    def test_to_scipy(self, matrix_symmetric):
        sp = matrix_symmetric.to_scipy()
        np.testing.assert_allclose(
            sp.toarray(), matrix_symmetric.to_dense()
        )


class TestSymmetrize:
    def test_pattern_becomes_symmetric(self):
        m = from_coo(3, [0, 2], [1, 0], [1.0, 2.0])
        s = symmetrize_pattern(m)
        assert s.is_structurally_symmetric()

    def test_values_preserved_and_zeros_added(self):
        m = from_coo(2, [0], [1], [3.0])
        s = symmetrize_pattern(m)
        dense = s.to_dense()
        assert dense[0, 1] == 3.0
        assert dense[1, 0] == 0.0
        assert s.nnz == 2

    def test_already_symmetric_unchanged(self, matrix_symmetric):
        s = symmetrize_pattern(matrix_symmetric)
        np.testing.assert_allclose(s.to_dense(), matrix_symmetric.to_dense())


class TestPermute:
    def test_permute_roundtrip(self, matrix_symmetric, rng):
        n = matrix_symmetric.n
        perm = rng.permutation(n)
        p = permute_symmetric(matrix_symmetric, perm)
        dense = matrix_symmetric.to_dense()
        np.testing.assert_allclose(p.to_dense(), dense[np.ix_(perm, perm)])

    def test_identity_permutation(self, matrix_symmetric):
        perm = np.arange(matrix_symmetric.n)
        p = permute_symmetric(matrix_symmetric, perm)
        np.testing.assert_allclose(p.to_dense(), matrix_symmetric.to_dense())

    def test_invalid_permutation_rejected(self, matrix_symmetric):
        bad = np.zeros(matrix_symmetric.n, dtype=int)
        with pytest.raises(ValueError, match="permutation"):
            permute_symmetric(matrix_symmetric, bad)
