"""Tests for the supernodal numeric LU factorization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import ZeroPivotError, analyze, from_dense
from repro.sparse.factor import (
    _dense_lu_nopivot,
    factorization_flops,
    factorize,
    selinv_flops,
)
from tests.conftest import random_symmetric_dense, random_unsymmetric_dense


class TestDenseLU:
    def test_small_known(self):
        a = np.array([[4.0, 2.0], [2.0, 3.0]])
        d = a.copy()
        _dense_lu_nopivot(d, tol=0.0)
        L = np.tril(d, -1) + np.eye(2)
        U = np.triu(d)
        np.testing.assert_allclose(L @ U, a)

    def test_zero_pivot_raises(self):
        d = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ZeroPivotError):
            _dense_lu_nopivot(d, tol=0.0)

    def test_trailing_zero_pivot_raises(self):
        d = np.array([[1.0, 1.0], [1.0, 1.0]])  # schur = 0
        with pytest.raises(ZeroPivotError):
            _dense_lu_nopivot(d, tol=1e-14)

    def test_random_lu(self, rng):
        for n in (1, 3, 7):
            a = rng.normal(size=(n, n)) + n * np.eye(n)
            d = a.copy()
            _dense_lu_nopivot(d, tol=0.0)
            L = np.tril(d, -1) + np.eye(n)
            U = np.triu(d)
            np.testing.assert_allclose(L @ U, a, atol=1e-10)


class TestFactorize:
    @pytest.mark.parametrize("ordering", ["amd", "nd", "natural"])
    def test_lu_product_symmetric(self, ordering, rng):
        a = random_symmetric_dense(40, 3.0, rng)
        prob = analyze(from_dense(a), ordering=ordering)
        fac = factorize(prob.matrix, prob.struct)
        L, U = fac.unpack_dense()
        np.testing.assert_allclose(
            L @ U, prob.matrix.to_dense(), atol=1e-9
        )

    def test_lu_product_unsymmetric(self, rng):
        a = random_unsymmetric_dense(45, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        fac = factorize(prob.matrix, prob.struct)
        L, U = fac.unpack_dense()
        np.testing.assert_allclose(L @ U, prob.matrix.to_dense(), atol=1e-9)

    def test_symmetric_factor_satisfies_u_equals_dlt(self, rng):
        # For symmetric A, U = D L^T where D = diag(U).
        a = random_symmetric_dense(30, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        fac = factorize(prob.matrix, prob.struct)
        L, U = fac.unpack_dense()
        D = np.diag(np.diag(U))
        np.testing.assert_allclose(U, D @ L.T, atol=1e-9)

    def test_views_are_consistent(self, rng):
        a = random_symmetric_dense(30, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        fac = factorize(prob.matrix, prob.struct)
        for k in range(fac.nsup):
            s = prob.struct.width(k)
            m = len(prob.struct.rows_below[k])
            assert fac.diag_block(k).shape == (s, s)
            assert fac.l_panel(k).shape == (m, s)
            assert fac.u_panel(k).shape == (s, m)

    def test_singular_matrix_raises(self):
        a = np.ones((4, 4))  # rank 1: zero pivot at step 2
        prob = analyze(from_dense(a), ordering="natural")
        with pytest.raises(ZeroPivotError):
            factorize(prob.matrix, prob.struct, pivot_tol=1e-12)

    def test_1x1_matrix(self):
        prob = analyze(from_dense(np.array([[3.0]])), ordering="natural")
        fac = factorize(prob.matrix, prob.struct)
        assert fac.diag_block(0)[0, 0] == 3.0


class TestFlopModels:
    def test_positive_and_monotone(self, rng):
        a = random_symmetric_dense(40, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        f = factorization_flops(prob.struct)
        s = selinv_flops(prob.struct)
        assert f > 0 and s > 0
        # A denser matrix of the same size needs more flops.
        b = random_symmetric_dense(40, 8.0, rng)
        prob2 = analyze(from_dense(b), ordering="amd")
        assert factorization_flops(prob2.struct) > f


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=30), st.integers(0, 2**31 - 1))
def test_factorization_property(n, seed):
    """A = L U holds for random symmetric diagonally dominant inputs under
    the default pipeline."""
    rng = np.random.default_rng(seed)
    a = random_symmetric_dense(n, 2.5, rng)
    prob = analyze(from_dense(a), ordering="amd")
    fac = factorize(prob.matrix, prob.struct)
    L, U = fac.unpack_dense()
    assert np.abs(L @ U - prob.matrix.to_dense()).max() < 1e-8
