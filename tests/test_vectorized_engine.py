"""Vectorized engine: compiled collectives, slice dispatch, bit-identity.

The vectorized engine's contract is the batch engine's, verbatim: it is
an optimization, never a behavior change.  Three layers pin it:

* **Randomized end-to-end identity.**  Hypothesis draws simulation
  parameters (scheme -- all six tree families -- grid shape, seeds,
  jitter, lookahead), the real planner generates the supernode plans,
  and the full run must agree bit-for-bit with the per-message batch
  engine: makespan, event count, every stats table, and (separately)
  the send/deliver trace-event stream.
* **Slice dispatch.**  The batched receive dispatchers are forced to
  fire (a wide same-timestamp fan-in) and must reproduce the scalar
  machines exactly; bounded runs (``until``/``max_events``) must never
  enter a slice companion -- the scalar-fallback contract.
* **Column stats.**  :class:`VecCommStats` keeps numpy columns but the
  read-out views and totals match :class:`CommStats` exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProcessorGrid, SimulatedPSelInv
from repro.simulate import (
    BatchMachine,
    CommStats,
    Network,
    NetworkConfig,
    Simulator,
    VecCommStats,
    VecMachine,
    VecSimulator,
)
from repro.simulate.machine import Message
from repro.sparse import analyze
from repro.workloads import dg_hamiltonian

ALL_SCHEMES = ("flat", "binary", "binomial", "shifted", "randperm", "hybrid")


@pytest.fixture(scope="module")
def problem():
    m = dg_hamiltonian((5, 5), 16, neighbor_hops=1,
                       rng=np.random.default_rng(11))
    return analyze(m, ordering="nd", max_supernode=8)


def _outcome(problem, engine, *, scheme, grid, seed, jitter_seed,
             jitter_sigma, lookahead, overhead=0.0, event_log=None):
    sim = SimulatedPSelInv(
        problem.struct,
        ProcessorGrid(*grid),
        scheme,
        network=NetworkConfig(jitter_sigma=jitter_sigma),
        seed=seed,
        jitter_seed=jitter_seed,
        lookahead=lookahead,
        per_message_cpu_overhead=overhead,
        engine=engine,
        event_log=event_log,
    )
    res = sim.run()
    st_ = sim.machine.stats
    return (
        res.makespan,
        res.events,
        {k: list(v) for k, v in st_._sent.items()},
        {k: list(v) for k, v in st_._messages_sent.items()},
        {k: list(v) for k, v in st_._received.items()},
        list(st_._compute_busy),
        list(st_._nic_out_busy),
        list(st_._nic_in_busy),
        list(st_._recv_overhead_busy),
    )


# ---------------------------------------------------------------------------
# Randomized end-to-end identity (real planner, all six schemes)
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    scheme=st.sampled_from(ALL_SCHEMES),
    grid=st.sampled_from([(1, 1), (2, 2), (2, 4), (4, 4)]),
    seed=st.integers(min_value=0, max_value=2**20),
    jitter_seed=st.integers(min_value=0, max_value=1000),
    jitter_sigma=st.sampled_from([0.0, 0.3, 1.5]),
    lookahead=st.sampled_from([2, 8, 32]),
)
def test_vectorized_matches_batch_random_plans(
    problem, scheme, grid, seed, jitter_seed, jitter_sigma, lookahead
):
    kwargs = dict(scheme=scheme, grid=grid, seed=seed,
                  jitter_seed=jitter_seed, jitter_sigma=jitter_sigma,
                  lookahead=lookahead)
    batch = _outcome(problem, "batch", **kwargs)
    vec = _outcome(problem, "vectorized", **kwargs)
    assert vec == batch


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_vectorized_matches_legacy(problem, scheme):
    kwargs = dict(scheme=scheme, grid=(2, 4), seed=123, jitter_seed=7,
                  jitter_sigma=0.4, lookahead=4)
    legacy = _outcome(problem, "legacy", **kwargs)
    vec = _outcome(problem, "vectorized", **kwargs)
    assert vec == legacy


def test_vectorized_trace_log_identical(problem):
    """The repro-check trace hook sees the same send/deliver stream
    (the trace path disables the fast closures but not the compiled
    protocol -- both layers must agree with the batch engine)."""
    logs = {}
    for engine in ("batch", "vectorized"):
        log: list = []
        _outcome(problem, engine, scheme="shifted", grid=(2, 2), seed=5,
                 jitter_seed=3, jitter_sigma=0.2, lookahead=32,
                 event_log=log)
        logs[engine] = log
    assert logs["vectorized"] == logs["batch"]
    assert logs["batch"]  # non-vacuous: the stream exists


def test_vectorized_with_per_message_overhead(problem):
    """A per-delivery CPU tax disables the fast path; the generic
    primitives must still match the batch engine exactly."""
    kwargs = dict(scheme="shifted", grid=(2, 2), seed=9, jitter_seed=1,
                  jitter_sigma=0.1, lookahead=32, overhead=2e-7)
    assert (_outcome(problem, "vectorized", **kwargs)
            == _outcome(problem, "batch", **kwargs))


# ---------------------------------------------------------------------------
# Slice dispatch: forced to fire, and forbidden on bounded runs
# ---------------------------------------------------------------------------

_N = 24  # fan-in width _N - 1 = 23 comfortably exceeds VecSimulator.MIN_RUN


def _machine(cls):
    return cls(_N, Network(_N, NetworkConfig(jitter_sigma=0.0)))


def _count_slice_dispatches(machine):
    """Wrap every installed batch companion with a call counter."""
    sim = machine.sim
    counts = [0]
    for hid, fn in enumerate(sim._btable):
        if fn is None:
            continue

        def wrapped(batch, lo, hi, _fn=fn):
            counts[0] += 1
            return _fn(batch, lo, hi)

        sim._btable[hid] = wrapped
    return counts


def _fan_in(m, *, use_point_route, categories=("fan",)):
    """Same-instant fan-in: _N - 1 equal sends into rank 0.  With zero
    jitter the receive events share one timestamp, one bucket, and one
    handler id -- a maximal slice run."""
    got = []
    cb = lambda dst, payload, aux: got.append((dst, m.now, aux))  # noqa: E731
    cids = [m.category_id(c) for c in categories]
    for src in range(1, _N):
        cid = cids[src % len(cids)]
        if use_point_route:
            m.send_pt(src, 0, ("t", src), 4096, cid, cb, src)
        else:
            m.send(src, 0, ("t", src), 4096, cid, None, cb, src)
    return got


def _drain_outcome(m, got):
    return (
        got,
        m.now,
        {k: list(v) for k, v in m.stats._received.items()},
        {k: list(v) for k, v in m.stats._sent.items()},
        {k: list(v) for k, v in m.stats._messages_sent.items()},
        list(m.stats._nic_in_busy),
        list(m.stats._recv_overhead_busy),
    )


@pytest.mark.parametrize("use_point_route", [False, True])
@pytest.mark.parametrize("categories", [("fan",), ("a", "b")])
def test_slice_dispatch_fires_and_matches_batch(use_point_route, categories):
    """Both receive dispatchers (SoA route and point route), on both the
    single-category scatter and the mixed-category fallback, reproduce
    the per-message batch machine bit-for-bit -- and provably fire."""
    mb = _machine(BatchMachine)
    got_b = _fan_in(mb, use_point_route=False, categories=categories)
    mb.run()

    mv = _machine(VecMachine)
    counts = _count_slice_dispatches(mv)
    got_v = _fan_in(mv, use_point_route=use_point_route,
                    categories=categories)
    mv.run()

    assert counts[0] > 0, "slice companion never fired"
    assert _drain_outcome(mv, got_v) == _drain_outcome(mb, got_b)


def test_bounded_run_never_enters_slice_companion():
    """``until``/``max_events`` runs use the inherited scalar loops --
    a slice dispatch there could jump the horizon.  Poison every slice
    companion; a fully bounded drain must never call one, and must
    still match the batch machine's bounded drain exactly."""
    mb = _machine(BatchMachine)
    got_b = _fan_in(mb, use_point_route=False)
    horizons = (1e-6, 5e-6, 1.0)
    for h in horizons:
        mb.sim.run(until=h)
    assert mb.sim.pending() == 0

    mv = _machine(VecMachine)
    for hid, fn in enumerate(mv.sim._btable):
        if fn is not None:
            def poisoned(batch, lo, hi):  # pragma: no cover
                raise AssertionError("slice companion on a bounded run")
            mv.sim._btable[hid] = poisoned
    got_v = _fan_in(mv, use_point_route=True)
    for h in horizons:
        mv.sim.run(until=h)
    assert mv.sim.pending() == 0
    assert mv.sim.events_processed == mb.sim.events_processed
    assert _drain_outcome(mv, got_v) == _drain_outcome(mb, got_b)


# ---------------------------------------------------------------------------
# VecSimulator bounded-run + occupancy contracts
# ---------------------------------------------------------------------------

_time_st = st.floats(min_value=0.0, max_value=1e-5, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(
    times=st.lists(_time_st, min_size=0, max_size=30),
    until=st.one_of(st.none(), _time_st),
    max_events=st.one_of(st.none(), st.integers(min_value=1, max_value=40)),
)
def test_vec_bounded_run_matches_heapq(times, until, max_events):
    """The batched dispatcher's bounded-run contract equals the heapq
    reference: same executed order, same final clock, same error, and
    the queue survives to a full drain."""
    results = []
    for sim in (Simulator(), VecSimulator()):
        trace = []
        for i, t in enumerate(times):
            sim.schedule_at(t, lambda i=i: trace.append((i, sim.now)))
        try:
            sim.run(until=until, max_events=max_events)
            err = None
        except RuntimeError as e:
            err = str(e)
        sim.run()
        results.append((trace, sim.now, sim.events_processed, err))
    assert results[0] == results[1]


def test_vec_occupancy_stats():
    sim = VecSimulator()
    hid = sim.register_handler(lambda arg: None)
    # Two buckets: 12 events in one, 1 in another.
    for i in range(12):
        sim.schedule_msg(1e-6 + i * 1e-9, hid, i)
    sim.schedule_msg(5e-6, hid, "lone")
    sim.run()
    occ = sim.occupancy_stats()
    assert occ["events"] == 13
    assert occ["buckets_drained"] == 2
    assert occ["max_bucket_events"] == 12
    assert occ["mean_bucket_events"] == pytest.approx(6.5)


# ---------------------------------------------------------------------------
# VecCommStats: numpy columns, CommStats-identical read-outs
# ---------------------------------------------------------------------------


def test_vec_stats_columns_match_commstats():
    a, b = CommStats(4), VecCommStats(4)
    traffic = [
        Message(1, 3, "t0", 100, "x"),
        Message(1, 2, "t1", 50, "x"),
        Message(2, 0, "t2", 7, "y"),
    ]
    for s in (a, b):
        for msg in traffic:
            s.on_send(msg)
        s.on_receive(traffic[0])
    assert isinstance(b._sent["x"], np.ndarray)
    for k in ("x", "y"):
        assert list(b.sent[k]) == list(a.sent[k])
        assert list(b.messages_sent[k]) == list(a.messages_sent[k])
    assert b.messages_sent["x"].dtype == np.int64
    assert list(b.received["x"]) == list(a.received["x"])
    assert list(b.total_sent()) == list(a.total_sent())
    assert list(b.total_sent("x")) == list(a.total_sent("x"))
    assert list(b.total_sent("missing")) == [0.0] * 4
    assert list(b.total_received("x")) == list(a.total_received("x"))
    # Read-outs are copies, not aliases of the live columns.
    view = b.sent["x"]
    view[1] = 999.0
    assert b._sent["x"][1] != 999.0


def test_vec_machine_uses_column_stats(problem):
    sim = SimulatedPSelInv(
        problem.struct, ProcessorGrid(2, 2), "shifted", engine="vectorized"
    )
    assert isinstance(sim.machine, VecMachine)
    assert isinstance(sim.machine.stats, VecCommStats)
    assert isinstance(sim.machine.sim, VecSimulator)
    res = sim.run()
    assert res.events > 0
    occ = sim.machine.sim.occupancy_stats()
    assert occ["events"] == res.events
    assert occ["buckets_drained"] > 0
