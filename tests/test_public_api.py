"""Package-level API contract tests.

Guards the import surface a downstream user depends on: every name in
each package's ``__all__`` must resolve, the convenience wrappers must
work, and the version metadata must be present.
"""

import importlib

import numpy as np
import pytest

import repro


PACKAGES = [
    "repro",
    "repro.sparse",
    "repro.workloads",
    "repro.simulate",
    "repro.comm",
    "repro.core",
    "repro.analysis",
    "repro.check",
    "repro.runner",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__") and mod.__all__
    for item in mod.__all__:
        assert hasattr(mod, item), f"{name}.{item} missing"


def test_version():
    assert repro.__version__


def test_run_pselinv_wrapper():
    from repro.core import ProcessorGrid, run_pselinv
    from repro.sparse import analyze
    from repro.workloads import grid_laplacian_2d

    prob = analyze(grid_laplacian_2d(6, 6), ordering="nd")
    res = run_pselinv(prob.struct, ProcessorGrid(2, 2), "shifted")
    assert res.makespan > 0 and not res.numeric


def test_readme_quickstart_snippet():
    """The exact code shown in README.md must keep working."""
    from repro.sparse import analyze, selinv_sequential
    from repro.core import (
        ProcessorGrid,
        SimulatedPSelInv,
        communication_volumes,
    )
    from repro.sparse.factor import factorize
    from repro.workloads import make_workload

    matrix = make_workload("audikw_1", "tiny")
    prob = analyze(matrix, ordering="nd", max_supernode=8)
    factor, inv = selinv_sequential(prob)
    assert np.isfinite(inv.entry(0, 0))
    res = SimulatedPSelInv(
        prob.struct,
        ProcessorGrid(4, 4),
        "shifted",
        factor=factorize(prob.matrix, prob.struct),
    ).run()
    assert np.allclose(
        res.inverse.to_dense_at_structure(), inv.to_dense_at_structure()
    )
    rep = communication_volumes(prob.struct, ProcessorGrid(4, 4), "shifted")
    assert rep.col_bcast_sent().shape == (16,)


def test_tree_schemes_constant_is_complete():
    from repro.comm import TREE_SCHEMES, build_tree

    for scheme in TREE_SCHEMES:
        tree = build_tree(scheme, 0, set(range(9)), seed=1)
        assert tree.size == 9
