"""Integration tests of simulator behaviours the experiments depend on."""

import numpy as np
import pytest

from repro.core import ProcessorGrid, SimulatedPSelInv, iter_plans
from repro.simulate import Machine, Network, NetworkConfig
from repro.sparse import analyze, from_dense
from tests.conftest import random_symmetric_dense


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(777)
    a = random_symmetric_dense(70, 4.0, rng)
    return analyze(from_dense(a), ordering="amd")


class TestFlatRootSerialization:
    """The paper's core mechanism: a flat root's sends serialize."""

    def test_fanout_time_scales_linearly(self):
        cfg = NetworkConfig(injection_overhead=1e-4, injection_bandwidth=1e12)
        times = {}
        for fanout in (4, 16):
            m = Machine(32, Network(32, cfg))
            last = []
            for r in range(1, fanout + 1):
                m.set_handler(r, lambda msg: last.append(m.now))
            for r in range(1, fanout + 1):
                m.post_send(0, r, r, 8, "x")
            m.run()
            times[fanout] = max(last)
        # 16 sends should take ~4x the NIC time of 4 sends.
        assert times[16] / times[4] == pytest.approx(4.0, rel=0.15)

    def test_reduce_root_ejection_serializes(self):
        cfg = NetworkConfig(ejection_bandwidth=1e6)  # 1 MB/s: 1s per MB
        m = Machine(8, Network(8, cfg))
        arrivals = []
        m.set_handler(0, lambda msg: arrivals.append(m.now))
        for r in range(1, 8):
            m.post_send(r, 0, r, 10**6, "x")
        m.run()
        arrivals.sort()
        gaps = np.diff(arrivals)
        # Back-to-back ejections: ~1 second between deliveries.
        assert (gaps > 0.9).all()


class TestPlacementAndJitterEffects:
    def test_placement_changes_makespan(self, problem):
        cfg = NetworkConfig(cores_per_node=4, nodes_per_group=2, jitter_sigma=0.3)
        grid = ProcessorGrid(4, 4)
        t = {
            ps: SimulatedPSelInv(
                problem.struct, grid, "shifted", network=cfg,
                placement_seed=ps, jitter_seed=1,
            ).run().makespan
            for ps in (1, 2)
        }
        assert t[1] != t[2]

    def test_intra_node_cheaper_than_inter_group(self):
        cfg = NetworkConfig(cores_per_node=4, nodes_per_group=2)
        net = Network(64, cfg)
        b = 10**5
        assert net.transit_time(0, 1, b) < net.transit_time(0, 63, b)


class TestSchemeInvariants:
    def test_event_count_is_scheme_independent(self, problem):
        """Trees reshape WHO forwards, not how many messages exist."""
        grid = ProcessorGrid(4, 4)
        plans = list(iter_plans(problem.struct, grid))
        counts = {
            s: SimulatedPSelInv(
                problem.struct, grid, s, plans=plans, seed=2
            ).run().events
            for s in ("flat", "binary", "shifted")
        }
        assert len(set(counts.values())) == 1, counts

    def test_makespan_positive_and_finite(self, problem):
        grid = ProcessorGrid(5, 5)
        res = SimulatedPSelInv(problem.struct, grid, "shifted").run()
        assert 0 < res.makespan < 10.0

    def test_max_events_guard_applies(self, problem):
        grid = ProcessorGrid(4, 4)
        sim = SimulatedPSelInv(problem.struct, grid, "flat")
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(max_events=10)


class TestTreeCacheGuard:
    def test_cross_config_reuse_rejected(self, problem):
        cache: dict = {}
        SimulatedPSelInv(
            problem.struct, ProcessorGrid(2, 2), "shifted", tree_cache=cache
        ).run()
        with pytest.raises(ValueError, match="different configuration"):
            SimulatedPSelInv(
                problem.struct, ProcessorGrid(3, 3), "shifted", tree_cache=cache
            )

    def test_same_config_reuse_accepted(self, problem):
        cache: dict = {}
        grid = ProcessorGrid(2, 2)
        a = SimulatedPSelInv(
            problem.struct, grid, "shifted", seed=5, tree_cache=cache,
            jitter_seed=0,
        ).run()
        b = SimulatedPSelInv(
            problem.struct, grid, "shifted", seed=5, tree_cache=cache,
            jitter_seed=1,
        ).run()
        assert a.events == b.events
