"""Parallel experiment runner: determinism and failure-reporting contract.

The load-bearing property of :mod:`repro.runner` is that the worker
count is *not observable* in the results: every simulation is seeded and
the pool merges records in spec order, so a ``REPRO_JOBS=4`` sweep must
be bit-identical to the serial one.  These tests pin that contract on a
small jitter-enabled sweep (jitter + placement seeds are where
nondeterminism would leak first), plus the error path: a failing spec
must surface as :class:`~repro.runner.ExperimentError` naming the spec.
"""

from __future__ import annotations

import pytest

from repro.runner import (
    ExperimentError,
    ExperimentSpec,
    ParallelRunner,
    VolumeSpec,
    default_jobs,
    run_experiment,
    run_experiments,
)
from repro.simulate import NetworkConfig

# Jitter on and few ranks per node, so schemes/seeds genuinely diverge
# (with all 16 ranks on one node every transfer is intra-node and jitter
# never applies) and any RNG-state leak between runs sharing a worker
# process would change the records.
NET = NetworkConfig(jitter_sigma=0.2, cores_per_node=4, nodes_per_group=2)


def sweep_specs() -> list[ExperimentSpec]:
    specs = [
        ExperimentSpec(
            workload="audikw_1",
            grid=(4, 4),
            scheme=scheme,
            scale="tiny",
            network=NET,
            jitter_seed=run,
            placement_seed=run + 77,
            lookahead=4,
            label=f"{scheme}/run{run}",
        )
        for scheme in ("flat", "shifted")
        for run in (0, 1)
    ]
    specs.append(
        VolumeSpec("audikw_1", (4, 4), "binary", scale="tiny")
    )
    return specs


def test_serial_and_parallel_sweeps_bit_identical():
    specs = sweep_specs()
    serial = run_experiments(specs, jobs=1)
    parallel = run_experiments(specs, jobs=2)
    assert len(serial) == len(parallel) == len(specs)
    for spec, a, b in zip(specs[:-1], serial, parallel):
        assert a.spec == spec  # records come back in spec order
        assert a.same_outcome(b), f"parallel diverged on {spec.describe()}"
    # The volume report at the end survives the mixed-type dispatch.
    va, vb = serial[-1], parallel[-1]
    assert (va.col_bcast_sent() == vb.col_bcast_sent()).all()


def test_runs_actually_differ_across_seeds_and_schemes():
    # Guards the test above against vacuous passes: if every record were
    # identical, bit-identity between serial and parallel proves nothing.
    records = run_experiments(sweep_specs()[:-1], jobs=1)
    assert len({r.makespan for r in records}) == len(records)


def test_worker_exception_names_the_failing_spec():
    specs = sweep_specs()[:2]
    bad = ExperimentSpec(
        workload="audikw_1",
        grid=(4, 4),
        scheme="no-such-scheme",
        scale="tiny",
    )
    with pytest.raises(ExperimentError) as exc:
        run_experiments([*specs, bad], jobs=2)
    msg = str(exc.value)
    assert "no-such-scheme" in msg
    assert "audikw_1" in msg


def test_single_spec_matches_sweep_entry():
    specs = sweep_specs()[:2]
    alone = run_experiment(specs[1])
    swept = run_experiments(specs, jobs=2)[1]
    assert alone.same_outcome(swept)


def test_progress_callback_sees_every_item():
    specs = sweep_specs()[:3]
    seen = []
    ParallelRunner(jobs=1, progress=lambda done, total, *a: seen.append((done, total))).run(
        specs
    )
    assert seen == [(1, 3), (2, 3), (3, 3)]


def test_parallel_runner_merges_worker_cache_stats():
    # Workers run in separate processes; their tree-cache and memo
    # counters used to die with the pool.  The runner must fold the
    # per-item deltas back into its own stats, and the derived hit-rate
    # gauge must be guarded (an idle runner divides nothing by zero).
    idle = ParallelRunner(jobs=2)
    snap = idle.metrics_snapshot()
    assert snap["gauges"]["comm.tree_cache.hit_rate"] == 0.0

    runner = ParallelRunner(jobs=2)
    runner.run(sweep_specs())
    hits = runner.stats.get("tree_cache.hits", 0)
    misses = runner.stats.get("tree_cache.misses", 0)
    assert hits > 0, f"worker tree-cache stats were dropped: {runner.stats}"
    snap = runner.metrics_snapshot()
    assert snap["counters"]["comm.tree_cache.hits"] == hits
    assert snap["gauges"]["comm.tree_cache.hit_rate"] == hits / (hits + misses)
    # The per-process memo tables ship too.
    assert "memo.problem_misses" in runner.stats or "memo.problem_hits" in runner.stats


def test_default_jobs_env_parsing(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "1")
    assert default_jobs() == 1
    monkeypatch.delenv("REPRO_JOBS")
    assert default_jobs() >= 1
