"""Integration: simulated parallel PSelInv vs the sequential oracle.

The strongest correctness statement in the repository: running the full
asynchronous message-driven protocol (diag-bcast, cross-send, col-bcast,
GEMM, row-reduce, col-reduce, cross-back) on any grid with any tree
scheme must reproduce the sequential Algorithm 1 blocks exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProcessorGrid, SimulatedPSelInv
from repro.sparse import analyze, from_dense
from repro.sparse.factor import factorize
from repro.sparse.selinv import normalize, selected_inversion
from repro.workloads import grid_laplacian_2d
from tests.conftest import random_symmetric_dense


def make_problem(n, rng, ordering="amd"):
    a = random_symmetric_dense(n, 3.5, rng)
    prob = analyze(from_dense(a), ordering=ordering)
    fac_seq = factorize(prob.matrix, prob.struct)
    normalize(fac_seq)
    oracle = selected_inversion(fac_seq)
    fac_raw = factorize(prob.matrix, prob.struct)
    return prob, fac_raw, oracle.to_dense_at_structure()


@pytest.fixture(scope="module")
def fixed_problem():
    rng = np.random.default_rng(314159)
    return make_problem(70, rng)


SCHEMES = ["flat", "binary", "shifted", "randperm", "hybrid"]


@pytest.mark.parametrize("scheme", SCHEMES)
class TestParallelMatchesSequential:
    def test_2x2(self, scheme, fixed_problem):
        prob, fac, want = fixed_problem
        res = SimulatedPSelInv(
            prob.struct, ProcessorGrid(2, 2), scheme, factor=fac, seed=1
        ).run()
        got = res.inverse.to_dense_at_structure()
        assert np.abs(got - want).max() < 1e-9

    def test_rectangular_grid(self, scheme, fixed_problem):
        prob, fac, want = fixed_problem
        res = SimulatedPSelInv(
            prob.struct, ProcessorGrid(4, 3), scheme, factor=fac, seed=2
        ).run()
        assert np.abs(res.inverse.to_dense_at_structure() - want).max() < 1e-9

    def test_single_rank(self, scheme, fixed_problem):
        prob, fac, want = fixed_problem
        res = SimulatedPSelInv(
            prob.struct, ProcessorGrid(1, 1), scheme, factor=fac, seed=3
        ).run()
        assert np.abs(res.inverse.to_dense_at_structure() - want).max() < 1e-9

    def test_tall_grid(self, scheme, fixed_problem):
        prob, fac, want = fixed_problem
        res = SimulatedPSelInv(
            prob.struct, ProcessorGrid(5, 1), scheme, factor=fac, seed=4
        ).run()
        assert np.abs(res.inverse.to_dense_at_structure() - want).max() < 1e-9


class TestLookaheadWindow:
    @pytest.mark.parametrize("lookahead", [1, 2, 5, None])
    def test_any_window_is_exact(self, lookahead, fixed_problem):
        prob, fac, want = fixed_problem
        res = SimulatedPSelInv(
            prob.struct,
            ProcessorGrid(3, 2),
            "shifted",
            factor=fac,
            seed=7,
            lookahead=lookahead,
        ).run()
        assert np.abs(res.inverse.to_dense_at_structure() - want).max() < 1e-9

    def test_small_window_does_not_deadlock(self, fixed_problem):
        prob, fac, _ = fixed_problem
        res = SimulatedPSelInv(
            prob.struct, ProcessorGrid(2, 3), "binary", factor=fac, lookahead=1
        ).run()
        assert res.makespan > 0

    def test_wider_window_is_not_slower(self, fixed_problem):
        # More pipelining can only help (same work, more overlap).
        prob, _, _ = fixed_problem
        grid = ProcessorGrid(3, 3)
        t_narrow = SimulatedPSelInv(
            prob.struct, grid, "shifted", lookahead=1, seed=5
        ).run().makespan
        t_wide = SimulatedPSelInv(
            prob.struct, grid, "shifted", lookahead=64, seed=5
        ).run().makespan
        assert t_wide <= t_narrow * 1.05


class TestLaplacianProblem:
    def test_2d_laplacian_parallel(self):
        prob = analyze(grid_laplacian_2d(8, 8), ordering="nd")
        fac_seq = factorize(prob.matrix, prob.struct)
        normalize(fac_seq)
        want = selected_inversion(fac_seq).to_dense_at_structure()
        fac = factorize(prob.matrix, prob.struct)
        res = SimulatedPSelInv(
            prob.struct, ProcessorGrid(3, 3), "shifted", factor=fac
        ).run()
        assert np.abs(res.inverse.to_dense_at_structure() - want).max() < 1e-9


class TestResultMetadata:
    def test_result_fields(self, fixed_problem):
        prob, fac, _ = fixed_problem
        res = SimulatedPSelInv(
            prob.struct, ProcessorGrid(2, 2), "flat", factor=fac
        ).run()
        assert res.numeric and res.scheme == "flat"
        assert res.makespan > 0 and res.events > 0
        assert res.compute_time > 0
        assert res.communication_time == pytest.approx(
            res.makespan - res.compute_time
        )

    def test_symbolic_mode_has_no_inverse(self, fixed_problem):
        prob, _, _ = fixed_problem
        res = SimulatedPSelInv(prob.struct, ProcessorGrid(2, 2), "flat").run()
        assert res.inverse is None and not res.numeric

    def test_instance_runs_once(self, fixed_problem):
        prob, _, _ = fixed_problem
        sim = SimulatedPSelInv(prob.struct, ProcessorGrid(2, 2), "flat")
        sim.run()
        with pytest.raises(RuntimeError, match="runs only once"):
            sim.run()

    def test_jitter_changes_makespan_not_results(self, fixed_problem):
        prob, fac, want = fixed_problem
        from repro.simulate import NetworkConfig

        cfg = NetworkConfig(jitter_sigma=0.4, cores_per_node=4)
        t = []
        for js in (1, 2):
            res = SimulatedPSelInv(
                prob.struct,
                ProcessorGrid(4, 4),
                "shifted",
                factor=fac,
                network=cfg,
                jitter_seed=js,
            ).run()
            t.append(res.makespan)
            assert np.abs(res.inverse.to_dense_at_structure() - want).max() < 1e-9
        assert t[0] != t[1]


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=10, max_value=40),
    st.integers(0, 2**31 - 1),
    st.sampled_from(SCHEMES),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
def test_parallel_equals_sequential_property(n, seed, scheme, pr, pc):
    """Random matrix, random grid, any scheme: distributed == sequential."""
    rng = np.random.default_rng(seed)
    prob, fac, want = make_problem(n, rng)
    res = SimulatedPSelInv(
        prob.struct, ProcessorGrid(pr, pc), scheme, factor=fac, seed=seed & 0xFFFF
    ).run()
    assert np.abs(res.inverse.to_dense_at_structure() - want).max() < 1e-8
