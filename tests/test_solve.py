"""Tests for sparse triangular solves with the supernodal factor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import analyze, from_dense, solve, solve_factored
from repro.sparse.factor import factorize
from repro.sparse.selinv import normalize
from repro.workloads import grid_laplacian_2d
from tests.conftest import random_symmetric_dense, random_unsymmetric_dense


class TestSolveFactored:
    def test_single_rhs(self, rng):
        a = random_symmetric_dense(40, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        fac = factorize(prob.matrix, prob.struct)
        b = rng.normal(size=40)
        x = solve_factored(fac, b)
        np.testing.assert_allclose(prob.matrix.to_dense() @ x, b, atol=1e-9)

    def test_multiple_rhs(self, rng):
        a = random_symmetric_dense(35, 3.0, rng)
        prob = analyze(from_dense(a), ordering="nd")
        fac = factorize(prob.matrix, prob.struct)
        b = rng.normal(size=(35, 4))
        x = solve_factored(fac, b)
        np.testing.assert_allclose(prob.matrix.to_dense() @ x, b, atol=1e-9)

    def test_unsymmetric(self, rng):
        a = random_unsymmetric_dense(30, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        fac = factorize(prob.matrix, prob.struct)
        b = rng.normal(size=30)
        x = solve_factored(fac, b)
        np.testing.assert_allclose(prob.matrix.to_dense() @ x, b, atol=1e-9)

    def test_rejects_normalized_factor(self, rng):
        a = random_symmetric_dense(20, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        fac = factorize(prob.matrix, prob.struct)
        normalize(fac)
        with pytest.raises(ValueError, match="normalized"):
            solve_factored(fac, np.ones(20))

    def test_rejects_wrong_shape(self, rng):
        a = random_symmetric_dense(20, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        fac = factorize(prob.matrix, prob.struct)
        with pytest.raises(ValueError, match="rows"):
            solve_factored(fac, np.ones(19))

    def test_complex(self, rng):
        n = 25
        a = np.zeros((n, n), dtype=complex)
        for _ in range(60):
            i, j = rng.integers(0, n, 2)
            v = rng.normal() + 1j * rng.normal()
            a[i, j] += v
            a[j, i] += v
        a += np.diag(np.abs(a).sum(axis=1) + 1.0)
        prob = analyze(from_dense(a), ordering="amd")
        fac = factorize(prob.matrix, prob.struct)
        b = rng.normal(size=n) + 1j * rng.normal(size=n)
        x = solve_factored(fac, b)
        np.testing.assert_allclose(prob.matrix.to_dense() @ x, b, atol=1e-9)


class TestSolveOriginalOrder:
    def test_roundtrip_permutation(self, rng):
        a = random_symmetric_dense(40, 3.0, rng)
        prob = analyze(from_dense(a), ordering="nd")
        b = rng.normal(size=40)
        x = solve(prob, b)
        np.testing.assert_allclose(a @ x, b, atol=1e-9)

    def test_laplacian_multi_rhs(self, rng):
        m = grid_laplacian_2d(8, 8)
        prob = analyze(m, ordering="nd")
        b = rng.normal(size=(64, 3))
        x = solve(prob, b)
        np.testing.assert_allclose(m.to_dense() @ x, b, atol=1e-9)


class TestNormalizeGuards:
    def test_double_normalize_rejected(self, rng):
        a = random_symmetric_dense(20, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        fac = factorize(prob.matrix, prob.struct)
        normalize(fac)
        with pytest.raises(ValueError, match="already normalized"):
            normalize(fac)

    def test_selinv_requires_normalize(self, rng):
        from repro.sparse.selinv import selected_inversion

        a = random_symmetric_dense(20, 3.0, rng)
        prob = analyze(from_dense(a), ordering="amd")
        fac = factorize(prob.matrix, prob.struct)
        with pytest.raises(ValueError, match="normalize"):
            selected_inversion(fac)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=30), st.integers(0, 2**31 - 1))
def test_solve_property(n, seed):
    rng = np.random.default_rng(seed)
    a = random_symmetric_dense(n, 2.5, rng)
    prob = analyze(from_dense(a), ordering="amd")
    b = rng.normal(size=n)
    x = solve(prob, b)
    assert np.abs(a @ x - b).max() < 1e-8
