"""The analytic volume model and the simulator must agree byte-for-byte.

``communication_volumes`` computes per-rank counters combinatorially;
``SimulatedPSelInv`` counts real messages.  Exact equality across every
category and scheme pins the simulator's protocol to the plan spec --
any double-send, missed forward, or wrong tree shape breaks this test.
"""

import numpy as np
import pytest

from repro.core import ProcessorGrid, SimulatedPSelInv, communication_volumes
from repro.sparse import analyze, from_dense
from repro.workloads import make_workload
from tests.conftest import random_symmetric_dense

CATEGORIES = [
    "col-bcast",
    "row-reduce",
    "diag-bcast",
    "col-reduce",
    "cross-send",
    "cross-back",
]


@pytest.fixture(scope="module")
def workload_problem():
    m = make_workload("audikw_1", "tiny")
    return analyze(m, ordering="nd")


@pytest.mark.parametrize("scheme", ["flat", "binary", "shifted", "randperm", "hybrid"])
@pytest.mark.parametrize("grid_shape", [(4, 4), (3, 5), (6, 2)])
def test_volumes_match_simulation(workload_problem, scheme, grid_shape):
    grid = ProcessorGrid(*grid_shape)
    seed = 42
    res = SimulatedPSelInv(workload_problem.struct, grid, scheme, seed=seed).run()
    rep = communication_volumes(workload_problem.struct, grid, scheme, seed=seed)
    for kind in CATEGORIES:
        np.testing.assert_array_equal(
            res.stats.total_sent(kind),
            rep.sent.get(kind, np.zeros(grid.size)),
            err_msg=f"{scheme}/{kind}/sent",
        )
        np.testing.assert_array_equal(
            res.stats.total_received(kind),
            rep.received.get(kind, np.zeros(grid.size)),
            err_msg=f"{scheme}/{kind}/recv",
        )


def test_seed_changes_shifted_volumes(workload_problem):
    grid = ProcessorGrid(4, 4)
    r1 = communication_volumes(workload_problem.struct, grid, "shifted", seed=1)
    r2 = communication_volumes(workload_problem.struct, grid, "shifted", seed=2)
    assert not np.array_equal(r1.col_bcast_sent(), r2.col_bcast_sent())


def test_seed_does_not_change_flat_or_binary(workload_problem):
    grid = ProcessorGrid(4, 4)
    for scheme in ("flat", "binary"):
        r1 = communication_volumes(workload_problem.struct, grid, scheme, seed=1)
        r2 = communication_volumes(workload_problem.struct, grid, scheme, seed=2)
        np.testing.assert_array_equal(r1.total_sent(), r2.total_sent())


def test_total_volume_conserved_across_schemes(workload_problem):
    """Broadcast/reduce trees change WHO carries bytes, not how many bytes
    exist per edge count: total bytes = sum over collectives of
    (participants - 1) * nbytes for every scheme."""
    grid = ProcessorGrid(5, 3)
    totals = {}
    for scheme in ("flat", "binary", "shifted", "randperm"):
        rep = communication_volumes(workload_problem.struct, grid, scheme, seed=3)
        totals[scheme] = rep.total_sent().sum()
    vals = list(totals.values())
    assert all(v == vals[0] for v in vals), totals


def test_sent_equals_received_globally(workload_problem):
    grid = ProcessorGrid(4, 4)
    rep = communication_volumes(workload_problem.struct, grid, "shifted", seed=5)
    assert rep.total_sent().sum() == rep.total_received().sum()


def test_single_rank_grid_has_no_traffic(workload_problem):
    rep = communication_volumes(
        workload_problem.struct, ProcessorGrid(1, 1), "flat"
    )
    assert rep.total_sent().sum() == 0


def test_volume_report_accessors(workload_problem):
    grid = ProcessorGrid(4, 4)
    rep = communication_volumes(workload_problem.struct, grid, "flat")
    assert rep.col_bcast_sent().shape == (16,)
    assert rep.row_reduce_received().shape == (16,)
    hm = rep.heatmap("col-bcast", "sent")
    assert hm.shape == (4, 4)
    assert hm.sum() == rep.sent["col-bcast"].sum()
    # The Table-I aggregate includes the diagonal-block broadcasts.
    hm_total = rep.heatmap("col-bcast-total")
    assert hm_total.sum() == pytest.approx(
        rep.sent["col-bcast"].sum() + rep.sent["diag-bcast"].sum()
    )
    assert hm_total.sum() == pytest.approx(rep.col_bcast_sent().sum())


def test_exclude_cross_sends(workload_problem):
    grid = ProcessorGrid(4, 4)
    with_cross = communication_volumes(
        workload_problem.struct, grid, "flat", include_cross=True
    )
    without = communication_volumes(
        workload_problem.struct, grid, "flat", include_cross=False
    )
    assert "cross-send" in with_cross.sent
    assert "cross-send" not in without.sent
    np.testing.assert_array_equal(
        with_cross.col_bcast_sent(), without.col_bcast_sent()
    )


def test_random_matrix_parity(rng):
    """Parity on an irregular random problem, not just the workload."""
    a = random_symmetric_dense(60, 4.0, rng)
    prob = analyze(from_dense(a), ordering="amd")
    grid = ProcessorGrid(3, 4)
    res = SimulatedPSelInv(prob.struct, grid, "shifted", seed=9).run()
    rep = communication_volumes(prob.struct, grid, "shifted", seed=9)
    np.testing.assert_array_equal(
        res.stats.total_sent(),
        sum(rep.sent.values()),
    )


class TestCommunicatorCounts:
    """§III motivation: too many distinct groups for MPI communicators."""

    def test_counts_grow_with_grid(self, workload_problem):
        from repro.core import count_distinct_communicators

        c4 = count_distinct_communicators(
            workload_problem.struct, ProcessorGrid(4, 4)
        )
        c8 = count_distinct_communicators(
            workload_problem.struct, ProcessorGrid(8, 8)
        )
        assert c8["distinct_total"] > c4["distinct_total"]
        # Total collective count is grid-independent (one per plan entry).
        assert c8["collectives_total"] == c4["collectives_total"]

    def test_groups_exceed_single_row_column_count(self, workload_problem):
        """Far more distinct groups than the 2*P row+column communicators
        a static scheme could pre-create."""
        from repro.core import count_distinct_communicators

        grid = ProcessorGrid(6, 6)
        c = count_distinct_communicators(workload_problem.struct, grid)
        assert c["distinct_total"] > grid.pr + grid.pc

    def test_singletons_excluded(self, workload_problem):
        from repro.core import count_distinct_communicators

        c = count_distinct_communicators(
            workload_problem.struct, ProcessorGrid(1, 1)
        )
        assert c["distinct_total"] == 0
        assert c["collectives_total"] > 0


class TestMessageCounts:
    """§III: the tree cuts the root's per-collective sends p-1 -> <= 2,
    and the binomial baseline to ceil(log2 p)."""

    def test_max_degree_per_scheme(self, workload_problem):
        import math

        from repro.core import iter_plans

        grid = ProcessorGrid(8, 8)
        biggest = max(
            len(spec.participants)
            for plan in iter_plans(workload_problem.struct, grid)
            for spec in plan.col_bcasts
        )
        deg = {}
        for scheme in ("flat", "binary", "shifted", "binomial"):
            rep = communication_volumes(
                workload_problem.struct, grid, scheme, seed=4
            )
            deg[scheme] = rep.max_degree["col-bcast"]
        # Flat root serves the whole group; trees cap at 2; binomial at
        # ceil(log2 p).
        assert deg["flat"] == biggest - 1
        assert deg["binary"] <= 2
        assert deg["shifted"] <= 2
        assert deg["binomial"] <= math.ceil(math.log2(biggest))

    def test_total_messages_equal_across_schemes(self, workload_problem):
        """Trees redistribute messages; the total stays (p-1) per
        collective for every scheme."""
        grid = ProcessorGrid(6, 6)
        totals = set()
        for scheme in ("flat", "binary", "shifted"):
            rep = communication_volumes(
                workload_problem.struct, grid, scheme, seed=4
            )
            totals.add(sum(arr.sum() for arr in rep.messages.values()))
        assert len(totals) == 1

    def test_message_counts_match_simulation(self, workload_problem):
        grid = ProcessorGrid(4, 4)
        scheme = "shifted"
        res = SimulatedPSelInv(
            workload_problem.struct, grid, scheme, seed=21
        ).run()
        rep = communication_volumes(
            workload_problem.struct, grid, scheme, seed=21
        )
        for kind in ("col-bcast", "row-reduce", "diag-bcast"):
            np.testing.assert_array_equal(
                res.stats.messages_sent.get(kind, np.zeros(grid.size)),
                rep.messages.get(kind, np.zeros(grid.size)),
                err_msg=kind,
            )
