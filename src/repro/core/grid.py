"""2D processor grid and block-cyclic mapping (paper §II-B, Fig. 1).

PSelInv inherits SuperLU_DIST's layout: supernodal blocks ``(I, J)`` are
mapped cyclically onto a virtual ``Pr x Pc`` grid, block row ``I`` to grid
row ``I mod Pr`` and block column ``J`` to grid column ``J mod Pc``.
Ranks number the grid row-major (Fig. 1(a)): consecutive MPI ranks walk
along a grid row, which -- combined with MPI's fill-a-node-first placement
-- makes grid-row neighbours physically close and grid-column neighbours
``Pc`` ranks apart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ProcessorGrid", "square_grids"]


@dataclass(frozen=True)
class ProcessorGrid:
    """A ``pr x pc`` virtual processor grid."""

    pr: int
    pc: int

    def __post_init__(self) -> None:
        if self.pr < 1 or self.pc < 1:
            raise ValueError("grid dimensions must be positive")

    @property
    def size(self) -> int:
        return self.pr * self.pc

    def rank(self, row: int, col: int) -> int:
        """Rank at grid coordinates (row-major numbering)."""
        if not (0 <= row < self.pr and 0 <= col < self.pc):
            raise ValueError(f"grid coordinate ({row}, {col}) out of range")
        return row * self.pc + col

    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinates of ``rank``."""
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} out of range")
        return divmod(rank, self.pc)

    def owner(self, block_row: int, block_col: int) -> int:
        """Rank owning supernodal block ``(block_row, block_col)``."""
        return self.rank(block_row % self.pr, block_col % self.pc)

    def row_ranks(self, grid_row: int) -> np.ndarray:
        """All ranks in one grid row (a row communication group)."""
        return np.arange(grid_row * self.pc, (grid_row + 1) * self.pc)

    def col_ranks(self, grid_col: int) -> np.ndarray:
        """All ranks in one grid column (a column communication group)."""
        return np.arange(grid_col, self.size, self.pc)

    def volume_heatmap(self, per_rank: np.ndarray) -> np.ndarray:
        """Reshape a per-rank vector into the (pr, pc) grid layout used by
        the paper's heat-map figures."""
        per_rank = np.asarray(per_rank)
        if per_rank.shape != (self.size,):
            raise ValueError("per-rank vector length must equal grid size")
        return per_rank.reshape(self.pr, self.pc)


def square_grids(max_procs: int) -> list[ProcessorGrid]:
    """All square grids with ``p^2 <= max_procs`` (the paper's sweep uses
    square or near-square grids: 64, 121, 256, ..., 12100)."""
    out = []
    p = 1
    while p * p <= max_procs:
        out.append(ProcessorGrid(p, p))
        p += 1
    return out
