"""Simulated parallel selected inversion for UNSYMMETRIC matrices.

The paper treats symmetric matrices and names the asymmetric extension as
work in progress ("the same communication strategy can be naturally
extended to asymmetric matrices"); this module is that extension, built
on the same tree collectives.  Without ``Uhat = Lhat^T``, the U panels
carry independent data, so every L-side pipeline stage gains a mirrored
U-side stage (see :mod:`repro.core.plan_unsym` for the event table):

* the diagonal block is broadcast twice -- down grid column ``K mod Pc``
  (L normalization) and along grid row ``K mod Pr`` (U normalization);
* ``Lhat(I,K)`` cross-ships L->U and is *column*-broadcast for the
  GEMM-L pipeline producing the lower blocks ``Ainv(C,K)``;
* ``Uhat(K,I)`` cross-ships U->L and is *row*-broadcast for the GEMM-U
  pipeline producing the upper blocks ``Ainv(K,C)`` in place at their
  owners (the symmetric algorithm's cross-backs disappear);
* the diagonal update reduces ``Ainv(K,J) Lhat(J,K)`` along grid row
  ``K mod Pr`` -- the ``Lhat`` factor is already present at each upper
  owner because it was that block's column-broadcast root.

Numeric mode is verified against the sequential unsymmetric oracle
exactly, which is the strongest evidence the mirrored dataflow is right.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.linalg import solve_triangular

from ..comm.collectives import TreeBroadcast, TreeReduce
from ..comm.trees import build_tree
from ..simulate.machine import Machine, Message
from ..simulate.network import Network, NetworkConfig
from ..sparse.factor import SupernodalFactor
from ..sparse.selinv import SelectedInverse
from ..sparse.supernodes import SupernodalStructure
from .grid import ProcessorGrid
from .plan import BYTES_PER_ENTRY
from .plan_unsym import UnsymSupernodePlan, iter_unsym_plans
from .pselinv import PSelInvResult
from .volume import collective_seed

__all__ = ["SimulatedPSelInvUnsym", "run_pselinv_unsym"]


class _UnsymState:
    """Per-supernode bookkeeping for the mirrored pipelines."""

    __slots__ = (
        "plan",
        "lhat",       # I -> Lhat(I,K) at L owner
        "uhat",       # I -> Uhat(K,I) at U owner
        "lhat_at_u",  # I -> Lhat(I,K) stashed at its col-bcast root
        "bcast_l",    # (I, rank) -> Lhat payload from col-bcast
        "bcast_u",    # (I, rank) -> Uhat payload from row-bcast
        "ainv_low",   # J -> Ainv(J,K)
        "ainv_up",    # J -> Ainv(K,J)
        "rowp",       # (J, rank) -> GEMM-L partial
        "colp",       # (J, rank) -> GEMM-U partial
        "gl_left",
        "gu_left",
        "diag_partial",
        "diag_left",
        "base",
        "diag_value",
        "norm_l",
        "norm_u",
        "gemms_l",
        "gemms_u",
        "nrows",
        "l2u_nbytes",
        "u2l_nbytes",
        "diag_fired",
    )

    def __init__(self, plan: UnsymSupernodePlan):
        self.plan = plan
        self.lhat: dict[int, Any] = {}
        self.uhat: dict[int, Any] = {}
        self.lhat_at_u: dict[int, Any] = {}
        self.bcast_l: dict[tuple[int, int], Any] = {}
        self.bcast_u: dict[tuple[int, int], Any] = {}
        self.ainv_low: dict[int, Any] = {}
        self.ainv_up: dict[int, Any] = {}
        self.rowp: dict[tuple[int, int], Any] = {}
        self.colp: dict[tuple[int, int], Any] = {}
        self.gl_left: dict[tuple[int, int], int] = {}
        self.gu_left: dict[tuple[int, int], int] = {}
        self.diag_partial: dict[int, Any] = {}
        self.diag_left: dict[int, int] = {}
        self.base: Any = None
        self.diag_value: Any = None
        self.norm_l: dict[int, list] = {}
        self.norm_u: dict[int, list] = {}
        self.gemms_l: dict[tuple[int, int], list[int]] = {}
        self.gemms_u: dict[tuple[int, int], list[int]] = {}
        self.nrows: dict[int, int] = {b.snode: b.nrows for b in plan.blocks}
        self.l2u_nbytes = {p.key[2]: p.nbytes for p in plan.cross_l2u}
        self.u2l_nbytes = {p.key[2]: p.nbytes for p in plan.cross_u2l}
        self.diag_fired: set[int] = set()


class SimulatedPSelInvUnsym:
    """One configured unsymmetric PSelInv simulation; call :meth:`run`."""

    def __init__(
        self,
        struct: SupernodalStructure,
        grid: ProcessorGrid,
        scheme: str = "shifted",
        *,
        factor: SupernodalFactor | None = None,
        network: NetworkConfig | None = None,
        seed: int = 0,
        placement_seed: int | None = None,
        jitter_seed: int = 0,
        hybrid_threshold: int = 8,
        lookahead: int | None = 32,
        plans: list[UnsymSupernodePlan] | None = None,
    ) -> None:
        self.struct = struct
        self.grid = grid
        self.scheme = scheme
        self.factor = factor
        self.numeric = factor is not None
        self.seed = seed
        self.hybrid_threshold = hybrid_threshold
        self.lookahead = lookahead
        net = Network(
            grid.size, network,
            placement_seed=placement_seed, jitter_seed=jitter_seed,
        )
        self.machine = Machine(grid.size, net)
        if plans is not None:
            self.plans = plans
        else:
            bpe = BYTES_PER_ENTRY
            if factor is not None and factor.LX and np.iscomplexobj(factor.LX[0]):
                bpe = 2 * BYTES_PER_ENTRY
            self.plans = list(
                iter_unsym_plans(struct, grid, bytes_per_entry=bpe)
            )
        self.states = [_UnsymState(p) for p in self.plans]
        self.collectives: dict[tuple, Any] = {}
        self.ainv_ready: set[tuple[int, int]] = set()
        self.ainv_data: dict[tuple[int, int], Any] = {}
        self.waiters: dict[tuple[int, int], list] = {}
        self.done_diag = 0
        self._ran = False
        for r in range(grid.size):
            self.machine.set_handler(r, self._make_handler(r))

    # -- wiring -------------------------------------------------------------

    def _tree(self, spec):
        return build_tree(
            self.scheme, spec.root, spec.participants,
            collective_seed(self.seed, spec.key),
            hybrid_threshold=self.hybrid_threshold,
        )

    def _make_handler(self, rank: int):
        def handler(msg: Message) -> None:
            key = msg.tag
            kind = key[0]
            if kind in ("db", "dr", "cb", "rb", "rr", "cu2", "dq"):
                self.collectives[key].on_message(msg)
            elif kind == "cl":
                self._on_cross_l2u(key[1], key[2], msg.payload)
            elif kind == "cu":
                self._on_cross_u2l(key[1], key[2], msg.payload)
            else:  # pragma: no cover - protocol safety net
                raise RuntimeError(f"unknown message tag {key!r}")

        return handler

    def _build_collectives(self, plan: UnsymSupernodePlan) -> None:
        m = self.machine
        k = plan.k
        pr, pc = self.grid.pr, self.grid.pc
        c_rows = sorted({b.snode % pr for b in plan.blocks})
        c_cols = sorted({b.snode % pc for b in plan.blocks})
        kr, kc = k % pr, k % pc

        spec = plan.diag_bcast
        self.collectives[spec.key] = TreeBroadcast(
            m, self._tree(spec), spec.key, spec.nbytes, spec.kind,
            lambda rank, payload, k=k: self._on_diag_col(k, rank, payload),
        )
        spec = plan.diag_rbcast
        self.collectives[spec.key] = TreeBroadcast(
            m, self._tree(spec), spec.key, spec.nbytes, spec.kind,
            lambda rank, payload, k=k: self._on_diag_row(k, rank, payload),
        )
        for spec in plan.col_bcasts:
            i = spec.key[2]
            self.collectives[spec.key] = TreeBroadcast(
                m, self._tree(spec), spec.key, spec.nbytes, spec.kind,
                lambda rank, payload, k=k, i=i: self._on_col_delivery(
                    k, i, rank, payload
                ),
            )
        for spec in plan.row_bcasts:
            i = spec.key[2]
            self.collectives[spec.key] = TreeBroadcast(
                m, self._tree(spec), spec.key, spec.nbytes, spec.kind,
                lambda rank, payload, k=k, i=i: self._on_row_delivery(
                    k, i, rank, payload
                ),
            )
        for spec in plan.row_reduces:
            j = spec.key[2]
            contributors = {self.grid.rank(j % pr, c) for c in c_cols}
            self.collectives[spec.key] = TreeReduce(
                m, self._tree(spec), spec.key, spec.nbytes, spec.kind,
                contributors,
                lambda value, k=k, j=j: self._on_rowreduce(k, j, value),
            )
        for spec in plan.col_ureduces:
            j = spec.key[2]
            contributors = {self.grid.rank(r, j % pc) for r in c_rows}
            self.collectives[spec.key] = TreeReduce(
                m, self._tree(spec), spec.key, spec.nbytes, spec.kind,
                contributors,
                lambda value, k=k, j=j: self._on_col_ureduce(k, j, value),
            )
        spec = plan.diag_rreduce
        contributors = {self.grid.rank(kr, c) for c in c_cols}
        self.collectives[spec.key] = TreeReduce(
            m, self._tree(spec), spec.key, spec.nbytes, spec.kind,
            contributors,
            lambda value, k=k: self._on_diag_rreduce(k, value),
        )

    def _dispatch_tables(self, plan: UnsymSupernodePlan) -> None:
        st = self.states[plan.k]
        pr, pc = self.grid.pr, self.grid.pc
        kr, kc = plan.k % pr, plan.k % pc
        for bj in plan.blocks:
            j = bj.snode
            for bi in plan.blocks:
                i = bi.snode
                rl = self.grid.rank(j % pr, i % pc)  # GEMM-L site
                st.gl_left[(j, rl)] = st.gl_left.get((j, rl), 0) + 1
                st.gemms_l.setdefault((i, rl), []).append(j)
                ru = self.grid.rank(i % pr, j % pc)  # GEMM-U site
                st.gu_left[(j, ru)] = st.gu_left.get((j, ru), 0) + 1
                st.gemms_u.setdefault((i, ru), []).append(j)
            udest = self.grid.rank(kr, j % pc)
            st.diag_left[udest] = st.diag_left.get(udest, 0) + 1
            st.norm_l.setdefault(self.grid.rank(j % pr, kc), []).append(bj)
            st.norm_u.setdefault(udest, []).append(bj)

    # -- kickoff / windowing -----------------------------------------------

    def _kickoff(self) -> None:
        self._release_order = list(range(self.struct.nsup - 1, -1, -1))
        self._release_ptr = 0
        window = self.lookahead if self.lookahead is not None else self.struct.nsup
        self._outstanding = 0
        self._window = max(1, int(window))
        self._release_more()

    def _release_more(self) -> None:
        while (
            self._release_ptr < len(self._release_order)
            and self._outstanding < self._window
        ):
            k = self._release_order[self._release_ptr]
            self._release_ptr += 1
            self._outstanding += 1
            self._start_supernode(k)

    def _supernode_finished(self) -> None:
        self.done_diag += 1
        self._outstanding -= 1
        self._release_more()

    def _start_supernode(self, k: int) -> None:
        st = self.states[k]
        plan = st.plan
        payload = self.factor.diag_block(k) if self.numeric else None
        if not plan.blocks:
            s = plan.width
            self.machine.post_compute(
                plan.diag_owner, 0.0,
                lambda k=k, payload=payload: self._finish_lonely(k, payload),
                flops=s**3,
            )
            return
        self._dispatch_tables(plan)
        self._build_collectives(plan)
        dbc = self.collectives[plan.diag_bcast.key]
        drb = self.collectives[plan.diag_rbcast.key]
        self.machine.sim.schedule(0.0, lambda: dbc.start(payload))
        self.machine.sim.schedule(0.0, lambda: drb.start(payload))

    def _finish_lonely(self, k: int, payload: Any) -> None:
        st = self.states[k]
        if self.numeric:
            s = self.struct.width(k)
            linv = solve_triangular(
                payload, np.eye(s), lower=True, unit_diagonal=True
            )
            st.diag_value = solve_triangular(payload, linv, lower=False)
        self._mark_ready((k, k), st.diag_value)
        self._supernode_finished()

    # -- normalization ------------------------------------------------------

    def _raw_l_block(self, k: int, i: int) -> np.ndarray:
        rows = self.struct.rows_below[k]
        lo = int(np.searchsorted(rows, self.struct.sn_ptr[i]))
        hi = int(np.searchsorted(rows, self.struct.sn_ptr[i + 1]))
        return self.factor.l_panel(k)[lo:hi, :]

    def _raw_u_block(self, k: int, i: int) -> np.ndarray:
        rows = self.struct.rows_below[k]
        lo = int(np.searchsorted(rows, self.struct.sn_ptr[i]))
        hi = int(np.searchsorted(rows, self.struct.sn_ptr[i + 1]))
        return self.factor.u_panel(k)[:, lo:hi]

    def _on_diag_col(self, k: int, rank: int, payload: Any) -> None:
        st = self.states[k]
        plan = st.plan
        s = plan.width
        if rank == plan.diag_owner:
            def fin_base(payload=payload):
                if self.numeric:
                    linv = solve_triangular(
                        payload, np.eye(s), lower=True, unit_diagonal=True
                    )
                    st.base = solve_triangular(payload, linv, lower=False)

            self.machine.post_compute(rank, 0.0, fin_base, flops=s**3)
        pr, pc = self.grid.pr, self.grid.pc
        for b in st.norm_l.get(rank, ()):
            i = b.snode

            def fin(i=i, b=b, payload=payload, rank=rank):
                if self.numeric:
                    raw = self._raw_l_block(k, i)
                    lhat = solve_triangular(
                        payload, raw.T, lower=True, unit_diagonal=True,
                        trans="T",
                    ).T
                else:
                    lhat = None
                st.lhat[i] = lhat
                u_owner = self.grid.rank(k % pr, i % pc)
                self.machine.post_send(
                    rank, u_owner, ("cl", k, i), st.l2u_nbytes[i],
                    "cross-l2u", lhat,
                )

            self.machine.post_compute(rank, 0.0, fin, flops=s * s * b.nrows)

    def _on_diag_row(self, k: int, rank: int, payload: Any) -> None:
        st = self.states[k]
        s = st.plan.width
        pr, pc = self.grid.pr, self.grid.pc
        for b in st.norm_u.get(rank, ()):
            i = b.snode

            def fin(i=i, b=b, payload=payload, rank=rank):
                if self.numeric:
                    raw = self._raw_u_block(k, i)
                    uhat = solve_triangular(payload, raw, lower=False)
                else:
                    uhat = None
                st.uhat[i] = uhat
                l_owner = self.grid.rank(i % pr, k % pc)
                self.machine.post_send(
                    rank, l_owner, ("cu", k, i), st.u2l_nbytes[i],
                    "cross-u2l", uhat,
                )

            self.machine.post_compute(rank, 0.0, fin, flops=s * s * b.nrows)

    # -- cross sends start the panel broadcasts -------------------------------

    def _on_cross_l2u(self, k: int, i: int, payload: Any) -> None:
        st = self.states[k]
        st.lhat_at_u[i] = payload  # kept for the diagonal update
        self.collectives[("cb", k, i)].start(payload)
        # The diagonal contribution joins on {Ainv(K,i) reduced} AND
        # {Lhat(i,K) cross-shipped}; fire if the reduce finished first.
        if i in st.ainv_up:
            self._try_diag_contrib(k, i)

    def _on_cross_u2l(self, k: int, i: int, payload: Any) -> None:
        self.collectives[("rb", k, i)].start(payload)

    # -- GEMM pipelines -------------------------------------------------------

    def _mark_ready(self, key: tuple[int, int], data: Any) -> None:
        self.ainv_ready.add(key)
        self.ainv_data[key] = data
        for item in self.waiters.pop(key, []):
            self._schedule_gemm(*item)

    def _on_col_delivery(self, k: int, i: int, rank: int, payload: Any) -> None:
        st = self.states[k]
        st.bcast_l[(i, rank)] = payload
        for j in st.gemms_l.get((i, rank), ()):
            if (j, i) in self.ainv_ready:
                self._schedule_gemm("L", k, i, j, rank)
            else:
                self.waiters.setdefault((j, i), []).append(("L", k, i, j, rank))

    def _on_row_delivery(self, k: int, i: int, rank: int, payload: Any) -> None:
        st = self.states[k]
        st.bcast_u[(i, rank)] = payload
        for j in st.gemms_u.get((i, rank), ()):
            if (i, j) in self.ainv_ready:
                self._schedule_gemm("U", k, i, j, rank)
            else:
                self.waiters.setdefault((i, j), []).append(("U", k, i, j, rank))

    def _schedule_gemm(self, side: str, k: int, i: int, j: int, rank: int) -> None:
        st = self.states[k]
        s = st.plan.width
        flops = 2.0 * st.nrows[i] * st.nrows[j] * s

        def fin():
            if side == "L":
                if self.numeric:
                    contrib = self._gemm_l(k, i, j, rank)
                    cur = st.rowp.get((j, rank))
                    st.rowp[(j, rank)] = contrib if cur is None else cur + contrib
                st.gl_left[(j, rank)] -= 1
                if st.gl_left[(j, rank)] == 0:
                    self.collectives[("rr", k, j)].contribute(
                        rank, st.rowp.pop((j, rank), None)
                    )
            else:
                if self.numeric:
                    contrib = self._gemm_u(k, i, j, rank)
                    cur = st.colp.get((j, rank))
                    st.colp[(j, rank)] = contrib if cur is None else cur + contrib
                st.gu_left[(j, rank)] -= 1
                if st.gu_left[(j, rank)] == 0:
                    self.collectives[("cu2", k, j)].contribute(
                        rank, st.colp.pop((j, rank), None)
                    )

        self.machine.post_compute(rank, 0.0, fin, flops=flops)

    def _slice_block(self, row_sn: int, col_sn: int, rows_needed, cols_needed):
        """Extract Ainv(row_sn block, col_sn block) at the needed rows/cols."""
        struct = self.struct
        if row_sn > col_sn:
            block = self.ainv_data[(row_sn, col_sn)]
            host_rows = struct.block_row_indices(col_sn, row_sn)
            posr = np.searchsorted(host_rows, rows_needed)
            posc = cols_needed - struct.first_col(col_sn)
        elif row_sn == col_sn:
            block = self.ainv_data[(row_sn, row_sn)]
            posr = rows_needed - struct.first_col(row_sn)
            posc = cols_needed - struct.first_col(row_sn)
        else:
            block = self.ainv_data[(row_sn, col_sn)]
            host_cols = struct.block_row_indices(row_sn, col_sn)
            posr = rows_needed - struct.first_col(row_sn)
            posc = np.searchsorted(host_cols, cols_needed)
        return block[np.ix_(posr, posc)]

    def _gemm_l(self, k: int, i: int, j: int, rank: int) -> np.ndarray:
        rows_j = self.struct.block_row_indices(k, j)
        rows_i = self.struct.block_row_indices(k, i)
        sub = self._slice_block(j, i, rows_j, rows_i)
        lhat = self.states[k].bcast_l[(i, rank)]  # (r_i, s)
        return sub @ lhat

    def _gemm_u(self, k: int, i: int, j: int, rank: int) -> np.ndarray:
        rows_i = self.struct.block_row_indices(k, i)
        rows_j = self.struct.block_row_indices(k, j)
        sub = self._slice_block(i, j, rows_i, rows_j)
        uhat = self.states[k].bcast_u[(i, rank)]  # (s, r_i)
        return uhat @ sub

    # -- reductions -------------------------------------------------------------

    def _on_rowreduce(self, k: int, j: int, value: Any) -> None:
        st = self.states[k]
        ainv_jk = -value if self.numeric else None
        st.ainv_low[j] = ainv_jk
        self._mark_ready((j, k), ainv_jk)

    def _on_col_ureduce(self, k: int, j: int, value: Any) -> None:
        st = self.states[k]
        ainv_kj = -value if self.numeric else None
        st.ainv_up[j] = ainv_kj
        self._mark_ready((k, j), ainv_kj)
        if j in st.lhat_at_u:
            self._try_diag_contrib(k, j)

    def _try_diag_contrib(self, k: int, j: int) -> None:
        """Both inputs of the diagonal contribution for row-block ``j``
        are at the owner of U(K,J); schedule the GEMM once, exactly."""
        st = self.states[k]
        if j in st.diag_fired:
            return
        st.diag_fired.add(j)
        s = st.plan.width
        pr, pc = self.grid.pr, self.grid.pc
        dest = self.grid.rank(k % pr, j % pc)
        rj = st.nrows[j]
        ainv_kj = st.ainv_up[j]

        def fin():
            if self.numeric:
                contrib = ainv_kj @ st.lhat_at_u[j]  # (s, rj) @ (rj, s)
                cur = st.diag_partial.get(dest)
                st.diag_partial[dest] = contrib if cur is None else cur + contrib
            st.diag_left[dest] -= 1
            if st.diag_left[dest] == 0:
                self.collectives[("dq", k)].contribute(
                    dest, st.diag_partial.pop(dest, None)
                )

        self.machine.post_compute(dest, 0.0, fin, flops=2.0 * s * rj * s)

    def _on_diag_rreduce(self, k: int, value: Any) -> None:
        st = self.states[k]
        s = st.plan.width

        def fin():
            if self.numeric:
                st.diag_value = st.base - value
            self._mark_ready((k, k), st.diag_value)
            self._supernode_finished()

        self.machine.post_compute(
            st.plan.diag_owner, 0.0, fin, flops=float(s * s)
        )

    # -- driver -----------------------------------------------------------------

    def run(self, max_events: int | None = None) -> PSelInvResult:
        if self._ran:
            raise RuntimeError("a SimulatedPSelInvUnsym instance runs only once")
        self._ran = True
        self._kickoff()
        makespan = self.machine.run(max_events=max_events)
        nsup = self.struct.nsup
        if self.done_diag != nsup:
            raise RuntimeError(
                f"protocol stalled: {self.done_diag}/{nsup} supernodes finished"
            )
        stats = self.machine.stats
        compute = float(stats.compute_busy.mean())
        return PSelInvResult(
            scheme=self.scheme,
            grid=self.grid,
            makespan=makespan,
            stats=stats,
            events=self.machine.sim.events_processed,
            numeric=self.numeric,
            compute_time=compute,
            communication_time=float(makespan - compute),
            inverse=self._gather() if self.numeric else None,
        )

    def _gather(self) -> SelectedInverse:
        struct = self.struct
        nsup = struct.nsup
        diag: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
        lpanel: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
        upanel: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
        for k in range(nsup):
            st = self.states[k]
            s = struct.width(k)
            diag[k] = np.asarray(st.diag_value)
            if st.plan.blocks:
                lpanel[k] = np.concatenate(
                    [st.ainv_low[b.snode] for b in st.plan.blocks], axis=0
                )
                upanel[k] = np.concatenate(
                    [st.ainv_up[b.snode] for b in st.plan.blocks], axis=1
                )
            else:
                lpanel[k] = np.zeros((0, s))
                upanel[k] = np.zeros((s, 0))
        return SelectedInverse(
            struct=struct, diag=diag, lpanel=lpanel, upanel=upanel
        )


def run_pselinv_unsym(
    struct: SupernodalStructure,
    grid: ProcessorGrid,
    scheme: str = "shifted",
    **kwargs: Any,
) -> PSelInvResult:
    """Convenience wrapper for the unsymmetric simulated PSelInv."""
    return SimulatedPSelInvUnsym(struct, grid, scheme, **kwargs).run()
