"""PSelInv core: processor grid, communication plan, volume model,
and the simulated parallel selected inversion."""

from .grid import ProcessorGrid, square_grids
from .plan import (
    BYTES_PER_ENTRY,
    BlockInfo,
    CollectiveSpec,
    PointToPointSpec,
    SupernodePlan,
    iter_plans,
    supernode_plan,
)
from .plan_unsym import UnsymSupernodePlan, iter_unsym_plans, unsym_supernode_plan
from .pselinv import PSelInvResult, SimulatedPSelInv, run_pselinv
from .pselinv_unsym import SimulatedPSelInvUnsym, run_pselinv_unsym
from .volume import (
    VolumeReport,
    collective_seed,
    communication_volumes,
    count_distinct_communicators,
    volume_summary,
)

__all__ = [
    "BYTES_PER_ENTRY",
    "BlockInfo",
    "CollectiveSpec",
    "PSelInvResult",
    "PointToPointSpec",
    "ProcessorGrid",
    "SimulatedPSelInv",
    "SimulatedPSelInvUnsym",
    "SupernodePlan",
    "VolumeReport",
    "collective_seed",
    "communication_volumes",
    "count_distinct_communicators",
    "iter_plans",
    "UnsymSupernodePlan",
    "iter_unsym_plans",
    "run_pselinv",
    "run_pselinv_unsym",
    "unsym_supernode_plan",
    "square_grids",
    "supernode_plan",
    "volume_summary",
]
