"""Analytic communication-volume model.

Computes, without running the simulator, the exact per-rank byte counters
of one selected inversion under a given tree scheme: for every collective
in the communication plan, build the tree and charge ``nbytes`` per tree
edge (sender side for broadcasts, receiver side for reductions, plus the
mirror counters).  These are the quantities of the paper's Table I
("volume sent during Col-Bcast"), Table II ("volume received during
Row-Reduce"), the histograms of Fig. 4 and the heat maps of Figs. 5-7.

Two engines compute them:

* :func:`communication_volumes` -- the vectorized production engine.  It
  groups collectives by ``(kind, root, participants)`` (the paper's §III
  observation that many supernodes share identical participant sets),
  resolves tree shapes through the cached array fast path of
  :mod:`repro.comm.trees`, and charges whole groups of edges with numpy
  bulk operations.  All counters are int64 -- bytes are integers, so
  grouping cannot change any result.
* :func:`_communication_volumes_reference` -- the original
  one-tree-per-collective implementation, retained verbatim as the
  differential-testing oracle.

The discrete-event simulator counts the same bytes by actually passing
messages; ``tests/test_volume_vs_simulation.py`` asserts the analytic
model and the simulator agree exactly, and
``tests/test_volume_engine_equivalence.py`` asserts the two engines agree
bit-for-bit, which together pin the protocol against this spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..comm.trees import (
    TREE_SCHEMES,
    _binary_positions,
    build_tree,
    derive_seed,
    rotation_offset,
    tree_arrays,
)
from ..sparse.supernodes import SupernodalStructure
from .grid import ProcessorGrid
from .plan import SupernodePlan, iter_plans

__all__ = [
    "VolumeReport",
    "collective_seed",
    "communication_volumes",
    "count_distinct_communicators",
    "volume_summary",
    "volume_engine_stats",
    "reset_volume_engine_stats",
]


def count_distinct_communicators(
    struct: SupernodalStructure,
    grid: ProcessorGrid,
    *,
    plans: list[SupernodePlan] | None = None,
) -> dict[str, int]:
    """Count the distinct processor groups the restricted collectives use.

    This is the paper's §III motivation: pre-creating one MPI
    communicator per distinct participant set is infeasible (audikw_1 on
    a 24x24 grid needs 20,061 of them against a Cray MPI limit of ~4,096).
    Returns the number of distinct participant sets among column
    broadcasts, row reductions, and overall, plus the total collective
    count.
    """
    if plans is None:
        plans = list(iter_plans(struct, grid))
    col_groups: set[tuple[int, ...]] = set()
    row_groups: set[tuple[int, ...]] = set()
    total = 0
    for plan in plans:
        for spec in plan.collectives():
            total += 1
            if len(spec.participants) < 2:
                continue
            if spec.kind in ("col-bcast", "diag-bcast", "col-reduce"):
                col_groups.add(spec.participants)
            else:
                row_groups.add(spec.participants)
    return {
        "distinct_column_groups": len(col_groups),
        "distinct_row_groups": len(row_groups),
        "distinct_total": len(col_groups | row_groups),
        "collectives_total": total,
    }


@lru_cache(maxsize=4096)
def _encode_key_part(part: str) -> int:
    return sum(ord(c) << (8 * n) for n, c in enumerate(part[:4]))


@lru_cache(maxsize=1 << 20)
def collective_seed(global_seed: int, key: tuple) -> int:
    """Per-collective tree seed, shared by the analytic model and the
    simulator so both build identical shifted trees.

    Memoized: scheme sweeps, the DES, and both volume engines all derive
    the seed of the same ``(global_seed, key)`` pair repeatedly.
    """
    out: list[int] = []
    for part in key:
        if isinstance(part, str):
            out.append(_encode_key_part(part))
        else:
            out.append(int(part))
    return derive_seed(global_seed, *out)


@dataclass
class VolumeReport:
    """Per-rank sent/received byte counters split by collective kind.

    Counters are int64: every charge is a whole number of bytes (or
    messages), and integer accumulation keeps the DES-equality and
    engine-equivalence tests exact at any scale.
    """

    grid: ProcessorGrid
    scheme: str
    sent: dict[str, np.ndarray] = field(default_factory=dict)
    received: dict[str, np.ndarray] = field(default_factory=dict)
    # Per-rank message counts (same categories); the paper's §III argues
    # the tree cuts the root's messages from p-1 to log p.
    messages: dict[str, np.ndarray] = field(default_factory=dict)
    # Maximum messages any single rank sends within ONE collective --
    # the paper's "messages along the critical path" quantity.
    max_degree: dict[str, int] = field(default_factory=dict)

    def _zeros(self) -> np.ndarray:
        return np.zeros(self.grid.size, dtype=np.int64)

    def sent_by(self, kind: str) -> np.ndarray:
        return self.sent.get(kind, self._zeros())

    def received_by(self, kind: str) -> np.ndarray:
        return self.received.get(kind, self._zeros())

    def total_sent(self) -> np.ndarray:
        out = self._zeros()
        for arr in self.sent.values():
            out += arr
        return out

    def total_received(self) -> np.ndarray:
        out = self._zeros()
        for arr in self.received.values():
            out += arr
        return out

    def col_bcast_sent(self) -> np.ndarray:
        """The Table I quantity: bytes sent in *column-group broadcasts*.

        This aggregates the panel broadcasts ("col-bcast") with the
        diagonal-block broadcasts ("diag-bcast"), exactly as the paper's
        Col-Bcast counter does -- both are broadcasts within a grid
        column.  On square grids the diagonal-block roots sit at grid
        coordinates ``(K mod P, K mod P)``, which is what produces the
        hot grid diagonal of Fig. 5(a).
        """
        return self.sent_by("col-bcast") + self.sent_by("diag-bcast")

    def row_reduce_received(self) -> np.ndarray:
        """The Table II quantity: bytes received in row-group reductions."""
        return self.received_by("row-reduce")

    def heatmap(self, kind: str, direction: str = "sent") -> np.ndarray:
        """(pr, pc) heat map of one counter (Figs. 5-7).

        ``kind`` may be a single category or the aggregates
        ``"col-bcast-total"`` (Table I / Fig. 5 definition) and
        ``"row-reduce"``.
        """
        if kind == "col-bcast-total":
            return self.grid.volume_heatmap(self.col_bcast_sent())
        if direction not in ("sent", "received"):
            raise ValueError(
                f"unknown heatmap direction {direction!r}; "
                "expected 'sent' or 'received'"
            )
        table = self.sent if direction == "sent" else self.received
        return self.grid.volume_heatmap(table.get(kind, self._zeros()))


def _charge(table: dict[str, np.ndarray], kind: str, size: int):
    arr = table.get(kind)
    if arr is None:
        arr = np.zeros(size, dtype=np.int64)
        table[kind] = arr
    return arr


# -- engine instrumentation (read by tests and the perf benchmarks) ---------

_ENGINE_STATS = {
    "vectorized_calls": 0,
    "reference_calls": 0,
    "collectives": 0,
    "groups": 0,
    "point_to_points": 0,
}


def volume_engine_stats() -> dict[str, int]:
    """Counters of the vectorized engine (calls, collectives, groups)."""
    return dict(_ENGINE_STATS)


def reset_volume_engine_stats() -> None:
    for k in _ENGINE_STATS:
        _ENGINE_STATS[k] = 0


def _communication_volumes_reference(
    struct: SupernodalStructure,
    grid: ProcessorGrid,
    scheme: str,
    *,
    seed: int = 0,
    hybrid_threshold: int = 8,
    include_cross: bool = True,
    plans: list[SupernodePlan] | None = None,
) -> VolumeReport:
    """One-tree-per-collective oracle (the original engine).

    Kept verbatim for differential testing of the vectorized engine --
    do not optimize this function.
    """
    _ENGINE_STATS["reference_calls"] += 1
    report = VolumeReport(grid=grid, scheme=scheme)
    p = grid.size
    if plans is None:
        plans = list(iter_plans(struct, grid))
    for plan in plans:
        for spec in plan.collectives():
            tree = build_tree(
                scheme,
                spec.root,
                spec.participants,
                collective_seed(seed, spec.key),
                hybrid_threshold=hybrid_threshold,
            )
            sent = _charge(report.sent, spec.kind, p)
            recv = _charge(report.received, spec.kind, p)
            msgs = _charge(report.messages, spec.kind, p)
            deg = report.max_degree.get(spec.kind, 0)
            if spec.kind.endswith("bcast"):
                # Data flows root -> leaves: each edge charged to the
                # parent (sender) and the child (receiver).
                for r in tree.ranks():
                    nkids = tree.child_count(r)
                    if nkids:
                        sent[r] += spec.nbytes * nkids
                        msgs[r] += nkids
                        if nkids > deg:
                            deg = nkids
                    if r != tree.root:
                        recv[r] += spec.nbytes
            else:
                # Reduction: each edge carries one partial result child ->
                # parent.
                for r in tree.ranks():
                    nkids = tree.child_count(r)
                    if nkids:
                        recv[r] += spec.nbytes * nkids
                        if nkids > deg:
                            deg = nkids
                    if r != tree.root:
                        sent[r] += spec.nbytes
                        msgs[r] += 1
            report.max_degree[spec.kind] = deg
        if include_cross:
            for p2p in plan.point_to_points():
                if p2p.src == p2p.dst:
                    continue
                _charge(report.sent, p2p.kind, p)[p2p.src] += p2p.nbytes
                _charge(report.received, p2p.kind, p)[p2p.dst] += p2p.nbytes
    return report


@lru_cache(maxsize=1024)
def _binary_circulant(n: int) -> np.ndarray:
    """``M[k, j]`` = child count of sorted non-root participant ``j`` in a
    binary tree rotated by offset ``k`` (over ``n`` non-root ranks).

    A rotation only relabels which rank sits at which construction-order
    position, so the per-rank charge of a whole *group* of shifted
    collectives is one int64 matvec: ``weights_by_offset @ M``.
    """
    kids, _ = _binary_positions(n + 1)
    k1 = kids[1:]
    idx = (np.arange(n)[None, :] - np.arange(n)[:, None]) % n
    m = k1[idx]
    m.setflags(write=False)
    return m


@lru_cache(maxsize=1024)
def _binary_root_degree(n: int) -> int:
    return int(_binary_positions(n + 1)[0][0])


@lru_cache(maxsize=1024)
def _binary_max_degree(n: int) -> int:
    return int(_binary_positions(n + 1)[0].max())


def communication_volumes(
    struct: SupernodalStructure,
    grid: ProcessorGrid,
    scheme: str,
    *,
    seed: int = 0,
    hybrid_threshold: int = 8,
    include_cross: bool = True,
    plans: list[SupernodePlan] | None = None,
) -> VolumeReport:
    """Exact per-rank communication volumes for one tree scheme.

    ``seed`` is the preprocessing-step seed the shifted/permuted trees
    derive their per-collective seeds from.  ``plans`` may be passed to
    amortize plan construction across schemes, and may be either the
    symmetric plans (:func:`repro.core.plan.iter_plans`) or the
    unsymmetric ones (:func:`repro.core.plan_unsym.iter_unsym_plans`).

    This is the vectorized engine: collectives are grouped by
    ``(kind, root, participants)`` and each group is charged in bulk.
    Counters are bit-identical to
    :func:`_communication_volumes_reference` (differentially tested) and
    to the discrete-event simulator.
    """
    if scheme not in TREE_SCHEMES:
        raise ValueError(
            f"unknown tree scheme {scheme!r}; expected one of {TREE_SCHEMES}"
        )
    report = VolumeReport(grid=grid, scheme=scheme)
    p = grid.size
    if plans is None:
        plans = list(iter_plans(struct, grid))

    # Does the resolved scheme of a group depend on the per-collective
    # seed?  flat/binary/binomial never do; hybrid only above threshold.
    shifted_like = scheme in ("shifted", "hybrid")
    perm_like = scheme == "randperm"

    # -- pass 1: group collectives, batch point-to-points -------------------
    # groups[(kind, root, participants)] =
    #     [others, total_bytes, count, aux]
    # where ``others`` is the sorted non-root participant tuple and
    # ``aux`` collects (offset, nbytes) for shifted-branch groups or
    # (collective seed, nbytes) for randperm groups.
    groups: dict[tuple, list] = {}
    kinds_seen: list[str] = []
    kinds_set: set[str] = set()
    p2p_src: dict[str, list[int]] = {}
    p2p_dst: dict[str, list[int]] = {}
    p2p_nb: dict[str, list[int]] = {}
    n_coll = 0
    for plan in plans:
        for spec in plan.collectives():
            n_coll += 1
            kind = spec.kind
            if kind not in kinds_set:
                kinds_set.add(kind)
                kinds_seen.append(kind)
            key = (kind, spec.root, spec.participants)
            g = groups.get(key)
            if g is None:
                others = tuple(
                    r for r in sorted(set(spec.participants)) if r != spec.root
                )
                g = groups[key] = [others, 0, 0, None]
            g[1] += spec.nbytes
            g[2] += 1
            n = len(g[0])
            if n > 1:
                if shifted_like and (
                    scheme == "shifted" or n + 1 > hybrid_threshold
                ):
                    off = rotation_offset(collective_seed(seed, spec.key), n)
                    aux = g[3]
                    if aux is None:
                        aux = g[3] = []
                    aux.append((off, spec.nbytes))
                elif perm_like:
                    aux = g[3]
                    if aux is None:
                        aux = g[3] = []
                    aux.append((collective_seed(seed, spec.key), spec.nbytes))
        if include_cross:
            for p2p in plan.point_to_points():
                if p2p.src == p2p.dst:
                    continue
                kind = p2p.kind
                lst = p2p_src.get(kind)
                if lst is None:
                    lst = p2p_src[kind] = []
                    p2p_dst[kind] = []
                    p2p_nb[kind] = []
                lst.append(p2p.src)
                p2p_dst[kind].append(p2p.dst)
                p2p_nb[kind].append(p2p.nbytes)

    # Kind arrays exist for every collective kind encountered, even if all
    # its groups are singletons -- matching the reference engine exactly.
    for kind in kinds_seen:
        _charge(report.sent, kind, p)
        _charge(report.received, kind, p)
        _charge(report.messages, kind, p)
        report.max_degree.setdefault(kind, 0)

    # -- pass 2: charge one group at a time ---------------------------------
    for (kind, root, _participants), (others, total_bytes, count, aux) in (
        groups.items()
    ):
        n = len(others)
        if n == 0:
            continue
        sent = report.sent[kind]
        recv = report.received[kind]
        msgs = report.messages[kind]
        is_bcast = kind.endswith("bcast")
        # For a broadcast the kids-weighted side is the sender table and
        # every non-root receives the payload once; a reduction mirrors it.
        heavy, light = (sent, recv) if is_bcast else (recv, sent)
        others_arr = np.asarray(others, dtype=np.intp)

        resolved = scheme
        if scheme == "hybrid":
            resolved = "flat" if n + 1 <= hybrid_threshold else "shifted"
        if n == 1:
            # Any scheme degenerates to a single root->other edge.
            resolved = "flat"

        light[others_arr] += total_bytes
        if not is_bcast:
            msgs[others_arr] += count

        if resolved == "shifted":
            kids0 = _binary_root_degree(n)
            offs = np.fromiter(
                (o for o, _ in aux), count=len(aux), dtype=np.intp
            )
            nbs = np.fromiter(
                (b for _, b in aux), count=len(aux), dtype=np.int64
            )
            w_bytes = np.zeros(n, dtype=np.int64)
            np.add.at(w_bytes, offs, nbs)
            m = _binary_circulant(n)
            heavy[others_arr] += w_bytes @ m
            heavy[root] += kids0 * total_bytes
            if is_bcast:
                w_count = np.bincount(offs, minlength=n).astype(np.int64)
                msgs[others_arr] += w_count @ m
                msgs[root] += kids0 * count
            deg = _binary_max_degree(n)
        elif resolved == "randperm":
            deg = _binary_max_degree(n)
            for cseed, nbytes in aux:
                arrs = tree_arrays("randperm", root, others, cseed)
                heavy[arrs.ranks] += arrs.child_counts * nbytes
                if is_bcast:
                    msgs[arrs.ranks] += arrs.child_counts
        else:
            # flat / binary / binomial: one shared shape for the whole
            # group, straight from the tree cache.
            arrs = tree_arrays(resolved, root, others)
            heavy[arrs.ranks] += arrs.child_counts * total_bytes
            if is_bcast:
                msgs[arrs.ranks] += arrs.child_counts * count
            deg = arrs.max_degree
        if deg > report.max_degree[kind]:
            report.max_degree[kind] = deg

    # -- point-to-points in bulk -------------------------------------------
    for kind, srcs in p2p_src.items():
        src_arr = np.asarray(srcs, dtype=np.intp)
        dst_arr = np.asarray(p2p_dst[kind], dtype=np.intp)
        nb_arr = np.asarray(p2p_nb[kind], dtype=np.int64)
        np.add.at(_charge(report.sent, kind, p), src_arr, nb_arr)
        np.add.at(_charge(report.received, kind, p), dst_arr, nb_arr)
        _ENGINE_STATS["point_to_points"] += len(srcs)

    _ENGINE_STATS["vectorized_calls"] += 1
    _ENGINE_STATS["collectives"] += n_coll
    _ENGINE_STATS["groups"] += len(groups)
    return report


def volume_summary(per_rank_bytes: np.ndarray) -> dict[str, float]:
    """Min/max/median/std summary in MB -- the paper's table format."""
    mb = np.asarray(per_rank_bytes) / 1e6
    return {
        "min": float(mb.min()),
        "max": float(mb.max()),
        "median": float(np.median(mb)),
        "std": float(mb.std(ddof=0)),
        "mean": float(mb.mean()),
    }
