"""Analytic communication-volume model.

Computes, without running the simulator, the exact per-rank byte counters
of one selected inversion under a given tree scheme: for every collective
in the communication plan, build the tree and charge ``nbytes`` per tree
edge (sender side for broadcasts, receiver side for reductions, plus the
mirror counters).  These are the quantities of the paper's Table I
("volume sent during Col-Bcast"), Table II ("volume received during
Row-Reduce"), the histograms of Fig. 4 and the heat maps of Figs. 5-7.

The discrete-event simulator counts the same bytes by actually passing
messages; ``tests/test_volume_vs_simulation.py`` asserts the two agree
exactly, which pins the simulator's protocol against this spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..comm.trees import build_tree, derive_seed
from ..sparse.supernodes import SupernodalStructure
from .grid import ProcessorGrid
from .plan import SupernodePlan, iter_plans

__all__ = [
    "VolumeReport",
    "collective_seed",
    "communication_volumes",
    "count_distinct_communicators",
    "volume_summary",
]


def count_distinct_communicators(
    struct: SupernodalStructure,
    grid: ProcessorGrid,
    *,
    plans: list[SupernodePlan] | None = None,
) -> dict[str, int]:
    """Count the distinct processor groups the restricted collectives use.

    This is the paper's §III motivation: pre-creating one MPI
    communicator per distinct participant set is infeasible (audikw_1 on
    a 24x24 grid needs 20,061 of them against a Cray MPI limit of ~4,096).
    Returns the number of distinct participant sets among column
    broadcasts, row reductions, and overall, plus the total collective
    count.
    """
    if plans is None:
        plans = list(iter_plans(struct, grid))
    col_groups: set[tuple[int, ...]] = set()
    row_groups: set[tuple[int, ...]] = set()
    total = 0
    for plan in plans:
        for spec in plan.collectives():
            total += 1
            if len(spec.participants) < 2:
                continue
            if spec.kind in ("col-bcast", "diag-bcast", "col-reduce"):
                col_groups.add(spec.participants)
            else:
                row_groups.add(spec.participants)
    return {
        "distinct_column_groups": len(col_groups),
        "distinct_row_groups": len(row_groups),
        "distinct_total": len(col_groups | row_groups),
        "collectives_total": total,
    }


def collective_seed(global_seed: int, key: tuple) -> int:
    """Per-collective tree seed, shared by the analytic model and the
    simulator so both build identical shifted trees."""
    out: list[int] = []
    for part in key:
        if isinstance(part, str):
            out.append(sum(ord(c) << (8 * n) for n, c in enumerate(part[:4])))
        else:
            out.append(int(part))
    return derive_seed(global_seed, *out)


@dataclass
class VolumeReport:
    """Per-rank sent/received byte counters split by collective kind."""

    grid: ProcessorGrid
    scheme: str
    sent: dict[str, np.ndarray] = field(default_factory=dict)
    received: dict[str, np.ndarray] = field(default_factory=dict)
    # Per-rank message counts (same categories); the paper's §III argues
    # the tree cuts the root's messages from p-1 to log p.
    messages: dict[str, np.ndarray] = field(default_factory=dict)
    # Maximum messages any single rank sends within ONE collective --
    # the paper's "messages along the critical path" quantity.
    max_degree: dict[str, int] = field(default_factory=dict)

    def _zeros(self) -> np.ndarray:
        return np.zeros(self.grid.size)

    def sent_by(self, kind: str) -> np.ndarray:
        return self.sent.get(kind, self._zeros())

    def received_by(self, kind: str) -> np.ndarray:
        return self.received.get(kind, self._zeros())

    def total_sent(self) -> np.ndarray:
        out = self._zeros()
        for arr in self.sent.values():
            out += arr
        return out

    def total_received(self) -> np.ndarray:
        out = self._zeros()
        for arr in self.received.values():
            out += arr
        return out

    def col_bcast_sent(self) -> np.ndarray:
        """The Table I quantity: bytes sent in *column-group broadcasts*.

        This aggregates the panel broadcasts ("col-bcast") with the
        diagonal-block broadcasts ("diag-bcast"), exactly as the paper's
        Col-Bcast counter does -- both are broadcasts within a grid
        column.  On square grids the diagonal-block roots sit at grid
        coordinates ``(K mod P, K mod P)``, which is what produces the
        hot grid diagonal of Fig. 5(a).
        """
        return self.sent_by("col-bcast") + self.sent_by("diag-bcast")

    def row_reduce_received(self) -> np.ndarray:
        """The Table II quantity: bytes received in row-group reductions."""
        return self.received_by("row-reduce")

    def heatmap(self, kind: str, direction: str = "sent") -> np.ndarray:
        """(pr, pc) heat map of one counter (Figs. 5-7).

        ``kind`` may be a single category or the aggregates
        ``"col-bcast-total"`` (Table I / Fig. 5 definition) and
        ``"row-reduce"``.
        """
        if kind == "col-bcast-total":
            return self.grid.volume_heatmap(self.col_bcast_sent())
        table = self.sent if direction == "sent" else self.received
        return self.grid.volume_heatmap(table.get(kind, self._zeros()))


def _charge(table: dict[str, np.ndarray], kind: str, size: int):
    arr = table.get(kind)
    if arr is None:
        arr = np.zeros(size)
        table[kind] = arr
    return arr


def communication_volumes(
    struct: SupernodalStructure,
    grid: ProcessorGrid,
    scheme: str,
    *,
    seed: int = 0,
    hybrid_threshold: int = 8,
    include_cross: bool = True,
    plans: list[SupernodePlan] | None = None,
) -> VolumeReport:
    """Exact per-rank communication volumes for one tree scheme.

    ``seed`` is the preprocessing-step seed the shifted/permuted trees
    derive their per-collective seeds from.  ``plans`` may be passed to
    amortize plan construction across schemes, and may be either the
    symmetric plans (:func:`repro.core.plan.iter_plans`) or the
    unsymmetric ones (:func:`repro.core.plan_unsym.iter_unsym_plans`).
    """
    report = VolumeReport(grid=grid, scheme=scheme)
    p = grid.size
    if plans is None:
        plans = list(iter_plans(struct, grid))
    for plan in plans:
        for spec in plan.collectives():
            tree = build_tree(
                scheme,
                spec.root,
                spec.participants,
                collective_seed(seed, spec.key),
                hybrid_threshold=hybrid_threshold,
            )
            sent = _charge(report.sent, spec.kind, p)
            recv = _charge(report.received, spec.kind, p)
            msgs = _charge(report.messages, spec.kind, p)
            deg = report.max_degree.get(spec.kind, 0)
            if spec.kind.endswith("bcast"):
                # Data flows root -> leaves: each edge charged to the
                # parent (sender) and the child (receiver).
                for r in tree.ranks():
                    nkids = tree.child_count(r)
                    if nkids:
                        sent[r] += spec.nbytes * nkids
                        msgs[r] += nkids
                        if nkids > deg:
                            deg = nkids
                    if r != tree.root:
                        recv[r] += spec.nbytes
            else:
                # Reduction: each edge carries one partial result child ->
                # parent.
                for r in tree.ranks():
                    nkids = tree.child_count(r)
                    if nkids:
                        recv[r] += spec.nbytes * nkids
                        if nkids > deg:
                            deg = nkids
                    if r != tree.root:
                        sent[r] += spec.nbytes
                        msgs[r] += 1
            report.max_degree[spec.kind] = deg
        if include_cross:
            for p2p in plan.point_to_points():
                if p2p.src == p2p.dst:
                    continue
                _charge(report.sent, p2p.kind, p)[p2p.src] += p2p.nbytes
                _charge(report.received, p2p.kind, p)[p2p.dst] += p2p.nbytes
    return report


def volume_summary(per_rank_bytes: np.ndarray) -> dict[str, float]:
    """Min/max/median/std summary in MB -- the paper's table format."""
    mb = np.asarray(per_rank_bytes) / 1e6
    return {
        "min": float(mb.min()),
        "max": float(mb.max()),
        "median": float(np.median(mb)),
        "std": float(mb.std(ddof=0)),
        "mean": float(mb.mean()),
    }
