"""Communication plan: every restricted collective of one selected inversion.

Given the supernodal symbolic structure and a processor grid, enumerates --
deterministically, with no numeric data -- every communication event of
the PSelInv second loop (plus the first-loop diagonal broadcasts):

=================  =========================================================
event              root / endpoints, participants, payload size
=================  =========================================================
diag-bcast (K)     diag owner -> owners of ``L(I,K)`` in grid column
                   ``K mod Pc``; ``s*s`` entries (first loop of Alg. 1)
cross-send (K,I)   owner of ``L(I,K)`` -> owner of ``U(K,I)``;
                   ``s * r_I`` entries (symmetric case: ``Uhat = Lhat^T``)
col-bcast (K,I)    owner of ``U(K,I)`` -> Ainv block owners in grid column
                   ``I mod Pc``; ``s * r_I`` entries  [Table I measures this]
row-reduce (K,J)   GEMM contributions in grid row ``J mod Pr`` ->
                   owner of ``L(J,K)``; ``s * r_J`` entries [Table II]
col-reduce (K)     diagonal-update contributions in grid column
                   ``K mod Pc`` -> diag owner; ``s*s`` entries
cross-back (K,J)   owner of ``L(J,K)`` -> owner of ``U(K,J)``;
                   ``s * r_J`` entries (fills upper Ainv storage)
=================  =========================================================

Both the analytic volume model (:mod:`repro.core.volume`) and the
discrete-event PSelInv (:mod:`repro.core.pselinv`) iterate exactly this
plan, which is what lets the tests assert byte-for-byte agreement between
the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


from ..sparse.supernodes import SupernodalStructure
from .grid import ProcessorGrid

__all__ = [
    "BYTES_PER_ENTRY",
    "BlockInfo",
    "CollectiveSpec",
    "PointToPointSpec",
    "SupernodePlan",
    "supernode_plan",
    "iter_plans",
]

BYTES_PER_ENTRY = 8  # float64; the paper's matrices are real double


@dataclass(frozen=True)
class BlockInfo:
    """One nonzero block row ``I`` of supernode ``K``'s panel."""

    snode: int  # block-row supernode index I
    nrows: int  # rows of supernode I present in K's structure (r_I)


@dataclass(frozen=True)
class CollectiveSpec:
    """One restricted collective (broadcast or reduction)."""

    kind: str  # "diag-bcast" | "col-bcast" | "row-reduce" | "col-reduce"
    key: tuple  # unique id, e.g. ("cb", K, I)
    root: int
    participants: tuple[int, ...]  # including the root
    nbytes: int

    @property
    def size(self) -> int:
        return len(self.participants)


@dataclass(frozen=True)
class PointToPointSpec:
    """One plain point-to-point transfer (the cross sends)."""

    kind: str  # "cross-send" | "cross-back"
    key: tuple
    src: int
    dst: int
    nbytes: int


@dataclass
class SupernodePlan:
    """All communication of one supernode ``K`` of the second loop."""

    k: int
    width: int
    blocks: list[BlockInfo]
    diag_owner: int
    diag_bcast: CollectiveSpec | None
    cross_sends: list[PointToPointSpec]
    col_bcasts: list[CollectiveSpec]
    row_reduces: list[CollectiveSpec]
    col_reduce: CollectiveSpec | None
    cross_backs: list[PointToPointSpec]

    def collectives(self) -> Iterator[CollectiveSpec]:
        if self.diag_bcast is not None:
            yield self.diag_bcast
        yield from self.col_bcasts
        yield from self.row_reduces
        if self.col_reduce is not None:
            yield self.col_reduce

    def point_to_points(self) -> Iterator[PointToPointSpec]:
        yield from self.cross_sends
        yield from self.cross_backs


def supernode_plan(
    struct: SupernodalStructure,
    grid: ProcessorGrid,
    k: int,
    *,
    bytes_per_entry: int = BYTES_PER_ENTRY,
) -> SupernodePlan:
    """Build the communication plan of supernode ``k``.

    ``bytes_per_entry`` is 8 for real double matrices and 16 for the
    complex matrices of PEXSI pole loops.
    """
    pr, pc = grid.pr, grid.pc
    s = struct.width(k)
    kr, kc = k % pr, k % pc
    diag_owner = grid.rank(kr, kc)
    cblocks = struct.block_rows[k]
    blocks = [
        BlockInfo(snode=int(i), nrows=struct.block_row_count(k, int(i)))
        for i in cblocks
    ]
    nb_diag = s * s * bytes_per_entry

    if not blocks:
        return SupernodePlan(
            k=k,
            width=s,
            blocks=[],
            diag_owner=diag_owner,
            diag_bcast=None,
            cross_sends=[],
            col_bcasts=[],
            row_reduces=[],
            col_reduce=None,
            cross_backs=[],
        )

    # First loop: diagonal block broadcast down grid column kc to the
    # owners of the L(I,K) panel blocks.
    l_owner_rows = sorted({b.snode % pr for b in blocks})
    diag_participants = tuple(
        sorted({diag_owner} | {grid.rank(r, kc) for r in l_owner_rows})
    )
    # Singleton collectives (all participants collapse onto one rank) are
    # kept in the plan: they carry no bytes but the simulator still needs
    # them as dataflow joints.
    diag_bcast = CollectiveSpec(
        kind="diag-bcast",
        key=("db", k),
        root=diag_owner,
        participants=diag_participants,
        nbytes=nb_diag,
    )

    cross_sends: list[PointToPointSpec] = []
    col_bcasts: list[CollectiveSpec] = []
    row_reduces: list[CollectiveSpec] = []
    cross_backs: list[PointToPointSpec] = []

    # Grid rows hosting any block row of C -- the Ainv block owners within
    # each broadcast column are exactly these rows.
    c_rows = sorted({b.snode % pr for b in blocks})
    c_cols = sorted({b.snode % pc for b in blocks})

    for b in blocks:
        i = b.snode
        nb_panel = s * b.nrows * bytes_per_entry
        l_owner = grid.rank(i % pr, kc)  # owner of L(I,K)
        u_owner = grid.rank(kr, i % pc)  # owner of U(K,I)
        cross_sends.append(
            PointToPointSpec(
                kind="cross-send",
                key=("cs", k, i),
                src=l_owner,
                dst=u_owner,
                nbytes=nb_panel,
            )
        )
        participants = tuple(
            sorted({u_owner} | {grid.rank(r, i % pc) for r in c_rows})
        )
        col_bcasts.append(
            CollectiveSpec(
                kind="col-bcast",
                key=("cb", k, i),
                root=u_owner,
                participants=participants,
                nbytes=nb_panel,
            )
        )

    for b in blocks:
        j = b.snode
        nb_panel = s * b.nrows * bytes_per_entry
        dest = grid.rank(j % pr, kc)  # owner of L(J,K): reduce destination
        contributors = {grid.rank(j % pr, c) for c in c_cols}
        participants = tuple(sorted(contributors | {dest}))
        row_reduces.append(
            CollectiveSpec(
                kind="row-reduce",
                key=("rr", k, j),
                root=dest,
                participants=participants,
                nbytes=nb_panel,
            )
        )
        u_owner = grid.rank(kr, j % pc)
        cross_backs.append(
            PointToPointSpec(
                kind="cross-back",
                key=("xb", k, j),
                src=dest,
                dst=u_owner,
                nbytes=nb_panel,
            )
        )

    # Diagonal update: contributions live on the owners of L(J,K) (grid
    # column kc), reduced onto the diagonal owner.
    contrib = tuple(sorted({grid.rank(r, kc) for r in c_rows} | {diag_owner}))
    col_reduce = CollectiveSpec(
        kind="col-reduce",
        key=("cr", k),
        root=diag_owner,
        participants=contrib,
        nbytes=nb_diag,
    )

    return SupernodePlan(
        k=k,
        width=s,
        blocks=blocks,
        diag_owner=diag_owner,
        diag_bcast=diag_bcast,
        cross_sends=cross_sends,
        col_bcasts=col_bcasts,
        row_reduces=row_reduces,
        col_reduce=col_reduce,
        cross_backs=cross_backs,
    )


def iter_plans(
    struct: SupernodalStructure,
    grid: ProcessorGrid,
    *,
    bytes_per_entry: int = BYTES_PER_ENTRY,
) -> Iterator[SupernodePlan]:
    """Plans for every supernode, ascending index order."""
    for k in range(struct.nsup):
        yield supernode_plan(struct, grid, k, bytes_per_entry=bytes_per_entry)
