"""Simulated parallel selected inversion (PSelInv) -- paper §II-B / §III.

Runs the asynchronous, message-driven PSelInv dataflow on the simulated
machine, with every restricted collective routed along the configured
tree scheme.  There are no barriers: exactly as in the paper,
synchronization is imposed only through data dependencies, so supernodes
on disjoint critical paths of the elimination tree pipeline freely.

Dataflow per supernode ``K`` (symmetric algorithm, Fig. 2 of the paper):

1.  *diag-bcast*  -- the diagonal-block owner broadcasts the packed LU of
    ``A(K,K)`` down grid column ``K mod Pc`` (first loop of Algorithm 1);
    each ``L(I,K)`` owner then normalizes its panel blocks:
    ``Lhat(I,K) = L(I,K) inv(L_KK)``.
2.  *cross-send* -- each ``Lhat(I,K)`` is sent to the owner of ``U(K,I)``
    which overwrites it with ``Lhat^T`` (symmetric case).
3.  *col-bcast*  -- ``Uhat(K,I)`` is broadcast down grid column
    ``I mod Pc`` to the owners of the ``Ainv(J,I)`` blocks, ``J in C``.
4.  *GEMM*       -- each such owner computes ``Ainv(J,I) Lhat(I,K)`` for
    its local blocks once both the broadcast payload and the (previously
    computed) ``Ainv(J,I)`` block are available.
5.  *row-reduce* -- partial sums for row ``J`` are reduced across grid row
    ``J mod Pr`` onto the owner of ``L(J,K)``, which negates to obtain
    ``Ainv(J,K)``.
6.  *col-reduce* -- diagonal contributions ``Lhat(J,K)^T Ainv(J,K)`` are
    reduced down grid column ``K mod Pc``; the diagonal owner finishes
    ``Ainv(K,K) = inv(U_KK) inv(L_KK) - sum``.
7.  *cross-back* -- ``Ainv(J,K)^T`` is sent to the owner of ``U(K,J)`` to
    populate the upper-triangle storage consumed by descendants.

Two modes share all protocol code:

* **numeric** (``factor`` given): payloads are real ndarrays; the final
  distributed blocks are gathered into a
  :class:`~repro.sparse.selinv.SelectedInverse` for oracle comparison.
* **symbolic** (``factor=None``): payloads are ``None``; only sizes, flop
  counts and the virtual clock matter.  This is the mode the large-scale
  strong-scaling experiments use.

Three interchangeable execution engines (``engine=``):

* ``"batch"`` (default) -- the calendar-queue
  :class:`~repro.simulate.engine.BatchSimulator` +
  :class:`~repro.simulate.machine.BatchMachine` stack with array-based
  collectives (:class:`~repro.comm.collectives.ArrayBroadcast` /
  :class:`~repro.comm.collectives.ArrayReduce`) routed over positional
  :class:`~repro.comm.trees.TreeArrays`.
* ``"vectorized"`` -- the :class:`~repro.simulate.vec.VecMachine` /
  :class:`~repro.simulate.vec.VecSimulator` stack plus a *compiled*
  protocol layer: on window entry every per-event quantity of a
  supernode (GEMM/normalize/diag durations, send destinations, tags,
  readiness keys) is precomputed in bulk with numpy, collectives run as
  :class:`~repro.comm.vec_collectives.VecBroadcast` /
  :class:`~repro.comm.vec_collectives.VecReduce` state machines over
  shared :class:`~repro.comm.trees.CompiledTree` tables, and the hot
  handlers are closure-free (pre-registered handler ids + tuple
  arguments).  Numeric or telemetry-instrumented runs transparently
  fall back to the batch protocol on the same machine.
* ``"legacy"`` -- the original heapq :class:`Simulator` + per-message
  :class:`Message` objects + dict-based collectives.

All three produce bit-identical results -- same event count, same final
timestamps, same per-rank stats -- which the engine-equivalence tests,
``benchmarks/check_engine_identity.py`` and
``benchmarks/bench_runner_scaling.py`` assert; the vectorized engine is
simply fastest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy.linalg import solve_triangular

from ..comm.collectives import ArrayBroadcast, ArrayReduce, TreeBroadcast, TreeReduce
from ..comm.trees import build_tree, compiled_tree, tree_arrays, tree_cache_info
from ..comm.vec_collectives import VecBroadcast, VecReduce
from ..simulate.machine import BatchMachine, CommStats, Machine, Message
from ..simulate.vec import VecMachine
from ..simulate.network import Network, NetworkConfig
from ..sparse.factor import SupernodalFactor
from ..sparse.selinv import SelectedInverse
from ..sparse.supernodes import SupernodalStructure
from .grid import ProcessorGrid
from .plan import BYTES_PER_ENTRY, SupernodePlan, iter_plans
from .volume import collective_seed

__all__ = ["PSelInvResult", "SimulatedPSelInv", "run_pselinv"]


@dataclass
class PSelInvResult:
    """Outcome of one simulated selected inversion."""

    scheme: str
    grid: ProcessorGrid
    makespan: float
    stats: CommStats
    events: int
    numeric: bool
    # Mean over ranks of CPU-busy compute seconds and of everything else
    # (communication + idle) -- the paper's Fig. 9 breakdown.
    compute_time: float = 0.0
    communication_time: float = 0.0
    inverse: SelectedInverse | None = None


class _SupernodeState:
    """Mutable per-supernode bookkeeping (global in the simulation; every
    field is only touched by handlers running 'on' its owning rank)."""

    __slots__ = (
        "plan",
        "lhat",
        "uhat",
        "ainv_low",
        "row_partial",
        "gemms_left",
        "diag_partial",
        "diag_left",
        "base",
        "diag_value",
        "norm_blocks",
        "bcast_gemms",
        "nrows",
        "cross_nbytes",
        "back_nbytes",
        # Compiled-protocol tables (engine="vectorized", symbolic):
        "rr_info",
        "norm_vec",
        "base_sec",
        "finish_sec",
    )

    def __init__(self, plan: SupernodePlan):
        self.plan = plan
        self.lhat: dict[int, Any] = {}  # I -> Lhat(I,K) at owner of L(I,K)
        self.uhat: dict[tuple[int, int], Any] = {}  # (I, rank) -> Uhat(K,I)
        self.ainv_low: dict[int, Any] = {}  # J -> Ainv(J,K) at owner L(J,K)
        self.row_partial: dict[tuple[int, int], Any] = {}  # (J, rank) -> sum
        self.gemms_left: dict[tuple[int, int], int] = {}  # (J, rank) -> n
        self.diag_partial: dict[int, Any] = {}  # rank -> partial (s, s)
        self.diag_left: dict[int, int] = {}  # rank -> outstanding rows J
        self.base: Any = None  # inv(U_KK) inv(L_KK) at the diagonal owner
        self.diag_value: Any = None
        # Dispatch tables built when the supernode enters the window:
        # rank -> [BlockInfo] of the L(I,K) blocks normalized there, and
        # (i, rank) -> [j, ...] local GEMM row-blocks per broadcast.
        self.norm_blocks: dict[int, list] = {}
        self.bcast_gemms: dict[tuple[int, int], list[int]] = {}
        self.nrows: dict[int, int] = {b.snode: b.nrows for b in plan.blocks}
        # Message sizes straight from the plan so simulator and analytic
        # volume model can never disagree (incl. complex 16-byte entries).
        self.cross_nbytes = {p.key[2]: p.nbytes for p in plan.cross_sends}
        self.back_nbytes = {p.key[2]: p.nbytes for p in plan.cross_backs}


class SimulatedPSelInv:
    """One configured PSelInv simulation; call :meth:`run` once."""

    def __init__(
        self,
        struct: SupernodalStructure,
        grid: ProcessorGrid,
        scheme: str = "shifted",
        *,
        factor: SupernodalFactor | None = None,
        network: NetworkConfig | None = None,
        seed: int = 0,
        placement_seed: int | None = None,
        jitter_seed: int = 0,
        hybrid_threshold: int = 8,
        per_message_cpu_overhead: float = 0.0,
        lookahead: int | None = 32,
        plans: list[SupernodePlan] | None = None,
        tree_cache: dict | None = None,
        event_log: list | None = None,
        telemetry=None,
        engine: str = "batch",
    ) -> None:
        if engine not in ("batch", "legacy", "vectorized"):
            raise ValueError(
                f"unknown engine {engine!r}; expected 'batch', 'legacy', "
                "or 'vectorized'"
            )
        self.engine = engine
        self.struct = struct
        self.grid = grid
        self.scheme = scheme
        self.factor = factor
        self.numeric = factor is not None
        self.seed = seed
        self.hybrid_threshold = hybrid_threshold
        # Bounded supernode lookahead, as in the real PSelInv/PEXSI code:
        # only this many supernodes may have their panel communication in
        # flight at once (buffer memory and MPI-progress limits).  ``None``
        # releases everything at t=0 (an idealized, infinitely-buffered
        # runtime -- useful as an ablation).
        self.lookahead = lookahead
        # Extra software overhead charged per delivered message; used to
        # model the less-optimized v0.7.3 code path.
        self.extra_msg_overhead = per_message_cpu_overhead
        net = Network(
            grid.size,
            network,
            placement_seed=placement_seed,
            jitter_seed=jitter_seed,
        )
        # ``telemetry`` (a repro.obs.Telemetry bundle, or None) turns on
        # the observability layer: network query tallies, machine-level
        # timeline/hot-spot recording, and simulator loop metrics.  The
        # network must be instrumented before the machine pre-binds its
        # queries.
        self.telemetry = telemetry
        recorder = metrics = None
        if telemetry is not None:
            metrics = telemetry.metrics
            recorder = telemetry.sink()
            if metrics is not None:
                net.instrument(metrics)
        # ``event_log`` (a caller-owned list) enables the machine's
        # structured trace hook; ``repro check`` replays it against the
        # static happens-before model.
        if engine == "vectorized":
            self.machine: Machine = VecMachine(
                grid.size,
                net,
                event_log=event_log,
                recorder=recorder,
                metrics=metrics,
                deliver_cpu_overhead=per_message_cpu_overhead,
            )
        elif engine == "batch":
            # The batch machine charges the per-delivery CPU overhead
            # itself (no wrapper handler on the hot path).
            self.machine = BatchMachine(
                grid.size,
                net,
                event_log=event_log,
                recorder=recorder,
                metrics=metrics,
                deliver_cpu_overhead=per_message_cpu_overhead,
            )
        else:
            self.machine = Machine(
                grid.size,
                net,
                event_log=event_log,
                recorder=recorder,
                metrics=metrics,
            )
        if metrics is not None:
            self.machine.sim.attach_metrics(metrics)
        if plans is not None:
            self.plans = plans
        else:
            # Complex matrices (PEXSI pole shifts) move 16-byte entries.
            bpe = BYTES_PER_ENTRY
            if factor is not None and factor.LX and np.iscomplexobj(factor.LX[0]):
                bpe = 2 * BYTES_PER_ENTRY
            self.plans = list(iter_plans(struct, grid, bytes_per_entry=bpe))
        self.states = [_SupernodeState(p) for p in self.plans]
        self.collectives: dict[tuple, Any] = {}
        # Readiness of Ainv blocks: (row_snode, col_snode) -> ready flag;
        # waiters hold deferred GEMMs.
        self.ainv_ready: set[tuple[int, int]] = set()
        self.ainv_data: dict[tuple[int, int], Any] = {}
        self.waiters: dict[tuple[int, int], list] = {}
        self.done_diag = 0
        self._ran = False
        # Trees depend on (scheme, seed, grid, struct) -- and on the
        # engine, which determines the cached representation (positional
        # TreeArrays vs dict CommTree); callers sweeping over jitter/
        # placement seeds may share a cache across runs with identical
        # configuration.  A guard key catches accidental reuse.
        self._tree_cache = tree_cache if tree_cache is not None else {}
        guard = (
            "__config__", scheme, seed, grid.pr, grid.pc, struct.nsup, engine,
        )
        prior = self._tree_cache.setdefault("__guard__", guard)
        if prior != guard:
            raise ValueError(
                "tree_cache was built for a different configuration: "
                f"{prior} vs {guard}"
            )
        # The compiled (closure-free) protocol only handles the
        # symbolic, un-instrumented case; numeric or telemetry runs on
        # the vectorized engine fall back to the batch protocol on the
        # same machine (identical outcomes, fewer specializations).
        self._vec = (
            engine == "vectorized" and not self.numeric and telemetry is None
        )
        if engine == "legacy":
            self._bcast_cls: Any = TreeBroadcast
            self._reduce_cls: Any = TreeReduce
            for r in range(grid.size):
                self.machine.set_handler(r, self._make_handler(r))
        elif self._vec:
            self._init_vec_protocol()
        else:
            self._bcast_cls = ArrayBroadcast
            self._reduce_cls = ArrayReduce
            for r in range(grid.size):
                self.machine.set_fast_handler(r, self._make_fast_handler(r))

    # -- setup ------------------------------------------------------------

    def _tree(self, spec) -> Any:
        """The spec's communication tree, in the engine's representation
        (positional :class:`TreeArrays` for batch, dict
        :class:`CommTree` for legacy), memoized per run/config."""
        key = spec.key
        tree = self._tree_cache.get(key)
        if tree is None:
            build = build_tree if self.engine == "legacy" else tree_arrays
            tree = build(
                self.scheme,
                spec.root,
                spec.participants,
                collective_seed(self.seed, key),
                hybrid_threshold=self.hybrid_threshold,
            )
            self._tree_cache[key] = tree
        return tree

    def _build_collectives(self, plan: SupernodePlan) -> None:
        """Instantiate supernode ``plan.k``'s collectives (window entry).

        Lazy construction matters: a medium problem has O(10^5)
        collectives, and building their trees up front would dominate the
        run; it also mirrors the real code, which materializes its
        communication trees as supernodes enter the lookahead window.
        """
        m = self.machine
        k = plan.k
        if plan.diag_bcast is not None:
            spec = plan.diag_bcast
            self.collectives[spec.key] = self._bcast_cls(
                m,
                self._tree(spec),
                spec.key,
                spec.nbytes,
                spec.kind,
                lambda rank, payload, k=k: self._on_diag_delivery(
                    k, rank, payload
                ),
            )
        for spec in plan.col_bcasts:
            i = spec.key[2]
            self.collectives[spec.key] = self._bcast_cls(
                m,
                self._tree(spec),
                spec.key,
                spec.nbytes,
                spec.kind,
                lambda rank, payload, k=k, i=i: self._on_colbcast_delivery(
                    k, i, rank, payload
                ),
            )
        pc = self.grid.pc
        for spec in plan.row_reduces:
            j = spec.key[2]
            jrow = (j % self.grid.pr) * pc
            contributors = {
                jrow + (b.snode % pc) for b in plan.blocks
            }
            self.collectives[spec.key] = self._reduce_cls(
                m,
                self._tree(spec),
                spec.key,
                spec.nbytes,
                spec.kind,
                contributors,
                lambda value, k=k, j=j: self._on_rowreduce_complete(
                    k, j, value
                ),
            )
        if plan.col_reduce is not None and plan.blocks:
            spec = plan.col_reduce
            kc = k % pc
            contributors = {
                (b.snode % self.grid.pr) * pc + kc for b in plan.blocks
            }
            self.collectives[spec.key] = self._reduce_cls(
                m,
                self._tree(spec),
                spec.key,
                spec.nbytes,
                spec.kind,
                contributors,
                lambda value, k=k: self._on_colreduce_complete(k, value),
            )

    def _make_handler(self, rank: int):
        def handler(msg: Message) -> None:
            if self.extra_msg_overhead > 0.0:
                self.machine.post_compute(
                    rank, self.extra_msg_overhead, label="msg-overhead"
                )
            key = msg.tag
            kind = key[0]
            if kind in ("db", "cb"):
                self.collectives[key].on_message(msg)
            elif kind in ("rr", "cr"):
                self.collectives[key].on_message(msg)
            elif kind == "cs":
                self._on_cross_send(key[1], key[2], msg.payload)
            elif kind == "xb":
                self._on_cross_back(key[1], key[2], rank, msg.payload)
            else:  # pragma: no cover - protocol safety net
                raise RuntimeError(f"unknown message tag {key!r}")

        return handler

    def _make_fast_handler(self, rank: int):
        """Batch-engine rank handler for the point-to-point tags.

        Collective messages never reach it (they carry their own
        delivery callback); only the cross-send/cross-back transfers
        fall through to the rank handler.  The per-message CPU overhead
        is charged by the :class:`BatchMachine` itself.
        """

        def handler(tag: Any, payload: Any, aux: int) -> None:
            kind = tag[0]
            if kind == "cs":
                self._on_cross_send(tag[1], tag[2], payload)
            elif kind == "xb":
                self._on_cross_back(tag[1], tag[2], rank, payload)
            else:  # pragma: no cover - protocol safety net
                raise RuntimeError(f"unknown message tag {tag!r}")

        return handler

    # -- helpers ------------------------------------------------------------

    def _block_rows(self, k: int, i: int) -> np.ndarray:
        return self.struct.block_row_indices(k, i)

    def _gemm_counts(self, plan: SupernodePlan) -> None:
        """Build dispatch tables for supernode ``plan.k`` (on window entry).

        Logically this is the all-pairs loop ``for bj in blocks: for bi
        in blocks`` counting one GEMM per (row block, column block) pair.
        Run that way it costs O(B^2) dict operations and dominates the
        window-entry path on large supernodes, so the pairs are batched
        by grid row instead: every row block ``j`` in the same grid row
        meets every column position with the same multiplicity, and a
        ``bcast_gemms`` key ``(i, r)`` pins down the grid row of ``r``,
        so each of its lists receives the ``j``'s of exactly one row
        group -- in block order, as before.  Neither table's key order is
        observable (both are only read by key), and the counts and list
        contents are identical to the all-pairs loop.
        """
        st = self.states[plan.k]
        pr, pc = self.grid.pr, self.grid.pc
        k = plan.k
        kc = k % pc
        blocks = plan.blocks
        snodes = [b.snode for b in blocks]
        # Row blocks grouped by grid row (insertion = block order).
        rowgroups: dict[int, list[int]] = {}
        for j in snodes:
            jrow = (j % pr) * pc
            g = rowgroups.get(jrow)
            if g is None:
                rowgroups[jrow] = [j]
            else:
                g.append(j)
        # Column-position multiplicity over the column blocks.
        cols = [i % pc for i in snodes]
        colcount: dict[int, int] = {}
        for ic in cols:
            colcount[ic] = colcount.get(ic, 0) + 1
        gl = st.gemms_left
        bg = st.bcast_gemms
        diag_left = st.diag_left
        norm_blocks = st.norm_blocks
        for jrow, js in rowgroups.items():
            for j in js:
                for ic, cnt in colcount.items():
                    key = (j, jrow + ic)
                    gl[key] = gl.get(key, 0) + cnt
            for i, ic in zip(snodes, cols):
                key = (i, jrow + ic)
                lst = bg.get(key)
                if lst is None:
                    bg[key] = list(js)
                else:
                    lst.extend(js)
            dest = jrow + kc
            diag_left[dest] = diag_left.get(dest, 0) + len(js)
        for bj in blocks:
            lowner = (bj.snode % pr) * pc + kc
            norm_blocks.setdefault(lowner, []).append(bj)

    # -- compiled protocol (engine="vectorized", symbolic) -----------------------
    #
    # Same dataflow, same timestamps, zero per-event closures: window
    # entry precomputes every duration/destination/tag in bulk with
    # numpy, handlers are pre-registered ids dispatching on tuple
    # arguments, collective traffic rides the machine's point route, and
    # Ainv readiness keys are flat ints (row * nsup + col).  Every
    # simulator event maps one-to-one onto a batch-engine event, in the
    # same sequence order -- that is the whole bit-identity argument.

    def _init_vec_protocol(self) -> None:
        m = self.machine
        sim = m.sim
        cat = m.category_id
        self._cid_db = cat("diag-bcast")
        self._cid_cb = cat("col-bcast")
        self._cid_rr = cat("row-reduce")
        self._cid_cr = cat("col-reduce")
        self._cid_cross = cat("cross-send")
        self._cid_back = cat("cross-back")
        self._hid_gemm = sim.register_handler(self._gemm_fin_vec)
        self._hid_norm = sim.register_handler(self._norm_fin_vec)
        self._hid_diagc = sim.register_handler(self._diag_fin_vec)
        self._hid_base = sim.register_handler(self._base_fin_vec)
        self._hid_colred = sim.register_handler(self._colred_fin_vec)
        self._ready: set[int] = set()
        self._vwaiters: dict[int, list] = {}
        # Column broadcasts waiting on their cross-send, keyed
        # k * nsup + i (popped exactly once when the Lhat panel lands).
        self._vec_cb: dict[int, Any] = {}
        self._nsup = self.struct.nsup

    def _ctree(self, spec) -> Any:
        """The spec's :class:`CompiledTree`, memoized like :meth:`_tree`
        but under a distinct key prefix -- the same run-level cache may
        also hold :class:`TreeArrays` (numeric/telemetry fallback) for
        identical specs, and the two representations must not collide."""
        key = ("v", spec.key)
        tree = self._tree_cache.get(key)
        if tree is None:
            tree = compiled_tree(
                self.scheme,
                spec.root,
                spec.participants,
                collective_seed(self.seed, spec.key),
                hybrid_threshold=self.hybrid_threshold,
            )
            self._tree_cache[key] = tree
        return tree

    def _setup_supernode_vec(self, plan: SupernodePlan) -> None:
        """Window entry: compile supernode ``plan.k``'s whole protocol.

        Fuses ``_gemm_counts`` + ``_build_collectives`` and additionally
        precomputes, in bulk numpy expressions, every compute duration
        the per-message path derives one flop count at a time.  All
        duration arithmetic reproduces ``Network.compute_time``'s exact
        float expression (the products are exact integers below 2^53,
        so factoring them elementwise cannot change a bit).
        """
        m = self.machine
        k = plan.k
        st = self.states[k]
        nsup = self._nsup
        nranks = self.grid.size
        pr, pc = self.grid.pr, self.grid.pc
        kc = k % pc
        kr_pc = (k % pr) * pc
        cfg = m.network.config
        task_oh = cfg.task_overhead
        rate = cfg.flop_rate
        blocks = plan.blocks
        nb = len(blocks)
        snodes = [b.snode for b in blocks]
        s = plan.width
        sn = np.array(snodes)
        nr = np.array([b.nrows for b in blocks])
        jrows_l = ((sn % pr) * pc).tolist()
        cols_l = (sn % pc).tolist()
        # Durations: [i_idx][j_idx] GEMM seconds, per-block normalize
        # and diag-contribution seconds, and the two scalar diag terms.
        secs = (
            task_oh + (np.multiply.outer(2.0 * nr, nr) * s) / rate
        ).tolist()
        norm_secs = (task_oh + (s * s * nr) / rate).tolist()
        dc_secs = (task_oh + (((2.0 * s) * nr) * s) / rate).tolist()
        st.base_sec = task_oh + (s ** 3) / rate
        st.finish_sec = task_oh + float(s * s) / rate
        # Row blocks grouped by grid row (insertion = block order), and
        # the distinct column positions with their multiplicities.
        rowgroups: dict[int, list[int]] = {}
        for idx in range(nb):
            g = rowgroups.get(jrows_l[idx])
            if g is None:
                rowgroups[jrows_l[idx]] = [idx]
            else:
                g.append(idx)
        colcount: dict[int, int] = {}
        for c in cols_l:
            colcount[c] = colcount.get(c, 0) + 1
        ucols = list(colcount)
        ucnts = list(colcount.values())
        # Collectives go up in the batch engine's construction order
        # (diag bcast, col bcasts, row reduces, col reduce): reduce
        # construction can emit degenerate-relay sends, so this order is
        # part of the bit-identity contract.
        spec = plan.diag_bcast
        diag_bc = VecBroadcast(
            m, self._ctree(spec), spec.key, spec.nbytes, self._cid_db,
            self._on_diag_delivery_vec, st,
        )
        vcb = self._vec_cb
        kn = k * nsup
        # The delivery context of col-bcast i carries its GEMM-duration
        # row and snode id directly; the per-rank work tables are shared
        # across every i (a rank's row group does the same j's for each
        # broadcast it receives -- the legacy tables stored one copy per
        # (i, rank) pair).
        idx_of = {sn_: x for x, sn_ in enumerate(snodes)}
        for spec in plan.col_bcasts:
            i = spec.key[2]
            vcb[kn + i] = VecBroadcast(
                m, self._ctree(spec), spec.key, spec.nbytes, self._cid_cb,
                self._on_colbcast_delivery_vec, (st, secs[idx_of[i]], i),
            )
        gl: dict[int, int] = {}
        st.gemms_left = gl
        fin_args: dict[int, tuple] = {}
        for spec in plan.row_reduces:
            j = spec.key[2]
            tree = self._ctree(spec)
            pos = tree.pos_of()
            jrow_j = (j % pr) * pc
            jn = j * nranks
            red = VecReduce(
                m, tree, spec.key, spec.nbytes, self._cid_rr,
                [pos[jrow_j + c] for c in ucols],
                self._on_rowreduce_complete_vec, (st, j),
            )
            for c, cnt in zip(ucols, ucnts):
                r = jrow_j + c
                gkey = jn + r
                gl[gkey] = cnt
                fin_args[gkey] = (gl, gkey, red, pos[r])
        dl: dict[int, int] = {}
        st.diag_left = dl
        for jrow, g in rowgroups.items():
            dl[jrow + kc] = len(g)
        spec = plan.col_reduce
        tree = self._ctree(spec)
        pos = tree.pos_of()
        cr = VecReduce(
            m, tree, spec.key, spec.nbytes, self._cid_cr,
            [pos[d] for d in dl],
            self._on_colreduce_complete_vec, st,
        )
        dfin = {d: (dl, d, cr, pos[d]) for d in dl}
        # Per row block j: everything its row-reduce completion touches.
        xnb = st.back_nbytes
        rr_info: dict[int, tuple] = {}
        st.rr_info = rr_info
        for idx in range(nb):
            j = snodes[idx]
            dest = jrows_l[idx] + kc
            rr_info[j] = (
                j * nsup + k,           # readiness key of Ainv(J,K)
                dest,                   # owner of L(J,K)
                kr_pc + cols_l[idx],    # owner of U(K,J) (cross-back)
                ("xb", k, j),
                xnb[j],
                kn + j,                 # readiness key of Ainv(K,J)
                dc_secs[idx],
                dfin[dest],
            )
        # Per L-panel owner: normalize duration + cross-send arguments.
        cnb = st.cross_nbytes
        nv: dict[int, list] = {}
        st.norm_vec = nv
        for idx in range(nb):
            i = snodes[idx]
            lowner = jrows_l[idx] + kc
            ent = (
                norm_secs[idx],
                (lowner, kr_pc + cols_l[idx], ("cs", k, i), cnb[i], kn + i),
            )
            g = nv.get(lowner)
            if g is None:
                nv[lowner] = [ent]
            else:
                g.append(ent)
        # Per contributing rank: its row group's block indices, the
        # shared countdown tuples of its (j, rank) pairs, and the j-part
        # of each readiness key -- one table per rank, reused by every
        # col-bcast delivery there (block order throughout).
        bg: dict[int, tuple] = {}
        st.bcast_gemms = bg
        for jrow, group in rowgroups.items():
            jsn = [snodes[x] * nsup for x in group]
            for c in ucols:
                rank = jrow + c
                bg[rank] = (
                    group,
                    [fin_args[snodes[x] * nranks + rank] for x in group],
                    jsn,
                )
        self.machine.sim.schedule(0.0, lambda bc=diag_bc: bc.start(None))

    def _mark_ready_vec(self, rkey: int) -> None:
        self._ready.add(rkey)
        w = self._vwaiters.pop(rkey, None)
        if w is not None:
            post = self.machine.post_named
            hid = self._hid_gemm
            for rank, sec, arg in w:
                post(rank, sec, hid, arg)

    def _on_diag_delivery_vec(self, st, rank: int, payload) -> None:
        if rank == st.plan.diag_owner:
            self.machine.post_named(rank, st.base_sec, self._hid_base, st)
        ents = st.norm_vec.get(rank)
        if ents is not None:
            post = self.machine.post_named
            hid = self._hid_norm
            for sec, arg in ents:
                post(rank, sec, hid, arg)

    def _base_fin_vec(self, st) -> None:
        st.base = None

    def _norm_fin_vec(self, arg) -> None:
        # (src, u_owner, ("cs", k, i), nbytes, col-bcast key)
        self.machine.send_pt(
            arg[0], arg[1], arg[2], arg[3], self._cid_cross,
            self._on_cross_send_vec, arg[4],
        )

    def _on_cross_send_vec(self, dst: int, payload, aux: int) -> None:
        self._vec_cb.pop(aux).start(payload)

    def _on_colbcast_delivery_vec(self, ctx, rank: int, payload) -> None:
        st, sec_row, i = ctx
        tab = st.bcast_gemms.get(rank)
        if tab is None:
            return
        group, fins, jsn = tab
        ready = self._ready
        waiters = self._vwaiters
        post = self.machine.post_named
        hid = self._hid_gemm
        for x in range(len(group)):
            rkey = jsn[x] + i
            if rkey in ready:
                post(rank, sec_row[group[x]], hid, fins[x])
            else:
                ent = (rank, sec_row[group[x]], fins[x])
                w = waiters.get(rkey)
                if w is None:
                    waiters[rkey] = [ent]
                else:
                    w.append(ent)

    def _gemm_fin_vec(self, arg) -> None:
        gl, gkey, red, cpos = arg
        n = gl[gkey] - 1
        gl[gkey] = n
        if n == 0:
            red.contribute_pos(cpos)

    def _on_rowreduce_complete_vec(self, ctx, value) -> None:
        st, j = ctx
        rkey, dest, u_owner, xbtag, nbytes, bkey, dcsec, dfin = st.rr_info[j]
        self._mark_ready_vec(rkey)
        self.machine.send_pt(
            dest, u_owner, xbtag, nbytes, self._cid_back,
            self._on_cross_back_vec, bkey,
        )
        self.machine.post_named(dest, dcsec, self._hid_diagc, dfin)

    def _on_cross_back_vec(self, dst: int, payload, aux: int) -> None:
        self._mark_ready_vec(aux)

    def _diag_fin_vec(self, arg) -> None:
        dl, dest, cr, cpos = arg
        n = dl[dest] - 1
        dl[dest] = n
        if n == 0:
            cr.contribute_pos(cpos)

    def _on_colreduce_complete_vec(self, st, value) -> None:
        self.machine.post_named(
            st.plan.diag_owner, st.finish_sec, self._hid_colred, st
        )

    def _colred_fin_vec(self, st) -> None:
        k = st.plan.k
        self._mark_ready_vec(k * self._nsup + k)
        self._supernode_finished()

    # -- phase 0: kickoff ------------------------------------------------------

    def _kickoff(self) -> None:
        # Supernodes are released in descending index order (the second
        # loop of Algorithm 1), at most ``lookahead`` outstanding; every
        # dependency of supernode K lives at an index > K, so the window
        # can never deadlock.
        self._release_order = list(range(self.struct.nsup - 1, -1, -1))
        self._release_ptr = 0
        window = self.lookahead if self.lookahead is not None else self.struct.nsup
        self._outstanding = 0
        self._window = max(1, int(window))
        self._release_more()

    def _release_more(self) -> None:
        while (
            self._release_ptr < len(self._release_order)
            and self._outstanding < self._window
        ):
            k = self._release_order[self._release_ptr]
            self._release_ptr += 1
            self._outstanding += 1
            self._start_supernode(k)

    def _supernode_finished(self) -> None:
        self.done_diag += 1
        self._outstanding -= 1
        self._release_more()

    def _start_supernode(self, k: int) -> None:
        st = self.states[k]
        plan = st.plan
        if not plan.blocks:
            # A root supernode with empty structure: its inverse is
            # just the inverted diagonal block, computed locally.
            s = plan.width
            payload = self.factor.diag_block(k) if self.numeric else None
            self.machine.post_compute(
                plan.diag_owner,
                0.0,
                lambda k=k, payload=payload: self._finish_lonely_diag(
                    k, payload
                ),
                flops=s**3,
                label="diag-inv",
            )
            return
        if self._vec:
            self._setup_supernode_vec(plan)
            return
        self._gemm_counts(plan)
        self._build_collectives(plan)
        spec = plan.diag_bcast
        payload = self.factor.diag_block(k) if self.numeric else None
        bc = self.collectives[spec.key]
        # The broadcast starts as soon as the supernode enters the
        # lookahead window (its factorization output already sits at the
        # root; SuperLU timing is reported separately, as in the paper).
        self.machine.sim.schedule(
            0.0, lambda bc=bc, payload=payload: bc.start(payload)
        )

    def _finish_lonely_diag(self, k: int, payload: Any) -> None:
        st = self.states[k]
        if self.numeric:
            s = self.struct.width(k)
            ident = np.eye(s)
            linv = solve_triangular(payload, ident, lower=True, unit_diagonal=True)
            st.diag_value = solve_triangular(payload, linv, lower=False)
        if self._vec:
            self._mark_ready_vec(k * self._nsup + k)
        else:
            self._mark_ainv_ready((k, k), st.diag_value, self.grid.owner(k, k))
        self._supernode_finished()

    # -- phase 1: diagonal broadcast and panel normalization ---------------------

    def _on_diag_delivery(self, k: int, rank: int, payload: Any) -> None:
        st = self.states[k]
        plan = st.plan
        s = plan.width
        pr, pc = self.grid.pr, self.grid.pc
        if rank == plan.diag_owner:
            # Compute the base term inv(U_KK) inv(L_KK) while panels move.
            def fin_base(payload=payload):
                if self.numeric:
                    ident = np.eye(s)
                    linv = solve_triangular(
                        payload, ident, lower=True, unit_diagonal=True
                    )
                    st.base = solve_triangular(payload, linv, lower=False)
                else:
                    st.base = None

            self.machine.post_compute(
                rank, 0.0, fin_base, flops=s**3, label="diag-inv"
            )
        # Normalize every local L(I,K) block owned by this rank.
        for b in st.norm_blocks.get(rank, ()):
            i = b.snode

            def fin_norm(i=i, b=b, payload=payload, rank=rank):
                if self.numeric:
                    raw = self._raw_l_block(k, i)
                    lhat = solve_triangular(
                        payload, raw.T, lower=True, unit_diagonal=True, trans="T"
                    ).T
                else:
                    lhat = None
                st.lhat[i] = lhat
                # Cross-send Lhat^T to the owner of U(K,I).
                u_owner = self.grid.rank(k % pr, i % pc)
                nbytes = st.cross_nbytes[i]
                self.machine.post_send(
                    rank,
                    u_owner,
                    ("cs", k, i),
                    nbytes,
                    "cross-send",
                    lhat.T if self.numeric else None,
                )

            self.machine.post_compute(
                rank, 0.0, fin_norm, flops=s * s * b.nrows, label="normalize"
            )

    def _raw_l_block(self, k: int, i: int) -> np.ndarray:
        """Slice the raw factor panel block L(I,K) (numeric mode)."""
        rows = self.struct.rows_below[k]
        lo = int(np.searchsorted(rows, self.struct.sn_ptr[i]))
        hi = int(np.searchsorted(rows, self.struct.sn_ptr[i + 1]))
        return self.factor.l_panel(k)[lo:hi, :]

    # -- phase 2: cross send -> column broadcast ---------------------------------

    def _on_cross_send(self, k: int, i: int, payload: Any) -> None:
        bc = self.collectives.get(("cb", k, i))
        if bc is None:  # pragma: no cover - plan always emits col-bcasts
            raise RuntimeError(f"missing col-bcast ({k}, {i})")
        bc.start(payload)

    # -- phase 3: broadcast delivery -> local GEMMs -------------------------------

    def _on_colbcast_delivery(self, k: int, i: int, rank: int, payload: Any) -> None:
        st = self.states[k]
        st.uhat[(i, rank)] = payload
        ready = self.ainv_ready
        for j in st.bcast_gemms.get((i, rank), ()):
            if (j, i) in ready:
                self._schedule_gemm(k, i, j, rank)
            else:
                self.waiters.setdefault((j, i), []).append((k, i, j, rank))

    def _mark_ainv_ready(self, key: tuple[int, int], data: Any, owner: int) -> None:
        self.ainv_ready.add(key)
        self.ainv_data[key] = data
        for (k, i, j, rank) in self.waiters.pop(key, []):
            self._schedule_gemm(k, i, j, rank)

    def _schedule_gemm(self, k: int, i: int, j: int, rank: int) -> None:
        st = self.states[k]
        s = st.plan.width
        flops = 2.0 * st.nrows[i] * st.nrows[j] * s

        def fin():
            contrib = self._compute_gemm(k, i, j) if self.numeric else None
            keyp = (j, rank)
            if self.numeric:
                cur = st.row_partial.get(keyp)
                st.row_partial[keyp] = contrib if cur is None else cur + contrib
            st.gemms_left[keyp] -= 1
            if st.gemms_left[keyp] == 0:
                red = self.collectives[("rr", k, j)]
                red.contribute(rank, st.row_partial.pop(keyp, None))

        self.machine.post_compute(rank, 0.0, fin, flops=flops, label="gemm")

    def _compute_gemm(self, k: int, i: int, j: int) -> np.ndarray:
        """Numeric contribution  Ainv(J,I)[needed rows, needed cols] @ Lhat(I,K)."""
        struct = self.struct
        rows_j = self._block_rows(k, j)  # needed rows of supernode J
        rows_i = self._block_rows(k, i)  # needed rows (=cols here) of I
        st = self.states[k]
        uhat = st.uhat[(i, self.grid.rank(j % self.grid.pr, i % self.grid.pc))]
        lhat_ik = uhat.T  # (r_i, s)
        if j > i:
            block = self.ainv_data[(j, i)]  # rows: block rows of (I->J)
            host_rows = struct.block_row_indices(i, j)
            posr = np.searchsorted(host_rows, rows_j)
            posc = rows_i - struct.first_col(i)
            sub = block[np.ix_(posr, posc)]
        elif j == i:
            block = self.ainv_data[(i, i)]  # (s_i, s_i) diagonal block
            loc = rows_i - struct.first_col(i)
            sub = block[np.ix_(loc, loc)]
        else:
            block = self.ainv_data[(j, i)]  # upper block: rows cols(J)
            host_cols = struct.block_row_indices(j, i)
            posr = rows_j - struct.first_col(j)
            posc = np.searchsorted(host_cols, rows_i)
            sub = block[np.ix_(posr, posc)]
        return sub @ lhat_ik

    # -- phase 4: row reduce completion -------------------------------------------

    def _on_rowreduce_complete(self, k: int, j: int, value: Any) -> None:
        st = self.states[k]
        plan = st.plan
        s = plan.width
        pr, pc = self.grid.pr, self.grid.pc
        dest = self.grid.rank(j % pr, k % pc)
        rj = st.nrows[j]
        ainv_jk = -value if self.numeric else None
        st.ainv_low[j] = ainv_jk
        self._mark_ainv_ready((j, k), ainv_jk, dest)
        # Cross-back: populate the upper storage at the owner of U(K,J).
        u_owner = self.grid.rank(k % pr, j % pc)
        nbytes = st.back_nbytes[j]
        self.machine.post_send(
            dest,
            u_owner,
            ("xb", k, j),
            nbytes,
            "cross-back",
            ainv_jk.T if self.numeric else None,
        )

        # Local diagonal contribution Lhat(J,K)^T @ Ainv(J,K).
        def fin():
            if self.numeric:
                contrib = st.lhat[j].T @ ainv_jk
                cur = st.diag_partial.get(dest)
                st.diag_partial[dest] = contrib if cur is None else cur + contrib
            st.diag_left[dest] -= 1
            if st.diag_left[dest] == 0:
                red = self.collectives[("cr", k)]
                red.contribute(dest, st.diag_partial.pop(dest, None))

        self.machine.post_compute(
            dest, 0.0, fin, flops=2.0 * s * rj * s, label="diag-contrib"
        )

    def _on_cross_back(self, k: int, j: int, rank: int, payload: Any) -> None:
        # Upper Ainv block (K, J): rows = cols(K), cols = block rows of J.
        self._mark_ainv_ready((k, j), payload, rank)

    # -- phase 5: column reduce completion ------------------------------------------

    def _on_colreduce_complete(self, k: int, value: Any) -> None:
        st = self.states[k]
        plan = st.plan
        s = plan.width

        def fin():
            if self.numeric:
                st.diag_value = st.base - value
            self._mark_ainv_ready((k, k), st.diag_value, plan.diag_owner)
            self._supernode_finished()

        self.machine.post_compute(
            plan.diag_owner, 0.0, fin, flops=float(s * s), label="finish-diag"
        )

    # -- driver ------------------------------------------------------------------

    def run(self, max_events: int | None = None) -> PSelInvResult:
        """Execute the simulation to completion and package the result."""
        if self._ran:
            raise RuntimeError("a SimulatedPSelInv instance runs only once")
        self._ran = True
        metrics = (
            self.telemetry.metrics if self.telemetry is not None else None
        )
        cache_before = tree_cache_info() if metrics is not None else None
        self._kickoff()
        makespan = self.machine.run(max_events=max_events)
        if metrics is not None and cache_before is not None:
            self._record_tree_cache_metrics(metrics, cache_before)
        nsup = self.struct.nsup
        if self.done_diag != nsup:
            raise RuntimeError(
                f"protocol stalled: {self.done_diag}/{nsup} supernodes finished"
            )
        stats = self.machine.stats
        compute = float(stats.compute_busy.mean())
        comm = float(makespan - stats.compute_busy.mean())
        inverse = self._gather_inverse() if self.numeric else None
        return PSelInvResult(
            scheme=self.scheme,
            grid=self.grid,
            makespan=makespan,
            stats=stats,
            events=self.machine.sim.events_processed,
            numeric=self.numeric,
            compute_time=compute,
            communication_time=comm,
            inverse=inverse,
        )

    @staticmethod
    def _record_tree_cache_metrics(metrics, before: dict[str, int]) -> None:
        """Publish shared tree-cache deltas as ``comm.tree_cache.*``.

        The cache is process-global, so counters report the *delta*
        accumulated by this run while the size/maxsize gauges report the
        cache state after it.
        """
        after = tree_cache_info()
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        metrics.counter("comm.tree_cache.hits").inc(hits)
        metrics.counter("comm.tree_cache.misses").inc(misses)
        metrics.counter("comm.tree_cache.evictions").inc(
            after["evictions"] - before["evictions"]
        )
        lookups = hits + misses
        metrics.gauge("comm.tree_cache.hit_rate").set(
            hits / lookups if lookups else 0.0
        )
        metrics.gauge("comm.tree_cache.size").set(after["size"])
        metrics.gauge("comm.tree_cache.maxsize").set(after["maxsize"])

    def _gather_inverse(self) -> SelectedInverse:
        """Assemble the distributed numeric blocks into oracle layout."""
        struct = self.struct
        nsup = struct.nsup
        diag: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
        lpanel: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
        upanel: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
        for k in range(nsup):
            st = self.states[k]
            s = struct.width(k)
            diag[k] = np.asarray(st.diag_value)
            blocks = st.plan.blocks
            if blocks:
                lpanel[k] = np.concatenate(
                    [st.ainv_low[b.snode] for b in blocks], axis=0
                )
                upanel[k] = np.concatenate(
                    [np.asarray(self.ainv_data[(k, b.snode)]) for b in blocks],
                    axis=1,
                )
            else:
                lpanel[k] = np.zeros((0, s))
                upanel[k] = np.zeros((s, 0))
        return SelectedInverse(
            struct=struct, diag=diag, lpanel=lpanel, upanel=upanel
        )


def run_pselinv(
    struct: SupernodalStructure,
    grid: ProcessorGrid,
    scheme: str = "shifted",
    **kwargs: Any,
) -> PSelInvResult:
    """Convenience wrapper: configure, run, and return the result."""
    return SimulatedPSelInv(struct, grid, scheme, **kwargs).run()
