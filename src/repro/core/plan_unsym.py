"""Communication plan for the unsymmetric parallel selected inversion.

The paper's conclusion names the extension to asymmetric matrices as work
in progress; this is that extension.  Without ``Uhat = Lhat^T``, the U
panels must be normalized and moved on their own, which mirrors every
L-side communication with a transposed counterpart:

=================  =========================================================
event              root / endpoints, participants, payload size
=================  =========================================================
diag-bcast (K)     diag owner -> L(I,K) owners down grid column K mod Pc
diag-rbcast (K)    diag owner -> U(K,I) owners along grid row K mod Pr
cross-l2u (K,I)    owner of L(I,K) -> owner of U(K,I): Lhat(I,K)
col-bcast (K,I)    owner of U(K,I) -> Ainv(J,I) owners, grid col I mod Pc
cross-u2l (K,I)    owner of U(K,I) -> owner of L(I,K): Uhat(K,I)
row-bcast (K,I)    owner of L(I,K) -> Ainv(I,J) owners, grid row I mod Pr
row-reduce (K,J)   GEMM-L partial sums -> owner of L(J,K): Ainv(J,K)
col-ureduce (K,J)  GEMM-U partial sums -> owner of U(K,J): Ainv(K,J)
diag-rreduce (K)   Ainv(K,J) Lhat(J,K) contributions along grid row
                   K mod Pr -> diag owner: Ainv(K,K)
=================  =========================================================

Unlike the symmetric flow there are no cross-backs: the upper-triangle
``Ainv(K, C)`` blocks are *computed* at their owners (the U side) by the
GEMM-U pipeline instead of being transposed copies of the lower ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..sparse.supernodes import SupernodalStructure
from .grid import ProcessorGrid
from .plan import (
    BYTES_PER_ENTRY,
    BlockInfo,
    CollectiveSpec,
    PointToPointSpec,
)

__all__ = ["UnsymSupernodePlan", "unsym_supernode_plan", "iter_unsym_plans"]


@dataclass
class UnsymSupernodePlan:
    """All communication of one supernode in the unsymmetric algorithm."""

    k: int
    width: int
    blocks: list[BlockInfo]
    diag_owner: int
    diag_bcast: CollectiveSpec | None
    diag_rbcast: CollectiveSpec | None
    cross_l2u: list[PointToPointSpec]
    cross_u2l: list[PointToPointSpec]
    col_bcasts: list[CollectiveSpec]
    row_bcasts: list[CollectiveSpec]
    row_reduces: list[CollectiveSpec]
    col_ureduces: list[CollectiveSpec]
    diag_rreduce: CollectiveSpec | None

    def collectives(self) -> Iterator[CollectiveSpec]:
        for spec in (self.diag_bcast, self.diag_rbcast, self.diag_rreduce):
            if spec is not None:
                yield spec
        yield from self.col_bcasts
        yield from self.row_bcasts
        yield from self.row_reduces
        yield from self.col_ureduces

    def point_to_points(self) -> Iterator[PointToPointSpec]:
        yield from self.cross_l2u
        yield from self.cross_u2l


def unsym_supernode_plan(
    struct: SupernodalStructure,
    grid: ProcessorGrid,
    k: int,
    *,
    bytes_per_entry: int = BYTES_PER_ENTRY,
) -> UnsymSupernodePlan:
    """Build the unsymmetric communication plan of supernode ``k``."""
    pr, pc = grid.pr, grid.pc
    s = struct.width(k)
    kr, kc = k % pr, k % pc
    diag_owner = grid.rank(kr, kc)
    blocks = [
        BlockInfo(snode=int(i), nrows=struct.block_row_count(k, int(i)))
        for i in struct.block_rows[k]
    ]
    nb_diag = s * s * bytes_per_entry

    if not blocks:
        return UnsymSupernodePlan(
            k=k, width=s, blocks=[], diag_owner=diag_owner,
            diag_bcast=None, diag_rbcast=None,
            cross_l2u=[], cross_u2l=[], col_bcasts=[], row_bcasts=[],
            row_reduces=[], col_ureduces=[], diag_rreduce=None,
        )

    c_rows = sorted({b.snode % pr for b in blocks})
    c_cols = sorted({b.snode % pc for b in blocks})

    diag_bcast = CollectiveSpec(
        kind="diag-bcast",
        key=("db", k),
        root=diag_owner,
        participants=tuple(
            sorted({diag_owner} | {grid.rank(r, kc) for r in c_rows})
        ),
        nbytes=nb_diag,
    )
    diag_rbcast = CollectiveSpec(
        kind="diag-rbcast",
        key=("dr", k),
        root=diag_owner,
        participants=tuple(
            sorted({diag_owner} | {grid.rank(kr, c) for c in c_cols})
        ),
        nbytes=nb_diag,
    )

    cross_l2u: list[PointToPointSpec] = []
    cross_u2l: list[PointToPointSpec] = []
    col_bcasts: list[CollectiveSpec] = []
    row_bcasts: list[CollectiveSpec] = []
    row_reduces: list[CollectiveSpec] = []
    col_ureduces: list[CollectiveSpec] = []

    for b in blocks:
        i = b.snode
        nb_panel = s * b.nrows * bytes_per_entry
        l_owner = grid.rank(i % pr, kc)
        u_owner = grid.rank(kr, i % pc)
        cross_l2u.append(
            PointToPointSpec(
                kind="cross-l2u", key=("cl", k, i),
                src=l_owner, dst=u_owner, nbytes=nb_panel,
            )
        )
        cross_u2l.append(
            PointToPointSpec(
                kind="cross-u2l", key=("cu", k, i),
                src=u_owner, dst=l_owner, nbytes=nb_panel,
            )
        )
        col_bcasts.append(
            CollectiveSpec(
                kind="col-bcast", key=("cb", k, i), root=u_owner,
                participants=tuple(
                    sorted({u_owner} | {grid.rank(r, i % pc) for r in c_rows})
                ),
                nbytes=nb_panel,
            )
        )
        row_bcasts.append(
            CollectiveSpec(
                kind="row-bcast", key=("rb", k, i), root=l_owner,
                participants=tuple(
                    sorted({l_owner} | {grid.rank(i % pr, c) for c in c_cols})
                ),
                nbytes=nb_panel,
            )
        )

    for b in blocks:
        j = b.snode
        nb_panel = s * b.nrows * bytes_per_entry
        l_dest = grid.rank(j % pr, kc)
        row_reduces.append(
            CollectiveSpec(
                kind="row-reduce", key=("rr", k, j), root=l_dest,
                participants=tuple(
                    sorted({l_dest} | {grid.rank(j % pr, c) for c in c_cols})
                ),
                nbytes=nb_panel,
            )
        )
        u_dest = grid.rank(kr, j % pc)
        col_ureduces.append(
            CollectiveSpec(
                kind="col-ureduce", key=("cu2", k, j), root=u_dest,
                participants=tuple(
                    sorted({u_dest} | {grid.rank(r, j % pc) for r in c_rows})
                ),
                nbytes=nb_panel,
            )
        )

    diag_rreduce = CollectiveSpec(
        kind="diag-rreduce",
        key=("dq", k),
        root=diag_owner,
        participants=tuple(
            sorted({diag_owner} | {grid.rank(kr, c) for c in c_cols})
        ),
        nbytes=nb_diag,
    )

    return UnsymSupernodePlan(
        k=k, width=s, blocks=blocks, diag_owner=diag_owner,
        diag_bcast=diag_bcast, diag_rbcast=diag_rbcast,
        cross_l2u=cross_l2u, cross_u2l=cross_u2l,
        col_bcasts=col_bcasts, row_bcasts=row_bcasts,
        row_reduces=row_reduces, col_ureduces=col_ureduces,
        diag_rreduce=diag_rreduce,
    )


def iter_unsym_plans(
    struct: SupernodalStructure,
    grid: ProcessorGrid,
    *,
    bytes_per_entry: int = BYTES_PER_ENTRY,
) -> Iterator[UnsymSupernodePlan]:
    """Unsymmetric plans for every supernode, ascending index order."""
    for k in range(struct.nsup):
        yield unsym_supernode_plan(
            struct, grid, k, bytes_per_entry=bytes_per_entry
        )
