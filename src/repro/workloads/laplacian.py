"""Grid Laplacian workload generators.

Finite-difference/finite-element style matrices on regular 2-D and 3-D
grids.  These are the *relatively sparse* regime of the paper's test set:
``audikw_1`` (3-D structural FE, 0.009% nonzeros) and ``Flan_1565`` (3-D
hexahedral shell) are modelled by 3-D stencils, whose elimination trees
and fill patterns have the same character (deep trees, O(n^{2/3})-sized
top separators) that drives PSelInv's restricted-collective sizes.

All generators return symmetric positive-definite matrices (shifted
Laplacians) so the no-pivot factorization is safe, with an optional value
RNG to decorrelate numeric content across runs.
"""

from __future__ import annotations

import numpy as np

from ..sparse.matrix import SparseMatrix, from_coo

__all__ = ["grid_laplacian_2d", "grid_laplacian_3d", "random_spd_sparse"]


def grid_laplacian_2d(
    nx: int,
    ny: int,
    *,
    stencil: int = 5,
    shift: float = 1.0,
    rng: np.random.Generator | None = None,
) -> SparseMatrix:
    """SPD 5-point or 9-point Laplacian on an ``nx``-by-``ny`` grid.

    Vertices are numbered row-major (``idx = ix * ny + iy``).  ``shift``
    is added to the diagonal to keep the matrix positive definite;
    ``rng`` (optional) perturbs off-diagonal weights by up to 10% to
    avoid artificially symmetric numerics.
    """
    if stencil not in (5, 9):
        raise ValueError("stencil must be 5 or 9")
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be positive")
    offsets = [(1, 0), (0, 1)]
    if stencil == 9:
        offsets += [(1, 1), (1, -1)]
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    deg = np.zeros(nx * ny)

    def weight() -> float:
        if rng is None:
            return -1.0
        return -1.0 - 0.1 * rng.random()

    for ix in range(nx):
        for iy in range(ny):
            u = ix * ny + iy
            for dx, dy in offsets:
                jx, jy = ix + dx, iy + dy
                if 0 <= jx < nx and 0 <= jy < ny:
                    v = jx * ny + jy
                    w = weight()
                    rows += [u, v]
                    cols += [v, u]
                    vals += [w, w]
                    deg[u] -= w
                    deg[v] -= w
    rows += list(range(nx * ny))
    cols += list(range(nx * ny))
    vals += list(deg + shift)
    return from_coo(nx * ny, rows, cols, vals)


def grid_laplacian_3d(
    nx: int,
    ny: int,
    nz: int,
    *,
    stencil: int = 7,
    shift: float = 1.0,
    rng: np.random.Generator | None = None,
) -> SparseMatrix:
    """SPD 7-point or 27-point Laplacian on an ``nx * ny * nz`` grid.

    The 27-point variant couples all lattice neighbours within a unit
    Chebyshev distance, emulating the denser connectivity of hexahedral
    finite elements (the ``audikw_1`` / ``Flan_1565`` regime).
    """
    if stencil not in (7, 27):
        raise ValueError("stencil must be 7 or 27")
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be positive")
    if stencil == 7:
        offsets = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
    else:
        offsets = [
            (dx, dy, dz)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
            if (dx, dy, dz) > (0, 0, 0)
        ]
    n = nx * ny * nz
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    deg = np.zeros(n)

    def weight() -> float:
        if rng is None:
            return -1.0
        return -1.0 - 0.1 * rng.random()

    def idx(ix: int, iy: int, iz: int) -> int:
        return (ix * ny + iy) * nz + iz

    for ix in range(nx):
        for iy in range(ny):
            for iz in range(nz):
                u = idx(ix, iy, iz)
                for dx, dy, dz in offsets:
                    jx, jy, jz = ix + dx, iy + dy, iz + dz
                    if 0 <= jx < nx and 0 <= jy < ny and 0 <= jz < nz:
                        v = idx(jx, jy, jz)
                        w = weight()
                        rows += [u, v]
                        cols += [v, u]
                        vals += [w, w]
                        deg[u] -= w
                        deg[v] -= w
    rows += list(range(n))
    cols += list(range(n))
    vals += list(deg + shift)
    return from_coo(n, rows, cols, vals)


def random_spd_sparse(
    n: int,
    nnz_per_row: float,
    *,
    rng: np.random.Generator,
) -> SparseMatrix:
    """Random symmetric diagonally dominant matrix (test fodder).

    About ``nnz_per_row`` off-diagonal entries per row, symmetric pattern,
    diagonal set to ``sum |row| + 1`` so factorization never pivots.
    """
    m = int(max(0, round(n * nnz_per_row / 2)))
    i = rng.integers(0, n, m)
    j = rng.integers(0, n, m)
    keep = i != j
    i, j = i[keep], j[keep]
    v = rng.normal(size=len(i))
    rows = np.concatenate([i, j])
    cols = np.concatenate([j, i])
    vals = np.concatenate([v, v])
    dense_deg = np.zeros(n)
    np.add.at(dense_deg, rows, np.abs(vals))
    rows = np.concatenate([rows, np.arange(n)])
    cols = np.concatenate([cols, np.arange(n)])
    vals = np.concatenate([vals, dense_deg + 1.0])
    return from_coo(n, rows, cols, vals)
