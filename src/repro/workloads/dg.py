"""Discontinuous-Galerkin style block Hamiltonians.

The paper's *relatively dense* matrices (``DG_PNF14000``,
``DG_Graphene_32768``, ``DG_Water_12888``, ``LU_C_BN_C_4by2``) are
Kohn-Sham Hamiltonians discretized with an adaptive local basis in a
discontinuous Galerkin framework [Lin et al., JCP 2012]: the domain is cut
into elements, each carrying a dense ``b``-by-``b`` local block, with
dense coupling blocks between geometrically adjacent elements.  The
resulting matrices are orders of magnitude denser than FE stiffness
matrices (0.2% vs 0.009% nonzeros in the paper) and give PSelInv its
communication-volume-bound regime.

:func:`dg_hamiltonian` reproduces exactly that algebraic shape on a 2-D or
3-D element lattice: a block banded matrix whose graph is the element grid
graph tensored with a clique of size ``b``.  Values are symmetric and made
diagonally dominant so the no-pivot factorization applies.
"""

from __future__ import annotations

import numpy as np

from ..sparse.matrix import SparseMatrix, from_coo

__all__ = ["dg_hamiltonian"]


def dg_hamiltonian(
    elems: tuple[int, ...],
    block_size: int,
    *,
    coupling: float = 0.3,
    diagonal_shift: float = 1.0,
    neighbor_hops: int = 1,
    rng: np.random.Generator | None = None,
) -> SparseMatrix:
    """Block Hamiltonian on a 2-D or 3-D element lattice.

    Parameters
    ----------
    elems:
        Element lattice shape, e.g. ``(12, 12)`` or ``(4, 4, 4)``.
    block_size:
        Number of adaptive-local-basis functions per element (the dense
        block dimension ``b``); the paper's DG matrices use tens to
        hundreds.
    coupling:
        Magnitude scale of inter-element blocks relative to the local
        block.
    neighbor_hops:
        Chebyshev radius of element coupling (1 = face/corner neighbours,
        matching DG surface terms; 2 adds next-nearest coupling for even
        denser matrices).
    rng:
        Value generator; defaults to a fixed seed so workloads are
        reproducible.
    """
    if len(elems) not in (2, 3):
        raise ValueError("elems must be a 2- or 3-tuple")
    if block_size < 1:
        raise ValueError("block_size must be positive")
    if rng is None:
        rng = np.random.default_rng(20160523)  # IPDPS'16 date: fixed seed
    dims = elems
    nelem = int(np.prod(dims))
    n = nelem * block_size

    def eidx(coord: tuple[int, ...]) -> int:
        out = 0
        for c, d in zip(coord, dims):
            out = out * d + c
        return out

    # Enumerate element pairs within the coupling radius (each pair once).
    ranges = [range(d) for d in dims]
    hop = neighbor_hops
    offsets = []
    if len(dims) == 2:
        for dx in range(-hop, hop + 1):
            for dy in range(-hop, hop + 1):
                if (dx, dy) > (0, 0):
                    offsets.append((dx, dy))
    else:
        for dx in range(-hop, hop + 1):
            for dy in range(-hop, hop + 1):
                for dz in range(-hop, hop + 1):
                    if (dx, dy, dz) > (0, 0, 0):
                        offsets.append((dx, dy, dz))

    import itertools

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    b = block_size
    li, lj = np.meshgrid(np.arange(b), np.arange(b), indexing="ij")
    li, lj = li.ravel(), lj.ravel()

    for coord in itertools.product(*ranges):
        e = eidx(coord)
        base = e * b
        # Dense symmetric local block.
        local = rng.normal(size=(b, b))
        local = (local + local.T) / 2
        rows.append(base + li)
        cols.append(base + lj)
        vals.append(local.ravel())
        for off in offsets:
            nb = tuple(c + o for c, o in zip(coord, off))
            if all(0 <= c < d for c, d in zip(nb, dims)):
                e2 = eidx(nb)
                base2 = e2 * b
                blk = coupling * rng.normal(size=(b, b))
                rows.append(base + li)
                cols.append(base2 + lj)
                vals.append(blk.ravel())
                rows.append(base2 + lj)
                cols.append(base + li)
                vals.append(blk.ravel())

    r = np.concatenate(rows)
    c = np.concatenate(cols)
    v = np.concatenate(vals)
    mat = from_coo(n, r, c, v)
    # Make diagonally dominant: diag += sum of |row| + shift.
    rowsum = np.zeros(n)
    np.add.at(rowsum, r, np.abs(v))
    diag = from_coo(
        n, np.arange(n), np.arange(n), rowsum + diagonal_shift
    )
    return from_coo(
        n,
        np.concatenate([mat.indices, diag.indices]),
        np.concatenate(
            [np.repeat(np.arange(n), np.diff(mat.indptr)), np.arange(n)]
        ),
        np.concatenate([mat.data, diag.data]),
    )
