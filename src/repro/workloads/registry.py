"""Named workload registry mirroring the paper's test-matrix table.

Each entry maps one of the paper's six evaluation matrices to a synthetic
proxy generator at three scales:

* ``tiny``   -- unit-test scale (hundreds of columns, numeric runs OK)
* ``small``  -- default benchmark scale (a few thousand columns)
* ``medium`` -- opt-in scale for slower, higher-fidelity studies

The paper-reported ``n`` / ``nnz(A)`` / ``nnz(LU)`` are recorded verbatim
so EXPERIMENTS.md can print paper-vs-proxy side by side.  Proxies preserve
the property that actually matters for the communication study: the
*density regime* (relatively dense DG Hamiltonians vs relatively sparse
3-D FE matrices) and the resulting elimination-tree shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..sparse.matrix import SparseMatrix
from .dg import dg_hamiltonian
from .laplacian import grid_laplacian_2d, grid_laplacian_3d

__all__ = ["Workload", "WORKLOADS", "make_workload", "workload_names"]


@dataclass(frozen=True)
class Workload:
    """A named workload: proxy generators plus the paper's true stats."""

    name: str
    description: str
    regime: str  # "dense" (DG) or "sparse" (FE)
    paper_n: int
    paper_nnz_a: int
    paper_nnz_lu: int
    generators: dict[str, Callable[[np.random.Generator], SparseMatrix]]

    def make(
        self, scale: str = "small", *, rng: np.random.Generator | None = None
    ) -> SparseMatrix:
        if scale not in self.generators:
            raise ValueError(
                f"unknown scale {scale!r} for workload {self.name!r}; "
                f"expected one of {sorted(self.generators)}"
            )
        if rng is None:
            rng = np.random.default_rng(0xC0FFEE)
        return self.generators[scale](rng)


def _dg(elems: tuple[int, ...], b: int, hops: int = 1):
    def gen(rng: np.random.Generator) -> SparseMatrix:
        return dg_hamiltonian(elems, b, neighbor_hops=hops, rng=rng)

    return gen


def _lap3(nx: int, ny: int, nz: int, stencil: int = 7):
    def gen(rng: np.random.Generator) -> SparseMatrix:
        return grid_laplacian_3d(nx, ny, nz, stencil=stencil, rng=rng)

    return gen


def _lap2(nx: int, ny: int, stencil: int = 5):
    def gen(rng: np.random.Generator) -> SparseMatrix:
        return grid_laplacian_2d(nx, ny, stencil=stencil, rng=rng)

    return gen


WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in [
        Workload(
            name="DG_PNF14000",
            description=(
                "2D phosphorene nanoflake Kohn-Sham Hamiltonian, adaptive "
                "local basis DG discretization; relatively dense (0.2% nnz)"
            ),
            regime="dense",
            paper_n=512_000,
            paper_nnz_a=550_400_000,
            paper_nnz_lu=3_720_894_400,
            generators={
                "tiny": _dg((4, 4), 10),
                "small": _dg((10, 10), 24),
                "medium": _dg((16, 16), 40),
            },
        ),
        Workload(
            name="DG_Graphene_32768",
            description=(
                "2D graphene sheet DG Hamiltonian, the paper's largest "
                "matrix (n = 1.3M)"
            ),
            regime="dense",
            paper_n=1_310_720,
            paper_nnz_a=955_929_600,
            paper_nnz_lu=10_945_891_840,
            generators={
                "tiny": _dg((5, 4), 10),
                "small": _dg((12, 12), 24),
                "medium": _dg((20, 20), 40),
            },
        ),
        Workload(
            name="DG_Water_12888",
            description="3D bulk water DG Hamiltonian (small, dense blocks)",
            regime="dense",
            paper_n=94_208,
            paper_nnz_a=32_706_432,
            paper_nnz_lu=1_370_857_094,
            generators={
                "tiny": _dg((3, 3, 2), 8),
                "small": _dg((5, 5, 4), 16),
                "medium": _dg((7, 7, 5), 24),
            },
        ),
        Workload(
            name="LU_C_BN_C_4by2",
            description="C/BN heterostructure DG Hamiltonian",
            regime="dense",
            paper_n=263_328,
            paper_nnz_a=190_859_344,
            paper_nnz_lu=3_619_529_750,
            generators={
                "tiny": _dg((8, 2), 10),
                "small": _dg((16, 6), 24),
                "medium": _dg((24, 8), 40),
            },
        ),
        Workload(
            name="audikw_1",
            description=(
                "3D structural FE matrix (UF collection); relatively sparse "
                "(0.009% nnz) -- proxied by a 3D 27-point lattice"
            ),
            regime="sparse",
            paper_n=943_695,
            paper_nnz_a=77_651_847,
            paper_nnz_lu=2_577_878_569,
            generators={
                "tiny": _lap3(7, 7, 6, stencil=27),
                "small": _lap3(14, 14, 12, stencil=27),
                "medium": _lap3(22, 22, 20, stencil=27),
            },
        ),
        Workload(
            name="Flan_1565",
            description=(
                "3D hexahedral shell FE matrix (UF collection) -- proxied "
                "by an anisotropic 3D 27-point lattice"
            ),
            regime="sparse",
            paper_n=1_564_794,
            paper_nnz_a=117_406_044,
            paper_nnz_lu=3_460_619_508,
            generators={
                "tiny": _lap3(10, 10, 3, stencil=27),
                "small": _lap3(24, 24, 5, stencil=27),
                "medium": _lap3(40, 40, 7, stencil=27),
            },
        ),
    ]
}


def workload_names() -> list[str]:
    """Names in the paper's Table II order."""
    return [
        "DG_Graphene_32768",
        "DG_PNF14000",
        "DG_Water_12888",
        "LU_C_BN_C_4by2",
        "audikw_1",
        "Flan_1565",
    ]


def make_workload(
    name: str, scale: str = "small", *, seed: int = 0xC0FFEE
) -> SparseMatrix:
    """Instantiate a named workload proxy at the given scale."""
    try:
        w = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}"
        ) from None
    return w.make(scale, rng=np.random.default_rng(seed))
