"""Synthetic workload generators standing in for the paper's test matrices."""

from .dg import dg_hamiltonian
from .laplacian import grid_laplacian_2d, grid_laplacian_3d, random_spd_sparse
from .registry import WORKLOADS, Workload, make_workload, workload_names

__all__ = [
    "WORKLOADS",
    "Workload",
    "dg_hamiltonian",
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "make_workload",
    "random_spd_sparse",
    "workload_names",
]
