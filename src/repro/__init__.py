"""repro -- reproduction of "Enhancing Scalability and Load Balancing of
Parallel Selected Inversion via Tree-Based Asynchronous Communication"
(Jacquelin, Yang, Lin, Wichmann -- IPDPS 2016).

Public API tour
---------------
Sparse substrate (SuperLU_DIST stand-in)::

    from repro.sparse import analyze, selinv_sequential

Workload proxies for the paper's six test matrices::

    from repro.workloads import make_workload

Restricted-collective trees (the contribution)::

    from repro.comm import flat_tree, binary_tree, shifted_binary_tree

Parallel selected inversion on the simulated machine::

    from repro.core import ProcessorGrid, run_pselinv, communication_volumes

Communication-correctness static analysis (``repro check``)::

    from repro.check import run_checks, verify_plans

Parallel experiment sweeps (``REPRO_JOBS`` workers, bit-identical to
serial execution)::

    from repro.runner import ExperimentSpec, run_experiments
"""

from . import analysis, check, comm, core, runner, simulate, sparse, workloads

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "check",
    "comm",
    "core",
    "runner",
    "simulate",
    "sparse",
    "workloads",
    "__version__",
]
