"""Volume-distribution histograms (paper Fig. 4).

Fig. 4 plots, for each tree scheme, the distribution of per-rank
Col-Bcast volume: Flat-Tree is wide with a heavy right tail (some ranks
send more than twice the average), Binary-Tree is bimodal (leaf-only
ranks near zero, hot internal nodes far right), and the Shifted
Binary-Tree collapses into a tight peak.  We produce the histograms as
arrays, an ASCII bar rendering, and tail metrics for the tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["volume_histogram", "render_histogram", "tail_fraction"]


def volume_histogram(
    per_rank_bytes: np.ndarray,
    *,
    bins: int = 20,
    range_: tuple[float, float] | None = None,
    unit: float = 1e6,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of per-rank volume in ``unit`` bytes (default MB).

    Returns ``(counts, edges)`` a la :func:`numpy.histogram`.  Pass a
    shared ``range_`` to compare schemes on the same axis as Fig. 4 does.
    """
    v = np.asarray(per_rank_bytes, dtype=float) / unit
    return np.histogram(v, bins=bins, range=range_)


def render_histogram(
    counts: np.ndarray,
    edges: np.ndarray,
    *,
    width: int = 50,
    label: str = "MB",
) -> str:
    """ASCII bar chart of a histogram (one line per bin)."""
    counts = np.asarray(counts)
    top = counts.max() if counts.size and counts.max() > 0 else 1
    lines = []
    for i, c in enumerate(counts):
        bar = "#" * int(round(width * c / top))
        lines.append(f"{edges[i]:10.2f}-{edges[i+1]:10.2f} {label} |{bar} {c}")
    return "\n".join(lines)


def tail_fraction(
    per_rank_bytes: np.ndarray, *, factor: float = 2.0
) -> float:
    """Fraction of ranks whose volume exceeds ``factor`` x the mean.

    The paper observes that under Flat-Tree "some processors send more
    than twice the average volume"; under Shifted Binary-Tree this
    fraction drops to zero.
    """
    v = np.asarray(per_rank_bytes, dtype=float)
    mu = v.mean()
    if mu == 0:
        return 0.0
    return float((v > factor * mu).mean())
