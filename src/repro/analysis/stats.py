"""Summary statistics and table rendering for the experiment harness.

The paper reports communication volumes as (min, max, median, std-dev)
tables and timings as mean +/- std over repeated runs.  This module turns
per-rank arrays and per-run samples into those summaries and renders them
as aligned plain-text tables (the benchmark scripts print them next to
the paper's numbers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["summary_row", "Table", "timing_summary"]


def summary_row(per_rank_bytes: np.ndarray, *, unit: float = 1e6) -> dict[str, float]:
    """Min/max/median/std of a per-rank byte vector, in ``unit`` bytes
    (default MB) -- the format of the paper's Tables I and II."""
    v = np.asarray(per_rank_bytes, dtype=float) / unit
    return {
        "min": float(v.min()),
        "max": float(v.max()),
        "median": float(np.median(v)),
        "std": float(v.std(ddof=0)),
        "mean": float(v.mean()),
    }


def timing_summary(samples) -> dict[str, float]:
    """Mean/std/min/max over repeated runs (the paper's error bars)."""
    v = np.asarray(list(samples), dtype=float)
    if v.size == 0:
        raise ValueError("no samples")
    return {
        "mean": float(v.mean()),
        "std": float(v.std(ddof=0)),
        "min": float(v.min()),
        "max": float(v.max()),
        "runs": int(v.size),
    }


@dataclass
class Table:
    """A minimal aligned-text table builder."""

    title: str
    columns: list[str]

    def __post_init__(self) -> None:
        self._rows: list[list[str]] = []

    def add(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self._rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000 or abs(cell) < 0.001:
                return f"{cell:.3g}"
            return f"{cell:.3f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self._rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
