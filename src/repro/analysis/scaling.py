"""Strong-scaling series containers and speedup analysis (paper Fig. 8).

Fig. 8 plots PSelInv wall-clock time against processor count for each
communication scheme (plus SuperLU_DIST as a factorization reference),
with error bars over 6 repeated runs.  The claims we reproduce:

* Binary-Tree beats Flat-Tree by a growing factor (avg 2.4x, up to 6.15x
  at 12,100 procs for DG_PNF14000);
* Shifted Binary-Tree adds more (avg 3.0x, 4.5x beyond 1,024 procs,
  8x max);
* the run-to-run standard deviation shrinks (1.72x for Binary, >4x for
  Shifted at scale).

:class:`ScalingSeries` holds repeated-run samples per processor count;
:func:`speedup_table` compares two series the way the paper quotes
factors (ratios of mean times).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .stats import timing_summary

__all__ = ["ScalingSeries", "speedup_table", "modeled_superlu_time"]


@dataclass
class ScalingSeries:
    """Timing samples of one scheme across processor counts."""

    label: str
    samples: dict[int, list[float]] = field(default_factory=dict)

    def add(self, nprocs: int, seconds: float) -> None:
        self.samples.setdefault(int(nprocs), []).append(float(seconds))

    def procs(self) -> list[int]:
        return sorted(self.samples)

    def mean(self, nprocs: int) -> float:
        return timing_summary(self.samples[nprocs])["mean"]

    def std(self, nprocs: int) -> float:
        return timing_summary(self.samples[nprocs])["std"]

    def summary(self) -> dict[int, dict[str, float]]:
        return {p: timing_summary(v) for p, v in sorted(self.samples.items())}


def speedup_table(
    baseline: ScalingSeries, improved: ScalingSeries
) -> dict[int, float]:
    """Mean-time ratio baseline/improved at each shared processor count
    (the paper's "speedup factor ... ratio between average values")."""
    out: dict[int, float] = {}
    for p in baseline.procs():
        if p in improved.samples:
            out[p] = baseline.mean(p) / improved.mean(p)
    return out


def modeled_superlu_time(
    factor_flops: float,
    nnz_l: int,
    nprocs: int,
    *,
    flop_rate: float = 5.0e9,
    bandwidth: float = 6.0e9,
    latency: float = 1.5e-6,
    nsup: int = 1000,
) -> float:
    """Analytic SuperLU_DIST-style strong-scaling reference curve.

    The paper plots SuperLU_DIST's factorization time alongside PSelInv as
    a scaling reference (it is a preprocessing step, run on the real
    machine).  We do not simulate the factorization pipeline; instead we
    use the standard 2D-distributed dense-panel model: perfectly
    parallelized flops plus a panel-communication term that scales like
    ``nnz(L)/sqrt(P)`` and a latency term ``~ nsup * log(P)``.
    Documented as a *modelled* curve in EXPERIMENTS.md.
    """
    p = max(1, int(nprocs))
    t_flops = factor_flops / (p * flop_rate)
    t_bw = 8.0 * nnz_l / np.sqrt(p) / bandwidth
    t_lat = nsup * np.log2(max(p, 2)) * latency
    return float(t_flops + t_bw + t_lat)
