"""Reporting: tables, heat maps, histograms, scaling series."""

from .concurrency import (
    concurrency_profile,
    critical_path,
    pipeline_depth_estimate,
    supernode_flops,
)
from .heatmap import (
    diagonal_concentration,
    message_count_heatmap,
    render_ascii,
    stripe_score,
    uniformity,
)
from .histogram import render_histogram, tail_fraction, volume_histogram
from .scaling import ScalingSeries, modeled_superlu_time, speedup_table
from .stats import Table, summary_row, timing_summary

__all__ = [
    "ScalingSeries",
    "concurrency_profile",
    "critical_path",
    "pipeline_depth_estimate",
    "supernode_flops",
    "Table",
    "diagonal_concentration",
    "message_count_heatmap",
    "modeled_superlu_time",
    "render_ascii",
    "render_histogram",
    "speedup_table",
    "stripe_score",
    "summary_row",
    "tail_fraction",
    "timing_summary",
    "uniformity",
    "volume_histogram",
]
