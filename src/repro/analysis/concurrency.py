"""Task-concurrency analysis of the supernodal elimination tree.

Paper §II-B: loop iterates of the selected inversion can run
simultaneously when supernodes lie on disjoint critical paths of the
elimination tree and their processor sets don't collide.  This module
quantifies that structural parallelism:

* :func:`concurrency_profile` -- how many supernodes are available at
  each level of the supernodal tree, the width/depth of the task DAG;
* :func:`critical_path` -- the longest weighted root-to-leaf chain
  (weights: per-supernode selected-inversion flops), i.e. the span of
  the computation; with total work this gives the classic work/span
  bound on achievable speedup;
* :func:`pipeline_depth_estimate` -- how deep the descending-order
  window must be to keep P ranks busy.
"""

from __future__ import annotations

import numpy as np

from ..sparse.supernodes import SupernodalStructure

__all__ = [
    "concurrency_profile",
    "critical_path",
    "pipeline_depth_estimate",
    "supernode_flops",
]


def supernode_flops(struct: SupernodalStructure, k: int) -> float:
    """Selected-inversion work of one supernode (GEMM-dominated model)."""
    s = struct.width(k)
    m = len(struct.rows_below[k])
    return 2.0 * m * m * s + 4.0 * s * s * m + float(s) ** 3


def concurrency_profile(struct: SupernodalStructure) -> dict[str, object]:
    """Width/depth statistics of the supernodal task DAG.

    Returns the per-level supernode counts (level = distance from the
    root(s), the order selected inversion processes them), the maximum
    and mean width, and the depth.
    """
    nsup = struct.nsup
    level = np.zeros(nsup, dtype=np.int64)
    for k in range(nsup - 1, -1, -1):
        p = struct.sparent[k]
        if p >= 0:
            level[k] = level[p] + 1
    depth = int(level.max()) + 1 if nsup else 0
    widths = np.bincount(level, minlength=depth)
    return {
        "nsup": nsup,
        "depth": depth,
        "widths": widths,
        "max_width": int(widths.max()) if nsup else 0,
        "mean_width": float(widths.mean()) if nsup else 0.0,
    }


def critical_path(struct: SupernodalStructure) -> dict[str, float]:
    """Work/span analysis with the flop model as task weights.

    ``span`` is the heaviest chain from any supernode up through its
    ancestors; ``work`` the total; ``max_speedup = work / span`` bounds
    the strong scaling of *any* schedule of this DAG -- the structural
    ceiling the paper's communication improvements move PSelInv toward.
    """
    nsup = struct.nsup
    flops = np.array([supernode_flops(struct, k) for k in range(nsup)])
    chain = flops.copy()
    # Descending processing order: a supernode depends on its ancestors,
    # so chain(k) = flops(k) + chain(parent(k)).
    for k in range(nsup - 1, -1, -1):
        p = struct.sparent[k]
        if p >= 0:
            chain[k] += chain[p]
    work = float(flops.sum())
    span = float(chain.max()) if nsup else 0.0
    return {
        "work": work,
        "span": span,
        "max_speedup": work / span if span else 1.0,
    }


def pipeline_depth_estimate(
    struct: SupernodalStructure, nranks: int
) -> dict[str, float]:
    """How much lookahead the descending pipeline needs for P ranks.

    A window of W outstanding supernodes exposes roughly the W cheapest
    independent task sets; we report the smallest W whose cumulative
    task count (GEMMs of the W largest supernodes) reaches ``nranks``,
    plus the average GEMM count per supernode.
    """
    gemms = np.array(
        [len(struct.block_rows[k]) ** 2 for k in range(struct.nsup)]
    )
    order = np.sort(gemms)[::-1]
    cum = np.cumsum(order)
    idx = int(np.searchsorted(cum, nranks)) + 1
    return {
        "suggested_window": float(min(idx, struct.nsup)),
        "mean_gemms_per_supernode": float(gemms.mean()) if struct.nsup else 0.0,
        "total_gemms": float(gemms.sum()),
    }
