"""Communication-volume heat maps (paper Figs. 5, 6, 7).

The paper visualizes per-rank communication volume on the (Pr, Pc) grid:
Flat-Tree concentrates volume near the grid diagonal, Binary-Tree shows
regular stripes (the repeatedly-chosen internal nodes), and the Shifted
Binary-Tree map is uniformly "cool".  We produce the same maps as arrays
plus an ASCII rendering for terminal benchmarks, and quantitative
signatures (diagonal concentration, stripe score, uniformity) that tests
can assert on instead of eyeballing colours.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "render_ascii",
    "diagonal_concentration",
    "stripe_score",
    "uniformity",
    "message_count_heatmap",
]

_SHADES = " .:-=+*#%@"


def message_count_heatmap(grid, counts: np.ndarray) -> np.ndarray:
    """Reshape per-rank *message counts* into the (pr, pc) grid layout.

    Counts are cardinalities, not byte volumes: a float array here means
    an upstream tally accumulated counts in floating point (the historic
    ``CommStats._messages_sent`` bug), so the dtype is asserted rather
    than silently cast.
    """
    counts = np.asarray(counts)
    if not np.issubdtype(counts.dtype, np.integer):
        raise TypeError(
            f"message counts must have an integer dtype, got {counts.dtype} "
            "-- byte volumes belong in ProcessorGrid.volume_heatmap"
        )
    return grid.volume_heatmap(counts)


def render_ascii(hm: np.ndarray, *, vmax: float | None = None) -> str:
    """Render a heat map as ASCII art (darker character = more volume).

    ``vmax`` pins the colour scale so two maps can share it, as the paper
    does between Figs. 5(a) and 5(c).
    """
    hm = np.asarray(hm, dtype=float)
    top = vmax if vmax is not None else (hm.max() if hm.size else 1.0)
    if top <= 0:
        top = 1.0
    lines = []
    for row in hm:
        chars = []
        for v in row:
            level = int(min(v / top, 1.0) * (len(_SHADES) - 1))
            chars.append(_SHADES[level])
        lines.append("".join(chars))
    return "\n".join(lines)


def diagonal_concentration(hm: np.ndarray, *, band: int = 1) -> float:
    """Mean volume within ``band`` of the grid diagonal over mean outside.

    The Flat-Tree Col-Bcast map (Fig. 5(a)) has this ratio well above 1:
    roots of the broadcasts are owners of ``U(K, I)`` whose grid
    coordinates ``(K mod Pr, I mod Pc)`` cluster near the diagonal because
    the heavy blocks have ``I`` close to ``K``.
    """
    hm = np.asarray(hm, dtype=float)
    pr, pc = hm.shape
    ii, jj = np.meshgrid(np.arange(pr), np.arange(pc), indexing="ij")
    # Diagonal of a (possibly rectangular) grid: scaled positions, with
    # cyclic distance because the block-cyclic map wraps around.
    pos_i = ii / pr
    pos_j = jj / pc
    d = np.abs(pos_i - pos_j)
    d = np.minimum(d, 1.0 - d)
    on = d <= band / max(pr, pc)
    if on.all() or not on.any():
        return 1.0
    denom = hm[~on].mean()
    if denom == 0:
        return np.inf if hm[on].mean() > 0 else 1.0
    return float(hm[on].mean() / denom)


def stripe_score(hm: np.ndarray, axis: int = 0) -> float:
    """Regular-stripe signature of the Binary-Tree map (Fig. 5(b)).

    Measures how much of the map's variance is explained by its
    per-row (``axis=0``) or per-column (``axis=1``) means: perfectly
    striped maps score 1, uniform or unstructured maps score ~0.
    Column broadcasts travel along grid columns, so their forwarding hot
    spots form horizontal stripes (constant grid row) -- score with
    ``axis=0``.
    """
    hm = np.asarray(hm, dtype=float)
    total_var = hm.var()
    if total_var == 0:
        return 0.0
    line_means = hm.mean(axis=1 - axis)
    shape = (-1, 1) if axis == 0 else (1, -1)
    explained = np.broadcast_to(line_means.reshape(shape), hm.shape)
    return float(explained.var() / total_var)


def uniformity(hm: np.ndarray) -> float:
    """Coefficient of variation (std/mean); lower is more uniform.

    The Shifted Binary-Tree map should score well below the Flat-Tree
    map on the same data.
    """
    hm = np.asarray(hm, dtype=float)
    mu = hm.mean()
    if mu == 0:
        return 0.0
    return float(hm.std() / mu)
