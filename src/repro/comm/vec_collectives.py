"""Compiled collective state machines for the vectorized engine.

The batch-engine collectives (:class:`~repro.comm.collectives.ArrayBroadcast`
/ :class:`~repro.comm.collectives.ArrayReduce`) already route deliveries
through direct callbacks, but they still pay for per-collective closures in
the protocol layer, per-message metrics tests, dict-based contributor
lookups, and full SoA message records for payload-less symbolic traffic.

The classes here are their ``engine="vectorized"`` counterparts, compiled
against a :class:`~repro.comm.trees.CompiledTree`:

* positions, adjacency and child counts come straight from the per-shape
  memos (shared across every tree of the same family and size);
* forwarded messages travel on the machine's *point* route
  (:meth:`VecMachine.send_pt`) -- a 5-tuple record instead of an 8-column
  SoA slot, since symbolic collective traffic never carries a payload;
* completion callbacks receive a caller-supplied ``ctx`` object, so the
  protocol layer binds no lambdas per collective;
* reductions are driven by contributor *positions* precomputed by the
  protocol (:meth:`VecReduce.contribute_pos`), eliminating the per-call
  rank -> position dict lookup;
* wide fan-outs (flat/hybrid trees) are emitted as one column batch via
  :meth:`VecMachine.send_batch`, which vectorizes the per-pair network
  arithmetic.

Send order, finish order, and degenerate-tree behavior replicate the
array classes exactly (children forward in ascending position; zero-input
positions finish at construction in ascending position), which is what
keeps vectorized runs bit-identical to the legacy and batch engines.
Symbolic mode only: payloads are always ``None`` and no value bookkeeping
exists (numeric runs fall back to the array collectives).
"""

from __future__ import annotations

from typing import Any, Callable

from .trees import CompiledTree

__all__ = ["VecBroadcast", "VecReduce", "BATCH_FANOUT_MIN"]

#: Fan-outs at or above this go through the machine's column-batch send
#: (numpy injection chain + per-pair gather); below it, the scalar
#: per-child send is cheaper than the array round trip.
BATCH_FANOUT_MIN = 6


class VecBroadcast:
    """Restricted broadcast over a :class:`CompiledTree` (symbolic)."""

    __slots__ = (
        "machine",
        "tree",
        "tag",
        "nbytes",
        "cid",
        "on_delivery",
        "ctx",
        "_started",
        "_ranks",
        "_indptr",
        "_childpos",
        "_om",
        "_send",
    )

    def __init__(
        self,
        machine,
        tree: CompiledTree,
        tag: Any,
        nbytes: int,
        cid: int,
        on_delivery: Callable[[Any, int, Any], None],
        ctx: Any,
    ) -> None:
        self.machine = machine
        self.tree = tree
        self.tag = tag
        self.nbytes = int(nbytes)
        self.cid = cid
        self.on_delivery = on_delivery
        self.ctx = ctx
        self._started = False
        self._ranks = tree.ranks
        self._indptr = tree.indptr
        self._childpos = tree.childpos
        self._om = self.on_message
        # The machine's send closures exist before any collective does,
        # so they can be captured once per collective instead of looked
        # up per forwarded message.
        self._send = machine.send_pt

    def start(self, payload: Any = None) -> None:
        """Called (once) on the root when its data is ready."""
        if self._started:
            raise RuntimeError(f"broadcast {self.tag!r} started twice")
        self._started = True
        self.on_message(self._ranks[0], payload, 0)

    def on_message(self, dst: int, payload: Any, aux: int) -> None:
        """Delivery callback: a tree parent forwarded us the payload."""
        indptr = self._indptr
        lo = indptr[aux]
        hi = indptr[aux + 1]
        if hi > lo:
            ranks = self._ranks
            childpos = self._childpos
            if hi - lo >= BATCH_FANOUT_MIN:
                auxs = childpos[lo:hi]
                self.machine.send_batch(
                    dst,
                    [ranks[c] for c in auxs],
                    self.tag,
                    self.nbytes,
                    self.cid,
                    self._om,
                    auxs,
                )
            else:
                send = self._send
                tag = self.tag
                nbytes = self.nbytes
                cid = self.cid
                om = self._om
                for ci in range(lo, hi):
                    child = childpos[ci]
                    send(dst, ranks[child], tag, nbytes, cid, om, child)
        self.on_delivery(self.ctx, dst, payload)


class VecReduce:
    """Restricted reduction over a :class:`CompiledTree` (symbolic).

    The protocol layer supplies contributor *positions* up front and
    drives progress through :meth:`contribute_pos`; per-position pending
    counters start from the shared child-count list.  Zero-input
    positions (degenerate trees) finish at construction in ascending
    position order, exactly like the array classes.
    """

    __slots__ = (
        "machine",
        "tree",
        "tag",
        "nbytes",
        "cid",
        "on_complete",
        "ctx",
        "_ranks",
        "_parents",
        "_pending",
        "_om",
        "_send",
    )

    def __init__(
        self,
        machine,
        tree: CompiledTree,
        tag: Any,
        nbytes: int,
        cid: int,
        contributor_pos,
        on_complete: Callable[[Any, Any], None],
        ctx: Any,
    ) -> None:
        self.machine = machine
        self.tree = tree
        self.tag = tag
        self.nbytes = int(nbytes)
        self.cid = cid
        self.on_complete = on_complete
        self.ctx = ctx
        self._ranks = tree.ranks
        self._parents = tree.parentpos
        pending = list(tree.child_counts)
        for p in contributor_pos:
            pending[p] += 1
        self._pending = pending
        self._om = self.on_message
        self._send = machine.send_pt
        for i, expected in enumerate(pending):
            if expected == 0:
                # A pure relay with no children and no contribution can
                # only happen for a degenerate tree; fire immediately.
                self._finish(i)

    def contribute_pos(self, pos: int) -> None:
        """Provide the contribution of the rank at ``pos`` (exactly once)."""
        pending = self._pending
        n = pending[pos] - 1
        pending[pos] = n
        if n == 0:
            self._finish(pos)

    def on_message(self, dst: int, payload: Any, aux: int) -> None:
        """Delivery callback: a child sent us its partial result."""
        pending = self._pending
        n = pending[aux] - 1
        pending[aux] = n
        if n == 0:
            self._finish(aux)

    def _finish(self, pos: int) -> None:
        if pos:
            parent = self._parents[pos]
            ranks = self._ranks
            self._send(
                ranks[pos],
                ranks[parent],
                self.tag,
                self.nbytes,
                self.cid,
                self._om,
                parent,
            )
        else:
            self.on_complete(self.ctx, None)
