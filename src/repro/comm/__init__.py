"""Restricted collective communication (the paper's contribution layer)."""

from .collectives import TreeBroadcast, TreeReduce
from .trees import (
    TREE_SCHEMES,
    CommTree,
    binary_tree,
    binomial_tree,
    build_tree,
    derive_seed,
    flat_tree,
    hybrid_tree,
    random_perm_tree,
    shifted_binary_tree,
)

__all__ = [
    "TREE_SCHEMES",
    "CommTree",
    "TreeBroadcast",
    "TreeReduce",
    "binary_tree",
    "binomial_tree",
    "build_tree",
    "derive_seed",
    "flat_tree",
    "hybrid_tree",
    "random_perm_tree",
    "shifted_binary_tree",
]
