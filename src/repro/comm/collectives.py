"""Asynchronous restricted collectives over point-to-point messages.

State machines that move data along a :class:`~repro.comm.trees.CommTree`
using only the machine's non-blocking sends -- the software equivalent of
building ``MPI_Bcast`` / ``MPI_Reduce`` out of ``MPI_Isend`` /
``MPI_Irecv`` as the paper does.  Any number of instances can be in
flight simultaneously; progress is purely message-driven, which is what
lets PSelInv pipeline supernodes without barriers.

In numeric mode payloads are ndarrays and reductions really sum; in
symbolic (timing/volume-only) mode payloads are ``None`` and reductions
just count.
"""

from __future__ import annotations

from typing import Any, Callable

from ..simulate.machine import Machine, Message
from .trees import CommTree, TreeArrays

__all__ = ["TreeBroadcast", "TreeReduce", "ArrayBroadcast", "ArrayReduce"]


def _require_hashable_tag(tag: Any) -> Any:
    """Fail fast on unhashable tags.

    Tags key the machine's channel bookkeeping and the protocol layers'
    collective registries; an unhashable tag would otherwise surface as
    an opaque ``dict`` TypeError deep inside :class:`Machine` on the
    first forwarded message.
    """
    try:
        hash(tag)
    except TypeError:
        raise TypeError(
            f"collective tag must be hashable, got {type(tag).__name__}: "
            f"{tag!r}"
        ) from None
    return tag


class TreeBroadcast:
    """One restricted broadcast: root pushes, internal nodes forward.

    ``on_delivery(rank, payload)`` fires on every participant (including
    the root) once the data is locally available.  Forwarding costs the
    forwarder NIC time via :meth:`Machine.post_send`; the receive-side
    overhead is charged by the machine itself.
    """

    def __init__(
        self,
        machine: Machine,
        tree: CommTree,
        tag: Any,
        nbytes: int,
        category: str,
        on_delivery: Callable[[int, Any], None],
    ) -> None:
        self.machine = machine
        self.tree = tree
        self.tag = _require_hashable_tag(tag)
        self.nbytes = int(nbytes)
        self.category = category
        self.on_delivery = on_delivery
        self._started = False
        # Telemetry instruments, cached once per collective (the machine
        # carries the registry; None disables at one attribute test).
        metrics = machine.metrics
        if metrics is not None:
            metrics.histogram("coll.depth", op="bcast", category=category).observe(
                tree.depth()
            )
            self._fanout = metrics.histogram(
                "coll.fanout", op="bcast", category=category
            )
            self._forwards = metrics.counter(
                "coll.forwarded_messages", op="bcast", category=category
            )
            self._forward_bytes = metrics.counter(
                "coll.forwarded_bytes", op="bcast", category=category
            )
        else:
            self._fanout = None
            self._forwards = None
            self._forward_bytes = None

    def start(self, payload: Any = None) -> None:
        """Called (once) on the root when its data is ready."""
        if self._started:
            raise RuntimeError(f"broadcast {self.tag!r} started twice")
        self._started = True
        self._forward(self.tree.root, payload)

    def on_message(self, msg: Message) -> None:
        """Handler entry point: a tree parent forwarded us the payload."""
        self._forward(msg.dst, msg.payload)

    def _forward(self, rank: int, payload: Any) -> None:
        children = self.tree.children.get(rank, ())
        for child in children:
            self.machine.post_send(
                rank, child, self.tag, self.nbytes, self.category, payload
            )
        if self._fanout is not None:
            self._fanout.observe(len(children))
            if children:
                self._forwards.inc(len(children))
                self._forward_bytes.inc(len(children) * self.nbytes)
        self.on_delivery(rank, payload)


class TreeReduce:
    """One restricted reduction: contributions combine leaves -> root.

    Every rank in ``contributors`` must eventually call
    :meth:`contribute` exactly once; tree-internal ranks combine child
    messages with their own contribution (if any) and send the partial
    result to their parent.  ``on_complete(value)`` fires on the root.

    ``combine`` defaults to ``+`` for ndarray payloads and is skipped for
    ``None`` payloads (symbolic mode).
    """

    def __init__(
        self,
        machine: Machine,
        tree: CommTree,
        tag: Any,
        nbytes: int,
        category: str,
        contributors: set[int],
        on_complete: Callable[[Any], None],
        combine: Callable[[Any, Any], Any] | None = None,
    ) -> None:
        self.machine = machine
        self.tree = tree
        self.tag = _require_hashable_tag(tag)
        self.nbytes = int(nbytes)
        self.category = category
        self.contributors = set(int(r) for r in contributors)
        self.on_complete = on_complete
        self.combine = combine
        metrics = machine.metrics
        if metrics is not None:
            metrics.histogram("coll.depth", op="reduce", category=category).observe(
                tree.depth()
            )
            self._fanin = metrics.histogram(
                "coll.fanout", op="reduce", category=category
            )
            self._forwards = metrics.counter(
                "coll.forwarded_messages", op="reduce", category=category
            )
            self._forward_bytes = metrics.counter(
                "coll.forwarded_bytes", op="reduce", category=category
            )
        else:
            self._fanin = None
            self._forwards = None
            self._forward_bytes = None
        unknown = self.contributors - set(tree.ranks())
        if unknown:
            raise ValueError(
                f"reduce {self.tag!r}: contributors {sorted(unknown)} "
                "not in the tree"
            )
        # Per-rank progress: how many inputs are still outstanding and the
        # running partial value.
        self._pending: dict[int, int] = {}
        self._value: dict[int, Any] = {}
        self._done: dict[int, bool] = {}
        for r in tree.ranks():
            expected = tree.child_count(r) + (1 if r in self.contributors else 0)
            self._pending[r] = expected
            self._value[r] = None
            self._done[r] = False
            if expected == 0:
                # A pure relay with no children and no contribution can
                # only happen for a degenerate tree; fire immediately.
                self._finish(r)

    def contribute(self, rank: int, value: Any = None) -> None:
        """Provide ``rank``'s local contribution (exactly once)."""
        if rank not in self.contributors:
            raise ValueError(
                f"reduce {self.tag!r}: rank {rank} is not a contributor"
            )
        self._absorb(rank, value)

    def on_message(self, msg: Message) -> None:
        """Handler entry point: a child sent us its partial result."""
        self._absorb(msg.dst, msg.payload)

    def _absorb(self, rank: int, value: Any) -> None:
        if self._done[rank]:
            raise RuntimeError(
                f"reduce {self.tag!r}: input after completion at rank {rank}"
            )
        cur = self._value[rank]
        if cur is None:
            self._value[rank] = value
        elif value is not None:
            fn = self.combine if self.combine is not None else (lambda a, b: a + b)
            self._value[rank] = fn(cur, value)
        self._pending[rank] -= 1
        if self._pending[rank] == 0:
            self._finish(rank)

    def _finish(self, rank: int) -> None:
        self._done[rank] = True
        if self._fanin is not None:
            # Fan-in degree: messages this rank absorbed from children.
            self._fanin.observe(self.tree.child_count(rank))
        if rank == self.tree.root:
            self.on_complete(self._value[rank])
        else:
            if self._forwards is not None:
                self._forwards.inc()
                self._forward_bytes.inc(self.nbytes)
            self.machine.post_send(
                rank,
                self.tree.parent[rank],
                self.tag,
                self.nbytes,
                self.category,
                self._value[rank],
            )


# ---------------------------------------------------------------------------
# Array-based collectives (the batch engine's protocol layer)
#
# Same state machines as above, but over the positional
# :class:`~repro.comm.trees.TreeArrays` view: ranks are looked up by
# construction-order *position*, adjacency comes from the shared per-shape
# CSR memo (no per-tree dicts), and every forwarded message carries the
# receiver's position in the machine's ``aux`` slot together with a direct
# delivery callback -- so a delivery routes straight back into the
# collective without any per-rank tag dispatch.  Send order, combine
# order, and error behavior replicate the dict-based classes exactly
# (children forward in ascending position = the dict builders' append
# order), which is what keeps batch-engine runs bit-identical.
# ---------------------------------------------------------------------------


class ArrayBroadcast:
    """Restricted broadcast over a :class:`TreeArrays` shape.

    The batch-engine counterpart of :class:`TreeBroadcast`: messages
    carry the child's tree position in ``aux`` and deliver through
    :meth:`on_message` directly, so forwarding is three list indexings
    and a fast-path send per child.
    """

    __slots__ = (
        "machine",
        "arrays",
        "tag",
        "nbytes",
        "category",
        "cid",
        "on_delivery",
        "_started",
        "_ranks",
        "_indptr",
        "_childpos",
        "_fanout",
        "_forwards",
        "_forward_bytes",
    )

    def __init__(
        self,
        machine,
        arrays: TreeArrays,
        tag: Any,
        nbytes: int,
        category: str,
        on_delivery: Callable[[int, Any], None],
    ) -> None:
        self.machine = machine
        self.arrays = arrays
        self.tag = _require_hashable_tag(tag)
        self.nbytes = int(nbytes)
        self.category = category
        self.cid = machine.category_id(category)
        self.on_delivery = on_delivery
        self._started = False
        self._ranks = arrays.ranks_list()
        self._indptr, self._childpos = arrays.children_csr()
        metrics = machine.metrics
        if metrics is not None:
            metrics.histogram("coll.depth", op="bcast", category=category).observe(
                arrays.depth()
            )
            self._fanout = metrics.histogram(
                "coll.fanout", op="bcast", category=category
            )
            self._forwards = metrics.counter(
                "coll.forwarded_messages", op="bcast", category=category
            )
            self._forward_bytes = metrics.counter(
                "coll.forwarded_bytes", op="bcast", category=category
            )
        else:
            self._fanout = None
            self._forwards = None
            self._forward_bytes = None

    def start(self, payload: Any = None) -> None:
        """Called (once) on the root when its data is ready."""
        if self._started:
            raise RuntimeError(f"broadcast {self.tag!r} started twice")
        self._started = True
        self._forward_pos(0, payload)

    def on_message(self, dst: int, payload: Any, aux: int) -> None:
        """Delivery callback: a tree parent forwarded us the payload."""
        self._forward_pos(aux, payload)

    def _forward_pos(self, pos: int, payload: Any) -> None:
        indptr = self._indptr
        lo = indptr[pos]
        hi = indptr[pos + 1]
        ranks = self._ranks
        rank = ranks[pos]
        if hi > lo:
            send = self.machine.send
            childpos = self._childpos
            tag = self.tag
            nbytes = self.nbytes
            cid = self.cid
            om = self.on_message
            for ci in range(lo, hi):
                child = childpos[ci]
                send(rank, ranks[child], tag, nbytes, cid, payload, om, child)
        if self._fanout is not None:
            self._fanout.observe(hi - lo)
            if hi > lo:
                self._forwards.inc(hi - lo)
                self._forward_bytes.inc((hi - lo) * self.nbytes)
        self.on_delivery(rank, payload)


class ArrayReduce:
    """Restricted reduction over a :class:`TreeArrays` shape.

    The batch-engine counterpart of :class:`TreeReduce`: per-position
    progress lives in flat lists, partials flow child -> parent with the
    parent's position in ``aux``, and only :meth:`contribute` pays for a
    rank -> position lookup (one small dict per collective).
    """

    __slots__ = (
        "machine",
        "arrays",
        "tag",
        "nbytes",
        "category",
        "cid",
        "contributors",
        "on_complete",
        "combine",
        "_ranks",
        "_pos_of",
        "_indptr",
        "_parents",
        "_pending",
        "_value",
        "_done",
        "_fanin",
        "_forwards",
        "_forward_bytes",
    )

    def __init__(
        self,
        machine,
        arrays: TreeArrays,
        tag: Any,
        nbytes: int,
        category: str,
        contributors: set[int],
        on_complete: Callable[[Any], None],
        combine: Callable[[Any, Any], Any] | None = None,
    ) -> None:
        self.machine = machine
        self.arrays = arrays
        self.tag = _require_hashable_tag(tag)
        self.nbytes = int(nbytes)
        self.category = category
        self.cid = machine.category_id(category)
        self.contributors = set(int(r) for r in contributors)
        self.on_complete = on_complete
        self.combine = combine
        ranks = arrays.ranks_list()
        self._ranks = ranks
        self._pos_of = {r: i for i, r in enumerate(ranks)}
        self._indptr, _ = arrays.children_csr()
        self._parents = arrays.parent_positions()
        metrics = machine.metrics
        if metrics is not None:
            metrics.histogram("coll.depth", op="reduce", category=category).observe(
                arrays.depth()
            )
            self._fanin = metrics.histogram(
                "coll.fanout", op="reduce", category=category
            )
            self._forwards = metrics.counter(
                "coll.forwarded_messages", op="reduce", category=category
            )
            self._forward_bytes = metrics.counter(
                "coll.forwarded_bytes", op="reduce", category=category
            )
        else:
            self._fanin = None
            self._forwards = None
            self._forward_bytes = None
        unknown = self.contributors - set(ranks)
        if unknown:
            raise ValueError(
                f"reduce {self.tag!r}: contributors {sorted(unknown)} "
                "not in the tree"
            )
        p = len(ranks)
        indptr = self._indptr
        contrib = self.contributors
        pending = [0] * p
        self._pending = pending
        self._value: list[Any] = [None] * p
        self._done = [False] * p
        for i in range(p):
            expected = indptr[i + 1] - indptr[i] + (1 if ranks[i] in contrib else 0)
            pending[i] = expected
            if expected == 0:
                # A pure relay with no children and no contribution can
                # only happen for a degenerate tree; fire immediately.
                self._finish(i)

    def contribute(self, rank: int, value: Any = None) -> None:
        """Provide ``rank``'s local contribution (exactly once)."""
        if rank not in self.contributors:
            raise ValueError(
                f"reduce {self.tag!r}: rank {rank} is not a contributor"
            )
        self._absorb(self._pos_of[rank], value)

    def on_message(self, dst: int, payload: Any, aux: int) -> None:
        """Delivery callback: a child sent us its partial result."""
        self._absorb(aux, payload)

    def _absorb(self, pos: int, value: Any) -> None:
        if self._done[pos]:
            raise RuntimeError(
                f"reduce {self.tag!r}: input after completion at rank "
                f"{self._ranks[pos]}"
            )
        cur = self._value[pos]
        if cur is None:
            self._value[pos] = value
        elif value is not None:
            fn = self.combine if self.combine is not None else (lambda a, b: a + b)
            self._value[pos] = fn(cur, value)
        pending = self._pending
        pending[pos] -= 1
        if pending[pos] == 0:
            self._finish(pos)

    def _finish(self, pos: int) -> None:
        self._done[pos] = True
        if self._fanin is not None:
            indptr = self._indptr
            self._fanin.observe(indptr[pos + 1] - indptr[pos])
        if pos == 0:
            self.on_complete(self._value[0])
        else:
            if self._forwards is not None:
                self._forwards.inc()
                self._forward_bytes.inc(self.nbytes)
            parent = self._parents[pos]
            ranks = self._ranks
            self.machine.send(
                ranks[pos],
                ranks[parent],
                self.tag,
                self.nbytes,
                self.cid,
                self._value[pos],
                self.on_message,
                parent,
            )
