"""Communication-tree construction for restricted collectives (paper §III).

A *restricted collective* involves an arbitrary subset of the ranks in a
row/column group of the 2D processor grid -- one subset per supernode and
block, tens of thousands of them per selected inversion, far beyond what
MPI communicators can be pre-created for.  Each collective is therefore
realized over asynchronous point-to-point messages routed along a tree
built here.  Five schemes:

* :func:`flat_tree` -- the root sends to every participant directly
  (PSelInv v0.7.3 behaviour; ``p - 1`` root messages).
* :func:`binary_tree` -- participants sorted ascending after the root; the
  list is split recursively in two halves whose heads become children
  (Fig. 3(b)).  Root degree <= 2, depth ~ log2(p), but the *lowest* rank
  of a group is picked as an internal node by every broadcast that it
  participates in -- the striped hot spots of Fig. 5(b).
* :func:`shifted_binary_tree` -- **the paper's contribution**: a seeded
  random circular shift of the sorted participant list before the binary
  construction (Fig. 3(c)), so different collectives pick different
  internal nodes and the forwarding load spreads across the group.
* :func:`random_perm_tree` -- full random permutation instead of a shift;
  implemented because the paper *rejects* it (worse locality and, in
  their experiments, worse balance) and our ablation benchmarks test that
  claim.
* :func:`hybrid_tree` -- flat below a participant-count threshold and
  shifted-binary above, the "future work" scheme suggested in §IV-B for
  exploiting cheap intra-node flat broadcasts.

Trees are direction-agnostic: a broadcast pushes data root -> leaves along
child edges, a reduction pulls contributions leaves -> root along the same
edges reversed, exactly as MPI_Bcast/MPI_Reduce share tree shapes.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "CommTree",
    "CompiledTree",
    "TreeArrays",
    "compiled_tree",
    "flat_tree",
    "binary_tree",
    "binomial_tree",
    "shifted_binary_tree",
    "random_perm_tree",
    "hybrid_tree",
    "build_tree",
    "tree_arrays",
    "canonical_tree_key",
    "structure_tree_key",
    "rotation_offset",
    "permutation_indices",
    "tree_cache_info",
    "tree_cache_clear",
    "tree_cache_reset_counters",
    "tree_cache_resize",
    "tree_cache_hit_rate",
    "derive_seed",
    "TREE_SCHEMES",
]


@dataclass
class CommTree:
    """An oriented communication tree over a set of ranks.

    ``order`` is the construction order (root first); ``parent`` and
    ``children`` describe the edges.  Invariants (enforced in tests): the
    edges span exactly the participant set, the root has no parent, and
    every other rank has exactly one parent.
    """

    root: int
    order: tuple[int, ...]
    parent: dict[int, int]
    children: dict[int, tuple[int, ...]]

    def __post_init__(self) -> None:
        # Reject the two malformations a caller can introduce through the
        # participant list (a duplicated rank silently double-receives, a
        # root outside the set silently never sends); the deeper shape
        # invariants are checked by ``repro.check.plan_lint.lint_tree``.
        if len(set(self.order)) != len(self.order):
            seen: set[int] = set()
            dupes: set[int] = set()
            for r in self.order:
                (dupes if r in seen else seen).add(r)
            raise ValueError(
                f"CommTree: duplicate participants {sorted(dupes)}"
            )
        if self.root not in set(self.order):
            raise ValueError(
                f"CommTree: root {self.root} is not in the participant "
                f"list {self.order}"
            )

    @property
    def size(self) -> int:
        return len(self.order)

    def ranks(self) -> tuple[int, ...]:
        return self.order

    def child_count(self, rank: int) -> int:
        return len(self.children.get(rank, ()))

    def is_leaf(self, rank: int) -> bool:
        return self.child_count(rank) == 0

    def depth(self) -> int:
        """Longest root-to-leaf path length in edges."""
        depths = {self.root: 0}
        best = 0
        for r in self.order[1:]:
            d = depths[self.parent[r]] + 1
            depths[r] = d
            best = max(best, d)
        return best

    def internal_ranks(self) -> list[int]:
        """Ranks that forward data (have at least one child)."""
        return [r for r in self.order if self.child_count(r) > 0]


def _normalize(root: int, participants: Iterable[int]) -> list[int]:
    """Sorted, deduplicated non-root participant list (root validated in)."""
    s = set(int(p) for p in participants)
    s.add(int(root))
    s.discard(int(root))
    return sorted(s)


@lru_cache(maxsize=1 << 18)
def rotation_offset(seed: int, n: int) -> int:
    """Rotation offset of :func:`shifted_binary_tree` for ``n`` non-root
    participants under ``seed``.

    Memoized so repeated tree builds (the analytic model, the simulator,
    and scheme sweeps all derive identical per-collective seeds) do not
    pay for a fresh ``np.random.default_rng`` Generator each time.  The
    value is exactly ``default_rng(seed).integers(n)``.
    """
    if n <= 1:
        return 0
    return int(np.random.default_rng(seed).integers(n))


@lru_cache(maxsize=1 << 16)
def permutation_indices(seed: int, n: int) -> tuple[int, ...]:
    """Memoized full permutation of ``range(n)`` for
    :func:`random_perm_tree` (exactly ``default_rng(seed).permutation(n)``)."""
    if n <= 1:
        return tuple(range(n))
    return tuple(int(i) for i in np.random.default_rng(seed).permutation(n))


def _binary_from_order(order: Sequence[int]) -> CommTree:
    """Build the recursive-halving binary tree from an ordered rank list.

    ``order[0]`` is the root.  Each node owns a contiguous sublist; its
    tail is split into two halves (first half gets the ceiling) whose
    heads become its children.  Reproduces the paper's Fig. 3(b)/(c).
    """
    root = int(order[0])
    parent: dict[int, int] = {}
    children: dict[int, list[int]] = {r: [] for r in order}
    # Work list of (owner, sublist) where sublist excludes the owner.
    stack: list[tuple[int, Sequence[int]]] = [(root, order[1:])]
    while stack:
        owner, rest = stack.pop()
        m = len(rest)
        if m == 0:
            continue
        half = (m + 1) // 2
        left, right = rest[:half], rest[half:]
        for part in (left, right):
            if part:
                head = int(part[0])
                parent[head] = owner
                children[owner].append(head)
                stack.append((head, part[1:]))
    return CommTree(
        root=root,
        order=tuple(int(r) for r in order),
        parent=parent,
        children={r: tuple(c) for r, c in children.items()},
    )


def flat_tree(root: int, participants: Iterable[int]) -> CommTree:
    """Centralized star: the root is parent of every other participant."""
    others = _normalize(root, participants)
    return CommTree(
        root=int(root),
        order=(int(root), *others),
        parent={r: int(root) for r in others},
        children={int(root): tuple(others), **{r: () for r in others}},
    )


def binary_tree(root: int, participants: Iterable[int]) -> CommTree:
    """Recursive-halving binary tree over the sorted participant list."""
    others = _normalize(root, participants)
    return _binary_from_order([int(root), *others])


def shifted_binary_tree(
    root: int, participants: Iterable[int], seed: int
) -> CommTree:
    """Binary tree over a randomly *rotated* sorted participant list.

    The rotation offset is drawn from ``seed``; all ranks of a collective
    derive the same seed in the preprocessing step (see
    :func:`derive_seed`), so no extra synchronization is needed -- the
    property the paper highlights at the end of §III.
    """
    others = _normalize(root, participants)
    if len(others) > 1:
        k = rotation_offset(seed, len(others))
        others = others[k:] + others[:k]
    return _binary_from_order([int(root), *others])


def binomial_tree(root: int, participants: Iterable[int]) -> CommTree:
    """Binomial tree over the sorted participant list.

    The shape production MPI libraries actually use for ``MPI_Bcast`` on
    short messages: in round ``j`` every rank at relative position
    ``r < 2^j`` forwards to position ``r + 2^j``.  Root degree is
    ``ceil(log2 p)`` (vs 2 for the recursive-halving binary tree), depth
    ``ceil(log2 p)``.  Shares the binary tree's pathology: with the
    sorted ordering the same low-position ranks forward in every
    collective they join.
    """
    others = _normalize(root, participants)
    order = [int(root), *others]
    p = len(order)
    parent: dict[int, int] = {}
    children: dict[int, list[int]] = {r: [] for r in order}
    for r in range(1, p):
        # Parent: clear the highest set bit of the relative position.
        pr_pos = r - (1 << (r.bit_length() - 1))
        parent[order[r]] = order[pr_pos]
        children[order[pr_pos]].append(order[r])
    return CommTree(
        root=int(root),
        order=tuple(order),
        parent=parent,
        children={k: tuple(v) for k, v in children.items()},
    )


def random_perm_tree(
    root: int, participants: Iterable[int], seed: int
) -> CommTree:
    """Binary tree over a fully permuted participant list (rejected
    alternative -- destroys rank locality; kept for the ablation study)."""
    others = _normalize(root, participants)
    if len(others) > 1:
        perm = permutation_indices(seed, len(others))
        others = [others[i] for i in perm]
    return _binary_from_order([int(root), *others])


def hybrid_tree(
    root: int,
    participants: Iterable[int],
    seed: int,
    *,
    threshold: int = 8,
) -> CommTree:
    """Flat for small groups, shifted-binary for large ones (§IV-B).

    Small restricted collectives often fit in one node where a flat send
    is memcpy-cheap and cache-friendly; large ones need the tree.
    """
    others = _normalize(root, participants)
    if len(others) + 1 <= threshold:
        return flat_tree(root, others)
    return shifted_binary_tree(root, others, seed)


TREE_SCHEMES = ("flat", "binary", "shifted", "randperm", "hybrid", "binomial")


# ---------------------------------------------------------------------------
# Array-based fast path
#
# Every scheme above is "pick a construction order, then wire edges by
# *position* in that order".  The per-position shape (child counts and
# parent positions) therefore depends only on the scheme family and the
# participant count -- tiny, heavily reused arrays -- while a concrete tree
# is that shape composed with a rank ordering.  The vectorized volume
# engine charges whole collectives straight off these arrays without ever
# materializing the dict-based CommTree.
# ---------------------------------------------------------------------------


def _freeze(a: np.ndarray) -> np.ndarray:
    a.setflags(write=False)
    return a


@lru_cache(maxsize=4096)
def _flat_positions(p: int) -> tuple[np.ndarray, np.ndarray]:
    """(child_counts, parent_pos) per construction-order position, star."""
    kids = np.zeros(p, dtype=np.int64)
    par = np.full(p, -1, dtype=np.int64)
    if p > 1:
        kids[0] = p - 1
        par[1:] = 0
    return _freeze(kids), _freeze(par)


@lru_cache(maxsize=4096)
def _binary_positions(p: int) -> tuple[np.ndarray, np.ndarray]:
    """Positional shape of the recursive-halving binary tree over ``p``
    ranks (position 0 = root).  Mirrors :func:`_binary_from_order` with
    ranks replaced by their position in the construction order."""
    kids = np.zeros(p, dtype=np.int64)
    par = np.full(p, -1, dtype=np.int64)
    stack: list[tuple[int, int, int]] = [(0, 1, p)]  # (owner, lo, hi)
    while stack:
        owner, lo, hi = stack.pop()
        m = hi - lo
        if m == 0:
            continue
        half = (m + 1) // 2
        for a, b in ((lo, lo + half), (lo + half, hi)):
            if b > a:
                par[a] = owner
                kids[owner] += 1
                stack.append((a, a + 1, b))
    return _freeze(kids), _freeze(par)


@lru_cache(maxsize=4096)
def _binomial_positions(p: int) -> tuple[np.ndarray, np.ndarray]:
    """Positional shape of the binomial tree over ``p`` ranks."""
    kids = np.zeros(p, dtype=np.int64)
    par = np.full(p, -1, dtype=np.int64)
    for r in range(1, p):
        pr_pos = r - (1 << (r.bit_length() - 1))
        par[r] = pr_pos
        kids[pr_pos] += 1
    return _freeze(kids), _freeze(par)


_POSITION_SHAPES = {
    "flat": _flat_positions,
    "binary": _binary_positions,
    "binomial": _binomial_positions,
}


@lru_cache(maxsize=4096)
def _children_csr(family: str, p: int) -> tuple[list[int], list[int]]:
    """CSR adjacency (indptr, child positions) of one positional shape.

    Plain Python lists: the batch collectives index them per forwarded
    message.  Children appear in ascending position, matching the
    append order of the dict-based tree builders bit for bit.
    """
    kids, par = _POSITION_SHAPES[family](p)
    counts = kids.tolist()
    parents = par.tolist()
    indptr = [0] * (p + 1)
    for i in range(p):
        indptr[i + 1] = indptr[i] + counts[i]
    childpos = [0] * (p - 1 if p > 0 else 0)
    cursor = indptr[:p]
    for i in range(1, p):
        pp = parents[i]
        childpos[cursor[pp]] = i
        cursor[pp] += 1
    return indptr, childpos


@lru_cache(maxsize=4096)
def _parent_positions(family: str, p: int) -> list[int]:
    """Parent position per position (root -1) as a plain Python list."""
    _, par = _POSITION_SHAPES[family](p)
    return par.tolist()


@lru_cache(maxsize=4096)
def _shape_depth(family: str, p: int) -> int:
    """Longest root-to-leaf path (edges) of one positional shape."""
    _, par = _POSITION_SHAPES[family](p)
    parents = par.tolist()
    depths = [0] * p
    best = 0
    for i in range(1, p):
        d = depths[parents[i]] + 1
        depths[i] = d
        if d > best:
            best = d
    return best


@dataclass(frozen=True)
class TreeArrays:
    """Array view of one communication tree (the volume engine's format).

    ``ranks[i]`` is the rank at construction-order position ``i``
    (``ranks[0]`` is the root); ``parent_pos[i]`` indexes ``ranks``
    (-1 for the root) and ``child_counts[i]`` is position ``i``'s
    out-degree.  Arrays are read-only: the shape arrays
    (``parent_pos``/``child_counts``) are shared across every tree of the
    same family and size via the structure cache.
    """

    root: int
    ranks: np.ndarray
    parent_pos: np.ndarray
    child_counts: np.ndarray
    # Largest out-degree, precomputed: the volume engine reads it once
    # per charged group and instances are shared through the cache.
    max_degree: int
    # Positional-shape family ("flat" / "binary" / "binomial"; the
    # shifted and randperm schemes reuse the binary shape).  Keys the
    # shared children-CSR and depth memos, so the batch-engine
    # collectives never rebuild per-tree adjacency.
    family: str = "binary"

    @property
    def size(self) -> int:
        return len(self.ranks)

    def ranks_list(self) -> list[int]:
        """The ranks as a plain Python list (scalar ndarray indexing is
        several times slower on the collectives' hot path).  Lazily
        materialized once per instance; the DES machines memoize one
        instance per collective spec per run, so the list is built once
        per distinct tree there."""
        rl = getattr(self, "_rl", None)
        if rl is None:
            rl = [int(r) for r in self.ranks]
            object.__setattr__(self, "_rl", rl)
        return rl

    def children_csr(self) -> tuple[list[int], list[int]]:
        """``(indptr, child_positions)`` adjacency of the positional
        shape, children in ascending construction-order position (the
        exact forwarding order of the dict-based builders)."""
        return _children_csr(self.family, self.size)

    def parent_positions(self) -> list[int]:
        """Parent position per position (root -1), shared per shape."""
        return _parent_positions(self.family, self.size)

    def depth(self) -> int:
        """Longest root-to-leaf path length in edges."""
        return _shape_depth(self.family, self.size)

    def to_comm_tree(self) -> CommTree:
        """Materialize the dict-based :class:`CommTree` view.

        Child lists are filled in ascending construction-order position,
        which reproduces the append order of the original dict-based
        builders exactly.
        """
        ranks = self.ranks
        order = tuple(int(r) for r in ranks)
        parent: dict[int, int] = {}
        children: dict[int, list[int]] = {r: [] for r in order}
        ppos = self.parent_pos
        for i in range(1, len(order)):
            p = order[ppos[i]]
            parent[order[i]] = p
            children[p].append(order[i])
        return CommTree(
            root=self.root,
            order=order,
            parent=parent,
            children={r: tuple(c) for r, c in children.items()},
        )


@dataclass(frozen=True)
class _TreeStructure:
    """One cached tree *structure*: everything about a tree except which
    concrete ranks sit at its positions.

    The positional shape (``child_counts``/``parent_pos``) is shared with
    the per-family memos; ``offset``/``perm`` record the relative
    reordering of the sorted non-root participants (rotation for shifted
    trees, full permutation for randperm, identity otherwise).  A
    concrete :class:`TreeArrays` is produced by :meth:`relabel`, which
    only has to lay the caller's ranks onto the cached structure.
    """

    family: str
    size: int
    child_counts: np.ndarray
    parent_pos: np.ndarray
    max_degree: int
    offset: int = 0
    perm: tuple[int, ...] | None = None

    def relabel(self, root: int, others: tuple[int, ...]) -> TreeArrays:
        """Compose this structure with a concrete rank set.

        Reproduces the construction order of the dict-based builders bit
        for bit: root first, then the sorted non-root participants under
        the structure's rotation/permutation.
        """
        if self.offset:
            k = self.offset
            order = (root, *others[k:], *others[:k])
        elif self.perm is not None:
            order = (root, *(others[i] for i in self.perm))
        else:
            order = (root, *others)
        return TreeArrays(
            root=root,
            ranks=_freeze(np.asarray(order, dtype=np.int64)),
            parent_pos=self.parent_pos,
            child_counts=self.child_counts,
            max_degree=self.max_degree,
            family=self.family,
        )


class _TreeLRU:
    """Small LRU cache for :class:`_TreeStructure` with hit/miss counters.

    Keys are *structural* (see :func:`structure_tree_key`): they carry
    the resolved scheme, the participant count, and the relative
    rotation/permutation -- never absolute ranks.  The keyspace is
    therefore O(distinct participant counts x offsets), thousands of
    times smaller than the per-collective (root, participants) space that
    used to thrash this cache, and every collective over *any* rank set
    of the same size and rotation shares one entry.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = int(maxsize)
        self._data: OrderedDict[tuple, _TreeStructure] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> _TreeStructure | None:
        struct = self._data.get(key)
        if struct is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return struct

    def put(self, key: tuple, struct: _TreeStructure) -> None:
        self._data[key] = struct
        self._data.move_to_end(key)
        self._evict_over_capacity()

    def resize(self, maxsize: int) -> None:
        """Change capacity, evicting LRU entries when shrinking.

        The single eviction path (shared with :meth:`put`) keeps the
        eviction counter consistent no matter how the cache shrinks.
        """
        if maxsize < 1:
            raise ValueError("tree cache maxsize must be positive")
        self.maxsize = int(maxsize)
        self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        data = self._data
        while len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()
        self.reset_counters()

    def reset_counters(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def info(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }


_DEFAULT_TREE_CACHE_SIZE = 1 << 16
_TREE_CACHE: _TreeLRU | None = None


def _env_cache_size() -> int:
    """Capacity from ``REPRO_TREE_CACHE_SIZE`` (validated, with a clear
    error naming the knob instead of a bare int() traceback)."""
    raw = os.environ.get("REPRO_TREE_CACHE_SIZE")
    if raw is None or not raw.strip():
        return _DEFAULT_TREE_CACHE_SIZE
    try:
        size = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_TREE_CACHE_SIZE={raw!r} is not a valid tree-cache "
            "capacity; expected a positive integer (number of cached "
            "tree structures)"
        ) from None
    if size < 1:
        raise ValueError(
            f"REPRO_TREE_CACHE_SIZE={raw!r} must be a positive integer"
        )
    return size


def _cache() -> _TreeLRU:
    """The shared structure cache, created on first use.

    Lazy so a malformed ``REPRO_TREE_CACHE_SIZE`` surfaces as a clear
    :class:`ValueError` at the first cache operation rather than as an
    opaque crash at ``import repro`` time.
    """
    global _TREE_CACHE
    c = _TREE_CACHE
    if c is None:
        c = _TREE_CACHE = _TreeLRU(_env_cache_size())
    return c


def tree_cache_info() -> dict[str, int]:
    """Hit/miss/eviction counters of the shared tree-structure cache."""
    return _cache().info()


def tree_cache_clear() -> None:
    """Drop all cached tree structures and reset the counters."""
    _cache().clear()


def tree_cache_reset_counters() -> None:
    """Zero the hit/miss/eviction counters but keep the cached entries.

    Benchmarks use this between sections so each section reports its own
    stats (a warm section's hit rate is not diluted by the cold section's
    compulsory misses) without giving up the warmed cache.
    """
    _cache().reset_counters()


def tree_cache_resize(maxsize: int) -> None:
    """Change the cache capacity (evicts LRU entries if shrinking)."""
    _cache().resize(maxsize)


def tree_cache_hit_rate() -> float:
    """Lifetime hit rate of the shared cache (0.0 when never consulted)."""
    c = _cache()
    lookups = c.hits + c.misses
    return c.hits / lookups if lookups else 0.0


def _resolve_scheme(scheme: str, n_others: int, hybrid_threshold: int) -> str:
    """Collapse ``hybrid`` onto the branch it takes for this group size."""
    if scheme == "hybrid":
        return "flat" if n_others + 1 <= hybrid_threshold else "shifted"
    return scheme


def canonical_tree_key(
    scheme: str,
    root: int,
    others: tuple[int, ...],
    seed: int,
    *,
    hybrid_threshold: int = 8,
) -> tuple:
    """Canonical identity of one concrete tree: two collectives with the
    same key build the same tree.

    ``others`` is the sorted non-root participant tuple.  For ``shifted``
    the seed only matters through the rotation offset; for ``randperm``
    through the permutation; the deterministic schemes drop it entirely.

    Compatibility shim: this is no longer the *cache* key (which would
    make the keyspace scale with the number of distinct (root,
    participants) pairs and thrash the LRU) -- the cache keys on
    :func:`structure_tree_key`, which drops the absolute ranks.  This
    function remains the equality predicate for "would these two calls
    return the same tree", which planners and tests still rely on.
    """
    scheme = _resolve_scheme(scheme, len(others), hybrid_threshold)
    if scheme == "shifted":
        return ("shifted", root, others, rotation_offset(seed, len(others)))
    if scheme == "randperm":
        return ("randperm", root, others, permutation_indices(seed, len(others)))
    if scheme in ("flat", "binary", "binomial"):
        return (scheme, root, others)
    raise ValueError(
        f"unknown tree scheme {scheme!r}; expected one of {TREE_SCHEMES}"
    )


def structure_tree_key(
    scheme: str,
    n_others: int,
    seed: int,
    *,
    hybrid_threshold: int = 8,
) -> tuple:
    """Structural cache key: ``(resolved scheme, p, offset/perm)``.

    The tree *shape* depends only on the scheme family and participant
    count, and the rank ordering only on the rotation offset (shifted) or
    permutation (randperm) -- never on the absolute ranks.  Keying the
    cache on this collapses every collective over any rank set of the
    same size onto one entry: cardinality is O(distinct participant
    counts x distinct offsets), hundreds of keys on the paper-tier sweeps
    versus hundreds of thousands of lookups.
    """
    scheme = _resolve_scheme(scheme, n_others, hybrid_threshold)
    p = n_others + 1
    if scheme == "shifted":
        return ("shifted", p, rotation_offset(seed, n_others))
    if scheme == "randperm":
        return ("randperm", p, permutation_indices(seed, n_others))
    if scheme in ("flat", "binary", "binomial"):
        return (scheme, p, None)
    raise ValueError(
        f"unknown tree scheme {scheme!r}; expected one of {TREE_SCHEMES}"
    )


# Positional-shape family per resolved scheme (shifted/randperm only
# reorder the ranks laid onto the binary shape).
_FAMILY_OF = {
    "flat": "flat",
    "binary": "binary",
    "binomial": "binomial",
    "shifted": "binary",
    "randperm": "binary",
}


def _build_structure(key: tuple) -> _TreeStructure:
    """Construct the rank-free structure for a structural key (miss path)."""
    scheme, p, extra = key
    family = _FAMILY_OF[scheme]
    kids, par = _POSITION_SHAPES[family](p)
    return _TreeStructure(
        family=family,
        size=p,
        child_counts=kids,
        parent_pos=par,
        max_degree=int(kids.max()) if p else 0,
        offset=extra if scheme == "shifted" else 0,
        perm=extra if scheme == "randperm" else None,
    )


def tree_arrays(
    scheme: str,
    root: int,
    participants: Iterable[int],
    seed: int = 0,
    *,
    hybrid_threshold: int = 8,
) -> TreeArrays:
    """Cached array view of one communication tree (any scheme).

    The fast path used by the vectorized volume engine and, via
    :func:`build_tree`, by every other caller.  The cache holds rank-free
    :class:`_TreeStructure` entries keyed by :func:`structure_tree_key`;
    the caller's concrete ranks are laid onto the cached structure by a
    cheap relabeling step.  Bit-identical in shape to the dict-based
    scheme constructors (pinned by regression tests); repeated calls with
    the same arguments return equal ``TreeArrays`` whose shape arrays
    (``parent_pos``/``child_counts``) are shared instances.
    """
    root = int(root)
    others = tuple(_normalize(root, participants))
    key = structure_tree_key(
        scheme, len(others), seed, hybrid_threshold=hybrid_threshold
    )
    cache = _cache()
    struct_ = cache.get(key)
    if struct_ is None:
        struct_ = _build_structure(key)
        cache.put(key, struct_)
    return struct_.relabel(root, others)


@lru_cache(maxsize=4096)
def _child_counts_list(family: str, p: int) -> list[int]:
    """Per-position out-degrees of one positional shape as a plain list.

    The vectorized reduce state machines copy this once per collective to
    seed their pending counters; sharing the memo keeps that copy a C-level
    ``list()`` call instead of an ndarray round trip.
    """
    kids, _ = _POSITION_SHAPES[family](p)
    return kids.tolist()


class CompiledTree:
    """One tree compiled for the vectorized collective state machines.

    Where :class:`TreeArrays` is an ndarray view (the volume engine's
    format), this is the DES hot-path format: plain Python lists indexed
    by construction-order position, sharing the per-shape CSR adjacency,
    parent-position, and child-count memos across every tree of the same
    family and size.  ``ranks[i]`` is the rank at position ``i`` (root at
    position 0); ``indptr``/``childpos`` give each position's children in
    ascending position -- the exact forwarding order of the dict-based
    builders.
    """

    __slots__ = (
        "root",
        "ranks",
        "size",
        "indptr",
        "childpos",
        "parentpos",
        "child_counts",
        "_pos",
    )

    def __init__(
        self,
        root: int,
        ranks: list[int],
        family: str,
    ) -> None:
        p = len(ranks)
        self.root = root
        self.ranks = ranks
        self.size = p
        self.indptr, self.childpos = _children_csr(family, p)
        self.parentpos = _parent_positions(family, p)
        self.child_counts = _child_counts_list(family, p)
        self._pos: dict[int, int] | None = None

    def pos_of(self) -> dict[int, int]:
        """rank -> construction-order position (built lazily, once)."""
        pos = self._pos
        if pos is None:
            pos = self._pos = dict(zip(self.ranks, range(self.size)))
        return pos


def compiled_tree(
    scheme: str,
    root: int,
    participants: Sequence[int],
    seed: int = 0,
    *,
    hybrid_threshold: int = 8,
) -> CompiledTree:
    """Build the :class:`CompiledTree` for one collective (any scheme).

    ``participants`` is expected in the planner's canonical form: a
    sorted tuple that includes the root (``CollectiveSpec.participants``).
    The orderings produced are bit-identical to :func:`tree_arrays` /
    :func:`build_tree` for the same arguments (pinned by tests); only the
    container types differ.
    """
    root = int(root)
    i = participants.index(root)
    others = [*participants[:i], *participants[i + 1 :]]
    n = len(others)
    scheme = _resolve_scheme(scheme, n, hybrid_threshold)
    if scheme == "shifted":
        if n > 1:
            k = rotation_offset(seed, n)
            others = others[k:] + others[:k]
    elif scheme == "randperm":
        if n > 1:
            perm = permutation_indices(seed, n)
            others = [others[i] for i in perm]
    elif scheme not in ("flat", "binary", "binomial"):
        raise ValueError(
            f"unknown tree scheme {scheme!r}; expected one of {TREE_SCHEMES}"
        )
    return CompiledTree(root, [root, *others], _FAMILY_OF[scheme])


def build_tree(
    scheme: str,
    root: int,
    participants: Iterable[int],
    seed: int = 0,
    *,
    hybrid_threshold: int = 8,
) -> CommTree:
    """Uniform constructor used by the volume model and the simulator.

    Goes through the shared :func:`tree_arrays` cache and materializes the
    dict-based :class:`CommTree` view on top (identical trees to the
    per-scheme constructors above, which remain the spec).
    """
    return tree_arrays(
        scheme, root, participants, seed, hybrid_threshold=hybrid_threshold
    ).to_comm_tree()


def derive_seed(global_seed: int, *components: int) -> int:
    """Deterministic per-collective seed from the preprocessing-step seed.

    Stable across processes and Python runs (CRC-based, not ``hash()``),
    mirroring how the paper communicates the random seed once during
    preprocessing and then builds identical trees on every rank.
    """
    # struct.pack with native order/size produces the identical byte
    # string np.asarray(..., dtype=np.int64).tobytes() used to, several
    # times faster (this runs once per collective per preprocessing).
    buf = struct.pack(f"={len(components) + 1}q", global_seed, *components)
    return zlib.crc32(buf) & 0x7FFFFFFF
