"""Communication-tree construction for restricted collectives (paper §III).

A *restricted collective* involves an arbitrary subset of the ranks in a
row/column group of the 2D processor grid -- one subset per supernode and
block, tens of thousands of them per selected inversion, far beyond what
MPI communicators can be pre-created for.  Each collective is therefore
realized over asynchronous point-to-point messages routed along a tree
built here.  Five schemes:

* :func:`flat_tree` -- the root sends to every participant directly
  (PSelInv v0.7.3 behaviour; ``p - 1`` root messages).
* :func:`binary_tree` -- participants sorted ascending after the root; the
  list is split recursively in two halves whose heads become children
  (Fig. 3(b)).  Root degree <= 2, depth ~ log2(p), but the *lowest* rank
  of a group is picked as an internal node by every broadcast that it
  participates in -- the striped hot spots of Fig. 5(b).
* :func:`shifted_binary_tree` -- **the paper's contribution**: a seeded
  random circular shift of the sorted participant list before the binary
  construction (Fig. 3(c)), so different collectives pick different
  internal nodes and the forwarding load spreads across the group.
* :func:`random_perm_tree` -- full random permutation instead of a shift;
  implemented because the paper *rejects* it (worse locality and, in
  their experiments, worse balance) and our ablation benchmarks test that
  claim.
* :func:`hybrid_tree` -- flat below a participant-count threshold and
  shifted-binary above, the "future work" scheme suggested in §IV-B for
  exploiting cheap intra-node flat broadcasts.

Trees are direction-agnostic: a broadcast pushes data root -> leaves along
child edges, a reduction pulls contributions leaves -> root along the same
edges reversed, exactly as MPI_Bcast/MPI_Reduce share tree shapes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "CommTree",
    "flat_tree",
    "binary_tree",
    "binomial_tree",
    "shifted_binary_tree",
    "random_perm_tree",
    "hybrid_tree",
    "build_tree",
    "derive_seed",
    "TREE_SCHEMES",
]


@dataclass
class CommTree:
    """An oriented communication tree over a set of ranks.

    ``order`` is the construction order (root first); ``parent`` and
    ``children`` describe the edges.  Invariants (enforced in tests): the
    edges span exactly the participant set, the root has no parent, and
    every other rank has exactly one parent.
    """

    root: int
    order: tuple[int, ...]
    parent: dict[int, int]
    children: dict[int, tuple[int, ...]]

    @property
    def size(self) -> int:
        return len(self.order)

    def ranks(self) -> tuple[int, ...]:
        return self.order

    def child_count(self, rank: int) -> int:
        return len(self.children.get(rank, ()))

    def is_leaf(self, rank: int) -> bool:
        return self.child_count(rank) == 0

    def depth(self) -> int:
        """Longest root-to-leaf path length in edges."""
        depths = {self.root: 0}
        best = 0
        for r in self.order[1:]:
            d = depths[self.parent[r]] + 1
            depths[r] = d
            best = max(best, d)
        return best

    def internal_ranks(self) -> list[int]:
        """Ranks that forward data (have at least one child)."""
        return [r for r in self.order if self.child_count(r) > 0]


def _normalize(root: int, participants: Iterable[int]) -> list[int]:
    """Sorted, deduplicated non-root participant list (root validated in)."""
    s = set(int(p) for p in participants)
    s.add(int(root))
    s.discard(int(root))
    return sorted(s)


def _binary_from_order(order: Sequence[int]) -> CommTree:
    """Build the recursive-halving binary tree from an ordered rank list.

    ``order[0]`` is the root.  Each node owns a contiguous sublist; its
    tail is split into two halves (first half gets the ceiling) whose
    heads become its children.  Reproduces the paper's Fig. 3(b)/(c).
    """
    root = int(order[0])
    parent: dict[int, int] = {}
    children: dict[int, list[int]] = {r: [] for r in order}
    # Work list of (owner, sublist) where sublist excludes the owner.
    stack: list[tuple[int, Sequence[int]]] = [(root, order[1:])]
    while stack:
        owner, rest = stack.pop()
        m = len(rest)
        if m == 0:
            continue
        half = (m + 1) // 2
        left, right = rest[:half], rest[half:]
        for part in (left, right):
            if part:
                head = int(part[0])
                parent[head] = owner
                children[owner].append(head)
                stack.append((head, part[1:]))
    return CommTree(
        root=root,
        order=tuple(int(r) for r in order),
        parent=parent,
        children={r: tuple(c) for r, c in children.items()},
    )


def flat_tree(root: int, participants: Iterable[int]) -> CommTree:
    """Centralized star: the root is parent of every other participant."""
    others = _normalize(root, participants)
    return CommTree(
        root=int(root),
        order=(int(root), *others),
        parent={r: int(root) for r in others},
        children={int(root): tuple(others), **{r: () for r in others}},
    )


def binary_tree(root: int, participants: Iterable[int]) -> CommTree:
    """Recursive-halving binary tree over the sorted participant list."""
    others = _normalize(root, participants)
    return _binary_from_order([int(root), *others])


def shifted_binary_tree(
    root: int, participants: Iterable[int], seed: int
) -> CommTree:
    """Binary tree over a randomly *rotated* sorted participant list.

    The rotation offset is drawn from ``seed``; all ranks of a collective
    derive the same seed in the preprocessing step (see
    :func:`derive_seed`), so no extra synchronization is needed -- the
    property the paper highlights at the end of §III.
    """
    others = _normalize(root, participants)
    if len(others) > 1:
        rng = np.random.default_rng(seed)
        k = int(rng.integers(len(others)))
        others = others[k:] + others[:k]
    return _binary_from_order([int(root), *others])


def binomial_tree(root: int, participants: Iterable[int]) -> CommTree:
    """Binomial tree over the sorted participant list.

    The shape production MPI libraries actually use for ``MPI_Bcast`` on
    short messages: in round ``j`` every rank at relative position
    ``r < 2^j`` forwards to position ``r + 2^j``.  Root degree is
    ``ceil(log2 p)`` (vs 2 for the recursive-halving binary tree), depth
    ``ceil(log2 p)``.  Shares the binary tree's pathology: with the
    sorted ordering the same low-position ranks forward in every
    collective they join.
    """
    others = _normalize(root, participants)
    order = [int(root), *others]
    p = len(order)
    parent: dict[int, int] = {}
    children: dict[int, list[int]] = {r: [] for r in order}
    for r in range(1, p):
        # Parent: clear the highest set bit of the relative position.
        pr_pos = r - (1 << (r.bit_length() - 1))
        parent[order[r]] = order[pr_pos]
        children[order[pr_pos]].append(order[r])
    return CommTree(
        root=int(root),
        order=tuple(order),
        parent=parent,
        children={k: tuple(v) for k, v in children.items()},
    )


def random_perm_tree(
    root: int, participants: Iterable[int], seed: int
) -> CommTree:
    """Binary tree over a fully permuted participant list (rejected
    alternative -- destroys rank locality; kept for the ablation study)."""
    others = _normalize(root, participants)
    if len(others) > 1:
        rng = np.random.default_rng(seed)
        others = [others[i] for i in rng.permutation(len(others))]
    return _binary_from_order([int(root), *others])


def hybrid_tree(
    root: int,
    participants: Iterable[int],
    seed: int,
    *,
    threshold: int = 8,
) -> CommTree:
    """Flat for small groups, shifted-binary for large ones (§IV-B).

    Small restricted collectives often fit in one node where a flat send
    is memcpy-cheap and cache-friendly; large ones need the tree.
    """
    others = _normalize(root, participants)
    if len(others) + 1 <= threshold:
        return flat_tree(root, others)
    return shifted_binary_tree(root, others, seed)


TREE_SCHEMES = ("flat", "binary", "shifted", "randperm", "hybrid", "binomial")


def build_tree(
    scheme: str,
    root: int,
    participants: Iterable[int],
    seed: int = 0,
    *,
    hybrid_threshold: int = 8,
) -> CommTree:
    """Uniform constructor used by the volume model and the simulator."""
    if scheme == "flat":
        return flat_tree(root, participants)
    if scheme == "binary":
        return binary_tree(root, participants)
    if scheme == "shifted":
        return shifted_binary_tree(root, participants, seed)
    if scheme == "randperm":
        return random_perm_tree(root, participants, seed)
    if scheme == "hybrid":
        return hybrid_tree(root, participants, seed, threshold=hybrid_threshold)
    if scheme == "binomial":
        return binomial_tree(root, participants)
    raise ValueError(f"unknown tree scheme {scheme!r}; expected one of {TREE_SCHEMES}")


def derive_seed(global_seed: int, *components: int) -> int:
    """Deterministic per-collective seed from the preprocessing-step seed.

    Stable across processes and Python runs (CRC-based, not ``hash()``),
    mirroring how the paper communicates the random seed once during
    preprocessing and then builds identical trees on every rank.
    """
    buf = np.asarray([global_seed, *components], dtype=np.int64).tobytes()
    return zlib.crc32(buf) & 0x7FFFFFFF
