"""Persistent content-addressed store for experiment results.

The structure cache in :mod:`repro.comm.trees` avoids rebuilding a tree
whose shape is already known; this module applies the same
recompute-avoidance one layer up, at sweep granularity.  A
:class:`RunStore` maps a **stable spec hash** -- a sha256 over the
canonical JSON form of an :class:`~repro.runner.spec.ExperimentSpec` --
to the pickled :class:`~repro.runner.spec.RunRecord` it produced.  Since
every simulation is deterministic given its spec, a hash hit *is* the
result: ``repro bench`` / ``repro check`` re-runs with unchanged specs
become incremental, skipping simulation entirely.

Stability rules for the hash (documented in ``docs/caching.md``):

* only spec *fields* enter the hash, recursively for nested frozen
  dataclasses (:class:`~repro.simulate.network.NetworkConfig`);
* floats are canonicalized via ``float.hex`` so the text form is exact
  and platform-independent;
* ``label`` is excluded -- it is an opaque caller tag that does not
  influence execution, so relabeled sweeps still hit;
* the spec class name and a :data:`FORMAT_VERSION` are included, so any
  semantic change to the record layout or the simulation contract is a
  one-line invalidation (bump the version).

Specs with ``telemetry=True`` are **not cacheable**: their records carry
host wall-clock metrics that legitimately differ across runs.

On-disk layout (two-level fanout to keep directories small)::

    <root>/<hash[:2]>/<hash[2:]>.rec

Each entry is ``MAGIC + crc32(payload) + len(payload) + payload`` where
the payload is the pickled record fields (minus the spec, which the
caller re-attaches on load so labels survive).  Writes are atomic
(temp file + ``os.replace``); any corruption -- truncation, bit flips,
unpicklable garbage -- is detected by the magic/length/crc checks and
treated as a miss, never an error: the run recomputes and overwrites.

Environment knobs (also settable per-process via :func:`configure`,
which writes the environment so pool workers inherit the decision):

* ``REPRO_STORE=1`` enables the store for library callers (the CLI's
  ``bench``/``scaling`` commands enable it by default and expose
  ``--no-store``);
* ``REPRO_STORE_DIR`` overrides the root directory (default
  ``$XDG_CACHE_HOME/repro/store`` or ``~/.cache/repro/store``);
* ``REPRO_STORE_REFRESH=1`` recomputes every record and overwrites the
  stored copy (the ``--refresh`` escape hatch).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import struct
import tempfile
import zlib

from .spec import ExperimentSpec, RunRecord

__all__ = [
    "FORMAT_VERSION",
    "RunStore",
    "cacheable",
    "configure",
    "default_store_dir",
    "open_store",
    "spec_hash",
    "store_active",
    "store_refresh",
    "store_stats",
    "reset_stats",
]

#: Bump to invalidate every stored record (layout or semantics change).
FORMAT_VERSION = 1

#: Entry header: magic, crc32 of payload, payload length.
_MAGIC = b"RPRS"
_HEADER = struct.Struct("<4sIQ")

# Cumulative per-process tallies, shipped across the pool boundary by
# repro.runner.pool and folded into the sweep-level metrics snapshot.
_STATS = {
    "hits": 0,
    "misses": 0,
    "writes": 0,
    "errors": 0,
    "bytes_read": 0,
    "bytes_written": 0,
}


def store_stats() -> dict[str, int]:
    """Cumulative store tallies for this process."""
    return dict(_STATS)


def reset_stats() -> None:
    for k in _STATS:
        _STATS[k] = 0


# -- configuration -----------------------------------------------------------


def default_store_dir() -> str:
    """Store root: ``REPRO_STORE_DIR`` or the user cache directory."""
    override = os.environ.get("REPRO_STORE_DIR", "").strip()
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME", "").strip() or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "store")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


def store_active() -> bool:
    """Whether experiment execution should consult the store."""
    return _env_flag("REPRO_STORE")


def store_refresh() -> bool:
    """Whether stored records should be recomputed and overwritten."""
    return _env_flag("REPRO_STORE_REFRESH")


def configure(
    *,
    enabled: bool | None = None,
    refresh: bool | None = None,
    directory: str | None = None,
) -> None:
    """Set the store knobs for this process *and its pool workers*.

    The knobs live in ``os.environ`` deliberately: fork-started workers
    inherit the parent's environment, and spawn-started ones re-read it,
    so one ``configure`` call in the CLI governs the whole sweep.
    """
    if enabled is not None:
        os.environ["REPRO_STORE"] = "1" if enabled else "0"
    if refresh is not None:
        os.environ["REPRO_STORE_REFRESH"] = "1" if refresh else "0"
    if directory is not None:
        os.environ["REPRO_STORE_DIR"] = directory


# -- spec hashing ------------------------------------------------------------


def _canonical(value):
    """JSON-safe canonical form of a spec field value (exact, stable)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__class__": type(value).__name__,
            **{
                f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
                if f.name != "label"
            },
        }
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        # float.hex round-trips exactly; repr would too, but hex makes
        # the "no rounding is involved" property obvious in the hash input.
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    raise TypeError(
        f"spec field of type {type(value).__name__} has no canonical form; "
        "extend repro.runner.store._canonical (and bump FORMAT_VERSION)"
    )


def spec_hash(spec) -> str:
    """Stable content hash of one spec (hex sha256).

    Equal hashes mean "the simulation would produce the same record";
    the ``label`` field is excluded and floats are hashed exactly.
    """
    doc = {"format": FORMAT_VERSION, "spec": _canonical(spec)}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def cacheable(spec) -> bool:
    """Whether a spec's record may be stored and replayed.

    Only DES experiments are stored (volume reports are cheap to
    recompute), and only without telemetry -- telemetry records carry
    host wall-clock series that must be measured, not replayed.
    """
    return isinstance(spec, ExperimentSpec) and not spec.telemetry


# -- the store ---------------------------------------------------------------


class RunStore:
    """Content-addressed RunRecord store rooted at one directory."""

    def __init__(self, root: str | None = None) -> None:
        self.root = root or default_store_dir()

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key[2:] + ".rec")

    def get(self, spec: ExperimentSpec) -> RunRecord | None:
        """The stored record for ``spec``, or None (miss *or* corrupt).

        The caller's spec is re-attached to the returned record, so
        ``label`` and other non-hashed presentation fields are the
        caller's own.
        """
        try:
            with open(self.path_for(spec_hash(spec)), "rb") as fh:
                blob = fh.read()
        except OSError:
            _STATS["misses"] += 1
            return None
        payload = self._check(blob)
        if payload is None:
            # Corrupt entry: count it, treat as a miss; the recompute
            # will overwrite it with a good copy.
            _STATS["errors"] += 1
            _STATS["misses"] += 1
            return None
        try:
            fields = pickle.loads(payload)
            record = RunRecord(spec=spec, **fields)
        except Exception:
            _STATS["errors"] += 1
            _STATS["misses"] += 1
            return None
        _STATS["hits"] += 1
        _STATS["bytes_read"] += len(blob)
        return record

    def put(self, spec: ExperimentSpec, record: RunRecord) -> None:
        """Store ``record`` under ``spec``'s hash (atomic, best-effort).

        Storage failures (read-only filesystem, quota) are counted but
        never raised: the store is an accelerator, not a dependency.
        """
        fields = {
            f.name: getattr(record, f.name)
            for f in dataclasses.fields(record)
            if f.name != "spec"
        }
        payload = pickle.dumps(fields, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _HEADER.pack(_MAGIC, zlib.crc32(payload), len(payload)) + payload
        path = self.path_for(spec_hash(spec))
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            _STATS["errors"] += 1
            return
        _STATS["writes"] += 1
        _STATS["bytes_written"] += len(blob)

    @staticmethod
    def _check(blob: bytes) -> bytes | None:
        """Validated payload of one entry, or None if corrupt."""
        if len(blob) < _HEADER.size:
            return None
        magic, crc, length = _HEADER.unpack_from(blob)
        payload = blob[_HEADER.size:]
        if magic != _MAGIC or len(payload) != length:
            return None
        if zlib.crc32(payload) != crc:
            return None
        return payload


def open_store() -> RunStore | None:
    """The active store per the environment knobs, or None when off."""
    if not store_active():
        return None
    return RunStore()
