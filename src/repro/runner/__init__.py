"""Deterministic parallel experiment-execution substrate.

Fans the paper's (workload x grid x scheme x seed) simulation sweeps out
across a process pool with bit-identical-to-serial results::

    from repro.runner import ExperimentSpec, run_experiments

    specs = [
        ExperimentSpec("audikw_1", (p, p), scheme, scale="small",
                       jitter_seed=run, placement_seed=run + 1000)
        for p in (4, 8, 16)
        for scheme in ("flat", "binary", "shifted")
        for run in range(2)
    ]
    records = run_experiments(specs)          # REPRO_JOBS workers
    assert records[0].makespan > 0

See :mod:`repro.runner.pool` for the execution model and
:mod:`repro.runner.cache` for the per-worker memoization.
"""

from . import cache, store
from .pool import (
    ExperimentError,
    ParallelRunner,
    available_cpus,
    default_jobs,
    run_experiment,
    run_experiments,
    run_volume,
)
from .spec import ExperimentSpec, RunRecord, VolumeSpec

__all__ = [
    "ExperimentError",
    "ExperimentSpec",
    "ParallelRunner",
    "RunRecord",
    "VolumeSpec",
    "cache",
    "store",
    "available_cpus",
    "default_jobs",
    "run_experiment",
    "run_experiments",
    "run_volume",
]
