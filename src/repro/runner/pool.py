"""Deterministic process-pool fan-out for experiment sweeps.

The paper's figures are reproduced by sweeping (workload x grid x scheme
x seed) discrete-event simulations that are independent by construction,
so they fan out across a :class:`concurrent.futures.ProcessPoolExecutor`
-- the embarrassingly-parallel analogue of the asynchronous task
parallelism the underlying solvers exploit.  Three properties are
load-bearing:

* **Bit-identical to serial.**  Every simulation is deterministic given
  its spec, workers execute the same ``run_experiment`` the serial path
  does, and results are merged back in submission order -- so
  ``jobs=N`` and ``jobs=1`` produce byte-for-byte identical records.
* **Cheap boundaries.**  Only specs (primitives) and records (floats +
  numpy arrays) are pickled; problems, plans, and trees live in the
  per-worker caches of :mod:`repro.runner.cache`, pre-warmed in the
  parent so fork-start workers inherit them copy-on-write.
* **Graceful degradation.**  ``REPRO_JOBS=1`` (or any platform where a
  process pool cannot be created) falls back to a plain in-process loop
  with identical semantics, and a failing experiment raises
  :class:`ExperimentError` naming the exact spec that failed.

``REPRO_JOBS`` selects the worker count everywhere (benchmarks,
``repro check``, ``repro bench``); unset or ``auto`` means "all
available cores".
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence

from . import cache, store
from .spec import ExperimentSpec, RunRecord, VolumeSpec

__all__ = [
    "ExperimentError",
    "ParallelRunner",
    "available_cpus",
    "default_jobs",
    "run_experiment",
    "run_experiments",
    "run_volume",
]

#: Progress callback: (done, total, item, result, elapsed_seconds).
ProgressFn = Callable[[int, int, Any, Any, float], None]


class ExperimentError(RuntimeError):
    """An experiment failed; the message names the offending spec."""


@dataclass
class _Failure:
    """Picklable carrier for a worker-side exception."""

    item: str  # describe()/repr of the failing work item
    error: str  # repr of the exception
    tb: str  # formatted traceback from the worker

    def raise_(self) -> None:
        raise ExperimentError(
            f"experiment failed for {self.item}: {self.error}\n"
            f"--- worker traceback ---\n{self.tb}"
        )


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (unset/``auto``/``0`` = all cores)."""
    raw = os.environ.get("REPRO_JOBS", "").strip().lower()
    if raw not in ("", "auto", "0"):
        try:
            return max(1, int(raw))
        except ValueError:
            pass  # unparseable -> fall through to the core count
    return available_cpus()


def _describe(item: Any) -> str:
    describe = getattr(item, "describe", None)
    if callable(describe):
        return describe()
    text = repr(item)
    return text if len(text) <= 200 else text[:197] + "..."


@dataclass
class _Shipped:
    """Result wrapper carrying per-item cache/store counter deltas.

    The memo caches (:mod:`repro.runner.cache`), the tree-structure
    cache (:mod:`repro.comm.trees`), and the result store
    (:mod:`repro.runner.store`) keep *per-process* cumulative counters.
    Pool workers are separate processes, so without shipping, their
    counters would vanish when the pool exits.  Each work item therefore
    returns the counter *delta* accrued since the previous item in the
    same process; the parent folds deltas in any order into one
    sweep-level total.
    """

    value: Any
    stats: dict[str, int]


def _stats_totals() -> dict[str, int]:
    """Cumulative cache/store counters of this process, flat-named."""
    from ..comm.trees import tree_cache_info

    totals: dict[str, int] = {}
    info = tree_cache_info()
    for k in ("hits", "misses", "evictions"):
        totals[f"tree_cache.{k}"] = info[k]
    for k, v in cache.cache_stats().items():
        totals[f"memo.{k}"] = v
    for k, v in store.store_stats().items():
        totals[f"store.{k}"] = v
    return totals


# Counter values already shipped by this process (baseline for the next
# delta).  Forked workers inherit the parent's baseline, which equals
# the parent's pre-fork totals -- so worker deltas count only work done
# in the worker, never the inherited warm-cache history.
_SHIPPED: dict[str, int] = {}


def _stats_delta() -> dict[str, int]:
    """Counter movement since the last call (and advance the baseline)."""
    totals = _stats_totals()
    delta = {
        k: v - _SHIPPED.get(k, 0) for k, v in totals.items()
    }
    _SHIPPED.clear()
    _SHIPPED.update(totals)
    return {k: v for k, v in delta.items() if v}


def _guarded(fn: Callable[[Any], Any], item: Any) -> Any:
    """Run ``fn(item)``, converting failure into a picklable record and
    attaching the cache/store counter delta this item accrued."""
    try:
        value = fn(item)
    except Exception as exc:
        value = _Failure(_describe(item), repr(exc), traceback.format_exc())
    return _Shipped(value, _stats_delta())


def _worker_init() -> None:
    """Pool initializer: warm the heavy imports once per worker.

    The memo caches in :mod:`repro.runner.cache` are module-level, so on
    fork platforms they arrive pre-populated from the parent; importing
    the simulation stack here keeps even spawn-start workers from paying
    import latency inside the first timed experiment.
    """
    from .. import comm, core, simulate, sparse  # noqa: F401


def run_experiment(spec: ExperimentSpec) -> RunRecord:
    """Execute one DES experiment (in this process) and record it.

    This is the single execution path for serial and parallel runs
    alike; determinism of the parallel runner reduces to determinism of
    the simulation itself.  When the result store is active
    (``REPRO_STORE``, see :mod:`repro.runner.store`) and the spec is
    cacheable, a stored record is returned without simulating -- valid
    precisely because the simulation is deterministic given its spec.
    """
    from ..core.grid import ProcessorGrid
    from ..core.pselinv import SimulatedPSelInv

    rs = store.open_store() if store.cacheable(spec) else None
    if rs is not None and not store.store_refresh():
        stored = rs.get(spec)
        if stored is not None:
            return stored

    prob = cache.get_problem(spec.workload, spec.scale, spec.max_supernode)
    grid = ProcessorGrid(*spec.grid)
    plans = cache.get_plans(prob, grid)
    tree_cache = cache.get_tree_cache(
        prob, grid, spec.scheme, spec.seed, spec.hybrid_threshold,
        engine=spec.engine,
    )
    telemetry = None
    if spec.telemetry:
        from ..obs import HotSpotMonitor, MetricsRegistry, Telemetry

        telemetry = Telemetry(
            metrics=MetricsRegistry(
                workload=spec.workload, scheme=spec.scheme
            ),
            hotspots=HotSpotMonitor(grid.size),
        )
    # Host wall clock for throughput metrics only -- never enters the
    # simulated outcome.
    t0 = perf_counter()  # det: allow(DET003)
    res = SimulatedPSelInv(
        prob.struct,
        grid,
        spec.scheme,
        network=spec.network,
        seed=spec.seed,
        placement_seed=spec.placement_seed,
        jitter_seed=spec.jitter_seed,
        hybrid_threshold=spec.hybrid_threshold,
        per_message_cpu_overhead=spec.per_message_cpu_overhead,
        lookahead=spec.lookahead,
        plans=plans,
        tree_cache=tree_cache,
        telemetry=telemetry,
        engine=spec.engine,
    ).run(max_events=spec.max_events)
    wall = perf_counter() - t0  # det: allow(DET003)
    record = RunRecord.from_result(spec, res)
    record.wall_seconds = wall
    if telemetry is not None:
        reg = telemetry.metrics
        reg.counter("runner.experiments").inc()
        reg.counter("runner.wall_seconds_total").inc(wall)
        for name, count in cache.cache_stats().items():
            reg.gauge(f"runner.cache_{name}").update_max(count)
        mon = telemetry.hotspots
        # "TOTAL" keys the all-category aggregate (JSON-safe, unlike None).
        cats = {"TOTAL": None, **{c: c for c in mon.categories}}
        record.metrics = {
            "snapshot": reg.snapshot(),
            "hotspots": {name: mon.imbalance(c) for name, c in cats.items()},
            "top_ranks": {name: mon.top_ranks(5, c) for name, c in cats.items()},
        }
    if rs is not None:
        rs.put(spec, record)
    return record


def run_volume(spec: VolumeSpec):
    """Execute one analytic volume computation; returns a VolumeReport."""
    from ..core.grid import ProcessorGrid
    from ..core.volume import communication_volumes

    prob = cache.get_problem(spec.workload, spec.scale, spec.max_supernode)
    grid = ProcessorGrid(*spec.grid)
    plans = cache.get_plans(prob, grid)
    return communication_volumes(
        prob.struct, grid, spec.scheme, seed=spec.seed, plans=plans
    )


def _execute(spec: Any) -> Any:
    """Spec dispatch (module-level so it pickles)."""
    if isinstance(spec, ExperimentSpec):
        return run_experiment(spec)
    if isinstance(spec, VolumeSpec):
        return run_volume(spec)
    raise TypeError(f"not an experiment spec: {spec!r}")


class ParallelRunner:
    """Ordered, deterministic fan-out of picklable work items.

    ``jobs=None`` resolves through :func:`default_jobs` (the
    ``REPRO_JOBS`` knob); ``jobs=1`` runs everything in-process.
    Requests above :func:`available_cpus` are clamped (with a one-line
    warning on stderr) -- oversubscribed pools only add scheduler churn
    to CPU-bound simulation workers.  Pass ``force_jobs=True`` to keep
    an oversubscribed count anyway (the jobs-sweep benchmark does, since
    measuring oversubscription is its point).
    ``progress`` is invoked after each completed item, in submission
    order, as ``progress(done, total, item, result, elapsed)``.

    ``stats`` accumulates the cache/store counter deltas shipped back
    from every executed item -- worker-side counters included, which
    would otherwise die with the pool.  :meth:`metrics_snapshot` exports
    them in the obs registry's snapshot shape for merging/printing.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        chunksize: int | None = None,
        progress: ProgressFn | None = None,
        force_jobs: bool = False,
    ) -> None:
        jobs = default_jobs() if jobs is None else max(1, int(jobs))
        cpus = available_cpus()
        if jobs > cpus and not force_jobs:
            print(
                f"repro.runner: clamping jobs={jobs} to {cpus} available "
                "CPUs (pass force_jobs=True / --force-jobs to override)",
                file=sys.stderr,
            )
            jobs = cpus
        self.jobs = jobs
        self.chunksize = chunksize
        self.progress = progress
        self.stats: dict[str, int] = {}

    def _fold(self, delta: dict[str, int]) -> None:
        for k, v in delta.items():
            self.stats[k] = self.stats.get(k, 0) + v

    def metrics_snapshot(self) -> dict:
        """Accumulated sweep counters as an obs-style metrics snapshot.

        Canonical series names: ``comm.tree_cache.*`` (structure cache),
        ``runner.cache.*`` (per-process memo tables), ``runner.store.*``
        (result store), plus guarded ``*.hit_rate`` gauges (0.0 when the
        cache was never consulted -- no division by zero on an idle
        sweep).
        """
        prefix_map = {
            "tree_cache.": "comm.tree_cache.",
            "memo.": "runner.cache.",
            "store.": "runner.store.",
        }
        counters: dict[str, int] = {}
        for k, v in self.stats.items():
            for short, canon in prefix_map.items():
                if k.startswith(short):
                    counters[canon + k[len(short):]] = v
                    break
        gauges: dict[str, float] = {}
        for name, hits_key, miss_key in (
            ("comm.tree_cache.hit_rate", "comm.tree_cache.hits",
             "comm.tree_cache.misses"),
            ("runner.store.hit_rate", "runner.store.hits",
             "runner.store.misses"),
        ):
            hits = counters.get(hits_key, 0)
            lookups = hits + counters.get(miss_key, 0)
            gauges[name] = hits / lookups if lookups else 0.0
        return {
            "counters": {k: counters[k] for k in sorted(counters)},
            "gauges": gauges,
            "histograms": {},
        }

    # -- generic ordered map ------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """``[fn(x) for x in items]``, fanned out across the pool.

        Results come back in item order regardless of completion order.
        ``fn`` must be a picklable module-level callable.  A failing
        item raises :class:`ExperimentError` naming it; a broken or
        unavailable pool falls back to an in-process loop (same results,
        deterministically).
        """
        items = list(items)
        n = len(items)
        # Attribute parent-side work done since the last ship (prewarm,
        # planner activity) to this sweep, and -- critically -- advance
        # the process baseline *before* the pool forks: workers inherit
        # the advanced baseline, so their first item's delta counts only
        # worker-side work, not the parent's warm-cache history (once
        # per worker, which would multiply-count it).
        self._fold(_stats_delta())
        jobs = min(self.jobs, n)
        if jobs <= 1:
            return self._map_serial(fn, items)
        # Snapshot accumulated stats so a mid-sweep pool collapse can
        # roll back the partial fold -- the serial retry re-executes
        # every item and would otherwise double-count the finished ones.
        stats_before = dict(self.stats)
        try:
            return self._map_pool(fn, items, jobs)
        except ExperimentError:
            raise
        except (BrokenProcessPool, ImportError, NotImplementedError, OSError,
                PermissionError, ValueError):
            # Pool could not be created or died wholesale (sandboxes,
            # missing /dev/shm, fork limits): redo serially from scratch
            # -- determinism makes the retry safe.
            self.stats = stats_before
            return self._map_serial(fn, items)

    def _map_serial(self, fn: Callable[[Any], Any], items: list) -> list:
        # Host wall clock for progress reporting only -- never enters
        # results or the simulation's virtual timeline.
        t0 = perf_counter()  # det: allow(DET003)
        out = []
        for i, item in enumerate(items):
            out.append(self._accept(_guarded(fn, item), i, len(items), item, t0))
        return out

    def _map_pool(self, fn: Callable[[Any], Any], items: list, jobs: int) -> list:
        t0 = perf_counter()  # det: allow(DET003) -- progress timing only
        n = len(items)
        # Chunked dispatch: amortize pickling/IPC without starving the
        # tail -- ~4 chunks per worker balances both.
        chunk = self.chunksize or max(1, n // (jobs * 4) or 1)
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - fork-less platform
            ctx = multiprocessing.get_context()
        out = []
        with ProcessPoolExecutor(
            max_workers=jobs, mp_context=ctx, initializer=_worker_init
        ) as pool:
            for i, result in enumerate(
                pool.map(partial(_guarded, fn), items, chunksize=chunk)
            ):
                out.append(self._accept(result, i, n, items[i], t0))
        return out

    def _accept(self, result: Any, i: int, n: int, item: Any, t0: float) -> Any:
        if isinstance(result, _Shipped):
            self._fold(result.stats)
            result = result.value
        if isinstance(result, _Failure):
            result.raise_()
        if self.progress is not None:
            elapsed = perf_counter() - t0  # det: allow(DET003)
            self.progress(i + 1, n, item, result, elapsed)
        return result

    # -- experiment sweeps ---------------------------------------------------

    def run(self, specs: Sequence[Any], *, prewarm: bool = True) -> list:
        """Execute a sweep of specs; records return in spec order.

        ``prewarm`` populates the parent-process problem/plan caches
        first (fork-start workers then inherit them copy-on-write; it is
        also simply the serial path's memoization).
        """
        specs = list(specs)
        if prewarm:
            cache.prewarm(specs)
        return self.map(_execute, specs)


def run_experiments(
    specs: Sequence[Any],
    jobs: int | None = None,
    *,
    progress: ProgressFn | None = None,
    prewarm: bool = True,
    force_jobs: bool = False,
) -> list:
    """Convenience wrapper: one sweep through a :class:`ParallelRunner`."""
    runner = ParallelRunner(jobs, progress=progress, force_jobs=force_jobs)
    return runner.run(specs, prewarm=prewarm)
