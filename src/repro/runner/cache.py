"""Per-process memo caches for analyzed problems, plans, and trees.

One copy of these dicts lives in every process that executes
experiments: the parent (serial runs, and as the pre-fork template) and
each pool worker.  A worker analyzes a workload at most once, builds the
plans for a ``(problem, grid)`` at most once, and shares one
communication-tree cache across all runs with identical
``(problem, grid, scheme, seed)`` -- mirroring what
``benchmarks/_harness.py`` always did for the serial sweeps, which in
fact delegates here now so parent and workers share one implementation.

On fork-capable platforms :func:`prewarm` lets the parent populate the
caches *before* the pool spawns, so every worker inherits them
copy-on-write and pays zero re-analysis; on spawn platforms workers fill
their caches lazily on first use.

The reverse map ``_PROBLEM_KEYS`` makes problem -> key lookup O(1) by
``id``; entries are never evicted, so a cached problem stays alive and
its ``id`` can never be reused by the allocator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from ..core.grid import ProcessorGrid
    from ..sparse import AnalyzedProblem

__all__ = [
    "get_problem",
    "get_plans",
    "get_tree_cache",
    "problem_key_of",
    "prewarm",
    "cache_info",
    "cache_stats",
    "clear",
]

_PROBLEMS: dict[tuple, "AnalyzedProblem"] = {}
_PROBLEM_KEYS: dict[int, tuple] = {}  # id(problem) -> memo key, O(1)
_PLANS: dict[tuple, list] = {}
_TREE_CACHES: dict[tuple, dict] = {}

# Hit/miss tallies per table (telemetry reads these via cache_stats();
# plain ints, reset by clear()).
_STATS = {
    "problem_hits": 0,
    "problem_misses": 0,
    "plan_hits": 0,
    "plan_misses": 0,
    "tree_cache_hits": 0,
    "tree_cache_misses": 0,
}


def get_problem(
    workload: str, scale: str = "small", max_supernode: int = 8
) -> "AnalyzedProblem":
    """Memoized workload generation + symbolic analysis."""
    key = (workload, scale, max_supernode)
    prob = _PROBLEMS.get(key)
    if prob is not None:
        _STATS["problem_hits"] += 1
        return prob
    _STATS["problem_misses"] += 1
    from ..sparse import analyze
    from ..workloads import make_workload

    matrix = make_workload(workload, scale)
    prob = analyze(matrix, ordering="nd", max_supernode=max_supernode)
    _PROBLEMS[key] = prob
    # In-process reverse map only; ids never leave this process and
    # entries are never evicted, so the id stays valid for the key.
    _PROBLEM_KEYS[id(prob)] = key  # det: allow(DET003)
    return prob


def problem_key_of(prob: "AnalyzedProblem") -> tuple | None:
    """The memo key ``prob`` was cached under (None if not from here)."""
    return _PROBLEM_KEYS.get(id(prob))  # det: allow(DET003)


def get_plans(prob: "AnalyzedProblem", grid: "ProcessorGrid") -> list:
    """Memoized communication plans per (problem, grid).

    Keyed on ``(workload, scale, max_supernode, pr, pc)`` -- NOT on
    ``id(prob)`` alone, which the allocator could reuse after garbage
    collection for uncached problems.  Problems that did not come from
    :func:`get_problem` are computed fresh, uncached.
    """
    from ..core.plan import iter_plans

    pkey = problem_key_of(prob)
    if pkey is None:
        return list(iter_plans(prob.struct, grid))
    key = (*pkey, grid.pr, grid.pc)
    plans = _PLANS.get(key)
    if plans is None:
        _STATS["plan_misses"] += 1
        plans = list(iter_plans(prob.struct, grid))
        _PLANS[key] = plans
    else:
        _STATS["plan_hits"] += 1
    return plans


def get_tree_cache(
    prob: "AnalyzedProblem",
    grid: "ProcessorGrid",
    scheme: str,
    seed: int,
    hybrid_threshold: int = 8,
    engine: str = "batch",
) -> dict:
    """Shared communication-tree cache for one simulation configuration.

    Trees depend on ``(struct, grid, scheme, seed, hybrid_threshold)``
    -- and on the engine, which fixes the cached representation
    (positional ``TreeArrays`` for batch, dict ``CommTree`` for legacy)
    -- but not on jitter/placement seeds, so repeated runs of a sweep
    point share one cache -- the same sharing the serial Fig. 8 loop
    used.  Problems outside the memo get a fresh private cache.
    """
    pkey = problem_key_of(prob)
    if pkey is None:
        return {}
    key = (*pkey, grid.pr, grid.pc, scheme, seed, hybrid_threshold, engine)
    cache = _TREE_CACHES.get(key)
    if cache is None:
        _STATS["tree_cache_misses"] += 1
        cache = {}
        _TREE_CACHES[key] = cache
    else:
        _STATS["tree_cache_hits"] += 1
    return cache


def prewarm(specs: Iterable) -> None:
    """Populate the caches for every distinct problem/grid in ``specs``.

    Called by the runner in the parent process before the pool starts:
    with a fork start method the workers inherit the filled caches for
    free.  Specs without the expected fields are ignored.
    """
    from ..core.grid import ProcessorGrid

    for spec in specs:
        workload = getattr(spec, "workload", None)
        if workload is None:
            continue
        prob = get_problem(workload, spec.scale, spec.max_supernode)
        grid = getattr(spec, "grid", None)
        if grid is not None:
            get_plans(prob, ProcessorGrid(*grid))


def cache_info() -> dict[str, int]:
    """Entry counts (for tests and the runner benchmark report)."""
    return {
        "problems": len(_PROBLEMS),
        "plans": len(_PLANS),
        "tree_caches": len(_TREE_CACHES),
    }


def cache_stats() -> dict[str, int]:
    """Cumulative hit/miss tallies per table (this process only)."""
    return dict(_STATS)


def clear() -> None:
    """Drop every cached problem, plan list, and tree cache."""
    _PROBLEMS.clear()
    _PROBLEM_KEYS.clear()
    _PLANS.clear()
    _TREE_CACHES.clear()
    for k in _STATS:
        _STATS[k] = 0
