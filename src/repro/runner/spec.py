"""Picklable experiment descriptions and compact cross-process results.

The parallel runner ships work to worker processes as *specs* -- small
frozen dataclasses of primitives (strings, ints, tuples, a frozen
:class:`~repro.simulate.network.NetworkConfig`) -- and ships results
back as *records* of plain floats and numpy arrays.  Nothing heavy
(analyzed problems, supernode plans, communication trees) ever crosses a
process boundary: workers rebuild those through the per-process memo
caches in :mod:`repro.runner.cache`.

Two spec kinds cover the paper's sweeps:

* :class:`ExperimentSpec` -- one discrete-event PSelInv simulation
  (Fig. 8 / Fig. 9 / ablations); executes to a :class:`RunRecord`.
* :class:`VolumeSpec` -- one analytic volume computation (Tables I/II,
  Figs. 4-7); executes to a
  :class:`~repro.core.volume.VolumeReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..simulate.network import NetworkConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.pselinv import PSelInvResult

__all__ = ["ExperimentSpec", "VolumeSpec", "RunRecord"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One deterministic DES run, fully described by picklable values.

    ``workload``/``scale``/``max_supernode`` identify the analyzed
    problem (the per-worker cache key); the rest parameterize
    :class:`~repro.core.pselinv.SimulatedPSelInv` exactly.  ``label`` is
    an opaque caller tag for correlating records with sweep axes (it
    does not influence execution).
    """

    workload: str
    grid: tuple[int, int]
    scheme: str
    scale: str = "small"
    max_supernode: int = 8
    network: NetworkConfig | None = None
    seed: int = 20160523
    placement_seed: int | None = None
    jitter_seed: int = 0
    lookahead: int | None = 32
    hybrid_threshold: int = 8
    per_message_cpu_overhead: float = 0.0
    max_events: int | None = None
    label: str = ""
    # Enable the observability layer (repro.obs) for this run: the worker
    # attaches a metrics registry + hot-spot monitor and ships the
    # snapshot back in ``RunRecord.metrics``.  Off by default; the
    # simulated outcome is bit-identical either way.
    telemetry: bool = False
    # DES engine: "batch" (calendar-queue scheduler, SoA message
    # records), "vectorized" (batch plus compiled collective state
    # machines and batched delivery), or "legacy" (binary-heap
    # reference).  The simulated outcome is bit-identical across
    # engines; this knob exists for head-to-head benchmarking and as an
    # escape hatch / oracle.
    engine: str = "batch"

    def describe(self) -> str:
        """One line naming the experiment (used in progress and errors)."""
        tag = f" [{self.label}]" if self.label else ""
        return (
            f"{self.workload}/{self.scale} grid={self.grid[0]}x{self.grid[1]} "
            f"scheme={self.scheme} seed={self.seed} "
            f"jitter={self.jitter_seed} placement={self.placement_seed}{tag}"
        )


@dataclass(frozen=True)
class VolumeSpec:
    """One analytic :func:`~repro.core.communication_volumes` evaluation."""

    workload: str
    grid: tuple[int, int]
    scheme: str
    scale: str = "small"
    max_supernode: int = 8
    seed: int = 20160523
    label: str = ""

    def describe(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        return (
            f"volumes {self.workload}/{self.scale} "
            f"grid={self.grid[0]}x{self.grid[1]} scheme={self.scheme}{tag}"
        )


def _dict_equal(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


@dataclass
class RunRecord:
    """The cross-process result of one DES experiment.

    Holds everything the sweep benchmarks read out of a
    :class:`~repro.core.pselinv.PSelInvResult` -- elapsed virtual time,
    event count, the Fig. 9 compute/communication split, and the
    per-rank :class:`~repro.simulate.machine.CommStats` tables -- as
    plain floats and numpy arrays, so a record pickles in microseconds
    regardless of problem size.
    """

    spec: ExperimentSpec
    makespan: float
    events: int
    compute_time: float
    communication_time: float
    sent: dict[str, np.ndarray] = field(default_factory=dict)
    received: dict[str, np.ndarray] = field(default_factory=dict)
    messages_sent: dict[str, np.ndarray] = field(default_factory=dict)
    compute_busy: np.ndarray = field(default_factory=lambda: np.zeros(0))
    recv_overhead_busy: np.ndarray = field(default_factory=lambda: np.zeros(0))
    nic_out_busy: np.ndarray = field(default_factory=lambda: np.zeros(0))
    nic_in_busy: np.ndarray = field(default_factory=lambda: np.zeros(0))
    # Observability payload (populated when ``spec.telemetry``): the
    # worker-side metrics snapshot plus derived hot-spot statistics.
    # Host-dependent (wall clock), so deliberately excluded from
    # :meth:`same_outcome`.
    metrics: dict = field(default_factory=dict)
    # Host wall-clock seconds the worker spent in the DES (always
    # recorded; excluded from :meth:`same_outcome` for the same reason).
    wall_seconds: float = 0.0

    @classmethod
    def from_result(cls, spec: ExperimentSpec, res: "PSelInvResult") -> "RunRecord":
        stats = res.stats
        return cls(
            spec=spec,
            makespan=res.makespan,
            events=res.events,
            compute_time=res.compute_time,
            communication_time=res.communication_time,
            sent=stats.sent,
            received=stats.received,
            messages_sent=stats.messages_sent,
            compute_busy=stats.compute_busy,
            recv_overhead_busy=stats.recv_overhead_busy,
            nic_out_busy=stats.nic_out_busy,
            nic_in_busy=stats.nic_in_busy,
        )

    def same_outcome(self, other: "RunRecord") -> bool:
        """Bitwise equality of every simulated quantity (spec/label aside).

        This is the parallel-vs-serial determinism contract: two records
        for the same spec must agree exactly, not approximately.
        """
        return (
            self.makespan == other.makespan
            and self.events == other.events
            and self.compute_time == other.compute_time
            and self.communication_time == other.communication_time
            and _dict_equal(self.sent, other.sent)
            and _dict_equal(self.received, other.received)
            and _dict_equal(self.messages_sent, other.messages_sent)
            and np.array_equal(self.compute_busy, other.compute_busy)
            and np.array_equal(self.recv_overhead_busy, other.recv_overhead_busy)
            and np.array_equal(self.nic_out_busy, other.nic_out_busy)
            and np.array_equal(self.nic_in_busy, other.nic_in_busy)
        )
