"""Hierarchical network model of an Edison-like distributed machine.

The paper's platform (NERSC Edison, Cray XC30, Aries dragonfly) shows up in
its analysis through three mechanisms, all modelled here:

1. **Injection serialization** -- a rank's outgoing messages share one NIC,
   so a flat-tree root that must push ``p - 1`` messages pays for them
   back-to-back.  This is the "instantaneous hot spot" of section III.
2. **Hierarchical locality** -- ranks on the same node communicate through
   shared memory (low latency, high bandwidth); ranks in the same
   electrical group are closer than ranks across groups.  MPI places
   consecutive ranks on the same node first, which is why the binary
   tree's "split the sorted rank list" heuristic keeps traffic local.
3. **Inhomogeneity / placement variability** -- different job placements
   and shared routers make nominally identical runs differ.  We model it
   as a seeded log-normal multiplier per node pair plus an optional random
   node placement, which is exactly the paper's explanation of its error
   bars (Fig. 8).

Default constants are loosely calibrated to Edison-class hardware
(microsecond latencies, GB/s links) but are knobs, not measurements; the
reproduction targets curve *shapes*, not absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NetworkConfig", "Network"]


@dataclass(frozen=True)
class NetworkConfig:
    """Tunable parameters of the machine model (times in seconds, bytes)."""

    cores_per_node: int = 24
    nodes_per_group: int = 64
    # Point-to-point latency by distance class.
    latency_intra_node: float = 6.0e-7
    latency_intra_group: float = 1.8e-6
    latency_inter_group: float = 3.0e-6
    # Per-byte transfer cost (1 / bandwidth) by distance class.  These are
    # effective per-flow MPI bandwidths (well below link rates, as on any
    # loaded dragonfly), not hardware peaks.
    bw_intra_node: float = 6.0e9
    bw_intra_group: float = 2.2e9
    bw_inter_group: float = 1.6e9
    # NIC injection: per-message overhead + per-byte serialization at the
    # sender.  This is the resource a flat-tree root saturates.
    injection_overhead: float = 1.0e-6
    injection_bandwidth: float = 2.5e9
    # NIC ejection: per-byte serialization at the receiver.  This is what
    # a flat *reduce* root saturates when p-1 contributions converge.
    ejection_bandwidth: float = 2.5e9
    # Receive-side per-message CPU overhead (matching + copy start).
    receive_overhead: float = 8.0e-7
    # Log-normal jitter sigma applied per node pair (0 = homogeneous net).
    jitter_sigma: float = 0.0
    # Compute rate per rank, flops/second (BLAS3 on small supernodal
    # blocks on one Ivy Bridge core-ish).
    flop_rate: float = 8.0e9
    # Fixed per-task dispatch overhead (scheduling, pointer chasing).
    task_overhead: float = 5.0e-7


class Network:
    """Distance, transfer-time, and jitter queries for a set of ranks.

    ``placement_seed`` shuffles the rank -> node assignment at node
    granularity (None keeps the linear MPI-like placement);
    ``jitter_seed`` draws the per-node-pair multipliers.  Jitter factors
    are memoized lazily so huge rank counts stay cheap.

    The transfer-time queries sit on the simulator's innermost loop (one
    :meth:`injection_time` + :meth:`transit_time` per message, millions
    per run), so the constructor flattens the config into per-distance-
    class ``(latency, 1/bandwidth)`` scalars and the jitter memo into a
    dense ``node x node`` table at sweep-sized node counts -- the
    queries then run on local loads, one multiply, and one add, with no
    per-call attribute chasing, tuple hashing, or branching on config.
    """

    # Below this node count the pair-jitter memo is a flat dense list
    # indexed ``a * nnodes + b`` (every grid the sweeps use lands here:
    # even 46x46 ranks / 24 per node is only 89 nodes); above it the
    # dense table would waste memory and the dict memo takes over.
    _FLAT_JITTER_MAX_NODES = 512

    def __init__(
        self,
        nranks: int,
        config: NetworkConfig | None = None,
        *,
        placement_seed: int | None = None,
        jitter_seed: int = 0,
    ) -> None:
        self.nranks = nranks
        self.config = config or NetworkConfig()
        cfg = self.config
        nnodes = (nranks + cfg.cores_per_node - 1) // cfg.cores_per_node
        self.nnodes = nnodes
        node_ids = np.arange(nnodes)
        if placement_seed is not None:
            rng = np.random.default_rng(placement_seed)
            node_ids = rng.permutation(node_ids)
        # node_of[r]: the physical node hosting rank r.
        node_of = node_ids[np.arange(nranks) // cfg.cores_per_node]
        self.node_of = node_of
        self.group_of = node_of // cfg.nodes_per_group
        # Hot-path copies as plain lists (scalar ndarray indexing is slow).
        self._node_list = node_of.tolist()
        self._group_list = self.group_of.tolist()
        self._jitter_rng = np.random.default_rng(jitter_seed)
        self._jitter_seed = jitter_seed
        self._jitter: dict[tuple[int, int], float] = {}
        # Flattened per-distance-class (latency, 1/bandwidth) table and
        # NIC constants (see class docstring).
        self._lat0, self._lat1, self._lat2 = (
            cfg.latency_intra_node,
            cfg.latency_intra_group,
            cfg.latency_inter_group,
        )
        self._ibw0 = 1.0 / cfg.bw_intra_node
        self._ibw1 = 1.0 / cfg.bw_intra_group
        self._ibw2 = 1.0 / cfg.bw_inter_group
        self._inj_overhead = cfg.injection_overhead
        self._inj_ibw = 1.0 / cfg.injection_bandwidth
        self._ej_ibw = 1.0 / cfg.ejection_bandwidth
        self._no_jitter = cfg.jitter_sigma <= 0
        # Dense jitter memo, 0.0 = "not drawn yet" (a log-normal draw is
        # never exactly zero, so the sentinel cannot collide).
        if not self._no_jitter and nnodes <= self._FLAT_JITTER_MAX_NODES:
            self._jitter_flat: list[float] | None = [0.0] * (nnodes * nnodes)
        else:
            self._jitter_flat = None
        # Set by instrument(); the batch machine checks it to decide
        # whether it may inline the arithmetic below (skipping the
        # method calls would skip the telemetry tallies).
        self._instrumented = False

    # -- queries ------------------------------------------------------------

    def distance_class(self, src: int, dst: int) -> int:
        """0 = same node, 1 = same group, 2 = across groups."""
        if self._node_list[src] == self._node_list[dst]:
            return 0
        if self._group_list[src] == self._group_list[dst]:
            return 1
        return 2

    def _draw_jitter(self, a: int, b: int) -> float:
        """The per-node-pair log-normal draw, ``a < b`` node ids.

        Derived deterministically from the pair so lookup order does not
        change the draw (and the flat and dict memos agree exactly).
        """
        rng = np.random.default_rng(
            (self._jitter_seed * 1_000_003 + a * 1009 + b) & 0x7FFFFFFF
        )
        return float(rng.lognormal(mean=0.0, sigma=self.config.jitter_sigma))

    def _node_jitter(self, a: int, b: int) -> float:
        """Memoized jitter factor for a distinct node pair."""
        if a > b:
            a, b = b, a
        flat = self._jitter_flat
        if flat is not None:
            idx = a * self.nnodes + b
            j = flat[idx]
            if j == 0.0:
                j = self._draw_jitter(a, b)
                flat[idx] = j
            return j
        key = (a, b)
        j = self._jitter.get(key)
        if j is None:
            j = self._draw_jitter(a, b)
            self._jitter[key] = j
        return j

    def _pair_jitter(self, src: int, dst: int) -> float:
        if self._no_jitter:
            return 1.0
        a, b = self._node_list[src], self._node_list[dst]
        if a == b:
            return 1.0  # shared memory does not jitter
        return self._node_jitter(a, b)

    def injection_time(self, nbytes: int) -> float:
        """Sender NIC occupancy for one message."""
        return self._inj_overhead + nbytes * self._inj_ibw

    def ejection_time(self, nbytes: int) -> float:
        """Receiver NIC occupancy for one message."""
        return nbytes * self._ej_ibw

    def transit_time(self, src: int, dst: int, nbytes: int) -> float:
        """Wire time after injection: latency + size / bandwidth, jittered."""
        nl = self._node_list
        a = nl[src]
        b = nl[dst]
        if a == b:
            return self._lat0 + nbytes * self._ibw0
        gl = self._group_list
        if gl[src] == gl[dst]:
            t = self._lat1 + nbytes * self._ibw1
        else:
            t = self._lat2 + nbytes * self._ibw2
        if self._no_jitter:
            return t
        return t * self._node_jitter(a, b)

    def compute_time(self, flops: float) -> float:
        """CPU time for a compute task of the given flop count."""
        return self.config.task_overhead + flops / self.config.flop_rate

    def pair_params(self, src: int, dst: int) -> tuple[float, float, float]:
        """``(latency, 1/bandwidth, jitter)`` for one rank pair.

        The batch machine memoizes this triple per pair and computes
        ``transit = (latency + nbytes / bandwidth) * jitter`` inline.
        Bit-identical to :meth:`transit_time` for every case: intra-node
        and jitter-free pairs return a jitter of exactly 1.0, and an
        IEEE multiply by 1.0 preserves the value bit-for-bit, while the
        jittered case uses the same ``(lat + nb*ibw) * j`` op order.
        """
        nl = self._node_list
        a = nl[src]
        b = nl[dst]
        if a == b:
            return (self._lat0, self._ibw0, 1.0)
        if self._group_list[src] == self._group_list[dst]:
            lat, ibw = self._lat1, self._ibw1
        else:
            lat, ibw = self._lat2, self._ibw2
        if self._no_jitter:
            return (lat, ibw, 1.0)
        return (lat, ibw, self._node_jitter(a, b))

    # -- telemetry -----------------------------------------------------------

    def instrument(self, metrics) -> None:
        """Wrap the hot-path queries with per-distance-class tallies.

        Installs instrumented closures as *instance attributes* (they
        shadow the bound methods), tallying message counts, bytes, and
        modelled seconds into ``metrics`` -- injections at the sender,
        ejections at the receiver, and transits split by distance class
        (0 = intra-node, 1 = intra-group, 2 = inter-group).

        Must be called **before** constructing the
        :class:`~repro.simulate.machine.Machine`, which pre-binds these
        queries at construction; an uninstrumented network stays on the
        original methods with zero added cost.
        """
        self._instrumented = True
        inj_count = metrics.counter("net.injections")
        inj_bytes = metrics.counter("net.injection_bytes")
        inj_secs = metrics.counter("net.injection_seconds")
        ej_count = metrics.counter("net.ejections")
        ej_bytes = metrics.counter("net.ejection_bytes")
        tr_count = [metrics.counter("net.transits", dclass=c) for c in range(3)]
        tr_bytes = [
            metrics.counter("net.transit_bytes", dclass=c) for c in range(3)
        ]
        tr_secs = [
            metrics.counter("net.transit_seconds", dclass=c) for c in range(3)
        ]
        base_inj = self.injection_time
        base_ej = self.ejection_time
        base_transit = self.transit_time
        dclass = self.distance_class

        def injection_time(nbytes: int) -> float:
            t = base_inj(nbytes)
            inj_count.inc()
            inj_bytes.inc(nbytes)
            inj_secs.inc(t)
            return t

        def ejection_time(nbytes: int) -> float:
            ej_count.inc()
            ej_bytes.inc(nbytes)
            return base_ej(nbytes)

        def transit_time(src: int, dst: int, nbytes: int) -> float:
            c = dclass(src, dst)
            t = base_transit(src, dst, nbytes)
            tr_count[c].inc()
            tr_bytes[c].inc(nbytes)
            tr_secs[c].inc(t)
            return t

        self.injection_time = injection_time  # type: ignore[method-assign]
        self.ejection_time = ejection_time  # type: ignore[method-assign]
        self.transit_time = transit_time  # type: ignore[method-assign]
