"""Hierarchical network model of an Edison-like distributed machine.

The paper's platform (NERSC Edison, Cray XC30, Aries dragonfly) shows up in
its analysis through three mechanisms, all modelled here:

1. **Injection serialization** -- a rank's outgoing messages share one NIC,
   so a flat-tree root that must push ``p - 1`` messages pays for them
   back-to-back.  This is the "instantaneous hot spot" of section III.
2. **Hierarchical locality** -- ranks on the same node communicate through
   shared memory (low latency, high bandwidth); ranks in the same
   electrical group are closer than ranks across groups.  MPI places
   consecutive ranks on the same node first, which is why the binary
   tree's "split the sorted rank list" heuristic keeps traffic local.
3. **Inhomogeneity / placement variability** -- different job placements
   and shared routers make nominally identical runs differ.  We model it
   as a seeded log-normal multiplier per node pair plus an optional random
   node placement, which is exactly the paper's explanation of its error
   bars (Fig. 8).

Default constants are loosely calibrated to Edison-class hardware
(microsecond latencies, GB/s links) but are knobs, not measurements; the
reproduction targets curve *shapes*, not absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NetworkConfig", "Network"]


@dataclass(frozen=True)
class NetworkConfig:
    """Tunable parameters of the machine model (times in seconds, bytes)."""

    cores_per_node: int = 24
    nodes_per_group: int = 64
    # Point-to-point latency by distance class.
    latency_intra_node: float = 6.0e-7
    latency_intra_group: float = 1.8e-6
    latency_inter_group: float = 3.0e-6
    # Per-byte transfer cost (1 / bandwidth) by distance class.  These are
    # effective per-flow MPI bandwidths (well below link rates, as on any
    # loaded dragonfly), not hardware peaks.
    bw_intra_node: float = 6.0e9
    bw_intra_group: float = 2.2e9
    bw_inter_group: float = 1.6e9
    # NIC injection: per-message overhead + per-byte serialization at the
    # sender.  This is the resource a flat-tree root saturates.
    injection_overhead: float = 1.0e-6
    injection_bandwidth: float = 2.5e9
    # NIC ejection: per-byte serialization at the receiver.  This is what
    # a flat *reduce* root saturates when p-1 contributions converge.
    ejection_bandwidth: float = 2.5e9
    # Receive-side per-message CPU overhead (matching + copy start).
    receive_overhead: float = 8.0e-7
    # Log-normal jitter sigma applied per node pair (0 = homogeneous net).
    jitter_sigma: float = 0.0
    # Compute rate per rank, flops/second (BLAS3 on small supernodal
    # blocks on one Ivy Bridge core-ish).
    flop_rate: float = 8.0e9
    # Fixed per-task dispatch overhead (scheduling, pointer chasing).
    task_overhead: float = 5.0e-7


class Network:
    """Distance, transfer-time, and jitter queries for a set of ranks.

    ``placement_seed`` shuffles the rank -> node assignment at node
    granularity (None keeps the linear MPI-like placement);
    ``jitter_seed`` draws the per-node-pair multipliers.  Jitter factors
    are memoized lazily so huge rank counts stay cheap.
    """

    def __init__(
        self,
        nranks: int,
        config: NetworkConfig | None = None,
        *,
        placement_seed: int | None = None,
        jitter_seed: int = 0,
    ) -> None:
        self.nranks = nranks
        self.config = config or NetworkConfig()
        cfg = self.config
        nnodes = (nranks + cfg.cores_per_node - 1) // cfg.cores_per_node
        self.nnodes = nnodes
        node_ids = np.arange(nnodes)
        if placement_seed is not None:
            rng = np.random.default_rng(placement_seed)
            node_ids = rng.permutation(node_ids)
        # node_of[r]: the physical node hosting rank r.
        node_of = node_ids[np.arange(nranks) // cfg.cores_per_node]
        self.node_of = node_of
        self.group_of = node_of // cfg.nodes_per_group
        # Hot-path copies as plain lists (scalar ndarray indexing is slow).
        self._node_list = node_of.tolist()
        self._group_list = self.group_of.tolist()
        self._jitter_rng = np.random.default_rng(jitter_seed)
        self._jitter_seed = jitter_seed
        self._jitter: dict[tuple[int, int], float] = {}

    # -- queries ------------------------------------------------------------

    def distance_class(self, src: int, dst: int) -> int:
        """0 = same node, 1 = same group, 2 = across groups."""
        if self._node_list[src] == self._node_list[dst]:
            return 0
        if self._group_list[src] == self._group_list[dst]:
            return 1
        return 2

    def _pair_jitter(self, src: int, dst: int) -> float:
        if self.config.jitter_sigma <= 0:
            return 1.0
        a, b = self._node_list[src], self._node_list[dst]
        if a == b:
            return 1.0  # shared memory does not jitter
        key = (a, b) if a < b else (b, a)
        j = self._jitter.get(key)
        if j is None:
            # Derive deterministically from the pair so lookup order does
            # not change the draw.
            rng = np.random.default_rng(
                (self._jitter_seed * 1_000_003 + key[0] * 1009 + key[1]) & 0x7FFFFFFF
            )
            j = float(rng.lognormal(mean=0.0, sigma=self.config.jitter_sigma))
            self._jitter[key] = j
        return j

    def injection_time(self, nbytes: int) -> float:
        """Sender NIC occupancy for one message."""
        cfg = self.config
        return cfg.injection_overhead + nbytes / cfg.injection_bandwidth

    def ejection_time(self, nbytes: int) -> float:
        """Receiver NIC occupancy for one message."""
        return nbytes / self.config.ejection_bandwidth

    def transit_time(self, src: int, dst: int, nbytes: int) -> float:
        """Wire time after injection: latency + size / bandwidth, jittered."""
        cfg = self.config
        d = self.distance_class(src, dst)
        if d == 0:
            lat, bw = cfg.latency_intra_node, cfg.bw_intra_node
        elif d == 1:
            lat, bw = cfg.latency_intra_group, cfg.bw_intra_group
        else:
            lat, bw = cfg.latency_inter_group, cfg.bw_inter_group
        return (lat + nbytes / bw) * self._pair_jitter(src, dst)

    def compute_time(self, flops: float) -> float:
        """CPU time for a compute task of the given flop count."""
        return self.config.task_overhead + flops / self.config.flop_rate
