"""Simulated message-passing machine: ranks, NICs, and delivery.

Binds the :class:`~repro.simulate.engine.Simulator` clock to the
:class:`~repro.simulate.network.Network` cost model and exposes the small
asynchronous API the PSelInv layers program against:

* :meth:`Machine.post_send` -- non-blocking tagged send.  The sender's NIC
  is occupied for the injection time (messages queue FIFO behind each
  other -- the flat-tree hot-spot mechanism), then the message transits
  and is delivered to the receiver's handler, respecting per
  ``(src, dst)`` channel FIFO order like MPI's non-overtaking rule.
  Converging messages additionally serialize through the receiver's
  NIC-in port (what a flat *reduce* root saturates).
* :meth:`Machine.post_compute` -- enqueue a compute task on a rank's CPU;
  tasks on one rank serialize (one core per rank, as in the paper's
  flat-MPI runs).

Every byte movement is tallied per rank *and per category* in
:class:`CommStats`, which is what the Table I / Table II / heat-map
benchmarks read out.

Implementation note: this is the simulator's innermost loop (millions of
messages per run), so per-rank clocks and counters are plain Python lists
-- scalar indexing on ndarrays is several times slower.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappush
from typing import Any, Callable, NamedTuple

import numpy as np

from .engine import BatchSimulator, Simulator
from .network import Network

__all__ = ["Message", "CommStats", "Machine", "BatchMachine", "TraceEvent"]


class TraceEvent(NamedTuple):
    """One structured event-log record (the ``repro check`` trace hook).

    ``kind`` is ``"send"`` (stamped when :meth:`Machine.post_send` accepts
    the message, self-sends included) or ``"deliver"`` (stamped when the
    receiver's handler is about to run).  Times are virtual-clock seconds.
    The happens-before trace validator (:func:`repro.check.validate_trace`)
    replays these records against the static plan model.
    """

    kind: str
    time: float
    src: int
    dst: int
    tag: Any
    nbytes: int


class Message:
    """An in-flight message (payload is opaque to the machine)."""

    __slots__ = ("src", "dst", "tag", "nbytes", "category", "payload")

    def __init__(self, src, dst, tag, nbytes, category, payload=None):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.category = category
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.src}->{self.dst}, tag={self.tag!r}, "
            f"{self.nbytes}B, {self.category})"
        )


class CommStats:
    """Per-rank byte and time counters, split by message category."""

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self._sent: dict[str, list[float]] = {}
        self._received: dict[str, list[float]] = {}
        # Message *counts* are integers and stay integers all the way to
        # the read-out (the heat-map layer asserts the dtype).
        self._messages_sent: dict[str, list[int]] = {}
        self._compute_busy = [0.0] * nranks
        self._recv_overhead_busy = [0.0] * nranks
        self._nic_out_busy = [0.0] * nranks
        self._nic_in_busy = [0.0] * nranks

    # -- hot-path accumulators (lists, not ndarrays) -----------------------

    def _get(self, table: dict[str, list[float]], category: str) -> list[float]:
        arr = table.get(category)
        if arr is None:
            arr = [0.0] * self.nranks
            table[category] = arr
        return arr

    def _get_counts(self, table: dict[str, list[int]], category: str) -> list[int]:
        arr = table.get(category)
        if arr is None:
            arr = [0] * self.nranks
            table[category] = arr
        return arr

    def on_send(self, msg: Message) -> None:
        self._get(self._sent, msg.category)[msg.src] += msg.nbytes
        self._get_counts(self._messages_sent, msg.category)[msg.src] += 1

    def on_receive(self, msg: Message) -> None:
        self._get(self._received, msg.category)[msg.dst] += msg.nbytes

    # -- read-out views ------------------------------------------------------

    @property
    def sent(self) -> dict[str, np.ndarray]:
        return {k: np.asarray(v) for k, v in self._sent.items()}

    @property
    def received(self) -> dict[str, np.ndarray]:
        return {k: np.asarray(v) for k, v in self._received.items()}

    @property
    def messages_sent(self) -> dict[str, np.ndarray]:
        """Per-rank message counts by category (integer dtype)."""
        return {
            k: np.asarray(v, dtype=np.int64)
            for k, v in self._messages_sent.items()
        }

    @property
    def compute_busy(self) -> np.ndarray:
        return np.asarray(self._compute_busy)

    @property
    def recv_overhead_busy(self) -> np.ndarray:
        return np.asarray(self._recv_overhead_busy)

    @property
    def nic_out_busy(self) -> np.ndarray:
        return np.asarray(self._nic_out_busy)

    @property
    def nic_in_busy(self) -> np.ndarray:
        return np.asarray(self._nic_in_busy)

    def total_sent(self, category: str | None = None) -> np.ndarray:
        """Bytes sent per rank (one category, or all summed)."""
        if category is not None:
            return np.asarray(self._sent.get(category, [0.0] * self.nranks))
        out = np.zeros(self.nranks)
        for arr in self._sent.values():
            out += arr
        return out

    def total_received(self, category: str | None = None) -> np.ndarray:
        """Bytes received per rank (one category, or all summed)."""
        if category is not None:
            return np.asarray(self._received.get(category, [0.0] * self.nranks))
        out = np.zeros(self.nranks)
        for arr in self._received.values():
            out += arr
        return out


class Machine:
    """The simulated distributed-memory machine."""

    # Below this rank count the per-(src, dst) channel clocks live in a
    # flat dense list (no tuple allocation / hashing per message); above
    # it the dense table would waste memory and a dict takes over.
    _FLAT_CHANNEL_MAX_RANKS = 1024

    # Stats container, overridable per machine flavor (the vectorized
    # machine swaps in numpy-column accumulators).
    _stats_cls = CommStats

    def __init__(
        self,
        nranks: int,
        network: Network,
        sim: Simulator | None = None,
        *,
        event_log: list | None = None,
        recorder=None,
        metrics=None,
    ):
        if network.nranks < nranks:
            raise ValueError("network sized for fewer ranks than requested")
        self.nranks = nranks
        self.network = network
        self.sim = sim or Simulator()
        self.stats = self._stats_cls(nranks)
        # Optional structured trace: when a list is supplied, every send
        # and delivery appends a TraceEvent.  Off (None) on the hot path.
        self._event_log = event_log
        # Optional telemetry sink (a repro.obs.TelemetrySink, duck-typed
        # so the simulator never imports the obs package): receives the
        # same times the machine computes for its own scheduling.  Off
        # (None) on the hot path -- one identity test per message.
        self._rec = recorder
        # Optional MetricsRegistry, exposed so the protocol layers
        # (collectives) can cache instruments at construction.
        self.metrics = metrics
        # Resource availability clocks (plain lists -- hot path).
        self._nic_free = [0.0] * nranks  # outgoing (injection) port
        self._nic_in_free = [0.0] * nranks  # incoming (ejection) port
        self._cpu_free = [0.0] * nranks
        # FIFO channel clocks: last delivery time per (src, dst).
        self._flat_channels = nranks <= self._FLAT_CHANNEL_MAX_RANKS
        if self._flat_channels:
            self._channel_last: Any = [0.0] * (nranks * nranks)
        else:
            self._channel_last = {}
        self._recv_overhead = network.config.receive_overhead
        # Pre-bound network queries: post_send/_receive run once per
        # message, and the two attribute hops per call add up.
        self._injection_time = network.injection_time
        self._transit_time = network.transit_time
        self._ejection_time = network.ejection_time
        # Message handler per rank: fn(msg) -> None.
        self._handlers: list[Callable[[Message], None] | None] = [None] * nranks

    # -- wiring --------------------------------------------------------------

    def set_handler(self, rank: int, fn: Callable[[Message], None]) -> None:
        """Install the message handler for ``rank``."""
        self._handlers[rank] = fn

    # -- time accessors --------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def cpu_busy_until(self, rank: int) -> float:
        return self._cpu_free[rank]

    # -- communication ---------------------------------------------------------

    def post_send(
        self,
        src: int,
        dst: int,
        tag: Any,
        nbytes: int,
        category: str,
        payload: Any = None,
    ) -> None:
        """Non-blocking send; delivery invokes the receiver's handler.

        Self-sends short-circuit through the handler with zero network
        cost (a rank "sending to itself" is just a local hand-off, and the
        paper's per-rank volume counters only see real messages).
        """
        nbytes = int(nbytes)
        msg = Message(src, dst, tag, nbytes, category, payload)
        sim = self.sim
        if self._event_log is not None:
            self._event_log.append(
                TraceEvent("send", sim.now, src, dst, tag, nbytes)
            )
        if src == dst:
            if self._rec is not None:
                self._rec.record_local(msg, sim.now)
            sim.schedule_at(sim.now, self._deliver, msg)
            return
        self.stats.on_send(msg)
        inj = self._injection_time(nbytes)
        now = sim.now
        nic = self._nic_free[src]
        start = nic if nic > now else now
        finish = start + inj
        self._nic_free[src] = finish
        self.stats._nic_out_busy[src] += inj
        arrival = finish + self._transit_time(src, dst, nbytes)
        # Enforce MPI-style non-overtaking per (src, dst) channel.
        ch = self._channel_last
        if self._flat_channels:
            idx = src * self.nranks + dst
            if arrival < ch[idx]:
                arrival = ch[idx]
            ch[idx] = arrival
        else:
            key = (src, dst)
            last = ch.get(key, 0.0)
            if arrival < last:
                arrival = last
            ch[key] = arrival
        if self._rec is not None:
            self._rec.record_send(msg, now, start, finish, arrival)
        sim.schedule_at(arrival, self._receive, msg)

    def _receive(self, msg: Message) -> None:
        self.stats.on_receive(msg)
        dst = msg.dst
        now = self.sim.now
        # Ejection: converging messages serialize through the receiver's
        # NIC-in port (a flat reduce root pays p-1 of these back to back).
        eject = self._ejection_time(msg.nbytes)
        nic = self._nic_in_free[dst]
        nic_start = nic if nic > now else now
        nic_done = nic_start + eject
        self._nic_in_free[dst] = nic_done
        self.stats._nic_in_busy[dst] += eject
        # Then receive-side software overhead occupies the receiver's CPU.
        oh = self._recv_overhead
        cpu = self._cpu_free[dst]
        start = cpu if cpu > nic_done else nic_done
        self._cpu_free[dst] = start + oh
        self.stats._recv_overhead_busy[dst] += oh
        if self._rec is not None:
            self._rec.record_receive(msg, nic_start, nic_done, start, start + oh)
        self.sim.schedule_at(start + oh, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        if self._rec is not None:
            self._rec.record_deliver(msg, self.sim.now)
        if self._event_log is not None:
            self._event_log.append(
                TraceEvent(
                    "deliver", self.sim.now, msg.src, msg.dst, msg.tag,
                    msg.nbytes,
                )
            )
        fn = self._handlers[msg.dst]
        if fn is None:
            raise RuntimeError(f"no handler installed on rank {msg.dst}")
        fn(msg)

    # -- computation -------------------------------------------------------------

    def post_compute(
        self,
        rank: int,
        seconds: float,
        fn: Callable[[], None] | None = None,
        *,
        flops: float | None = None,
        label: str | None = None,
    ) -> None:
        """Occupy ``rank``'s CPU for ``seconds`` (or a flop count), then
        run ``fn`` at completion.  ``label`` names the task on the
        telemetry timeline (ignored when no recorder is attached)."""
        if flops is not None:
            seconds = self.network.compute_time(flops)
        if seconds < 0:
            raise ValueError("negative compute time")
        now = self.sim.now
        cpu = self._cpu_free[rank]
        start = cpu if cpu > now else now
        finish = start + seconds
        self._cpu_free[rank] = finish
        self.stats._compute_busy[rank] += seconds
        if self._rec is not None:
            self._rec.record_compute(rank, start, finish, label)
        if fn is not None:
            self.sim.schedule_at(finish, fn)

    # -- lifecycle ---------------------------------------------------------------

    def run(self, max_events: int | None = None) -> float:
        """Drain all events; returns the makespan (final virtual time)."""
        return self.sim.run(max_events=max_events)


class BatchMachine(Machine):
    """The machine on the batch engine: SoA message records, fused costs.

    Same cost model and same API surface as :class:`Machine` (it *is*
    one, for :meth:`post_compute`, :meth:`set_handler`, stats, and the
    telemetry hooks), but the per-message hot path is restructured
    around :class:`~repro.simulate.engine.BatchSimulator`:

    * **Struct-of-arrays message records** -- an in-flight message is an
      integer index into parallel columns (``src``/``dst``/``tag``/
      ``nbytes``/``category-id``/``payload``/``callback``/``aux``)
      recycled through a free list; no :class:`Message` object exists on
      the fast path (one is materialized only for the legacy
      :meth:`set_handler` path and the telemetry hooks).
    * **Integer handler dispatch** -- the receive and deliver stages are
      registered once in the engine's handler table; every schedule is a
      flat ``(time, hid, record-index)`` triple.
    * **Fused network arithmetic** -- injection/ejection/transit costs
      are inlined from the network's flattened constants, with the
      per-pair ``(latency, 1/bandwidth, jitter)`` triple memoized in a
      dense table (see :meth:`Network.pair_params` for the bit-identity
      argument).  When the network is instrumented for telemetry the
      machine falls back to the query methods so the tallies still fire.
    * **Direct delivery callbacks** -- a send may carry ``cb(dst,
      payload, aux)``, letting the collective layer route a message to
      its own continuation without any per-rank tag dispatch; ``aux``
      carries the receiver's tree position.  Messages without a callback
      fall back to the rank's fast handler ``fn(tag, payload, aux)`` or
      the legacy ``fn(msg)`` handler.

    ``deliver_cpu_overhead`` charges a fixed CPU cost on the destination
    rank per delivered message (the protocol layer's
    ``per_message_cpu_overhead``, hoisted into the machine so the batch
    engine needs no wrapper handler).
    """

    def __init__(
        self,
        nranks: int,
        network: Network,
        sim: BatchSimulator | None = None,
        *,
        event_log: list | None = None,
        recorder=None,
        metrics=None,
        deliver_cpu_overhead: float = 0.0,
        bucket_width: float | None = None,
    ):
        super().__init__(
            nranks,
            network,
            sim or BatchSimulator(bucket_width),
            event_log=event_log,
            recorder=recorder,
            metrics=metrics,
        )
        sim_ = self.sim
        self._hid_receive = sim_.register_handler(self._receive_rec)
        self._hid_deliver = sim_.register_handler(self._deliver_rec)
        # SoA message columns (parallel lists indexed by record id).
        self._msrc: list[int] = []
        self._mdst: list[int] = []
        self._mtag: list[Any] = []
        self._mnbytes: list[int] = []
        self._mcid: list[int] = []
        self._mpayload: list[Any] = []
        self._mcb: list[Any] = []
        self._maux: list[int] = []
        self._mfree: list[int] = []
        # Category interning: id -> name, and per-id stats columns bound
        # lazily on first use so the CommStats dicts gain keys in the
        # exact order the legacy machine would (bit-identity).
        self._cat_ids: dict[str, int] = {}
        self._cat_names: list[str] = []
        self._sent_cols: list[list[float] | None] = []
        self._sent_counts: list[list[int] | None] = []
        self._recv_cols: list[list[float] | None] = []
        # Fused network constants + per-pair memo (dense under the same
        # rank bound as the channel clocks, dict above it).  Skipped
        # when the network is instrumented: the query methods must run
        # so the net.* telemetry tallies fire.
        self._inline_net = not getattr(network, "_instrumented", False)
        self._inj_oh = network._inj_overhead
        self._inj_bw_inv = network._inj_ibw
        self._ej_bw_inv = network._ej_ibw
        self._pairs: Any
        if self._flat_channels:
            self._pairs = [None] * (nranks * nranks)
        else:
            self._pairs = {}
        self._pair_params = network.pair_params
        self._deliver_oh = float(deliver_cpu_overhead)
        # Fast per-rank handlers: fn(tag, payload, aux) -> None.
        self._fast_handlers: list[Any] = [None] * nranks
        # Engine internals, bound for the scheduling sequence inlined
        # into send/_receive_rec (it mirrors BatchSimulator._push; the
        # engine docstring records the coupling).  The columns, bucket
        # dict and heap are stable objects; the scalar cursor state
        # (_seq, _npending, _active_bucket/_list) stays on the sim.
        # The past-time guard is elided: every machine-scheduled time
        # is ``now`` plus non-negative cost terms.
        self._s_times = sim_._times
        self._s_hids = sim_._hids
        self._s_args = sim_._args
        self._s_buckets = sim_._buckets
        self._s_heap = sim_._bucket_heap
        self._s_inv_width = sim_._inv_width
        # Busy-time columns bound once (self.stats.X costs two lookups
        # per event on the hot path).
        self._nic_out_col = self.stats._nic_out_busy
        self._nic_in_col = self.stats._nic_in_busy
        self._recv_oh_col = self.stats._recv_overhead_busy
        # Contention-free configuration (no telemetry, no trace log, no
        # per-delivery CPU tax, un-instrumented network, dense channel
        # tables): swap the per-message stages for closure-specialized
        # versions with every hook test resolved away.  The flag is kept
        # so subclasses that register extra handlers first can re-check
        # eligibility after their own construction.
        self._fast_eligible = (
            self._rec is None
            and self._event_log is None
            and self._inline_net
            and self._deliver_oh == 0.0
            and self._flat_channels
        )
        if self._fast_eligible:
            self._install_fast_path()

    # -- wiring --------------------------------------------------------------

    def category_id(self, category: str) -> int:
        """Intern a message category; returns its integer id."""
        cid = self._cat_ids.get(category)
        if cid is None:
            cid = len(self._cat_names)
            self._cat_ids[category] = cid
            self._cat_names.append(category)
            self._sent_cols.append(None)
            self._sent_counts.append(None)
            self._recv_cols.append(None)
        return cid

    def set_fast_handler(self, rank: int, fn) -> None:
        """Install ``rank``'s fast handler ``fn(tag, payload, aux)``.

        Takes precedence over the legacy :meth:`set_handler` handler for
        messages sent without a delivery callback.
        """
        self._fast_handlers[rank] = fn

    def _bind_sent(self, cid: int) -> None:
        name = self._cat_names[cid]
        stats = self.stats
        self._sent_cols[cid] = stats._get(stats._sent, name)
        self._sent_counts[cid] = stats._get_counts(stats._messages_sent, name)

    def _bind_recv(self, cid: int) -> None:
        stats = self.stats
        self._recv_cols[cid] = stats._get(stats._received, self._cat_names[cid])

    def _message_view(self, i: int, payload: Any) -> Message:
        """Materialize a :class:`Message` for the telemetry hooks."""
        return Message(
            self._msrc[i],
            self._mdst[i],
            self._mtag[i],
            self._mnbytes[i],
            self._cat_names[self._mcid[i]],
            payload,
        )

    # -- communication ---------------------------------------------------------

    def post_send(
        self,
        src: int,
        dst: int,
        tag: Any,
        nbytes: int,
        category: str,
        payload: Any = None,
    ) -> None:
        """Legacy-signature send (resolves the category per call)."""
        self.send(src, dst, tag, nbytes, self.category_id(category), payload)

    def send(
        self,
        src: int,
        dst: int,
        tag: Any,
        nbytes: int,
        cid: int,
        payload: Any = None,
        cb=None,
        aux: int = 0,
    ) -> None:
        """Fast-path send: pre-interned category, optional delivery
        callback ``cb(dst, payload, aux)``.  Cost model identical to
        :meth:`Machine.post_send`."""
        nbytes = int(nbytes)
        sim = self.sim
        now = sim.now
        if self._event_log is not None:
            self._event_log.append(
                TraceEvent("send", now, src, dst, tag, nbytes)
            )
        # Allocate an SoA record (free-list recycling).
        free = self._mfree
        if free:
            i = free.pop()
            self._msrc[i] = src
            self._mdst[i] = dst
            self._mtag[i] = tag
            self._mnbytes[i] = nbytes
            self._mcid[i] = cid
            self._mpayload[i] = payload
            self._mcb[i] = cb
            self._maux[i] = aux
        else:
            i = len(self._msrc)
            self._msrc.append(src)
            self._mdst.append(dst)
            self._mtag.append(tag)
            self._mnbytes.append(nbytes)
            self._mcid.append(cid)
            self._mpayload.append(payload)
            self._mcb.append(cb)
            self._maux.append(aux)
        if src == dst:
            if self._rec is not None:
                self._rec.record_local(self._message_view(i, payload), now)
            arrival = now
            hid = self._hid_deliver
        else:
            col = self._sent_cols[cid]
            if col is None:
                self._bind_sent(cid)
                col = self._sent_cols[cid]
            col[src] += nbytes
            self._sent_counts[cid][src] += 1
            inline = self._inline_net
            if inline:
                inj = self._inj_oh + nbytes * self._inj_bw_inv
            else:
                inj = self._injection_time(nbytes)
            nic = self._nic_free[src]
            start = nic if nic > now else now
            finish = start + inj
            self._nic_free[src] = finish
            self._nic_out_col[src] += inj
            flat = self._flat_channels
            pidx = src * self.nranks + dst if flat else (src, dst)
            if inline:
                pairs = self._pairs
                pp = pairs[pidx] if flat else pairs.get(pidx)
                if pp is None:
                    pp = self._pair_params(src, dst)
                    pairs[pidx] = pp
                lat, ibw, jit = pp
                arrival = finish + (lat + nbytes * ibw) * jit
            else:
                arrival = finish + self._transit_time(src, dst, nbytes)
            # Enforce MPI-style non-overtaking per (src, dst) channel.
            ch = self._channel_last
            if flat:
                if arrival < ch[pidx]:
                    arrival = ch[pidx]
                ch[pidx] = arrival
            else:
                last = ch.get(pidx, 0.0)
                if arrival < last:
                    arrival = last
                ch[pidx] = arrival
            if self._rec is not None:
                self._rec.record_send(
                    self._message_view(i, payload), now, start, finish, arrival
                )
            hid = self._hid_receive
        # Inlined BatchSimulator._push(arrival, hid, i).
        s = sim._seq
        sim._seq = s + 1
        st = self._s_times
        st.append(arrival)
        self._s_hids.append(hid)
        self._s_args.append(i)
        sim._npending += 1
        b = int(arrival * self._s_inv_width)
        if b == sim._active_bucket:
            insort(sim._active_list, s, key=st.__getitem__)
        else:
            sbk = self._s_buckets
            try:
                sbk[b].append(s)
            except KeyError:
                sbk[b] = [s]
                heappush(self._s_heap, b)

    def _receive_rec(self, i: int) -> None:
        dst = self._mdst[i]
        nbytes = self._mnbytes[i]
        cid = self._mcid[i]
        col = self._recv_cols[cid]
        if col is None:
            self._bind_recv(cid)
            col = self._recv_cols[cid]
        col[dst] += nbytes
        sim = self.sim
        now = sim.now
        if self._inline_net:
            eject = nbytes * self._ej_bw_inv
        else:
            eject = self._ejection_time(nbytes)
        nic = self._nic_in_free[dst]
        nic_start = nic if nic > now else now
        nic_done = nic_start + eject
        self._nic_in_free[dst] = nic_done
        self._nic_in_col[dst] += eject
        oh = self._recv_overhead
        cpu = self._cpu_free[dst]
        start = cpu if cpu > nic_done else nic_done
        deliver_at = start + oh
        self._cpu_free[dst] = deliver_at
        self._recv_oh_col[dst] += oh
        if self._rec is not None:
            self._rec.record_receive(
                self._message_view(i, self._mpayload[i]),
                nic_start,
                nic_done,
                start,
                deliver_at,
            )
        # Inlined BatchSimulator._push(deliver_at, self._hid_deliver, i).
        s = sim._seq
        sim._seq = s + 1
        st = self._s_times
        st.append(deliver_at)
        self._s_hids.append(self._hid_deliver)
        self._s_args.append(i)
        sim._npending += 1
        b = int(deliver_at * self._s_inv_width)
        if b == sim._active_bucket:
            insort(sim._active_list, s, key=st.__getitem__)
        else:
            sbk = self._s_buckets
            try:
                sbk[b].append(s)
            except KeyError:
                sbk[b] = [s]
                heappush(self._s_heap, b)

    def _deliver_rec(self, i: int) -> None:
        src = self._msrc[i]
        dst = self._mdst[i]
        tag = self._mtag[i]
        nbytes = self._mnbytes[i]
        cid = self._mcid[i]
        payload = self._mpayload[i]
        cb = self._mcb[i]
        aux = self._maux[i]
        # Release the record before dispatch: the callback may send.
        self._mtag[i] = None
        self._mpayload[i] = None
        self._mcb[i] = None
        self._mfree.append(i)
        if self._rec is not None:
            self._rec.record_deliver(
                Message(src, dst, tag, nbytes, self._cat_names[cid], payload),
                self.sim.now,
            )
        if self._event_log is not None:
            self._event_log.append(
                TraceEvent("deliver", self.sim.now, src, dst, tag, nbytes)
            )
        if self._deliver_oh > 0.0:
            self.post_compute(dst, self._deliver_oh, label="msg-overhead")
        if cb is not None:
            cb(dst, payload, aux)
            return
        fh = self._fast_handlers[dst]
        if fh is not None:
            fh(tag, payload, aux)
            return
        fn = self._handlers[dst]
        if fn is None:
            raise RuntimeError(f"no handler installed on rank {dst}")
        fn(Message(src, dst, tag, nbytes, self._cat_names[cid], payload))

    # -- closure-specialized fast path ----------------------------------------

    def _install_fast_path(self) -> None:
        """Specialize the per-message stages for the hook-free configuration.

        Rebuilds :meth:`send`, the receive/deliver handler-table entries
        and :meth:`post_compute` as closures with every per-event branch
        (telemetry recorder, trace log, instrumented network, delivery
        overhead, dense-vs-dict channels) resolved at construction time
        and all stable state -- the SoA message columns, the engine's
        time/hid/arg columns, the calendar buckets and heap, the
        resource clocks and stats columns -- bound as closure cells
        (``LOAD_DEREF`` beats two ``LOAD_ATTR`` per access, and on a
        path run a few million times per simulation that is the
        difference that shows up on the profile).  Only the engine's
        scalar cursor state (``_seq``/``_npending``/``_active_bucket``/
        ``_active_list``) stays behind attribute loads: it must be
        visible to the engine's own drain loop.

        The closures shadow the methods as instance attributes -- the
        same pattern as :meth:`Network.instrument` -- and replace the
        handler-table slots registered in ``__init__``, so the callable
        ids seen by the collective layer do not change.  All hooks are
        constructor arguments, so the specialization decision is final
        for the machine's lifetime.  Timestamp arithmetic is expression-
        for-expression identical to the generic stages (and therefore to
        :class:`Machine`): same terms, same order, bit-identical floats.
        """
        sim = self.sim
        nranks = self.nranks
        msrc = self._msrc
        mdst = self._mdst
        mtag = self._mtag
        mnbytes = self._mnbytes
        mcid = self._mcid
        mpayload = self._mpayload
        mcb = self._mcb
        maux = self._maux
        free = self._mfree
        sent_cols = self._sent_cols
        sent_counts = self._sent_counts
        recv_cols = self._recv_cols
        bind_sent = self._bind_sent
        bind_recv = self._bind_recv
        nic_free = self._nic_free
        nic_in_free = self._nic_in_free
        cpu_free = self._cpu_free
        nic_out_col = self._nic_out_col
        nic_in_col = self._nic_in_col
        recv_oh_col = self._recv_oh_col
        compute_busy = self.stats._compute_busy
        ch = self._channel_last
        pairs = self._pairs
        pair_params = self._pair_params
        inj_oh = self._inj_oh
        inj_bw_inv = self._inj_bw_inv
        ej_bw_inv = self._ej_bw_inv
        recv_oh = self._recv_overhead
        task_oh = self.network.config.task_overhead
        flop_rate = self.network.config.flop_rate
        hid_receive = self._hid_receive
        hid_deliver = self._hid_deliver
        fast_handlers = self._fast_handlers
        handlers = self._handlers
        cat_names = self._cat_names
        # Engine internals (the inlined _push; see the engine docstring).
        st = self._s_times
        shids = self._s_hids
        sargs = self._s_args
        sbk = self._s_buckets
        sheap = self._s_heap
        inv_width = self._s_inv_width
        key = st.__getitem__

        def fast_send(src, dst, tag, nbytes, cid, payload=None, cb=None,
                      aux=0):
            nbytes = int(nbytes)
            now = sim.now
            if free:
                i = free.pop()
                msrc[i] = src
                mdst[i] = dst
                mtag[i] = tag
                mnbytes[i] = nbytes
                mcid[i] = cid
                mpayload[i] = payload
                mcb[i] = cb
                maux[i] = aux
            else:
                i = len(msrc)
                msrc.append(src)
                mdst.append(dst)
                mtag.append(tag)
                mnbytes.append(nbytes)
                mcid.append(cid)
                mpayload.append(payload)
                mcb.append(cb)
                maux.append(aux)
            if src == dst:
                arrival = now
                hid = hid_deliver
            else:
                col = sent_cols[cid]
                if col is None:
                    bind_sent(cid)
                    col = sent_cols[cid]
                col[src] += nbytes
                sent_counts[cid][src] += 1
                inj = inj_oh + nbytes * inj_bw_inv
                nic = nic_free[src]
                start = nic if nic > now else now
                finish = start + inj
                nic_free[src] = finish
                nic_out_col[src] += inj
                pidx = src * nranks + dst
                pp = pairs[pidx]
                if pp is None:
                    pp = pair_params(src, dst)
                    pairs[pidx] = pp
                lat, ibw, jit = pp
                arrival = finish + (lat + nbytes * ibw) * jit
                last = ch[pidx]
                if arrival < last:
                    arrival = last
                ch[pidx] = arrival
                hid = hid_receive
            s = sim._seq
            sim._seq = s + 1
            st.append(arrival)
            shids.append(hid)
            sargs.append(i)
            sim._npending += 1
            b = int(arrival * inv_width)
            if b == sim._active_bucket:
                insort(sim._active_list, s, key=key)
            else:
                try:
                    sbk[b].append(s)
                except KeyError:
                    sbk[b] = [s]
                    heappush(sheap, b)

        def fast_receive(i):
            dst = mdst[i]
            nbytes = mnbytes[i]
            col = recv_cols[mcid[i]]
            if col is None:
                bind_recv(mcid[i])
                col = recv_cols[mcid[i]]
            col[dst] += nbytes
            now = sim.now
            eject = nbytes * ej_bw_inv
            nic = nic_in_free[dst]
            nic_start = nic if nic > now else now
            nic_done = nic_start + eject
            nic_in_free[dst] = nic_done
            nic_in_col[dst] += eject
            cpu = cpu_free[dst]
            start = cpu if cpu > nic_done else nic_done
            deliver_at = start + recv_oh
            cpu_free[dst] = deliver_at
            recv_oh_col[dst] += recv_oh
            s = sim._seq
            sim._seq = s + 1
            st.append(deliver_at)
            shids.append(hid_deliver)
            sargs.append(i)
            sim._npending += 1
            b = int(deliver_at * inv_width)
            if b == sim._active_bucket:
                insort(sim._active_list, s, key=key)
            else:
                try:
                    sbk[b].append(s)
                except KeyError:
                    sbk[b] = [s]
                    heappush(sheap, b)

        def fast_deliver(i):
            dst = mdst[i]
            tag = mtag[i]
            payload = mpayload[i]
            cb = mcb[i]
            aux = maux[i]
            # Release the record before dispatch: the callback may send.
            mtag[i] = None
            mpayload[i] = None
            mcb[i] = None
            free.append(i)
            if cb is not None:
                cb(dst, payload, aux)
                return
            fh = fast_handlers[dst]
            if fh is not None:
                fh(tag, payload, aux)
                return
            fn = handlers[dst]
            if fn is None:
                raise RuntimeError(f"no handler installed on rank {dst}")
            # Record i cannot have been recycled yet (nothing ran since
            # its release), so the remaining columns are still valid.
            fn(Message(msrc[i], dst, tag, mnbytes[i],
                       cat_names[mcid[i]], payload))

        def fast_post_compute(rank, seconds, fn=None, *, flops=None,
                              label=None):
            if flops is not None:
                seconds = task_oh + flops / flop_rate
            if seconds < 0:
                raise ValueError("negative compute time")
            now = sim.now
            cpu = cpu_free[rank]
            start = cpu if cpu > now else now
            finish = start + seconds
            cpu_free[rank] = finish
            compute_busy[rank] += seconds
            if fn is not None:
                s = sim._seq
                sim._seq = s + 1
                st.append(finish)
                shids.append(0)
                sargs.append(fn)
                sim._npending += 1
                b = int(finish * inv_width)
                if b == sim._active_bucket:
                    insort(sim._active_list, s, key=key)
                else:
                    try:
                        sbk[b].append(s)
                    except KeyError:
                        sbk[b] = [s]
                        heappush(sheap, b)

        self.send = fast_send
        self.post_compute = fast_post_compute
        sim._table[hid_receive] = fast_receive
        sim._table[hid_deliver] = fast_deliver
