"""Simulated message-passing machine: ranks, NICs, and delivery.

Binds the :class:`~repro.simulate.engine.Simulator` clock to the
:class:`~repro.simulate.network.Network` cost model and exposes the small
asynchronous API the PSelInv layers program against:

* :meth:`Machine.post_send` -- non-blocking tagged send.  The sender's NIC
  is occupied for the injection time (messages queue FIFO behind each
  other -- the flat-tree hot-spot mechanism), then the message transits
  and is delivered to the receiver's handler, respecting per
  ``(src, dst)`` channel FIFO order like MPI's non-overtaking rule.
  Converging messages additionally serialize through the receiver's
  NIC-in port (what a flat *reduce* root saturates).
* :meth:`Machine.post_compute` -- enqueue a compute task on a rank's CPU;
  tasks on one rank serialize (one core per rank, as in the paper's
  flat-MPI runs).

Every byte movement is tallied per rank *and per category* in
:class:`CommStats`, which is what the Table I / Table II / heat-map
benchmarks read out.

Implementation note: this is the simulator's innermost loop (millions of
messages per run), so per-rank clocks and counters are plain Python lists
-- scalar indexing on ndarrays is several times slower.
"""

from __future__ import annotations

from typing import Any, Callable, NamedTuple

import numpy as np

from .engine import Simulator
from .network import Network

__all__ = ["Message", "CommStats", "Machine", "TraceEvent"]


class TraceEvent(NamedTuple):
    """One structured event-log record (the ``repro check`` trace hook).

    ``kind`` is ``"send"`` (stamped when :meth:`Machine.post_send` accepts
    the message, self-sends included) or ``"deliver"`` (stamped when the
    receiver's handler is about to run).  Times are virtual-clock seconds.
    The happens-before trace validator (:func:`repro.check.validate_trace`)
    replays these records against the static plan model.
    """

    kind: str
    time: float
    src: int
    dst: int
    tag: Any
    nbytes: int


class Message:
    """An in-flight message (payload is opaque to the machine)."""

    __slots__ = ("src", "dst", "tag", "nbytes", "category", "payload")

    def __init__(self, src, dst, tag, nbytes, category, payload=None):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.category = category
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.src}->{self.dst}, tag={self.tag!r}, "
            f"{self.nbytes}B, {self.category})"
        )


class CommStats:
    """Per-rank byte and time counters, split by message category."""

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self._sent: dict[str, list[float]] = {}
        self._received: dict[str, list[float]] = {}
        # Message *counts* are integers and stay integers all the way to
        # the read-out (the heat-map layer asserts the dtype).
        self._messages_sent: dict[str, list[int]] = {}
        self._compute_busy = [0.0] * nranks
        self._recv_overhead_busy = [0.0] * nranks
        self._nic_out_busy = [0.0] * nranks
        self._nic_in_busy = [0.0] * nranks

    # -- hot-path accumulators (lists, not ndarrays) -----------------------

    def _get(self, table: dict[str, list[float]], category: str) -> list[float]:
        arr = table.get(category)
        if arr is None:
            arr = [0.0] * self.nranks
            table[category] = arr
        return arr

    def _get_counts(self, table: dict[str, list[int]], category: str) -> list[int]:
        arr = table.get(category)
        if arr is None:
            arr = [0] * self.nranks
            table[category] = arr
        return arr

    def on_send(self, msg: Message) -> None:
        self._get(self._sent, msg.category)[msg.src] += msg.nbytes
        self._get_counts(self._messages_sent, msg.category)[msg.src] += 1

    def on_receive(self, msg: Message) -> None:
        self._get(self._received, msg.category)[msg.dst] += msg.nbytes

    # -- read-out views ------------------------------------------------------

    @property
    def sent(self) -> dict[str, np.ndarray]:
        return {k: np.asarray(v) for k, v in self._sent.items()}

    @property
    def received(self) -> dict[str, np.ndarray]:
        return {k: np.asarray(v) for k, v in self._received.items()}

    @property
    def messages_sent(self) -> dict[str, np.ndarray]:
        """Per-rank message counts by category (integer dtype)."""
        return {
            k: np.asarray(v, dtype=np.int64)
            for k, v in self._messages_sent.items()
        }

    @property
    def compute_busy(self) -> np.ndarray:
        return np.asarray(self._compute_busy)

    @property
    def recv_overhead_busy(self) -> np.ndarray:
        return np.asarray(self._recv_overhead_busy)

    @property
    def nic_out_busy(self) -> np.ndarray:
        return np.asarray(self._nic_out_busy)

    @property
    def nic_in_busy(self) -> np.ndarray:
        return np.asarray(self._nic_in_busy)

    def total_sent(self, category: str | None = None) -> np.ndarray:
        """Bytes sent per rank (one category, or all summed)."""
        if category is not None:
            return np.asarray(self._sent.get(category, [0.0] * self.nranks))
        out = np.zeros(self.nranks)
        for arr in self._sent.values():
            out += arr
        return out

    def total_received(self, category: str | None = None) -> np.ndarray:
        """Bytes received per rank (one category, or all summed)."""
        if category is not None:
            return np.asarray(self._received.get(category, [0.0] * self.nranks))
        out = np.zeros(self.nranks)
        for arr in self._received.values():
            out += arr
        return out


class Machine:
    """The simulated distributed-memory machine."""

    # Below this rank count the per-(src, dst) channel clocks live in a
    # flat dense list (no tuple allocation / hashing per message); above
    # it the dense table would waste memory and a dict takes over.
    _FLAT_CHANNEL_MAX_RANKS = 1024

    def __init__(
        self,
        nranks: int,
        network: Network,
        sim: Simulator | None = None,
        *,
        event_log: list | None = None,
        recorder=None,
        metrics=None,
    ):
        if network.nranks < nranks:
            raise ValueError("network sized for fewer ranks than requested")
        self.nranks = nranks
        self.network = network
        self.sim = sim or Simulator()
        self.stats = CommStats(nranks)
        # Optional structured trace: when a list is supplied, every send
        # and delivery appends a TraceEvent.  Off (None) on the hot path.
        self._event_log = event_log
        # Optional telemetry sink (a repro.obs.TelemetrySink, duck-typed
        # so the simulator never imports the obs package): receives the
        # same times the machine computes for its own scheduling.  Off
        # (None) on the hot path -- one identity test per message.
        self._rec = recorder
        # Optional MetricsRegistry, exposed so the protocol layers
        # (collectives) can cache instruments at construction.
        self.metrics = metrics
        # Resource availability clocks (plain lists -- hot path).
        self._nic_free = [0.0] * nranks  # outgoing (injection) port
        self._nic_in_free = [0.0] * nranks  # incoming (ejection) port
        self._cpu_free = [0.0] * nranks
        # FIFO channel clocks: last delivery time per (src, dst).
        self._flat_channels = nranks <= self._FLAT_CHANNEL_MAX_RANKS
        if self._flat_channels:
            self._channel_last: Any = [0.0] * (nranks * nranks)
        else:
            self._channel_last = {}
        self._recv_overhead = network.config.receive_overhead
        # Pre-bound network queries: post_send/_receive run once per
        # message, and the two attribute hops per call add up.
        self._injection_time = network.injection_time
        self._transit_time = network.transit_time
        self._ejection_time = network.ejection_time
        # Message handler per rank: fn(msg) -> None.
        self._handlers: list[Callable[[Message], None] | None] = [None] * nranks

    # -- wiring --------------------------------------------------------------

    def set_handler(self, rank: int, fn: Callable[[Message], None]) -> None:
        """Install the message handler for ``rank``."""
        self._handlers[rank] = fn

    # -- time accessors --------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def cpu_busy_until(self, rank: int) -> float:
        return self._cpu_free[rank]

    # -- communication ---------------------------------------------------------

    def post_send(
        self,
        src: int,
        dst: int,
        tag: Any,
        nbytes: int,
        category: str,
        payload: Any = None,
    ) -> None:
        """Non-blocking send; delivery invokes the receiver's handler.

        Self-sends short-circuit through the handler with zero network
        cost (a rank "sending to itself" is just a local hand-off, and the
        paper's per-rank volume counters only see real messages).
        """
        nbytes = int(nbytes)
        msg = Message(src, dst, tag, nbytes, category, payload)
        sim = self.sim
        if self._event_log is not None:
            self._event_log.append(
                TraceEvent("send", sim.now, src, dst, tag, nbytes)
            )
        if src == dst:
            if self._rec is not None:
                self._rec.record_local(msg, sim.now)
            sim.schedule_at(sim.now, self._deliver, msg)
            return
        self.stats.on_send(msg)
        inj = self._injection_time(nbytes)
        now = sim.now
        nic = self._nic_free[src]
        start = nic if nic > now else now
        finish = start + inj
        self._nic_free[src] = finish
        self.stats._nic_out_busy[src] += inj
        arrival = finish + self._transit_time(src, dst, nbytes)
        # Enforce MPI-style non-overtaking per (src, dst) channel.
        ch = self._channel_last
        if self._flat_channels:
            idx = src * self.nranks + dst
            if arrival < ch[idx]:
                arrival = ch[idx]
            ch[idx] = arrival
        else:
            key = (src, dst)
            last = ch.get(key, 0.0)
            if arrival < last:
                arrival = last
            ch[key] = arrival
        if self._rec is not None:
            self._rec.record_send(msg, now, start, finish, arrival)
        sim.schedule_at(arrival, self._receive, msg)

    def _receive(self, msg: Message) -> None:
        self.stats.on_receive(msg)
        dst = msg.dst
        now = self.sim.now
        # Ejection: converging messages serialize through the receiver's
        # NIC-in port (a flat reduce root pays p-1 of these back to back).
        eject = self._ejection_time(msg.nbytes)
        nic = self._nic_in_free[dst]
        nic_start = nic if nic > now else now
        nic_done = nic_start + eject
        self._nic_in_free[dst] = nic_done
        self.stats._nic_in_busy[dst] += eject
        # Then receive-side software overhead occupies the receiver's CPU.
        oh = self._recv_overhead
        cpu = self._cpu_free[dst]
        start = cpu if cpu > nic_done else nic_done
        self._cpu_free[dst] = start + oh
        self.stats._recv_overhead_busy[dst] += oh
        if self._rec is not None:
            self._rec.record_receive(msg, nic_start, nic_done, start, start + oh)
        self.sim.schedule_at(start + oh, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        if self._rec is not None:
            self._rec.record_deliver(msg, self.sim.now)
        if self._event_log is not None:
            self._event_log.append(
                TraceEvent(
                    "deliver", self.sim.now, msg.src, msg.dst, msg.tag,
                    msg.nbytes,
                )
            )
        fn = self._handlers[msg.dst]
        if fn is None:
            raise RuntimeError(f"no handler installed on rank {msg.dst}")
        fn(msg)

    # -- computation -------------------------------------------------------------

    def post_compute(
        self,
        rank: int,
        seconds: float,
        fn: Callable[[], None] | None = None,
        *,
        flops: float | None = None,
        label: str | None = None,
    ) -> None:
        """Occupy ``rank``'s CPU for ``seconds`` (or a flop count), then
        run ``fn`` at completion.  ``label`` names the task on the
        telemetry timeline (ignored when no recorder is attached)."""
        if flops is not None:
            seconds = self.network.compute_time(flops)
        if seconds < 0:
            raise ValueError("negative compute time")
        now = self.sim.now
        cpu = self._cpu_free[rank]
        start = cpu if cpu > now else now
        finish = start + seconds
        self._cpu_free[rank] = finish
        self.stats._compute_busy[rank] += seconds
        if self._rec is not None:
            self._rec.record_compute(rank, start, finish, label)
        if fn is not None:
            self.sim.schedule_at(finish, fn)

    # -- lifecycle ---------------------------------------------------------------

    def run(self, max_events: int | None = None) -> float:
        """Drain all events; returns the makespan (final virtual time)."""
        return self.sim.run(max_events=max_events)
