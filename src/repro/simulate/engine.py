"""Deterministic discrete-event simulation kernel.

A minimal priority-queue event loop: events are ``(time, seq, callback)``
triples, executed in nondecreasing time order with FIFO tie-breaking via
the monotonically increasing sequence number.  Determinism matters here --
the PSelInv experiments compare schemes on identical task streams and
attribute run-to-run variation *only* to the seeded network-jitter model,
exactly as the paper attributes it to the physical network.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["Simulator"]


class Simulator:
    """Event loop with a virtual clock.

    Use :meth:`schedule` / :meth:`schedule_at` to enqueue callbacks and
    :meth:`run` to drain the queue.  Callbacks receive no arguments; bind
    state with closures or ``functools.partial``.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], Any]]] = []
        self._seq = 0
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for perf reporting)."""
        return self._events_processed

    def schedule(self, delay: float, fn: Callable[[], Any]) -> None:
        """Run ``fn`` at ``now + delay``; ``delay`` must be >= 0."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], Any]) -> None:
        """Run ``fn`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (t={time} < now={self.now})"
            )
        heapq.heappush(self._queue, (time, self._seq, fn))
        self._seq += 1

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the event queue; returns the final clock value.

        ``until`` stops the clock at a horizon (events beyond it stay
        queued); ``max_events`` guards against runaway simulations.
        """
        while self._queue:
            if max_events is not None and self._events_processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events -- likely a "
                    "protocol bug (deadlock would drain, livelock would not)"
                )
            t, _, fn = self._queue[0]
            if until is not None and t > until:
                break
            heapq.heappop(self._queue)
            self.now = t
            self._events_processed += 1
            fn()
        return self.now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
