"""Deterministic discrete-event simulation kernel.

A minimal priority-queue event loop: events are ``(time, seq, callback,
arg)`` slots, executed in nondecreasing time order with FIFO tie-breaking
via the monotonically increasing sequence number.  Determinism matters
here -- the PSelInv experiments compare schemes on identical task streams
and attribute run-to-run variation *only* to the seeded network-jitter
model, exactly as the paper attributes it to the physical network.

The optional ``arg`` slot exists for the hot path: the machine layer
schedules millions of per-message callbacks, and passing the message as
an argument avoids allocating a closure per event.

Two engines share this contract:

* :class:`Simulator` -- the reference heapq loop (``engine="legacy"``).
* :class:`BatchSimulator` -- a calendar-queue scheduler that buckets
  events by a fixed time width, stores per-event state in
  struct-of-arrays columns indexed by sequence number, dispatches
  through an integer handler table, and fast-forwards the clock over
  empty buckets analytically (``engine="batch"``).

Both drain any schedule stream in the exact same ``(time, seq)`` order
(pinned by a Hypothesis equivalence test), so every simulated outcome is
bit-identical across engines.
"""

from __future__ import annotations

import heapq
import time
from bisect import insort
from typing import Any, Callable

__all__ = ["Simulator", "BatchSimulator"]

# Sentinel distinguishing "no argument" from a legitimate None argument.
_NO_ARG = object()


class Simulator:
    """Event loop with a virtual clock.

    Use :meth:`schedule` / :meth:`schedule_at` to enqueue callbacks and
    :meth:`run` to drain the queue.  Callbacks receive no arguments
    unless scheduled with an explicit ``arg`` (the zero-allocation hot
    path); closures and ``functools.partial`` work as before.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[..., Any], Any]] = []
        self._seq = 0
        self._events_processed = 0
        # Optional telemetry (a MetricsRegistry); None keeps the default
        # loop untouched -- run() only branches once, before draining.
        self._metrics = None

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for perf reporting)."""
        return self._events_processed

    def attach_metrics(self, registry) -> None:
        """Enable loop telemetry: events/sec and queue-depth high-water.

        The wall-clock read is observation-only (it never feeds back into
        the virtual clock), so determinism of outcomes is preserved.
        """
        self._metrics = registry

    def schedule(
        self, delay: float, fn: Callable[..., Any], arg: Any = _NO_ARG
    ) -> None:
        """Run ``fn`` (optionally as ``fn(arg)``) at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, fn, arg)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], arg: Any = _NO_ARG
    ) -> None:
        """Run ``fn`` (optionally as ``fn(arg)``) at absolute ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (t={time} < now={self.now})"
            )
        heapq.heappush(self._queue, (time, self._seq, fn, arg))
        self._seq += 1

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the event queue; returns the final clock value.

        ``until`` stops the clock at a horizon (events beyond it stay
        queued); ``max_events`` guards against runaway simulations.

        Contract of a bounded run: ``now`` is left at the timestamp of
        the *last executed event*, NOT advanced to the ``until`` horizon
        (an event-driven clock only moves when events execute).  Callers
        issuing repeated bounded ``run(until=...)`` calls must therefore
        pass absolute horizons, not increments relative to ``now``.
        Both engines honor this; it is pinned by tests.
        """
        if self._metrics is not None:
            return self._run_instrumented(until, max_events)
        queue = self._queue
        pop = heapq.heappop
        no_arg = _NO_ARG
        while queue:
            t = queue[0][0]
            # Horizon first: an event beyond ``until`` would never
            # execute, so it must not trip the event budget (the batch
            # engine orders the checks this way; pinned by the bounded-
            # run equivalence property).
            if until is not None and t > until:
                break
            if max_events is not None and self._events_processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events -- likely a "
                    "protocol bug (deadlock would drain, livelock would not)"
                )
            _, _, fn, arg = pop(queue)
            self.now = t
            self._events_processed += 1
            if arg is no_arg:
                fn()
            else:
                fn(arg)
        return self.now

    def _run_instrumented(
        self, until: float | None, max_events: int | None
    ) -> float:
        """The :meth:`run` loop plus telemetry (metrics attached).

        A separate copy so the default loop carries zero extra work; this
        one additionally tracks the queue-depth high-water mark and, at
        the end, wall-clock throughput.  Only wall time is read -- the
        event order and virtual clock are untouched.
        """
        metrics = self._metrics
        queue = self._queue
        pop = heapq.heappop
        no_arg = _NO_ARG
        depth_hw = len(queue)
        start_events = self._events_processed
        start_wall = time.perf_counter()  # det: allow(DET003) observation-only
        while queue:
            depth = len(queue)
            if depth > depth_hw:
                depth_hw = depth
            t = queue[0][0]
            # Horizon before budget, mirroring the uninstrumented loop.
            if until is not None and t > until:
                break
            if max_events is not None and self._events_processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events -- likely a "
                    "protocol bug (deadlock would drain, livelock would not)"
                )
            _, _, fn, arg = pop(queue)
            self.now = t
            self._events_processed += 1
            if arg is no_arg:
                fn()
            else:
                fn(arg)
        wall = time.perf_counter() - start_wall  # det: allow(DET003)
        n = self._events_processed - start_events
        metrics.counter("sim.events").inc(n)
        metrics.gauge("sim.queue_depth_high_water").update_max(depth_hw)
        metrics.gauge("sim.wall_seconds").set(wall)
        if wall > 0.0:
            metrics.gauge("sim.events_per_sec").set(n / wall)
        return self.now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)


class BatchSimulator:
    """Calendar-queue event loop, drop-in for :class:`Simulator`.

    Layout (the batch-dispatch core):

    * **Buckets** -- events are grouped by ``int(time / bucket_width)``
      into a dict of bucket index -> list of sequence numbers; a
      min-heap of occupied bucket indices orders the buckets.  Popping
      the heap *is* the analytic fast-forward: the clock jumps straight
      to the next occupied bucket instead of draining empty time.
    * **Struct-of-arrays event records** -- per-event state lives in
      three flat columns indexed by the sequence number:
      ``_times[seq]``, ``_hids[seq]`` (an integer handler id) and
      ``_args[seq]``.  Buckets hold bare seq ints; no per-event tuple
      is allocated anywhere.
    * **Handler table** -- :meth:`register_handler` interns a callable
      once and returns its integer id; the hot path then schedules
      ``(time, hid, arg)`` records via :meth:`schedule_msg` and the
      drain loop dispatches ``table[hid](arg)``.  Ids 0 and 1 are
      reserved for the generic :meth:`schedule` / :meth:`schedule_at`
      paths (0 = argless callable, 1 = ``(fn, arg)`` pair).
    * **Batch dispatch** -- a bucket is sorted once by timestamp
      (stable C timsort keyed on the times column) and executed as a
      batch; the events-processed and pending counters are written back
      once per batch, not once per event.  Stability gives exact
      ``(time, seq)`` order: a bucket list always holds any two
      equal-time seqs in ascending-seq order (appends allocate
      monotonically increasing seqs, and a re-parked prefix is already
      ``(time, seq)``-sorted with seqs below every later append).  A
      callback that schedules into the *active* bucket inserts in
      sorted position via ``bisect.insort`` with the same key (the new
      seq always lands after the in-flight index because its time is
      >= ``now`` and it is the largest seq yet, and ``insort_right``
      places it after existing equal-time entries).

    Semantics are identical to :class:`Simulator`: FIFO tie-breaking by
    seq, the same negative-delay / past-time errors, ``max_events``
    checked before each event, and a bounded ``run(until=...)`` leaving
    ``now`` at the last executed event (unexecuted tails are re-parked).

    The machine layer (:class:`repro.simulate.machine.BatchMachine`)
    inlines the push sequence below directly into its send/receive
    stages -- any change to the scheduling invariants here must be
    mirrored there.
    """

    #: Default bucket width in virtual seconds.  Event spacing in the
    #: PSelInv runs is set by sub-microsecond NIC/latency constants, so
    #: 100ns buckets keep batches small (tens of events) while still
    #: amortizing the per-bucket heap pop and sort.
    DEFAULT_BUCKET_WIDTH = 1.0e-7

    def __init__(self, bucket_width: float | None = None) -> None:
        self.now: float = 0.0
        width = bucket_width if bucket_width else self.DEFAULT_BUCKET_WIDTH
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        self.bucket_width = width
        self._inv_width = 1.0 / width
        # Calendar: bucket index -> sorted-on-demand [seq, ...].
        self._buckets: dict[int, list[int]] = {}
        self._bucket_heap: list[int] = []
        # SoA event columns, indexed by seq (monotonic, never recycled:
        # recycling would break FIFO tie order).  Args are cleared after
        # execution so payloads do not outlive their event.
        self._times: list[float] = []
        self._hids: list[int] = []
        self._args: list[Any] = []
        # Handler table; ids 0/1 are the generic-callable paths.
        self._table: list[Callable[..., Any] | None] = [None, None]
        self._seq = 0
        self._events_processed = 0
        self._npending = 0
        # Active-bucket state: schedules landing in the bucket currently
        # draining must join it in sorted position (see class docstring).
        self._active_bucket = -1
        self._active_list: list[int] | None = None
        self._metrics = None

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for perf reporting).

        Updated once per drained batch on the fast path (per event on
        the instrumented path), so mid-batch reads from callbacks lag by
        up to one bucket.
        """
        return self._events_processed

    def attach_metrics(self, registry) -> None:
        """Enable loop telemetry (same series as :class:`Simulator`)."""
        self._metrics = registry

    # -- handler table -------------------------------------------------------

    def register_handler(self, fn: Callable[[Any], None]) -> int:
        """Intern ``fn`` and return its integer handler id (>= 2).

        The hot path pairs this with :meth:`schedule_msg`: the machine
        registers its per-message stages once and schedules plain
        ``(time, hid, record-index)`` triples, no closures or bound
        methods per event.
        """
        self._table.append(fn)
        return len(self._table) - 1

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self, delay: float, fn: Callable[..., Any], arg: Any = _NO_ARG
    ) -> None:
        """Run ``fn`` (optionally as ``fn(arg)``) at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, fn, arg)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], arg: Any = _NO_ARG
    ) -> None:
        """Run ``fn`` (optionally as ``fn(arg)``) at absolute ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (t={time} < now={self.now})"
            )
        if arg is _NO_ARG:
            self._push(time, 0, fn)
        else:
            self._push(time, 1, (fn, arg))

    def schedule_msg(self, time: float, hid: int, arg: Any) -> None:
        """Hot-path schedule: dispatch ``table[hid](arg)`` at ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (t={time} < now={self.now})"
            )
        self._push(time, hid, arg)

    def _push(self, time: float, hid: int, arg: Any) -> None:
        s = self._seq
        self._seq = s + 1
        times = self._times
        times.append(time)
        self._hids.append(hid)
        self._args.append(arg)
        self._npending += 1
        b = int(time * self._inv_width)
        if b == self._active_bucket:
            # Always lands after the in-flight index: time >= now and
            # seq is the largest allocated, so insort_right on the
            # times key places it last among equal-time entries.
            insort(self._active_list, s, key=times.__getitem__)
            return
        try:
            self._buckets[b].append(s)
        except KeyError:
            self._buckets[b] = [s]
            heapq.heappush(self._bucket_heap, b)

    # -- draining ------------------------------------------------------------

    def _repark(self, b: int, batch: list, i: int, executed: int) -> None:
        """Bounded-run exit: return ``batch[i:]`` to the calendar."""
        tail = batch[i:]
        if tail:
            self._buckets[b] = tail
            heapq.heappush(self._bucket_heap, b)
        self._active_bucket = -1
        self._active_list = None
        self._events_processed += executed
        self._npending -= executed

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the calendar; returns the final clock value.

        Same bounded-run contract as :meth:`Simulator.run`: ``until``
        leaves ``now`` at the last *executed* event (the fast-forward
        never jumps past the horizon to an unexecuted bucket), and
        ``max_events`` raises with the queue intact.
        """
        if self._metrics is not None:
            return self._run_instrumented(until, max_events)
        if until is not None or max_events is not None:
            return self._run_bounded(until, max_events)
        buckets = self._buckets
        heap = self._bucket_heap
        times = self._times
        hids = self._hids
        args = self._args
        table = self._table
        key = times.__getitem__
        heappop = heapq.heappop
        while heap:
            b = heappop(heap)
            batch = buckets.pop(b, None)
            if batch is None:  # pragma: no cover - defensive
                continue
            if len(batch) > 1:
                batch.sort(key=key)
            self._active_bucket = b
            self._active_list = batch
            # A list iterator is index-based, and a mid-drain insort
            # always lands strictly after the in-flight position (see
            # class docstring), so inserted events are visited in order.
            for s in batch:
                self.now = times[s]
                h = hids[s]
                a = args[s]
                args[s] = None
                if h >= 2:
                    table[h](a)
                elif h == 0:
                    a()
                else:
                    f, x = a
                    f(x)
            self._active_bucket = -1
            self._active_list = None
            n = len(batch)
            self._events_processed += n
            self._npending -= n
        return self.now

    def _run_bounded(
        self, until: float | None, max_events: int | None
    ) -> float:
        """The :meth:`run` loop with a horizon and/or event budget.

        A separate copy so the unbounded fast path carries no per-event
        checks; this one re-parks the unexecuted tail on exit.
        """
        buckets = self._buckets
        heap = self._bucket_heap
        times = self._times
        hids = self._hids
        args = self._args
        table = self._table
        heappop = heapq.heappop
        while heap:
            b = heappop(heap)
            batch = buckets.pop(b, None)
            if batch is None:  # pragma: no cover - defensive
                continue
            if len(batch) > 1:
                batch.sort(key=times.__getitem__)
            self._active_bucket = b
            self._active_list = batch
            i = 0
            done = self._events_processed
            while i < len(batch):
                s = batch[i]
                t = times[s]
                if until is not None and t > until:
                    self._repark(b, batch, i, i)
                    return self.now
                if max_events is not None and done + i >= max_events:
                    self._repark(b, batch, i, i)
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events -- likely a "
                        "protocol bug (deadlock would drain, livelock would not)"
                    )
                i += 1
                self.now = t
                h = hids[s]
                a = args[s]
                args[s] = None
                if h >= 2:
                    table[h](a)
                elif h == 0:
                    a()
                else:
                    f, x = a
                    f(x)
            self._active_bucket = -1
            self._active_list = None
            self._events_processed = done + i
            self._npending -= i
        return self.now

    def _run_instrumented(
        self, until: float | None, max_events: int | None
    ) -> float:
        """The :meth:`run` loop plus telemetry (metrics attached).

        Counters update per event here (so the queue-depth high-water
        mark is exact), mirroring :meth:`Simulator._run_instrumented`'s
        series: ``sim.events``, ``sim.queue_depth_high_water``,
        ``sim.wall_seconds``, ``sim.events_per_sec``.
        """
        metrics = self._metrics
        buckets = self._buckets
        heap = self._bucket_heap
        times = self._times
        hids = self._hids
        args = self._args
        table = self._table
        heappop = heapq.heappop
        depth_hw = self._npending
        start_events = self._events_processed
        start_wall = time.perf_counter()  # det: allow(DET003) observation-only
        while heap:
            b = heappop(heap)
            batch = buckets.pop(b, None)
            if batch is None:  # pragma: no cover - defensive
                continue
            if len(batch) > 1:
                batch.sort(key=times.__getitem__)
            self._active_bucket = b
            self._active_list = batch
            i = 0
            while i < len(batch):
                s = batch[i]
                t = times[s]
                if until is not None and t > until:
                    self._repark(b, batch, i, 0)
                    return self.now
                if max_events is not None and self._events_processed >= max_events:
                    self._repark(b, batch, i, 0)
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events -- likely a "
                        "protocol bug (deadlock would drain, livelock would not)"
                    )
                if self._npending > depth_hw:
                    depth_hw = self._npending
                i += 1
                self.now = t
                self._events_processed += 1
                self._npending -= 1
                h = hids[s]
                a = args[s]
                args[s] = None
                if h >= 2:
                    table[h](a)
                elif h == 0:
                    a()
                else:
                    f, x = a
                    f(x)
            self._active_bucket = -1
            self._active_list = None
        wall = time.perf_counter() - start_wall  # det: allow(DET003)
        n = self._events_processed - start_events
        metrics.counter("sim.events").inc(n)
        metrics.gauge("sim.queue_depth_high_water").update_max(depth_hw)
        metrics.gauge("sim.wall_seconds").set(wall)
        if wall > 0.0:
            metrics.gauge("sim.events_per_sec").set(n / wall)
        return self.now

    def pending(self) -> int:
        """Number of events still queued.

        Exact between :meth:`run` calls; mid-batch reads from callbacks
        lag by up to one bucket on the fast path.
        """
        return self._npending
