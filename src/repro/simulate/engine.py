"""Deterministic discrete-event simulation kernel.

A minimal priority-queue event loop: events are ``(time, seq, callback,
arg)`` slots, executed in nondecreasing time order with FIFO tie-breaking
via the monotonically increasing sequence number.  Determinism matters
here -- the PSelInv experiments compare schemes on identical task streams
and attribute run-to-run variation *only* to the seeded network-jitter
model, exactly as the paper attributes it to the physical network.

The optional ``arg`` slot exists for the hot path: the machine layer
schedules millions of per-message callbacks, and passing the message as
an argument avoids allocating a closure per event.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable

__all__ = ["Simulator"]

# Sentinel distinguishing "no argument" from a legitimate None argument.
_NO_ARG = object()


class Simulator:
    """Event loop with a virtual clock.

    Use :meth:`schedule` / :meth:`schedule_at` to enqueue callbacks and
    :meth:`run` to drain the queue.  Callbacks receive no arguments
    unless scheduled with an explicit ``arg`` (the zero-allocation hot
    path); closures and ``functools.partial`` work as before.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[..., Any], Any]] = []
        self._seq = 0
        self._events_processed = 0
        # Optional telemetry (a MetricsRegistry); None keeps the default
        # loop untouched -- run() only branches once, before draining.
        self._metrics = None

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for perf reporting)."""
        return self._events_processed

    def attach_metrics(self, registry) -> None:
        """Enable loop telemetry: events/sec and queue-depth high-water.

        The wall-clock read is observation-only (it never feeds back into
        the virtual clock), so determinism of outcomes is preserved.
        """
        self._metrics = registry

    def schedule(
        self, delay: float, fn: Callable[..., Any], arg: Any = _NO_ARG
    ) -> None:
        """Run ``fn`` (optionally as ``fn(arg)``) at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, fn, arg)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], arg: Any = _NO_ARG
    ) -> None:
        """Run ``fn`` (optionally as ``fn(arg)``) at absolute ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (t={time} < now={self.now})"
            )
        heapq.heappush(self._queue, (time, self._seq, fn, arg))
        self._seq += 1

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the event queue; returns the final clock value.

        ``until`` stops the clock at a horizon (events beyond it stay
        queued); ``max_events`` guards against runaway simulations.
        """
        if self._metrics is not None:
            return self._run_instrumented(until, max_events)
        queue = self._queue
        pop = heapq.heappop
        no_arg = _NO_ARG
        while queue:
            if max_events is not None and self._events_processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events -- likely a "
                    "protocol bug (deadlock would drain, livelock would not)"
                )
            t = queue[0][0]
            if until is not None and t > until:
                break
            _, _, fn, arg = pop(queue)
            self.now = t
            self._events_processed += 1
            if arg is no_arg:
                fn()
            else:
                fn(arg)
        return self.now

    def _run_instrumented(
        self, until: float | None, max_events: int | None
    ) -> float:
        """The :meth:`run` loop plus telemetry (metrics attached).

        A separate copy so the default loop carries zero extra work; this
        one additionally tracks the queue-depth high-water mark and, at
        the end, wall-clock throughput.  Only wall time is read -- the
        event order and virtual clock are untouched.
        """
        metrics = self._metrics
        queue = self._queue
        pop = heapq.heappop
        no_arg = _NO_ARG
        depth_hw = len(queue)
        start_events = self._events_processed
        start_wall = time.perf_counter()  # det: allow(DET003) observation-only
        while queue:
            if max_events is not None and self._events_processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events -- likely a "
                    "protocol bug (deadlock would drain, livelock would not)"
                )
            depth = len(queue)
            if depth > depth_hw:
                depth_hw = depth
            t = queue[0][0]
            if until is not None and t > until:
                break
            _, _, fn, arg = pop(queue)
            self.now = t
            self._events_processed += 1
            if arg is no_arg:
                fn()
            else:
                fn(arg)
        wall = time.perf_counter() - start_wall  # det: allow(DET003)
        n = self._events_processed - start_events
        metrics.counter("sim.events").inc(n)
        metrics.gauge("sim.queue_depth_high_water").update_max(depth_hw)
        metrics.gauge("sim.wall_seconds").set(wall)
        if wall > 0.0:
            metrics.gauge("sim.events_per_sec").set(n / wall)
        return self.now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
