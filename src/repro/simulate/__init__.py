"""Discrete-event simulator of a distributed-memory message-passing machine.

Substitutes for the paper's physical testbed (NERSC Edison, Cray XC30):
rank-level CPU and NIC resources, a hierarchical network with seeded
inhomogeneity, MPI-like asynchronous point-to-point messaging, and
per-rank communication-volume accounting.
"""

from .engine import BatchSimulator, Simulator
from .machine import BatchMachine, CommStats, Machine, Message, TraceEvent
from .network import Network, NetworkConfig
from .vec import VecCommStats, VecMachine, VecSimulator

__all__ = [
    "BatchMachine",
    "BatchSimulator",
    "CommStats",
    "Machine",
    "Message",
    "Network",
    "NetworkConfig",
    "Simulator",
    "TraceEvent",
    "VecCommStats",
    "VecMachine",
    "VecSimulator",
]
