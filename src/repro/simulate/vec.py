"""Vectorized DES engine: batched dispatch, column stats, point sends.

The third execution engine (``engine="vectorized"``), layered on the
calendar-queue batch stack:

* :class:`VecSimulator` extends :class:`BatchSimulator` with a *batch
  handler table*: a handler id may register a companion
  ``fn(batch, lo, hi)`` that consumes a whole contiguous same-handler
  slice of a sorted bucket in one call, instead of one dispatch per
  event.  Scalar semantics are unchanged -- the slice handler replays
  the exact per-event arithmetic in a tight loop with the per-slice
  work (argument gathers, ejection costs, stats scatter, bucket ids)
  vectorized, and bounded/instrumented runs fall back to the inherited
  scalar loops.
* :class:`VecCommStats` stores the per-category byte/count tables as
  preallocated numpy columns, so slice handlers accumulate with one
  batched scatter-add (``np.add.at``); integer-valued float tallies
  below 2^53 are exact, so the scatter order cannot change a bit.
* :class:`VecMachine` extends :class:`BatchMachine` with three hot-path
  primitives used by the compiled collectives and the vectorized
  protocol layer (:mod:`repro.comm.vec_collectives`):

  - :meth:`send_pt` -- a *point* send for payload-less collective
    traffic: the in-flight message is a 5-tuple ``(dst, nbytes, cid,
    cb, aux)`` carried directly in the event-argument column, skipping
    the 8-column SoA record and its free-list round trip;
  - :meth:`send_batch` -- emits one rank's whole fan-out as a column
    batch: the NIC injection chain is an ``np.add.accumulate`` (bit-
    identical to the scalar chained adds) and the per-pair
    ``(latency, 1/bw, jitter)`` arithmetic is elementwise numpy;
  - :meth:`post_named` -- a closure-free :meth:`Machine.post_compute`:
    the completion is a pre-registered handler id plus argument with a
    precomputed duration, so protocol layers schedule millions of
    compute finishes without allocating a lambda each.

Every timestamp expression is term-for-term identical to the batch
machine's (and therefore to the legacy machine's); the engine-identity
suite drives all three engines over the fig8 sweep and asserts
bit-identical outcomes.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Any

import numpy as np

from .engine import BatchSimulator
from .machine import BatchMachine, CommStats
from .network import Network

__all__ = ["VecSimulator", "VecCommStats", "VecMachine"]


class VecSimulator(BatchSimulator):
    """Calendar-queue loop with contiguous same-handler slice dispatch.

    The unbounded drain scans each sorted bucket for runs of events
    sharing one handler id; a run at least :attr:`MIN_RUN` long whose
    handler registered a batch companion is handed over as one
    ``fn(batch, lo, hi)`` call.  The companion owns the slice: it must
    read times/args itself, clear the argument cells, leave ``now`` at
    the slice's last timestamp, and only schedule into *later* buckets
    (the machine layer guarantees this by gating installation on
    ``receive_overhead >= bucket_width``).  Shorter runs and foreign
    handler ids take the scalar path, re-checking the handler id per
    event -- an executed event may insort new work into the active
    bucket, so a precomputed run length cannot be trusted across scalar
    dispatches.

    Per-bucket occupancy is tallied (`buckets_drained`,
    `max_bucket_events`) so benchmarks can report the scheduler-vs-
    handler split instead of inferring it.
    """

    #: Minimum same-handler run length worth a batch dispatch; below
    #: this the slice setup (gathers, ndarray round trips) costs more
    #: than it saves.
    MIN_RUN = 8

    def __init__(self, bucket_width: float | None = None) -> None:
        super().__init__(bucket_width)
        # Batch companions, parallel to _table (ids 0/1 never batch).
        self._btable: list[Any] = [None, None]
        self.buckets_drained = 0
        self.max_bucket_events = 0

    def register_handler(self, fn) -> int:
        self._btable.append(None)
        return super().register_handler(fn)

    def register_batch_handler(self, hid: int, fn) -> None:
        """Install ``fn(batch, lo, hi)`` as handler ``hid``'s slice
        companion (see the class docstring for the contract)."""
        self._btable[hid] = fn

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the calendar (same contract as :class:`BatchSimulator`).

        Bounded and instrumented runs use the inherited scalar loops --
        identical outcomes, no slice dispatch.
        """
        if self._metrics is not None:
            return self._run_instrumented(until, max_events)
        if until is not None or max_events is not None:
            return self._run_bounded(until, max_events)
        buckets = self._buckets
        heap = self._bucket_heap
        times = self._times
        hids = self._hids
        args = self._args
        table = self._table
        btable = self._btable
        minrun = self.MIN_RUN
        key = times.__getitem__
        drained = 0
        maxb = self.max_bucket_events
        while heap:
            b = heappop(heap)
            batch = buckets.pop(b, None)
            if batch is None:  # pragma: no cover - defensive
                continue
            if len(batch) > 1:
                batch.sort(key=key)
            self._active_bucket = b
            self._active_list = batch
            drained += 1
            # The C-level list iterator survives mid-drain growth (an
            # insort always lands strictly after the in-flight position,
            # same argument as the batch loop).  A slice dispatch
            # consumes events *ahead* of the iterator; those are marked
            # with hid -1 (seqs are never recycled, so the sentinel
            # cannot collide) and skipped when the iterator reaches them.
            for i, s in enumerate(batch):
                h = hids[s]
                if h >= 2:
                    bh = btable[h]
                    if bh is not None:
                        nb = len(batch)
                        j = i + 1
                        while j < nb and hids[batch[j]] == h:
                            j += 1
                        if j - i >= minrun:
                            bh(batch, i, j)
                            for x in range(i + 1, j):
                                hids[batch[x]] = -1
                            continue
                    self.now = times[s]
                    a = args[s]
                    args[s] = None
                    table[h](a)
                elif h == 0:
                    self.now = times[s]
                    a = args[s]
                    args[s] = None
                    a()
                elif h == 1:
                    self.now = times[s]
                    f, x = args[s]
                    args[s] = None
                    f(x)
                # h == -1: already consumed by a slice dispatch above.
            self._active_bucket = -1
            self._active_list = None
            n = len(batch)
            if n > maxb:
                maxb = n
            self._events_processed += n
            self._npending -= n
        self.buckets_drained += drained
        self.max_bucket_events = maxb
        return self.now

    def occupancy_stats(self) -> dict[str, float]:
        """Per-bucket occupancy summary of the unbounded drains so far."""
        drained = self.buckets_drained
        events = self._events_processed
        return {
            "buckets_drained": drained,
            "events": events,
            "mean_bucket_events": events / drained if drained else 0.0,
            "max_bucket_events": self.max_bucket_events,
        }


class VecCommStats(CommStats):
    """Per-category tables as preallocated numpy columns.

    Scalar paths update single cells (``col[rank] += nbytes``); slice
    handlers scatter-add whole batches (``np.add.at``).  Byte and count
    tallies are integer-valued and far below 2^53, so both orders give
    exactly the same floats.  Busy-time accumulators stay plain Python
    lists: they are chained-float state updated once per event on the
    scalar path, where list indexing wins.
    """

    def _get(self, table, category):
        arr = table.get(category)
        if arr is None:
            arr = np.zeros(self.nranks)
            table[category] = arr
        return arr

    def _get_counts(self, table, category):
        arr = table.get(category)
        if arr is None:
            arr = np.zeros(self.nranks, dtype=np.int64)
            table[category] = arr
        return arr

    # The read-out views copy: the base class's np.asarray would alias
    # the live accumulator columns.

    @property
    def sent(self) -> dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self._sent.items()}

    @property
    def received(self) -> dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self._received.items()}

    @property
    def messages_sent(self) -> dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self._messages_sent.items()}

    def total_sent(self, category: str | None = None) -> np.ndarray:
        if category is not None:
            col = self._sent.get(category)
            return col.copy() if col is not None else np.zeros(self.nranks)
        out = np.zeros(self.nranks)
        for arr in self._sent.values():
            out += arr
        return out

    def total_received(self, category: str | None = None) -> np.ndarray:
        if category is not None:
            col = self._received.get(category)
            return col.copy() if col is not None else np.zeros(self.nranks)
        out = np.zeros(self.nranks)
        for arr in self._received.values():
            out += arr
        return out


class VecMachine(BatchMachine):
    """The machine on the vectorized engine (see the module docstring).

    A :class:`BatchMachine` in every respect -- same SoA record path for
    tagged point-to-point traffic, same fast-path closures, same cost
    model -- plus the point-send/batch-send/named-compute primitives and
    the slice receive dispatchers.  Configurations that are not
    fast-path eligible (telemetry recorder, trace log, instrumented
    network, per-delivery CPU tax, dict channels) degrade gracefully:
    the primitives fall back to generic methods with identical outcomes.
    """

    _stats_cls = VecCommStats

    def __init__(
        self,
        nranks: int,
        network: Network,
        sim: VecSimulator | None = None,
        *,
        event_log: list | None = None,
        recorder=None,
        metrics=None,
        deliver_cpu_overhead: float = 0.0,
        bucket_width: float | None = None,
    ):
        # Defer the fast-path install triggered by BatchMachine.__init__
        # until the point-route handlers below are registered (the
        # override checks this flag).
        self._vec_ready = False
        super().__init__(
            nranks,
            network,
            sim or VecSimulator(bucket_width),
            event_log=event_log,
            recorder=recorder,
            metrics=metrics,
            deliver_cpu_overhead=deliver_cpu_overhead,
            bucket_width=bucket_width,
        )
        sim_ = self.sim
        self._hid_receive_pt = sim_.register_handler(self._receive_pt)
        self._hid_deliver_pt = sim_.register_handler(self._deliver_pt)
        self._vec_ready = True
        if self._fast_eligible:
            self._install_fast_path()

    # -- generic primitives (identical outcomes, no specialization) --------

    def send_pt(self, src, dst, tag, nbytes, cid, cb, aux=0) -> None:
        """Point send for payload-less collective traffic.

        Generic fallback: routes through the SoA :meth:`send` (which
        also feeds the trace log / telemetry hooks when active).  The
        fast path replaces this with the tuple-record closure.
        """
        self.send(src, dst, tag, nbytes, cid, None, cb, aux)

    def send_batch(self, src, dsts, tag, nbytes, cid, cb, auxs) -> None:
        """Emit one rank's fan-out; generic fallback sends per child."""
        send = self.send_pt
        for dst, aux in zip(dsts, auxs):
            send(src, dst, tag, nbytes, cid, cb, aux)

    def post_named(self, rank, seconds, hid, arg) -> None:
        """Closure-free compute: dispatch ``table[hid](arg)`` after
        occupying ``rank``'s CPU for the precomputed ``seconds``.

        Timestamp arithmetic is identical to :meth:`Machine.post_compute`
        with a callback; the protocol layer precomputes ``seconds`` with
        the exact ``compute_time`` expression.
        """
        sim = self.sim
        now = sim.now
        cpu = self._cpu_free[rank]
        start = cpu if cpu > now else now
        finish = start + seconds
        self._cpu_free[rank] = finish
        self.stats._compute_busy[rank] += seconds
        sim.schedule_msg(finish, hid, arg)

    def _receive_pt(self, rec) -> None:
        """Receive stage of the point route (rec = (dst, nbytes, cid,
        cb, aux)); mirrors :meth:`_receive_rec` sans record columns."""
        dst = rec[0]
        nbytes = rec[1]
        cid = rec[2]
        col = self._recv_cols[cid]
        if col is None:
            self._bind_recv(cid)
            col = self._recv_cols[cid]
        col[dst] += nbytes
        sim = self.sim
        now = sim.now
        if self._inline_net:
            eject = nbytes * self._ej_bw_inv
        else:
            eject = self._ejection_time(nbytes)
        nic = self._nic_in_free[dst]
        nic_start = nic if nic > now else now
        nic_done = nic_start + eject
        self._nic_in_free[dst] = nic_done
        self._nic_in_col[dst] += eject
        oh = self._recv_overhead
        cpu = self._cpu_free[dst]
        start = cpu if cpu > nic_done else nic_done
        deliver_at = start + oh
        self._cpu_free[dst] = deliver_at
        self._recv_oh_col[dst] += oh
        sim.schedule_msg(deliver_at, self._hid_deliver_pt, rec)

    def _deliver_pt(self, rec) -> None:
        """Deliver stage of the point route: straight to the callback."""
        rec[3](rec[0], None, rec[4])

    # -- closure-specialized fast path --------------------------------------

    def _install_fast_path(self) -> None:
        """Add the vectorized primitives on top of the batch fast path.

        Called twice on the constructor path: once from
        ``BatchMachine.__init__`` (deferred -- the point-route handler
        ids do not exist yet) and once at the end of our own
        ``__init__``.  Installs the point-send/receive/deliver closures,
        the named-compute and batch-send closures, and -- when the
        receive-side CPU overhead spans at least one bucket, so a
        pushed delivery can never land in the *active* bucket -- the
        slice receive dispatchers for both the SoA and the point route.
        """
        if not self._vec_ready:
            return
        super()._install_fast_path()
        sim = self.sim
        nranks = self.nranks
        mdst = self._mdst
        mnbytes = self._mnbytes
        mcid = self._mcid
        sent_cols = self._sent_cols
        sent_counts = self._sent_counts
        recv_cols = self._recv_cols
        bind_sent = self._bind_sent
        bind_recv = self._bind_recv
        nic_free = self._nic_free
        nic_in_free = self._nic_in_free
        cpu_free = self._cpu_free
        nic_out_col = self._nic_out_col
        nic_in_col = self._nic_in_col
        recv_oh_col = self._recv_oh_col
        compute_busy = self.stats._compute_busy
        ch = self._channel_last
        pairs = self._pairs
        pair_params = self._pair_params
        inj_oh = self._inj_oh
        inj_bw_inv = self._inj_bw_inv
        ej_bw_inv = self._ej_bw_inv
        recv_oh = self._recv_overhead
        hid_receive_pt = self._hid_receive_pt
        hid_deliver_pt = self._hid_deliver_pt
        hid_deliver = self._hid_deliver
        st = self._s_times
        shids = self._s_hids
        sargs = self._s_args
        sbk = self._s_buckets
        sheap = self._s_heap
        inv_width = self._s_inv_width
        key = st.__getitem__

        def fast_send_pt(src, dst, tag, nbytes, cid, cb, aux=0):
            now = sim.now
            if src == dst:
                arrival = now
                hid = hid_deliver_pt
            else:
                col = sent_cols[cid]
                if col is None:
                    bind_sent(cid)
                    col = sent_cols[cid]
                col[src] += nbytes
                sent_counts[cid][src] += 1
                inj = inj_oh + nbytes * inj_bw_inv
                nic = nic_free[src]
                start = nic if nic > now else now
                finish = start + inj
                nic_free[src] = finish
                nic_out_col[src] += inj
                pidx = src * nranks + dst
                pp = pairs[pidx]
                if pp is None:
                    pp = pair_params(src, dst)
                    pairs[pidx] = pp
                lat, ibw, jit = pp
                arrival = finish + (lat + nbytes * ibw) * jit
                last = ch[pidx]
                if arrival < last:
                    arrival = last
                ch[pidx] = arrival
                hid = hid_receive_pt
            s = sim._seq
            sim._seq = s + 1
            st.append(arrival)
            shids.append(hid)
            sargs.append((dst, nbytes, cid, cb, aux))
            sim._npending += 1
            b = int(arrival * inv_width)
            if b == sim._active_bucket:
                insort(sim._active_list, s, key=key)
            else:
                try:
                    sbk[b].append(s)
                except KeyError:
                    sbk[b] = [s]
                    heappush(sheap, b)

        def fast_receive_pt(rec):
            dst = rec[0]
            nbytes = rec[1]
            col = recv_cols[rec[2]]
            if col is None:
                bind_recv(rec[2])
                col = recv_cols[rec[2]]
            col[dst] += nbytes
            now = sim.now
            eject = nbytes * ej_bw_inv
            nic = nic_in_free[dst]
            nic_start = nic if nic > now else now
            nic_done = nic_start + eject
            nic_in_free[dst] = nic_done
            nic_in_col[dst] += eject
            cpu = cpu_free[dst]
            start = cpu if cpu > nic_done else nic_done
            deliver_at = start + recv_oh
            cpu_free[dst] = deliver_at
            recv_oh_col[dst] += recv_oh
            s = sim._seq
            sim._seq = s + 1
            st.append(deliver_at)
            shids.append(hid_deliver_pt)
            sargs.append(rec)
            sim._npending += 1
            b = int(deliver_at * inv_width)
            if b == sim._active_bucket:
                insort(sim._active_list, s, key=key)
            else:
                try:
                    sbk[b].append(s)
                except KeyError:
                    sbk[b] = [s]
                    heappush(sheap, b)

        def fast_deliver_pt(rec):
            rec[3](rec[0], None, rec[4])

        def fast_post_named(rank, seconds, hid, arg):
            now = sim.now
            cpu = cpu_free[rank]
            start = cpu if cpu > now else now
            finish = start + seconds
            cpu_free[rank] = finish
            compute_busy[rank] += seconds
            s = sim._seq
            sim._seq = s + 1
            st.append(finish)
            shids.append(hid)
            sargs.append(arg)
            sim._npending += 1
            b = int(finish * inv_width)
            if b == sim._active_bucket:
                insort(sim._active_list, s, key=key)
            else:
                try:
                    sbk[b].append(s)
                except KeyError:
                    sbk[b] = [s]
                    heappush(sheap, b)

        def fast_send_batch(src, dsts, tag, nbytes, cid, cb, auxs):
            n = len(dsts)
            now = sim.now
            col = sent_cols[cid]
            if col is None:
                bind_sent(cid)
                col = sent_cols[cid]
            # n integer-valued adds collapse to one (exact below 2^53).
            col[src] += nbytes * n
            sent_counts[cid][src] += n
            inj = inj_oh + nbytes * inj_bw_inv
            nic = nic_free[src]
            start = nic if nic > now else now
            # NIC injection chain: finish_k = finish_{k-1} + inj.
            # np.add.accumulate is a sequential left fold -- bit-identical
            # to the scalar chained adds (and start + inj > now always,
            # so the scalar max() never rebases mid-chain).
            steps = np.full(n, inj)
            steps[0] = start + inj
            fins = np.add.accumulate(steps)
            nic_free[src] = float(fins[-1])
            bsteps = np.full(n, inj)
            bsteps[0] = nic_out_col[src] + inj
            nic_out_col[src] = float(np.add.accumulate(bsteps)[-1])
            pidxs = [src * nranks + d for d in dsts]
            pps = []
            app = pps.append
            for x in range(n):
                pi = pidxs[x]
                pp = pairs[pi]
                if pp is None:
                    pp = pair_params(src, dsts[x])
                    pairs[pi] = pp
                app(pp)
            lats = np.array([p[0] for p in pps])
            ibws = np.array([p[1] for p in pps])
            jits = np.array([p[2] for p in pps])
            arrl = (fins + (lats + nbytes * ibws) * jits).tolist()
            # Channel FIFO clamps stay scalar (stateful per pair).
            for x in range(n):
                pi = pidxs[x]
                a = arrl[x]
                last = ch[pi]
                if a < last:
                    a = last
                    arrl[x] = a
                ch[pi] = a
            s0 = sim._seq
            sim._seq = s0 + n
            st.extend(arrl)
            shids.extend([hid_receive_pt] * n)
            sargs.extend(
                [(dsts[x], nbytes, cid, cb, auxs[x]) for x in range(n)]
            )
            sim._npending += n
            ab = sim._active_bucket
            al = sim._active_list
            for x in range(n):
                b = int(arrl[x] * inv_width)
                if b == ab:
                    insort(al, s0 + x, key=key)
                else:
                    try:
                        sbk[b].append(s0 + x)
                    except KeyError:
                        sbk[b] = [s0 + x]
                        heappush(sheap, b)

        self.send_pt = fast_send_pt
        self.send_batch = fast_send_batch
        self.post_named = fast_post_named
        sim._table[hid_receive_pt] = fast_receive_pt
        sim._table[hid_deliver_pt] = fast_deliver_pt

        if not isinstance(sim, VecSimulator) or recv_oh < sim.bucket_width:
            # Slice dispatch requires pushed deliveries to land strictly
            # past the active bucket: deliver_at >= now + recv_oh, so
            # recv_oh >= bucket_width guarantees it.  Otherwise the
            # scalar closures above remain the only receive path.
            return

        hid_receive = self._hid_receive

        def fast_receive_pt_batch(batch, lo, hi):
            idx = batch[lo:hi]
            recs = [sargs[s] for s in idx]
            ts = [st[s] for s in idx]
            for s in idx:
                sargs[s] = None
            n = hi - lo
            nbl = [r[1] for r in recs]
            dsts = [r[0] for r in recs]
            ej = (np.array(nbl, dtype=np.float64) * ej_bw_inv).tolist()
            # Category byte tallies: scatter-add of exact integers
            # (order-free); single-category slices take one np.add.at.
            c0 = recs[0][2]
            mixed = False
            for r in recs:
                if r[2] != c0:
                    mixed = True
                    break
            if mixed:
                for x in range(n):
                    c = recs[x][2]
                    col = recv_cols[c]
                    if col is None:
                        bind_recv(c)
                        col = recv_cols[c]
                    col[dsts[x]] += nbl[x]
            else:
                col = recv_cols[c0]
                if col is None:
                    bind_recv(c0)
                    col = recv_cols[c0]
                np.add.at(col, dsts, np.array(nbl, dtype=np.float64))
            deliver = [0.0] * n
            for x in range(n):
                dst = dsts[x]
                now = ts[x]
                e = ej[x]
                nic = nic_in_free[dst]
                if nic <= now:
                    nic = now
                nic_done = nic + e
                nic_in_free[dst] = nic_done
                nic_in_col[dst] += e
                cpu = cpu_free[dst]
                d = (cpu if cpu > nic_done else nic_done) + recv_oh
                cpu_free[dst] = d
                recv_oh_col[dst] += recv_oh
                deliver[x] = d
            s0 = sim._seq
            sim._seq = s0 + n
            st.extend(deliver)
            shids.extend([hid_deliver_pt] * n)
            sargs.extend(recs)
            sim._npending += n
            bids = (
                (np.array(deliver) * inv_width).astype(np.int64).tolist()
            )
            for x in range(n):
                b = bids[x]
                try:
                    sbk[b].append(s0 + x)
                except KeyError:
                    sbk[b] = [s0 + x]
                    heappush(sheap, b)
            sim.now = ts[n - 1]

        def fast_receive_batch(batch, lo, hi):
            idx = batch[lo:hi]
            recs = [sargs[s] for s in idx]
            ts = [st[s] for s in idx]
            for s in idx:
                sargs[s] = None
            n = hi - lo
            dsts = [mdst[i] for i in recs]
            nbl = [mnbytes[i] for i in recs]
            ej = (np.array(nbl, dtype=np.float64) * ej_bw_inv).tolist()
            c0 = mcid[recs[0]]
            mixed = False
            for i in recs:
                if mcid[i] != c0:
                    mixed = True
                    break
            if mixed:
                for x in range(n):
                    c = mcid[recs[x]]
                    col = recv_cols[c]
                    if col is None:
                        bind_recv(c)
                        col = recv_cols[c]
                    col[dsts[x]] += nbl[x]
            else:
                col = recv_cols[c0]
                if col is None:
                    bind_recv(c0)
                    col = recv_cols[c0]
                np.add.at(col, dsts, np.array(nbl, dtype=np.float64))
            deliver = [0.0] * n
            for x in range(n):
                dst = dsts[x]
                now = ts[x]
                e = ej[x]
                nic = nic_in_free[dst]
                if nic <= now:
                    nic = now
                nic_done = nic + e
                nic_in_free[dst] = nic_done
                nic_in_col[dst] += e
                cpu = cpu_free[dst]
                d = (cpu if cpu > nic_done else nic_done) + recv_oh
                cpu_free[dst] = d
                recv_oh_col[dst] += recv_oh
                deliver[x] = d
            s0 = sim._seq
            sim._seq = s0 + n
            st.extend(deliver)
            shids.extend([hid_deliver] * n)
            sargs.extend(recs)
            sim._npending += n
            bids = (
                (np.array(deliver) * inv_width).astype(np.int64).tolist()
            )
            for x in range(n):
                b = bids[x]
                try:
                    sbk[b].append(s0 + x)
                except KeyError:
                    sbk[b] = [s0 + x]
                    heappush(sheap, b)
            sim.now = ts[n - 1]

        sim.register_batch_handler(hid_receive_pt, fast_receive_pt_batch)
        sim.register_batch_handler(hid_receive, fast_receive_batch)
