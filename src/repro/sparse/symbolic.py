"""Column-level symbolic factorization.

Computes, for a structurally symmetric pattern in topological (postorder
compatible) order, the per-column fill-in structure of the factor ``L``:

* :func:`column_counts` -- ``count[j] = |struct(L[:, j])|`` including the
  diagonal, via the union recursion along the elimination tree (memory-
  light: child structures are freed as soon as their parent consumed
  them).
* :func:`column_structures` -- the full per-column row structures (used by
  tests and by small problems only; quadratic memory in the worst case).

The recursion is the textbook one (Gilbert/Liu):

    struct(j) = ( A_lower(j) U union over children c of struct(c) ) \\ {<= j}

which is exact for the no-pivoting LU/LDL^T factorizations used here.
"""

from __future__ import annotations

import numpy as np

from .etree import children_lists, elimination_tree, is_postordered
from .matrix import SparseMatrix

__all__ = ["column_counts", "column_structures", "fill_statistics"]


def _check_input(a: SparseMatrix, parent: np.ndarray) -> None:
    if len(parent) != a.n:
        raise ValueError("parent length must equal matrix dimension")
    if not is_postordered(parent):
        raise ValueError(
            "matrix must be in topological order (parent[j] > j); "
            "relabel with a postorder of the elimination tree first"
        )


def column_counts(a: SparseMatrix, parent: np.ndarray | None = None) -> np.ndarray:
    """Nonzero count of each column of L (diagonal included).

    ``O(fill)`` time; peak memory proportional to the widest set of
    "active" subtree structures rather than the whole factor.
    """
    if parent is None:
        parent = elimination_tree(a)
    _check_input(a, parent)
    n = a.n
    kids = children_lists(parent)
    counts = np.empty(n, dtype=np.int64)
    live: dict[int, np.ndarray] = {}
    for j in range(n):
        arows = a.column_rows(j)
        parts = [arows[arows > j]]
        for c in kids[j]:
            s = live.pop(c)
            parts.append(s[s > j])
        struct = np.unique(np.concatenate(parts)) if len(parts) > 1 else np.unique(parts[0])
        counts[j] = len(struct) + 1
        if parent[j] >= 0:
            live[j] = struct
    return counts


def column_structures(
    a: SparseMatrix, parent: np.ndarray | None = None
) -> list[np.ndarray]:
    """Full below-diagonal row structure of every column of L.

    Returns ``struct`` where ``struct[j]`` is the sorted array of row
    indices ``> j`` in column ``j`` of the factor.  Memory is the full
    fill-in; intended for tests and small matrices.
    """
    if parent is None:
        parent = elimination_tree(a)
    _check_input(a, parent)
    n = a.n
    kids = children_lists(parent)
    struct: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    for j in range(n):
        arows = a.column_rows(j)
        parts = [arows[arows > j].astype(np.int64)]
        for c in kids[j]:
            s = struct[c]
            parts.append(s[s > j])
        struct[j] = np.unique(np.concatenate(parts))
    return struct


def fill_statistics(
    a: SparseMatrix, parent: np.ndarray | None = None
) -> dict[str, float]:
    """Summary fill statistics used when reporting workload properties.

    Returns nnz of A, nnz of the L factor (lower triangle including
    diagonal), the fill ratio, and nnz of ``L + U`` (what the paper calls
    ``nnz(LU)`` in Table II -- both triangles, diagonal counted once).
    """
    counts = column_counts(a, parent)
    nnz_l = int(counts.sum())
    return {
        "n": a.n,
        "nnz_a": a.nnz,
        "nnz_l": nnz_l,
        "nnz_lu": 2 * nnz_l - a.n,
        "fill_ratio": (2 * nnz_l - a.n) / max(a.nnz, 1),
    }
