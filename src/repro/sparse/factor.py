"""Supernodal sparse LU factorization (no pivoting).

Implements the right-looking supernodal factorization ``A = L U`` of a
structurally symmetric, topologically ordered sparse matrix.  The factor
plays the role SuperLU_DIST plays in the paper: PSelInv consumes its
supernodal blocks.  Symmetric matrices need no special casing -- their LU
factor simply satisfies ``U = D L^T`` -- so one code path serves both the
paper's symmetric experiments and its "future work" unsymmetric extension.

No pivoting is performed: the intended inputs (SPD or diagonally dominant
workloads, as produced by :mod:`repro.workloads`) are factorizable as-is,
which mirrors the static-pivoting mode of SuperLU_DIST used with PEXSI.
A zero (or tiny) pivot raises :class:`ZeroPivotError` rather than
silently corrupting the factor.

Storage per supernode ``K`` (width ``s``, ``m`` below-diagonal rows)::

    LX[K] : (s + m, s) dense -- rows = cols(K) ++ rows_below(K)
            top (s, s)  : packed LU of the diagonal block
                          (unit L strictly below, U on and above)
            bottom (m,s): the L panel  L(rows_below, K)
    UX[K] : (s, m) dense -- the U panel U(K, rows_below)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_triangular

from .matrix import SparseMatrix
from .supernodes import SupernodalStructure

__all__ = ["ZeroPivotError", "SupernodalFactor", "factorize"]


class ZeroPivotError(RuntimeError):
    """Raised when a diagonal pivot is exactly zero / numerically tiny."""


def _dense_lu_nopivot(d: np.ndarray, *, tol: float) -> None:
    """In-place dense LU without pivoting (packed: unit L below, U above)."""
    s = d.shape[0]
    for i in range(s - 1):
        piv = d[i, i]
        if abs(piv) <= tol:
            raise ZeroPivotError(f"zero pivot at local index {i}")
        d[i + 1 :, i] /= piv
        d[i + 1 :, i + 1 :] -= np.outer(d[i + 1 :, i], d[i, i + 1 :])
    if s and abs(d[s - 1, s - 1]) <= tol:
        raise ZeroPivotError(f"zero pivot at local index {s - 1}")


@dataclass
class SupernodalFactor:
    """The computed factor: structure plus dense per-supernode blocks.

    ``normalized`` flips to True once
    :func:`repro.sparse.selinv.normalize` overwrites the panels with
    ``Lhat``/``Uhat``; triangular solves require a raw factor, selected
    inversion a normalized one.
    """

    struct: SupernodalStructure
    LX: list[np.ndarray]
    UX: list[np.ndarray]
    rows_full: list[np.ndarray]  # cols(K) ++ rows_below(K), per supernode
    normalized: bool = False

    @property
    def nsup(self) -> int:
        return self.struct.nsup

    def diag_block(self, k: int) -> np.ndarray:
        """Packed LU of the diagonal block of supernode ``k`` (a view)."""
        s = self.struct.width(k)
        return self.LX[k][:s, :]

    def l_panel(self, k: int) -> np.ndarray:
        """``L(rows_below(k), k)`` (a view)."""
        s = self.struct.width(k)
        return self.LX[k][s:, :]

    def u_panel(self, k: int) -> np.ndarray:
        """``U(k, rows_below(k))`` (a view)."""
        return self.UX[k]

    def unpack_dense(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize dense ``(L, U)`` with ``A = L @ U`` (tests only)."""
        n = self.struct.n
        dt = self.LX[0].dtype if self.LX else np.float64
        L = np.eye(n, dtype=dt)
        U = np.zeros((n, n), dtype=dt)
        for k in range(self.nsup):
            fc = self.struct.first_col(k)
            s = self.struct.width(k)
            rows = self.struct.rows_below[k]
            d = self.diag_block(k)
            L[fc : fc + s, fc : fc + s] += np.tril(d, -1)
            U[fc : fc + s, fc : fc + s] = np.triu(d)
            if len(rows):
                L[np.ix_(rows, range(fc, fc + s))] = self.l_panel(k)
                U[np.ix_(range(fc, fc + s), rows)] = self.u_panel(k)
        return L, U


def _assemble(
    a: SparseMatrix, struct: SupernodalStructure
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """Scatter the entries of ``A`` into zero-initialized block storage."""
    nsup = struct.nsup
    dt = np.result_type(a.data.dtype, np.float64)
    LX: list[np.ndarray] = []
    UX: list[np.ndarray] = []
    rows_full: list[np.ndarray] = []
    for k in range(nsup):
        s = struct.width(k)
        rows = struct.rows_below[k]
        full = np.concatenate(
            [np.arange(struct.first_col(k), struct.first_col(k) + s), rows]
        )
        rows_full.append(full)
        LX.append(np.zeros((s + len(rows), s), dtype=dt))
        UX.append(np.zeros((s, len(rows)), dtype=dt))
    for j in range(a.n):
        k = int(struct.snode_of[j])
        fc = struct.first_col(k)
        rows, vals = a.column(j)
        # Lower + diagonal-block part -> LX[k]; strictly-upper part -> the
        # UX of the supernode owning each row.
        split = np.searchsorted(rows, fc)
        lo_rows, lo_vals = rows[split:], vals[split:]
        pos = np.searchsorted(rows_full[k], lo_rows)
        if len(pos) and not np.array_equal(rows_full[k][pos], lo_rows):
            raise ValueError("entry of A outside the symbolic structure")
        LX[k][pos, j - fc] = lo_vals
        for r, v in zip(rows[:split], vals[:split]):
            jk = int(struct.snode_of[r])
            cpos = np.searchsorted(struct.rows_below[jk], j)
            if struct.rows_below[jk][cpos] != j:
                raise ValueError("entry of A outside the symbolic structure")
            UX[jk][r - struct.first_col(jk), cpos] = v
    return LX, UX, rows_full


def factorize(
    a: SparseMatrix,
    struct: SupernodalStructure,
    *,
    pivot_tol: float = 0.0,
) -> SupernodalFactor:
    """Right-looking supernodal LU factorization of ``A``.

    ``A`` must match ``struct`` (structurally symmetric pattern contained
    in the symbolic structure, topologically ordered).  Returns the factor
    with raw (un-normalized) panels; Algorithm 1's first loop
    (normalization) lives in :mod:`repro.sparse.selinv`.
    """
    LX, UX, rows_full = _assemble(a, struct)
    nsup = struct.nsup
    for k in range(nsup):
        s = struct.width(k)
        d = LX[k][:s, :]
        _dense_lu_nopivot(d, tol=pivot_tol)
        rows = struct.rows_below[k]
        m = len(rows)
        if m == 0:
            continue
        lp = LX[k][s:, :]
        up = UX[k]
        # lp <- lp * inv(U_kk) : solve X U = B  via  U^T X^T = B^T.
        lp[:] = solve_triangular(d, lp.T, lower=False, trans="T").T
        # up <- inv(L_kk) * up : unit lower triangular solve.
        up[:] = solve_triangular(
            d, up, lower=True, unit_diagonal=True, trans="N"
        )
        w = lp @ up  # (m, m) Schur update for rows/cols ``rows``
        # Scatter-subtract into ancestor supernodes, grouped by the
        # supernode owning each target column.
        sn = struct.snode_of[rows]
        groups, starts = np.unique(sn, return_index=True)
        starts = list(starts) + [m]
        for g, jsn in enumerate(groups):
            jsn = int(jsn)
            j0, j1 = int(starts[g]), int(starts[g + 1])
            fcj = struct.first_col(jsn)
            lcj = struct.last_col(jsn)
            cols_local = rows[j0:j1] - fcj
            # L side: target entries (r, c) with r >= first col of jsn.
            i0 = int(np.searchsorted(rows, fcj))
            posr = np.searchsorted(rows_full[jsn], rows[i0:])
            LX[jsn][np.ix_(posr, cols_local)] -= w[i0:, j0:j1]
            # U side: target entries (r, c) with c > last col of jsn.
            i2 = int(np.searchsorted(rows, lcj + 1))
            if i2 < m:
                posc = np.searchsorted(struct.rows_below[jsn], rows[i2:])
                UX[jsn][np.ix_(cols_local, posc)] -= w[j0:j1, i2:]
    return SupernodalFactor(struct=struct, LX=LX, UX=UX, rows_full=rows_full)


# ---------------------------------------------------------------------------
# Cost model (consumed by the simulator's compute-time estimates)
# ---------------------------------------------------------------------------


def factorization_flops(struct: SupernodalStructure) -> int:
    """Floating-point operations of the numeric factorization."""
    total = 0
    for k in range(struct.nsup):
        s = struct.width(k)
        m = len(struct.rows_below[k])
        total += 2 * s**3 // 3  # dense LU of the diagonal block
        total += 2 * (s**2) * m  # two triangular panel solves
        total += 2 * s * m**2  # Schur-complement GEMM
    return total


def selinv_flops(struct: SupernodalStructure) -> int:
    """Floating-point operations of sequential selected inversion."""
    total = 0
    for k in range(struct.nsup):
        s = struct.width(k)
        m = len(struct.rows_below[k])
        total += 2 * m * m * s  # Ainv(C,C) @ Lhat
        total += 2 * s * m * s  # Uhat @ Ainv(C,K)  (diagonal update)
        total += 2 * s * m * m  # Uhat @ Ainv(C,C)  (row update)
        total += s**3  # triangular inversions of the diagonal block
    return total
