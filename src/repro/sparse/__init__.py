"""Sparse factorization substrate for the PSelInv reproduction.

Everything PSelInv needs from "a SuperLU_DIST-like pipeline", implemented
from scratch: sparse CSC containers, fill-reducing orderings, elimination
trees, symbolic factorization, supernode detection, supernodal LU, and
the sequential selected-inversion oracle (Algorithm 1 of the paper).
"""

from .driver import AnalyzedProblem, analyze, selinv_sequential
from .etree import elimination_tree, postorder
from .factor import SupernodalFactor, ZeroPivotError, factorize
from .io import read_matrix_market, write_matrix_market
from .matrix import (
    SparseMatrix,
    from_coo,
    from_dense,
    permute_symmetric,
    symmetrize_pattern,
)
from .ordering import (
    minimum_degree,
    natural_order,
    nested_dissection,
    reverse_cuthill_mckee,
)
from .selinv import SelectedInverse, normalize, selected_inversion
from .solve import solve, solve_factored
from .supernodes import SupernodalStructure, supernodal_structure
from .symbolic import column_counts, column_structures, fill_statistics

__all__ = [
    "AnalyzedProblem",
    "SelectedInverse",
    "SparseMatrix",
    "SupernodalFactor",
    "SupernodalStructure",
    "ZeroPivotError",
    "analyze",
    "column_counts",
    "column_structures",
    "elimination_tree",
    "factorize",
    "fill_statistics",
    "from_coo",
    "from_dense",
    "minimum_degree",
    "natural_order",
    "nested_dissection",
    "normalize",
    "permute_symmetric",
    "postorder",
    "read_matrix_market",
    "reverse_cuthill_mckee",
    "selected_inversion",
    "selinv_sequential",
    "solve",
    "solve_factored",
    "supernodal_structure",
    "symmetrize_pattern",
    "write_matrix_market",
]
