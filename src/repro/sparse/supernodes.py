"""Supernode partitioning and supernodal symbolic structure.

A *supernode* is a maximal range of contiguous columns of ``L`` sharing an
identical below-diagonal row structure.  Supernodes turn the sparse
factorization (and selected inversion) into dense BLAS3 block operations,
and they are the unit of distribution in PSelInv's 2D block-cyclic layout:
every communication event in the paper is "per supernode, per block row".

This module provides:

* :func:`fundamental_partition` -- detect structure-identical supernodes
  from the elimination tree and column counts.
* :func:`relax_partition` -- CHOLMOD-style relaxed amalgamation that merges
  small child supernodes into their parents, trading a bounded number of
  explicit zeros for larger dense blocks (real codes, including the
  SuperLU_DIST pipeline the paper builds on, always do this).
* :class:`SupernodalStructure` -- the supernodal row structures, block
  rows, supernodal elimination tree and invariant checks.  This object is
  the *interface contract* between the sparse substrate and the parallel
  layers: both the numeric factorization and the communication-volume
  models read only this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .etree import elimination_tree, is_postordered
from .matrix import SparseMatrix
from .symbolic import column_counts

__all__ = [
    "fundamental_partition",
    "relax_partition",
    "split_partition",
    "SupernodalStructure",
    "supernodal_structure",
]


def fundamental_partition(parent: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Partition columns into maximal structure-identical supernodes.

    Column ``j+1`` joins the supernode of ``j`` iff ``parent[j] == j+1``
    and ``counts[j] == counts[j+1] + 1`` (the classic criterion: the
    structure of column ``j`` minus its diagonal is always contained in
    that of its parent, and the counts matching forces equality).

    Returns ``sn_ptr`` of length ``nsup + 1``: supernode ``K`` spans
    columns ``[sn_ptr[K], sn_ptr[K+1])``.
    """
    n = len(parent)
    starts = [0]
    for j in range(n - 1):
        if not (parent[j] == j + 1 and counts[j] == counts[j + 1] + 1):
            starts.append(j + 1)
    starts.append(n)
    return np.asarray(starts, dtype=np.int64)


def relax_partition(
    parent: np.ndarray,
    counts: np.ndarray,
    sn_ptr: np.ndarray,
    *,
    max_size: int = 64,
    small: int = 8,
    zero_fraction: float = 0.15,
) -> np.ndarray:
    """Relaxed amalgamation of a fundamental partition.

    Walks supernodes bottom-up and merges a child supernode into its
    parent when (a) the child's parent supernode starts exactly where the
    child's columns end *in the elimination tree* (i.e. the parent of the
    child's last column is the parent supernode's first column), and (b)
    either both are tiny (``<= small`` columns) or the estimated fraction
    of explicit zeros introduced stays below ``zero_fraction``, and (c)
    the merged supernode does not exceed ``max_size`` columns.

    The returned partition is coarser than the input; structures must be
    recomputed with :func:`supernodal_structure` afterwards.
    """
    nsup = len(sn_ptr) - 1
    first = sn_ptr[:-1].copy()
    last = sn_ptr[1:] - 1
    width = (sn_ptr[1:] - sn_ptr[:-1]).astype(np.int64)
    # Union-find over supernodes; we only ever merge K into K+1 when the
    # column ranges are adjacent, so the partition stays contiguous.
    merged_into_next = np.zeros(nsup, dtype=bool)
    # Effective width/zero estimates as we merge.
    eff_width = width.copy()
    eff_rows = counts[first] - 1  # below-diagonal rows of the snode's 1st col
    eff_zeros = np.zeros(nsup, dtype=np.int64)

    for k in range(nsup - 1):
        j_last = last[k]
        p = parent[j_last]
        if p != first[k + 1]:
            continue  # parent supernode is not the adjacent one
        w = eff_width[k] + eff_width[k + 1]
        if w > max_size:
            continue
        # Zeros introduced: child columns get padded up to the parent's
        # structure.  Estimate per merged child column: parent's rows + its
        # own extra width vs its true count.
        padded = int(eff_rows[k + 1]) + int(eff_width[k + 1])
        true = int(counts[first[k]]) - 1
        extra = max(0, (padded - true)) * int(eff_width[k])
        total = (int(eff_rows[k + 1]) + w) * w
        ok_small = eff_width[k] <= small and eff_width[k + 1] <= small
        if not ok_small and total > 0 and (eff_zeros[k] + extra) / total > zero_fraction:
            continue
        merged_into_next[k] = True
        eff_width[k + 1] = w
        eff_zeros[k + 1] = eff_zeros[k] + extra
        first[k + 1] = first[k]
    # Rebuild pointer array from surviving starts.
    keep = [0]
    for k in range(nsup):
        if merged_into_next[k]:
            continue
        keep.append(int(last[k]) + 1)
    out = np.asarray(keep, dtype=np.int64)
    assert out[0] == 0 and out[-1] == len(parent)
    return out


def split_partition(sn_ptr: np.ndarray, max_size: int) -> np.ndarray:
    """Split supernodes wider than ``max_size`` into chunks.

    Dense trailing blocks (top-level nested-dissection separators) form a
    single huge fundamental supernode; production solvers cap panel width
    both for BLAS efficiency and -- crucially for PSelInv -- to expose
    block-level parallelism across the processor grid.  Splitting a
    structure-identical supernode is always valid: each chunk's structure
    is the tail columns of the original plus the original's below-diagonal
    rows.
    """
    if max_size < 1:
        raise ValueError("max_size must be positive")
    starts: list[int] = []
    for k in range(len(sn_ptr) - 1):
        fc, end = int(sn_ptr[k]), int(sn_ptr[k + 1])
        for c in range(fc, end, max_size):
            starts.append(c)
    starts.append(int(sn_ptr[-1]))
    return np.asarray(starts, dtype=np.int64)


@dataclass
class SupernodalStructure:
    """Supernodal symbolic structure of a factorization.

    Attributes
    ----------
    n:
        Matrix dimension.
    sn_ptr:
        ``nsup + 1`` column pointers; supernode ``K`` spans columns
        ``[sn_ptr[K], sn_ptr[K+1])``.
    snode_of:
        Length-``n`` map column -> supernode index.
    rows_below:
        For each supernode, the sorted row indices strictly below its last
        column that appear in its (possibly padded) structure.
    block_rows:
        For each supernode ``K``, the sorted array of *supernode indices*
        ``I > K`` such that some row of supernode ``I`` appears in
        ``rows_below[K]``.  These are the ``L_{I,K}`` blocks of the paper;
        together with ``K`` itself they form the index set ``C`` of
        Algorithm 1.
    sparent:
        Supernodal elimination tree: ``sparent[K]`` is the supernode of
        ``min(rows_below[K])`` (or ``-1`` for roots).
    """

    n: int
    sn_ptr: np.ndarray
    snode_of: np.ndarray
    rows_below: list[np.ndarray]
    block_rows: list[np.ndarray] = field(default_factory=list)
    sparent: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    # -- derived quantities ------------------------------------------------

    @property
    def nsup(self) -> int:
        return len(self.sn_ptr) - 1

    def first_col(self, k: int) -> int:
        return int(self.sn_ptr[k])

    def last_col(self, k: int) -> int:
        return int(self.sn_ptr[k + 1]) - 1

    def width(self, k: int) -> int:
        return int(self.sn_ptr[k + 1] - self.sn_ptr[k])

    def widths(self) -> np.ndarray:
        return (self.sn_ptr[1:] - self.sn_ptr[:-1]).astype(np.int64)

    def block_row_count(self, k: int, i: int) -> int:
        """Number of rows of supernode ``I`` present in ``rows_below[K]``."""
        rows = self.rows_below[k]
        lo = np.searchsorted(rows, self.sn_ptr[i])
        hi = np.searchsorted(rows, self.sn_ptr[i + 1])
        return int(hi - lo)

    def block_row_indices(self, k: int, i: int) -> np.ndarray:
        """Row indices of block ``L_{I,K}`` (subset of supernode I's cols)."""
        rows = self.rows_below[k]
        lo = np.searchsorted(rows, self.sn_ptr[i])
        hi = np.searchsorted(rows, self.sn_ptr[i + 1])
        return rows[lo:hi]

    def factor_nnz(self) -> int:
        """Stored entries of L (dense diagonal blocks + panels)."""
        total = 0
        for k in range(self.nsup):
            s = self.width(k)
            total += s * (s + 1) // 2 + len(self.rows_below[k]) * s
        return total

    def factor_nnz_lu(self) -> int:
        """Stored entries of L + U (both triangles, diagonal once)."""
        return 2 * self.factor_nnz() - self.n

    # -- invariants ---------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants the parallel layers rely on.

        Raises ``AssertionError`` on violation.  The critical one is the
        *chain closure* property: for any supernode ``K`` and any column
        ``c`` in its structure with ``J = snode(c)``, every structure row
        ``r >= first(J)`` of ``K`` lies in ``cols(J) U rows_below(J)``.
        This is exactly what makes (a) the right-looking scatter in the
        numeric factorization and (b) the ``Ainv(C, C)`` gather in
        selected inversion well defined.
        """
        assert self.sn_ptr[0] == 0 and self.sn_ptr[-1] == self.n
        assert np.all(np.diff(self.sn_ptr) > 0)
        for k in range(self.nsup):
            rows = self.rows_below[k]
            assert np.all(np.diff(rows) > 0), "rows must be sorted unique"
            if len(rows):
                assert rows[0] > self.last_col(k)
            if self.sparent.size:
                sp = self.sparent[k]
                if len(rows) == 0:
                    assert sp == -1
                else:
                    assert sp == self.snode_of[rows[0]]
        # Chain closure.
        for k in range(self.nsup):
            rows = self.rows_below[k]
            for c in rows:
                j = int(self.snode_of[c])
                target = set(range(self.first_col(j), self.last_col(j) + 1))
                target.update(int(r) for r in self.rows_below[j])
                tail = rows[rows >= self.first_col(j)]
                for r in tail:
                    assert int(r) in target, (
                        f"closure violated: supernode {k} row {int(r)} not in "
                        f"structure of ancestor supernode {j}"
                    )


def supernodal_structure(
    a: SparseMatrix,
    *,
    parent: np.ndarray | None = None,
    counts: np.ndarray | None = None,
    relax: bool = True,
    max_size: int = 64,
    small: int = 8,
    zero_fraction: float = 0.15,
) -> SupernodalStructure:
    """Compute the full supernodal symbolic structure of ``A``.

    ``A`` must be structurally symmetric and topologically ordered.  The
    supernodal row structures are built by the union recursion over the
    supernodal elimination tree::

        rows(K) = ( U_{j in K} A_lower(j)  U  U_{child C} rows(C) ) \\ cols(<= last(K))

    which reproduces the per-column symbolic factorization exactly for the
    fundamental partition and yields a consistent padded superset for a
    relaxed partition.
    """
    if parent is None:
        parent = elimination_tree(a)
    if not is_postordered(parent):
        raise ValueError("matrix must be topologically ordered")
    if counts is None:
        counts = column_counts(a, parent)
    sn_ptr = fundamental_partition(parent, counts)
    if relax:
        sn_ptr = relax_partition(
            parent,
            counts,
            sn_ptr,
            max_size=max_size,
            small=small,
            zero_fraction=zero_fraction,
        )
    sn_ptr = split_partition(sn_ptr, max_size)
    nsup = len(sn_ptr) - 1
    snode_of = np.empty(a.n, dtype=np.int64)
    for k in range(nsup):
        snode_of[sn_ptr[k] : sn_ptr[k + 1]] = k

    rows_below: list[np.ndarray] = [np.empty(0, np.int64)] * nsup
    sparent = np.full(nsup, -1, dtype=np.int64)
    pending: dict[int, list[np.ndarray]] = {}
    for k in range(nsup):
        fc, lc = sn_ptr[k], sn_ptr[k + 1] - 1
        parts = pending.pop(k, [])
        for j in range(fc, lc + 1):
            arows = a.column_rows(j)
            parts.append(arows[arows > lc].astype(np.int64))
        if parts:
            rows = np.unique(np.concatenate(parts))
        else:
            rows = np.empty(0, dtype=np.int64)
        rows_below[k] = rows
        if len(rows):
            p = int(snode_of[rows[0]])
            sparent[k] = p
            tail = rows[rows > sn_ptr[p + 1] - 1]
            if len(tail):
                pending.setdefault(p, []).append(tail)

    block_rows: list[np.ndarray] = []
    for k in range(nsup):
        rows = rows_below[k]
        if len(rows):
            block_rows.append(np.unique(snode_of[rows]))
        else:
            block_rows.append(np.empty(0, dtype=np.int64))

    return SupernodalStructure(
        n=a.n,
        sn_ptr=sn_ptr,
        snode_of=snode_of,
        rows_below=rows_below,
        block_rows=block_rows,
        sparent=sparent,
    )
