"""Sparse triangular solves with a supernodal factor.

Selected inversion is the star of this package, but any downstream user
of the factorization also wants ``A x = b``; this module provides the
supernodal forward/backward substitution over the same block storage,
plus a permutation-aware driver for :class:`~repro.sparse.driver.AnalyzedProblem`.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from .driver import AnalyzedProblem
from .factor import SupernodalFactor, factorize

__all__ = ["solve_factored", "solve"]


def solve_factored(factor: SupernodalFactor, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given the (raw, un-normalized) factor ``A = LU``.

    ``b`` may be a vector or an ``(n, k)`` block of right-hand sides,
    in the factor's (permuted) index space.
    """
    if getattr(factor, "normalized", False):
        raise ValueError(
            "factor has been normalized for selected inversion; "
            "solve requires the raw LU panels (factorize() a fresh copy)"
        )
    struct = factor.struct
    x = np.array(b, dtype=np.result_type(b, factor.LX[0].dtype), copy=True)
    vec = x.ndim == 1
    if vec:
        x = x[:, None]
    if x.shape[0] != struct.n:
        raise ValueError(f"rhs has {x.shape[0]} rows, expected {struct.n}")

    # Forward: L y = b   (unit lower, block column sweep).
    for k in range(struct.nsup):
        fc = struct.first_col(k)
        s = struct.width(k)
        d = factor.diag_block(k)
        x[fc : fc + s] = solve_triangular(
            d, x[fc : fc + s], lower=True, unit_diagonal=True
        )
        rows = struct.rows_below[k]
        if len(rows):
            x[rows] -= factor.l_panel(k) @ x[fc : fc + s]

    # Backward: U x = y   (block column sweep, descending).
    for k in range(struct.nsup - 1, -1, -1):
        fc = struct.first_col(k)
        s = struct.width(k)
        rows = struct.rows_below[k]
        if len(rows):
            x[fc : fc + s] -= factor.u_panel(k) @ x[rows]
        x[fc : fc + s] = solve_triangular(
            factor.diag_block(k), x[fc : fc + s], lower=False
        )
    return x[:, 0] if vec else x


def solve(problem: AnalyzedProblem, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` in the ORIGINAL index space of the input matrix.

    Factorizes internally (use :func:`solve_factored` to reuse a factor).
    """
    b = np.asarray(b)
    factor = factorize(problem.matrix, problem.struct)
    perm = problem.perm
    xb = b[perm] if b.ndim == 1 else b[perm, :]
    y = solve_factored(factor, xb)
    out = np.empty_like(y)
    if y.ndim == 1:
        out[perm] = y
    else:
        out[perm, :] = y
    return out
