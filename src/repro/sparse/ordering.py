"""Fill-reducing orderings.

A good symmetric permutation is what makes sparse factorization (and hence
selected inversion) tractable: it bounds fill-in and shapes the elimination
tree whose structure drives all of PSelInv's communication.  Three
orderings are provided:

* :func:`minimum_degree` -- classic external-degree minimum degree.  Best
  fill for small/medium problems; quadratic-ish in Python, so meant for
  matrices up to a few thousand columns (our numeric correctness scale).
* :func:`nested_dissection` -- recursive BFS-based graph bisection with a
  vertex separator.  Near-linear, produces balanced elimination trees with
  large top-level supernodes: this mirrors what (Par)METIS provides to
  SuperLU_DIST in the paper's pipeline and is the default for the
  communication-volume studies.
* :func:`reverse_cuthill_mckee` -- bandwidth-reducing ordering, kept as a
  cheap baseline and for tests.

All functions take the *pattern* of a structurally-symmetric
:class:`~repro.sparse.matrix.SparseMatrix` and return a permutation array
``perm`` with the convention ``perm[new] = old`` (pass it straight to
:func:`~repro.sparse.matrix.permute_symmetric`).
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from .matrix import SparseMatrix

__all__ = [
    "adjacency",
    "minimum_degree",
    "nested_dissection",
    "reverse_cuthill_mckee",
    "natural_order",
]


def adjacency(a: SparseMatrix) -> list[np.ndarray]:
    """Adjacency lists (off-diagonal pattern) of the graph of ``A + A^T``."""
    t = a.transpose()
    adj: list[np.ndarray] = []
    for j in range(a.n):
        nbrs = np.union1d(a.column_rows(j), t.column_rows(j))
        adj.append(nbrs[nbrs != j])
    return adj


def natural_order(a: SparseMatrix) -> np.ndarray:
    """The identity permutation (no reordering)."""
    return np.arange(a.n, dtype=np.int64)


# ---------------------------------------------------------------------------
# Minimum degree
# ---------------------------------------------------------------------------


def minimum_degree(a: SparseMatrix) -> np.ndarray:
    """External-degree minimum-degree ordering.

    Maintains the eliminated graph explicitly with Python sets and a lazy
    heap of (degree, vertex) candidates.  Suitable for ``n`` up to a few
    thousand; for larger problems use :func:`nested_dissection`.
    """
    n = a.n
    adj = [set(x.tolist()) for x in adjacency(a)]
    eliminated = np.zeros(n, dtype=bool)
    heap: list[tuple[int, int]] = [(len(adj[v]), v) for v in range(n)]
    heapq.heapify(heap)
    perm = np.empty(n, dtype=np.int64)
    for k in range(n):
        # Pop until we find a live entry whose recorded degree is current.
        while True:
            deg, v = heapq.heappop(heap)
            if not eliminated[v] and deg == len(adj[v]):
                break
        perm[k] = v
        eliminated[v] = True
        nbrs = adj[v]
        # Form the clique of v's neighbours (fill edges).
        for u in nbrs:
            au = adj[u]
            au.discard(v)
            new = nbrs - au - {u}
            if new:
                au |= new
        for u in nbrs:
            heapq.heappush(heap, (len(adj[u]), u))
        adj[v] = set()
    return perm


# ---------------------------------------------------------------------------
# Reverse Cuthill-McKee
# ---------------------------------------------------------------------------


def _pseudo_peripheral(adj: list[np.ndarray], start: int) -> int:
    """Find a pseudo-peripheral vertex by repeated BFS (George-Liu)."""
    n = len(adj)
    v = start
    last_ecc = -1
    for _ in range(8):  # converges in a handful of sweeps
        dist = np.full(n, -1, dtype=np.int64)
        dist[v] = 0
        q = deque([v])
        far = v
        while q:
            u = q.popleft()
            for w in adj[u]:
                if dist[w] < 0:
                    dist[w] = dist[u] + 1
                    if dist[w] > dist[far] or (
                        dist[w] == dist[far] and len(adj[w]) < len(adj[far])
                    ):
                        far = w
                    q.append(w)
        ecc = dist[far]
        if ecc <= last_ecc:
            return v
        last_ecc = ecc
        v = far
    return v


def reverse_cuthill_mckee(a: SparseMatrix) -> np.ndarray:
    """Reverse Cuthill-McKee ordering (handles disconnected graphs)."""
    n = a.n
    adj = adjacency(a)
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    for seed in range(n):
        if visited[seed]:
            continue
        root = _pseudo_peripheral(adj, seed)
        if visited[root]:
            root = seed
        visited[root] = True
        q = deque([root])
        while q:
            u = q.popleft()
            order.append(u)
            nbrs = [w for w in adj[u] if not visited[w]]
            nbrs.sort(key=lambda w: len(adj[w]))
            for w in nbrs:
                visited[w] = True
                q.append(w)
    return np.asarray(order[::-1], dtype=np.int64)


# ---------------------------------------------------------------------------
# Nested dissection
# ---------------------------------------------------------------------------


def _bfs_halves(
    adj: list[np.ndarray], verts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``verts`` into two halves by BFS level sets from a
    pseudo-peripheral vertex, returning (half_a, half_b)."""
    vset = {int(v): i for i, v in enumerate(verts)}
    sub_adj = [
        np.asarray([vset[int(w)] for w in adj[v] if int(w) in vset], dtype=np.int64)
        for v in verts
    ]
    root = _pseudo_peripheral(sub_adj, 0)
    m = len(verts)
    dist = np.full(m, -1, dtype=np.int64)
    dist[root] = 0
    q = deque([root])
    bfs_order = [root]
    while q:
        u = q.popleft()
        for w in sub_adj[u]:
            if dist[w] < 0:
                dist[w] = dist[u] + 1
                bfs_order.append(int(w))
                q.append(int(w))
    # Unreached vertices (disconnected component) go to side B.
    half = m // 2
    first = np.asarray(bfs_order[:half], dtype=np.int64)
    mask = np.zeros(m, dtype=bool)
    mask[first] = True
    second = np.flatnonzero(~mask)
    return verts[first], verts[second]


def nested_dissection(
    a: SparseMatrix, *, leaf_size: int = 32
) -> np.ndarray:
    """Recursive bisection nested-dissection ordering.

    At each level the vertex set is split into two BFS halves; the vertex
    separator (vertices of half A adjacent to half B) is ordered *last*, so
    separators climb to the top of the elimination tree.  Pieces smaller
    than ``leaf_size`` are ordered by local minimum degree, which keeps
    leaf fill low.
    """
    n = a.n
    adj = adjacency(a)
    out: list[int] = []

    def order_leaf(verts: np.ndarray) -> list[int]:
        # Local minimum degree on the subgraph induced by ``verts``.
        vset = {int(v): i for i, v in enumerate(verts)}
        local = [
            set(vset[int(w)] for w in adj[v] if int(w) in vset) for v in verts
        ]
        m = len(verts)
        done = np.zeros(m, dtype=bool)
        heap = [(len(local[i]), i) for i in range(m)]
        heapq.heapify(heap)
        res: list[int] = []
        for _ in range(m):
            while True:
                d, i = heapq.heappop(heap)
                if not done[i] and d == len(local[i]):
                    break
            done[i] = True
            res.append(int(verts[i]))
            nb = local[i]
            for u in nb:
                lu = local[u]
                lu.discard(i)
                lu |= nb - lu - {u}
            for u in nb:
                heapq.heappush(heap, (len(local[u]), u))
            local[i] = set()
        return res

    def recurse(verts: np.ndarray) -> None:
        if len(verts) <= leaf_size:
            out.extend(order_leaf(verts))
            return
        half_a, half_b = _bfs_halves(adj, verts)
        if len(half_a) == 0 or len(half_b) == 0:
            out.extend(order_leaf(verts))
            return
        bset = set(int(v) for v in half_b)
        sep_mask = np.zeros(len(half_a), dtype=bool)
        for i, v in enumerate(half_a):
            for w in adj[v]:
                if int(w) in bset:
                    sep_mask[i] = True
                    break
        sep = half_a[sep_mask]
        inner_a = half_a[~sep_mask]
        if len(inner_a) == 0 or len(sep) == 0:
            # Degenerate split (e.g. complete graph): stop recursing.
            out.extend(order_leaf(verts))
            return
        recurse(inner_a)
        recurse(half_b)
        out.extend(int(v) for v in sep)

    recurse(np.arange(n, dtype=np.int64))
    perm = np.asarray(out, dtype=np.int64)
    if len(perm) != n or not np.array_equal(np.sort(perm), np.arange(n)):
        raise AssertionError("nested dissection produced a non-permutation")
    return perm
