"""Compressed sparse column matrices for the factorization substrate.

PSelInv consumes a supernodal LU/LDL^T factorization of a sparse matrix
``A``.  This module provides the minimal, dependency-free sparse container
the rest of :mod:`repro.sparse` builds on: a CSC matrix with sorted row
indices, plus the structural operations (symmetrization, permutation,
pattern extraction) that the ordering and symbolic-factorization stages
need.

The container intentionally mirrors the layout of
:class:`scipy.sparse.csc_matrix` (``indptr`` / ``indices`` / ``data``) so
tests can convert back and forth cheaply, but it is implemented from
scratch so the substrate does not depend on scipy internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "SparseMatrix",
    "from_coo",
    "from_dense",
    "symmetrize_pattern",
    "permute_symmetric",
]


@dataclass
class SparseMatrix:
    """A square sparse matrix in compressed sparse column (CSC) form.

    Attributes
    ----------
    n:
        Matrix dimension (the matrix is ``n``-by-``n``).
    indptr:
        ``int64`` array of length ``n + 1``; column ``j`` occupies the
        half-open slice ``indices[indptr[j]:indptr[j+1]]``.
    indices:
        ``int64`` array of row indices, sorted and unique within each
        column.
    data:
        Numeric values aligned with ``indices``.  May be real or complex.
    """

    n: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data)
        if self.indptr.shape != (self.n + 1,):
            raise ValueError(
                f"indptr must have length n+1={self.n + 1}, got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at nnz")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data must have the same length")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.n
        ):
            raise ValueError("row index out of range")

    # -- basic queries ----------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(len(self.indices))

    def column(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Row indices and values of column ``j`` (views, not copies)."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def column_rows(self, j: int) -> np.ndarray:
        """Row indices of column ``j`` (a view)."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi]

    def diagonal(self) -> np.ndarray:
        """Dense array of the diagonal entries (zeros where unstored)."""
        d = np.zeros(self.n, dtype=self.data.dtype)
        for j in range(self.n):
            rows, vals = self.column(j)
            k = np.searchsorted(rows, j)
            if k < len(rows) and rows[k] == j:
                d[j] = vals[k]
        return d

    # -- conversions ------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ``(n, n)`` array."""
        out = np.zeros((self.n, self.n), dtype=self.data.dtype)
        for j in range(self.n):
            rows, vals = self.column(j)
            out[rows, j] = vals
        return out

    def to_scipy(self):
        """Convert to :class:`scipy.sparse.csc_matrix` (test convenience)."""
        import scipy.sparse as sp

        return sp.csc_matrix(
            (self.data, self.indices, self.indptr), shape=(self.n, self.n)
        )

    def transpose(self) -> "SparseMatrix":
        """Return the transpose, again in sorted CSC form."""
        n = self.n
        counts = np.bincount(self.indices, minlength=n)
        tptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=tptr[1:])
        tind = np.empty(self.nnz, dtype=np.int64)
        tdat = np.empty(self.nnz, dtype=self.data.dtype)
        cursor = tptr[:-1].copy()
        for j in range(n):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            for k in range(lo, hi):
                i = self.indices[k]
                p = cursor[i]
                tind[p] = j
                tdat[p] = self.data[k]
                cursor[i] = p + 1
        return SparseMatrix(n, tptr, tind, tdat)

    def is_structurally_symmetric(self) -> bool:
        """True if the nonzero pattern equals the pattern of the transpose."""
        t = self.transpose()
        return bool(
            np.array_equal(self.indptr, t.indptr)
            and np.array_equal(self.indices, t.indices)
        )

    def lower_pattern(self) -> "SparseMatrix":
        """Pattern (data = 1.0) of the lower triangle, diagonal included."""
        cols: list[np.ndarray] = []
        ptr = np.zeros(self.n + 1, dtype=np.int64)
        for j in range(self.n):
            rows = self.column_rows(j)
            keep = rows[rows >= j]
            cols.append(keep)
            ptr[j + 1] = ptr[j] + len(keep)
        ind = np.concatenate(cols) if cols else np.empty(0, dtype=np.int64)
        return SparseMatrix(self.n, ptr, ind, np.ones(len(ind)))


def from_coo(
    n: int,
    rows: Iterable[int],
    cols: Iterable[int],
    vals: Iterable[float] | None = None,
    *,
    sum_duplicates: bool = True,
) -> SparseMatrix:
    """Build a :class:`SparseMatrix` from triplet (COO) input.

    Duplicate ``(row, col)`` pairs are summed when ``sum_duplicates`` is
    true (the usual finite-element assembly convention), otherwise they
    raise :class:`ValueError`.
    """
    r = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows)
    c = np.asarray(list(cols) if not isinstance(cols, np.ndarray) else cols)
    if vals is None:
        v = np.ones(len(r))
    else:
        v = np.asarray(list(vals) if not isinstance(vals, np.ndarray) else vals)
    if not (len(r) == len(c) == len(v)):
        raise ValueError("rows, cols, vals must have equal length")
    if len(r) and (r.min() < 0 or r.max() >= n or c.min() < 0 or c.max() >= n):
        raise ValueError("index out of range")
    # Sort by (col, row) to obtain CSC with sorted row indices.
    order = np.lexsort((r, c))
    r, c, v = r[order], c[order], v[order]
    if len(r):
        dup = (np.diff(c) == 0) & (np.diff(r) == 0)
        if dup.any():
            if not sum_duplicates:
                raise ValueError("duplicate entries in COO input")
            # Collapse runs of duplicates by segment-summing values.
            starts = np.flatnonzero(np.r_[True, ~dup])
            v = np.add.reduceat(v, starts)
            r = r[starts]
            c = c[starts]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, c + 1, 1)
    np.cumsum(indptr, out=indptr)
    return SparseMatrix(n, indptr, r.astype(np.int64), v)


def from_dense(a: np.ndarray, *, tol: float = 0.0) -> SparseMatrix:
    """Build a :class:`SparseMatrix` from a dense array.

    Entries with ``abs(value) <= tol`` are dropped.
    """
    a = np.asarray(a)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("expected a square 2-D array")
    rows, cols = np.nonzero(np.abs(a) > tol)
    return from_coo(a.shape[0], rows, cols, a[rows, cols])


def symmetrize_pattern(a: SparseMatrix) -> SparseMatrix:
    """Return ``A`` expanded to the pattern of ``A + A^T``.

    Values of entries present only in the transpose are stored as explicit
    zeros.  Factorization without pivoting requires a structurally
    symmetric input; this is the standard preprocessing step (SuperLU_DIST
    does the same for unsymmetric matrices).
    """
    t = a.transpose()
    n = a.n
    ptr = np.zeros(n + 1, dtype=np.int64)
    ind_parts: list[np.ndarray] = []
    dat_parts: list[np.ndarray] = []
    for j in range(n):
        ra, va = a.column(j)
        rt = t.column_rows(j)
        extra = np.setdiff1d(rt, ra, assume_unique=True)
        rows = np.concatenate([ra, extra])
        vals = np.concatenate([va, np.zeros(len(extra), dtype=a.data.dtype)])
        order = np.argsort(rows, kind="stable")
        ind_parts.append(rows[order])
        dat_parts.append(vals[order])
        ptr[j + 1] = ptr[j] + len(rows)
    ind = (
        np.concatenate(ind_parts) if ind_parts else np.empty(0, dtype=np.int64)
    )
    dat = np.concatenate(dat_parts) if dat_parts else np.empty(0)
    return SparseMatrix(n, ptr, ind, dat)


def permute_symmetric(a: SparseMatrix, perm: np.ndarray) -> SparseMatrix:
    """Apply a symmetric permutation: returns ``P A P^T``.

    ``perm`` maps *new* index -> *old* index (i.e. ``perm[k]`` is the
    original row/column that becomes row/column ``k``), the convention used
    by the fill-reducing orderings in :mod:`repro.sparse.ordering`.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = a.n
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValueError("perm must be a permutation of range(n)")
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n)
    rows_new: list[np.ndarray] = []
    vals_new: list[np.ndarray] = []
    ptr = np.zeros(n + 1, dtype=np.int64)
    for jnew in range(n):
        jold = perm[jnew]
        r, v = a.column(jold)
        rn = inv[r]
        order = np.argsort(rn, kind="stable")
        rows_new.append(rn[order])
        vals_new.append(v[order])
        ptr[jnew + 1] = ptr[jnew] + len(rn)
    ind = (
        np.concatenate(rows_new) if rows_new else np.empty(0, dtype=np.int64)
    )
    dat = np.concatenate(vals_new) if vals_new else np.empty(0)
    return SparseMatrix(n, ptr, ind, dat)
