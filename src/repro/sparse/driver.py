"""End-to-end analysis driver for the sparse substrate.

Chains the preprocessing pipeline every experiment starts from:

    symmetrize -> fill-reducing ordering -> symmetric permutation ->
    elimination tree -> postorder relabeling -> supernode partition ->
    supernodal symbolic structure

and returns an :class:`AnalyzedProblem` that downstream layers (numeric
factorization, sequential selected inversion, the parallel simulator and
the communication-volume models) all consume.  The composed permutation is
retained so results can be mapped back to original indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

import numpy as np

from . import ordering as _ordering
from .etree import elimination_tree, postorder
from .factor import SupernodalFactor, factorize
from .matrix import SparseMatrix, permute_symmetric, symmetrize_pattern
from .selinv import SelectedInverse, normalize, selected_inversion
from .supernodes import SupernodalStructure, supernodal_structure
from .symbolic import column_counts

__all__ = ["AnalyzedProblem", "analyze", "selinv_sequential"]

OrderingName = Literal["amd", "nd", "rcm", "natural"]

_ORDERINGS: dict[str, Callable[[SparseMatrix], np.ndarray]] = {
    "amd": _ordering.minimum_degree,
    "nd": _ordering.nested_dissection,
    "rcm": _ordering.reverse_cuthill_mckee,
    "natural": _ordering.natural_order,
}


@dataclass
class AnalyzedProblem:
    """A matrix prepared for factorization and selected inversion.

    Attributes
    ----------
    matrix:
        The symmetrized, permuted, topologically ordered matrix.
    struct:
        Its supernodal symbolic structure.
    perm:
        Composite permutation, ``perm[new] = old`` w.r.t. the original
        input indices.
    parent:
        Column elimination tree of ``matrix``.
    """

    matrix: SparseMatrix
    struct: SupernodalStructure
    perm: np.ndarray
    parent: np.ndarray

    @property
    def n(self) -> int:
        return self.matrix.n

    def stats(self) -> dict[str, float]:
        """Workload statistics in the format of the paper's Table II."""
        nnz_l = self.struct.factor_nnz()
        return {
            "n": self.n,
            "nnz_a": self.matrix.nnz,
            "nnz_lu": self.struct.factor_nnz_lu(),
            "nnz_l": nnz_l,
            "nsup": self.struct.nsup,
            "fill_ratio": self.struct.factor_nnz_lu() / max(self.matrix.nnz, 1),
        }


def analyze(
    a: SparseMatrix,
    *,
    ordering: OrderingName | np.ndarray = "nd",
    relax: bool = True,
    max_supernode: int = 64,
    validate: bool = False,
) -> AnalyzedProblem:
    """Run the preprocessing pipeline on ``a``.

    Parameters
    ----------
    a:
        Any square sparse matrix; the pattern is symmetrized first.
    ordering:
        A named fill-reducing ordering (``"amd"``, ``"nd"``, ``"rcm"``,
        ``"natural"``) or an explicit permutation array
        (``perm[new] = old``).
    relax:
        Apply relaxed supernode amalgamation (on by default, matching
        production solvers).
    max_supernode:
        Upper bound on supernode width after relaxation.
    validate:
        Run the (quadratic) structural invariant checks; meant for tests.
    """
    sym = symmetrize_pattern(a)
    if isinstance(ordering, np.ndarray):
        perm0 = np.asarray(ordering, dtype=np.int64)
    else:
        try:
            fn = _ORDERINGS[ordering]
        except KeyError:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected one of {sorted(_ORDERINGS)}"
            ) from None
        perm0 = fn(sym)
    m1 = permute_symmetric(sym, perm0)
    parent1 = elimination_tree(m1)
    post = postorder(parent1)
    perm = perm0[post]
    matrix = permute_symmetric(sym, perm)
    parent = elimination_tree(matrix)
    counts = column_counts(matrix, parent)
    struct = supernodal_structure(
        matrix,
        parent=parent,
        counts=counts,
        relax=relax,
        max_size=max_supernode,
    )
    if validate:
        struct.validate()
    return AnalyzedProblem(matrix=matrix, struct=struct, perm=perm, parent=parent)


def selinv_sequential(
    problem: AnalyzedProblem,
) -> tuple[SupernodalFactor, SelectedInverse]:
    """Factorize, normalize, and run sequential selected inversion.

    Returns the (normalized) factor and the selected inverse, both in the
    problem's permuted index space.
    """
    factor = factorize(problem.matrix, problem.struct)
    normalize(factor)
    inv = selected_inversion(factor)
    return factor, inv
