"""Sequential selected inversion (Algorithm 1 of the paper).

Given a supernodal LU factorization ``A = L U``, computes the *selected*
elements of ``A^{-1}`` -- every entry ``(i, j)`` inside the (possibly
padded) supernodal structure of ``L + U``.  This is the single-process
oracle: the simulated parallel PSelInv in :mod:`repro.core.pselinv` must
reproduce its output block for block, and the tests enforce that.

Two passes, exactly as in the paper:

1. :func:`normalize` (the first loop of Algorithm 1) overwrites the raw
   panels with ``Lhat(C,K) = L(C,K) inv(L_KK)`` and
   ``Uhat(K,C) = inv(U_KK) U(K,C)``.
2. :func:`selected_inversion` walks supernodes from last to first::

       Ainv(C,K) = -Ainv(C,C) Lhat(C,K)
       Ainv(K,K) = inv(U_KK) inv(L_KK) - Uhat(K,C) Ainv(C,K)
       Ainv(K,C) = -Uhat(K,C) Ainv(C,C)

   where the dense ``Ainv(C,C)`` gather is well defined thanks to the
   chain-closure invariant of the symbolic structure (see
   :meth:`repro.sparse.supernodes.SupernodalStructure.validate`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_triangular

from .factor import SupernodalFactor
from .supernodes import SupernodalStructure

__all__ = ["normalize", "SelectedInverse", "selected_inversion", "gather_ainv_cc"]


def normalize(factor: SupernodalFactor) -> None:
    """First loop of Algorithm 1: overwrite panels with Lhat / Uhat.

    Must be called exactly once after
    :func:`repro.sparse.factor.factorize`; a second call raises.
    """
    if factor.normalized:
        raise ValueError("factor is already normalized")
    factor.normalized = True
    struct = factor.struct
    for k in range(struct.nsup):
        m = len(struct.rows_below[k])
        if m == 0:
            continue
        d = factor.diag_block(k)
        lp = factor.l_panel(k)
        up = factor.u_panel(k)
        # Lhat = L(C,K) inv(L_KK):  solve X L = B via L^T X^T = B^T.
        lp[:] = solve_triangular(
            d, lp.T, lower=True, unit_diagonal=True, trans="T"
        ).T
        # Uhat = inv(U_KK) U(K,C): plain upper triangular solve.
        up[:] = solve_triangular(d, up, lower=False, trans="N")


@dataclass
class SelectedInverse:
    """Selected elements of ``A^{-1}`` in the factor's block layout.

    ``diag[K]`` is the dense ``(s, s)`` block ``Ainv(K, K)``;
    ``lpanel[K]`` is ``Ainv(rows_below(K), K)``; ``upanel[K]`` is
    ``Ainv(K, rows_below(K))``.
    """

    struct: SupernodalStructure
    diag: list[np.ndarray]
    lpanel: list[np.ndarray]
    upanel: list[np.ndarray]

    def entry(self, i: int, j: int) -> complex:
        """Value of ``A^{-1}[i, j]``; raises ``KeyError`` outside the
        stored structure."""
        struct = self.struct
        kj = int(struct.snode_of[j])
        fcj = struct.first_col(kj)
        if struct.snode_of[i] == kj:
            return self.diag[kj][i - struct.first_col(kj), j - fcj]
        if i > j:
            rows = struct.rows_below[kj]
            p = int(np.searchsorted(rows, i))
            if p < len(rows) and rows[p] == i:
                return self.lpanel[kj][p, j - fcj]
            raise KeyError((i, j))
        ki = int(struct.snode_of[i])
        cols = struct.rows_below[ki]
        p = int(np.searchsorted(cols, j))
        if p < len(cols) and cols[p] == j:
            return self.upanel[ki][i - struct.first_col(ki), p]
        raise KeyError((i, j))

    def stored_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """All stored (row, col) positions, suitable for oracle checks."""
        rr: list[np.ndarray] = []
        cc: list[np.ndarray] = []
        struct = self.struct
        for k in range(struct.nsup):
            fc = struct.first_col(k)
            s = struct.width(k)
            cols = np.arange(fc, fc + s)
            rows = struct.rows_below[k]
            # Diagonal block.
            gr, gc = np.meshgrid(cols, cols, indexing="ij")
            rr.append(gr.ravel())
            cc.append(gc.ravel())
            if len(rows):
                gr, gc = np.meshgrid(rows, cols, indexing="ij")
                rr.append(gr.ravel())
                cc.append(gc.ravel())
                gr, gc = np.meshgrid(cols, rows, indexing="ij")
                rr.append(gr.ravel())
                cc.append(gc.ravel())
        return np.concatenate(rr), np.concatenate(cc)

    def to_dense_at_structure(self) -> np.ndarray:
        """Dense array with stored entries filled in, zeros elsewhere."""
        n = self.struct.n
        dt = self.diag[0].dtype if self.diag else np.float64
        out = np.zeros((n, n), dtype=dt)
        struct = self.struct
        for k in range(struct.nsup):
            fc = struct.first_col(k)
            s = struct.width(k)
            rows = struct.rows_below[k]
            out[fc : fc + s, fc : fc + s] = self.diag[k]
            if len(rows):
                out[np.ix_(rows, range(fc, fc + s))] = self.lpanel[k]
                out[np.ix_(range(fc, fc + s), rows)] = self.upanel[k]
        return out


def gather_ainv_cc(
    inv: SelectedInverse, rows: np.ndarray
) -> np.ndarray:
    """Gather the dense ``Ainv(rows, rows)`` matrix from block storage.

    ``rows`` must be the ``rows_below`` set of some supernode (sorted,
    all strictly greater than the supernode's last column), so that by
    chain closure every requested entry is stored.
    """
    struct = inv.struct
    m = len(rows)
    # Infer the dtype from an already-computed ancestor block (rows are
    # ancestors of the requesting supernode, so their diagonal blocks are
    # final); diag[0] may still be an uninitialized placeholder.
    dt = inv.diag[int(struct.snode_of[rows[0]])].dtype if m else np.float64
    g = np.empty((m, m), dtype=dt)
    sn = struct.snode_of[rows]
    groups, starts = np.unique(sn, return_index=True)
    bounds = list(starts) + [m]
    for t, jsn in enumerate(groups):
        jsn = int(jsn)
        j0, j1 = int(bounds[t]), int(bounds[t + 1])
        fcj = struct.first_col(jsn)
        cols_local = rows[j0:j1] - fcj
        below = struct.rows_below[jsn]
        # Rows of the gather split in three bands relative to supernode jsn:
        #  [0, j0)       -> strictly above its columns: upper storage of the
        #                   row's own supernode (handled transposed below)
        #  [j0, j1)      -> inside its columns: diagonal block
        #  [j1, m)       -> strictly below: its Ainv L panel
        g[j0:j1, j0:j1] = inv.diag[jsn][np.ix_(cols_local, cols_local)]
        if j1 < m:
            posr = np.searchsorted(below, rows[j1:])
            g[j1:m, j0:j1] = inv.lpanel[jsn][np.ix_(posr, cols_local)]
        if j0 > 0:
            # Entries (r, c) with r < first col of jsn: stored in the
            # upper panel of r's supernode; gather row band by row band.
            # rows[0:j0] may span several supernodes -- reuse the group
            # loop structure by indexing each row's own supernode.
            posc_cache: dict[int, np.ndarray] = {}
            for ii in range(j0):
                r = int(rows[ii])
                ksn = int(struct.snode_of[r])
                posc = posc_cache.get(ksn)
                if posc is None:
                    posc = np.searchsorted(struct.rows_below[ksn], rows[j0:j1])
                    posc_cache[ksn] = posc
                g[ii, j0:j1] = inv.upanel[ksn][r - struct.first_col(ksn), posc]
    return g


def selected_inversion(factor: SupernodalFactor) -> SelectedInverse:
    """Second loop of Algorithm 1; ``factor`` must already be normalized."""
    if not factor.normalized:
        raise ValueError("call normalize(factor) before selected_inversion")
    struct = factor.struct
    nsup = struct.nsup
    dt = factor.LX[0].dtype if factor.LX else np.float64
    diag: list[np.ndarray] = [np.empty(0)] * nsup
    lpanel: list[np.ndarray] = [np.empty(0)] * nsup
    upanel: list[np.ndarray] = [np.empty(0)] * nsup
    inv = SelectedInverse(struct=struct, diag=diag, lpanel=lpanel, upanel=upanel)
    for k in range(nsup - 1, -1, -1):
        s = struct.width(k)
        d = factor.diag_block(k)
        # Base term inv(U_KK) inv(L_KK) = inv(A_KK - schur corrections).
        ident = np.eye(s, dtype=dt)
        linv = solve_triangular(d, ident, lower=True, unit_diagonal=True)
        base = solve_triangular(d, linv, lower=False)
        rows = struct.rows_below[k]
        m = len(rows)
        if m == 0:
            diag[k] = base
            lpanel[k] = np.zeros((0, s), dtype=dt)
            upanel[k] = np.zeros((s, 0), dtype=dt)
            continue
        g = gather_ainv_cc(inv, rows)
        lhat = factor.l_panel(k)
        uhat = factor.u_panel(k)
        ainv_ck = -(g @ lhat)
        lpanel[k] = ainv_ck
        diag[k] = base - uhat @ ainv_ck
        upanel[k] = -(uhat @ g)
    return inv
