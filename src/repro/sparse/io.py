"""Matrix Market I/O.

The paper's matrices come from the University of Florida (SuiteSparse)
collection, distributed in Matrix Market format.  A downstream user with
network access can drop the real ``audikw_1.mtx`` next to this package
and run every experiment on it; these readers/writers are dependency-free
implementations of the coordinate format (the only one the collection
uses for sparse matrices).

Supported qualifiers: ``real`` / ``integer`` / ``complex`` /
``pattern`` fields and ``general`` / ``symmetric`` / ``skew-symmetric``
symmetries (Hermitian is read with conjugate expansion).
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO

import numpy as np

from .matrix import SparseMatrix, from_coo

__all__ = ["read_matrix_market", "write_matrix_market"]


def _open(path: str | Path, mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_matrix_market(path: str | Path) -> SparseMatrix:
    """Read a sparse square matrix from a Matrix Market file (.mtx[.gz])."""
    with _open(path, "r") as fh:
        header = fh.readline().strip().split()
        if (
            len(header) < 5
            or header[0] != "%%MatrixMarket"
            or header[1].lower() != "matrix"
            or header[2].lower() != "coordinate"
        ):
            raise ValueError(
                "expected a '%%MatrixMarket matrix coordinate ...' header"
            )
        field = header[3].lower()
        symmetry = header[4].lower()
        if field not in ("real", "integer", "complex", "pattern"):
            raise ValueError(f"unsupported field {field!r}")
        if symmetry not in ("general", "symmetric", "skew-symmetric", "hermitian"):
            raise ValueError(f"unsupported symmetry {symmetry!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        parts = line.split()
        if len(parts) != 3:
            raise ValueError("malformed size line")
        nrows, ncols, nnz = (int(x) for x in parts)
        if nrows != ncols:
            raise ValueError(
                f"matrix must be square, got {nrows}x{ncols}"
            )
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        complex_vals = field == "complex"
        vals = np.empty(nnz, dtype=complex if complex_vals else float)
        k = 0
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            toks = line.split()
            rows[k] = int(toks[0]) - 1
            cols[k] = int(toks[1]) - 1
            if field == "pattern":
                vals[k] = 1.0
            elif complex_vals:
                vals[k] = float(toks[2]) + 1j * float(toks[3])
            else:
                vals[k] = float(toks[2])
            k += 1
        if k != nnz:
            raise ValueError(f"expected {nnz} entries, found {k}")

    if symmetry != "general":
        off = rows != cols
        r2, c2, v2 = cols[off], rows[off], vals[off]
        if symmetry == "skew-symmetric":
            v2 = -v2
        elif symmetry == "hermitian":
            v2 = np.conj(v2)
        rows = np.concatenate([rows, r2])
        cols = np.concatenate([cols, c2])
        vals = np.concatenate([vals, v2])
    return from_coo(nrows, rows, cols, vals)


def write_matrix_market(
    path: str | Path,
    matrix: SparseMatrix,
    *,
    comment: str | None = None,
) -> None:
    """Write a :class:`SparseMatrix` in 'general' coordinate format."""
    complex_vals = np.iscomplexobj(matrix.data)
    field = "complex" if complex_vals else "real"
    with _open(path, "w") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{matrix.n} {matrix.n} {matrix.nnz}\n")
        for j in range(matrix.n):
            rows, vals = matrix.column(j)
            for r, v in zip(rows, vals):
                if complex_vals:
                    fh.write(f"{r + 1} {j + 1} {v.real:.17g} {v.imag:.17g}\n")
                else:
                    fh.write(f"{r + 1} {j + 1} {v:.17g}\n")
