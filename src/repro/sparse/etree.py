"""Elimination trees (Liu 1990).

The elimination tree is the central structural object of sparse
factorization: ``parent[j]`` is the row index of the first subdiagonal
nonzero of column ``j`` of the Cholesky/LU factor.  PSelInv's concurrency
(section II-B of the paper) is exactly the tree's branch structure -- two
supernodes can be processed simultaneously when they lie in disjoint
subtrees -- so everything downstream (symbolic factorization, supernodes,
the task pipeline) consumes the tree built here.
"""

from __future__ import annotations

import numpy as np

from .matrix import SparseMatrix

__all__ = [
    "elimination_tree",
    "postorder",
    "subtree_sizes",
    "tree_levels",
    "is_postordered",
    "children_lists",
]


def elimination_tree(a: SparseMatrix) -> np.ndarray:
    """Elimination tree of a structurally symmetric matrix pattern.

    Uses Liu's algorithm with path compression (virtual ancestors) --
    ``O(nnz * alpha(n))``.  Only the lower-triangular pattern is inspected.
    Returns ``parent`` with ``parent[root] = -1`` (a forest if the graph is
    disconnected).
    """
    n = a.n
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        for i in a.column_rows(j):
            i = int(i)
            if i >= j:
                continue  # only strictly-upper entries i < j drive the tree
            # Follow the path from i to the root of its current virtual
            # tree, compressing as we go, and hang it under j.
            while True:
                anc = ancestor[i]
                ancestor[i] = j
                if anc == -1:
                    if parent[i] == -1:
                        parent[i] = j
                    break
                if anc == j:
                    break
                i = int(anc)
    return parent


def children_lists(parent: np.ndarray) -> list[list[int]]:
    """Children of each node (and of the virtual root via ``parent==-1``)."""
    n = len(parent)
    kids: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        p = parent[v]
        if p >= 0:
            kids[int(p)].append(v)
    return kids


def postorder(parent: np.ndarray) -> np.ndarray:
    """A postordering of the (forest-shaped) elimination tree.

    Returns ``post`` with ``post[k] = old`` -- i.e. the node visited at
    postorder position ``k``.  Children are visited in increasing node
    order, which makes the postorder stable and deterministic.
    """
    n = len(parent)
    kids = children_lists(parent)
    roots = [v for v in range(n) if parent[v] == -1]
    post = np.empty(n, dtype=np.int64)
    k = 0
    for root in roots:
        # Iterative DFS; push children reversed so they pop in order.
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                post[k] = node
                k += 1
            else:
                stack.append((node, True))
                for c in reversed(kids[node]):
                    stack.append((c, False))
    if k != n:
        raise AssertionError("postorder did not visit every node")
    return post


def is_postordered(parent: np.ndarray) -> bool:
    """True if every node's index is smaller than its parent's.

    A matrix whose elimination tree satisfies this is said to be in
    topological (postorder-compatible) order; supernode detection assumes
    it.
    """
    for v in range(len(parent)):
        p = parent[v]
        if p >= 0 and p <= v:
            return False
    return True


def subtree_sizes(parent: np.ndarray) -> np.ndarray:
    """Number of nodes in the subtree rooted at each node (inclusive).

    Requires a topologically ordered tree (``parent[v] > v``).
    """
    n = len(parent)
    size = np.ones(n, dtype=np.int64)
    for v in range(n):
        p = parent[v]
        if p >= 0:
            if p <= v:
                raise ValueError("tree is not topologically ordered")
            size[p] += size[v]
    return size


def tree_levels(parent: np.ndarray) -> np.ndarray:
    """Depth of each node (roots at level 0).

    Requires a topologically ordered tree; computed root-down in one pass.
    """
    n = len(parent)
    level = np.zeros(n, dtype=np.int64)
    for v in range(n - 1, -1, -1):
        p = parent[v]
        if p >= 0:
            level[v] = level[p] + 1
    return level
