"""Diagnostic records shared by all three ``repro check`` passes.

Every finding is a :class:`Diagnostic` with a stable code (``PLAN0xx`` for
the plan verifier, ``HB0xx`` for the happens-before analyzer, ``DET0xx``
for the determinism lint), a subject locating the defect (a collective
key, a rank, a ``file:line``), and a human-readable message.  Codes are
part of the tool's contract: tests and CI pin them, so renumbering is a
breaking change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["Diagnostic", "CODE_DESCRIPTIONS", "format_diagnostics"]


# One-line summaries, printed by ``repro check --codes`` and kept in sync
# with docs/static_analysis.md.
CODE_DESCRIPTIONS: dict[str, str] = {
    # -- pass 1: static plan verifier (check/plan_lint.py) ------------------
    "PLAN001": "collective root is not a participant",
    "PLAN002": "duplicate participants in a collective",
    "PLAN003": "participant or endpoint outside the processor grid",
    "PLAN004": "tag reused across concurrently-live collectives",
    "PLAN005": "communication tree is not a spanning arborescence",
    "PLAN006": "non-positive payload size",
    "PLAN007": "send/reduce payload mismatch for a (K, I) pair",
    # -- pass 2: happens-before / deadlock analyzer (check/hb.py) -----------
    "HB001": "wait-for cycle in the happens-before graph (deadlock)",
    "HB002": "traced message does not exist in the static plan",
    "HB003": "delivery without (or before) its matching send",
    "HB004": "per-channel FIFO (non-overtaking) violation",
    "HB005": "planned message missing or duplicated in the trace",
    "HB006": "forward sent before its enabling delivery (HB inversion)",
    # -- pass 3: determinism lint (check/ast_lint.py) -----------------------
    "DET001": "stdlib random.* global-state call",
    "DET002": "legacy numpy.random.* global-state call",
    "DET003": "wall-clock or object-identity value in a deterministic context",
    "DET004": "iteration over an unordered set feeds construction",
    "DET005": "unseeded random generator construction",
    "DET006": "float accumulation into a counter",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a checker pass."""

    code: str  # e.g. "PLAN004"
    subject: str  # what it is about, e.g. "key ('cb', 3, 5)" or "foo.py:12"
    message: str  # human-readable explanation

    def __post_init__(self) -> None:
        if self.code not in CODE_DESCRIPTIONS:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def __str__(self) -> str:
        return f"{self.code} {self.subject}: {self.message}"


def format_diagnostics(diags: Iterable[Diagnostic]) -> str:
    """Render diagnostics one per line (empty string when clean)."""
    return "\n".join(str(d) for d in diags)
