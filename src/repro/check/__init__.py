"""Communication-correctness static analysis (``repro check``).

Three passes prove a communication plan well-formed *before* (and, via
trace validation, *after*) it is run on the simulated machine:

* :mod:`repro.check.plan_lint` -- static plan verifier: participant and
  payload sanity, tag uniqueness across concurrently-live collectives,
  and spanning-arborescence proofs for every communication tree
  (``PLAN0xx``).
* :mod:`repro.check.hb` -- happens-before DAG construction, wait-for
  cycle (deadlock) detection, and a DES trace validator / message-race
  detector (``HB0xx``).
* :mod:`repro.check.ast_lint` -- AST determinism lint over the package
  sources: global-state RNG calls, wall-clock reads, unordered-set
  iteration, unseeded generators (``DET0xx``).

See ``docs/static_analysis.md`` for the diagnostic-code catalogue and
CLI usage.
"""

from .ast_lint import lint_file, lint_package, lint_paths, lint_source
from .diagnostics import CODE_DESCRIPTIONS, Diagnostic, format_diagnostics
from .hb import (
    HBGraph,
    HBModel,
    build_hb_model,
    check_deadlock_freedom,
    diagnose_graph,
    validate_trace,
)
from .plan_lint import lint_tree, liveness_windows, verify_plans
from .runner import CheckResult, check_workload, run_checks

__all__ = [
    "CODE_DESCRIPTIONS",
    "Diagnostic",
    "format_diagnostics",
    "lint_file",
    "lint_package",
    "lint_paths",
    "lint_source",
    "HBGraph",
    "HBModel",
    "build_hb_model",
    "check_deadlock_freedom",
    "diagnose_graph",
    "validate_trace",
    "lint_tree",
    "liveness_windows",
    "verify_plans",
    "CheckResult",
    "check_workload",
    "run_checks",
]
