"""Pass 2 -- happens-before / deadlock analyzer (``HB0xx`` diagnostics).

Builds the static happens-before DAG over all communication events of a
plan: intra-rank enabling order (a rank forwards a broadcast only after
receiving it, contributes to a reduction only after its inputs exist) plus
send->recv edges along every communication tree, plus the cross-supernode
dataflow edges through which supernode ``K`` consumes ``Ainv`` blocks
produced by its ancestors.  Two things come out of the model:

* **Deadlock freedom** (:func:`check_deadlock_freedom`): a wait-for cycle
  in the graph means some set of ranks would block on each other forever;
  an acyclic graph is a proof that the protocol, as planned, always makes
  progress (``HB001``).

* **Trace validation** (:func:`validate_trace`): replays a structured
  event log recorded by :class:`repro.simulate.machine.Machine` (the
  ``event_log`` hook) and asserts every delivery is consistent with the
  static model -- every traced message exists in the plan with the right
  size (``HB002``), no delivery precedes its send (``HB003``), per-channel
  FIFO order holds (``HB004``), every planned message is observed exactly
  once (``HB005``, which catches orphaned sends and lost messages), and no
  forward leaves a rank before the delivery that enables it (``HB006``,
  the message-race detector for the simulator itself).

Node naming: ``("msg", tag, src, dst)`` is one point-to-point message,
``("done", tag)`` a reduction completing at its root, ``("fin", K)``
supernode ``K`` finishing (its ``Ainv(K, K)`` block becoming available).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Sequence

from ..comm.trees import CommTree, build_tree
from ..core.grid import ProcessorGrid
from ..core.plan import CollectiveSpec, SupernodePlan
from ..core.volume import collective_seed
from .diagnostics import Diagnostic

__all__ = [
    "HBGraph",
    "HBModel",
    "build_hb_model",
    "diagnose_graph",
    "check_deadlock_freedom",
    "validate_trace",
]

Node = Hashable


class HBGraph:
    """A directed graph of events; edge ``u -> v`` means ``u`` must
    complete before ``v`` can start (``v`` waits for ``u``)."""

    def __init__(self) -> None:
        self.succ: dict[Node, list[Node]] = {}

    def add_node(self, n: Node) -> None:
        self.succ.setdefault(n, [])

    def add_edge(self, u: Node, v: Node) -> None:
        self.add_node(v)
        self.succ.setdefault(u, []).append(v)

    def __len__(self) -> int:
        return len(self.succ)

    def edge_count(self) -> int:
        return sum(len(v) for v in self.succ.values())

    def find_cycle(self) -> list[Node] | None:
        """First wait-for cycle found (as a closed node path), or None."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[Node, int] = {}
        for start in self.succ:
            if color.get(start, WHITE) != WHITE:
                continue
            color[start] = GRAY
            stack = [(start, iter(self.succ[start]))]
            path = [start]
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    c = color.get(nxt, WHITE)
                    if c == WHITE:
                        color[nxt] = GRAY
                        stack.append((nxt, iter(self.succ[nxt])))
                        path.append(nxt)
                        advanced = True
                        break
                    if c == GRAY:
                        return path[path.index(nxt) :] + [nxt]
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
                    path.pop()
        return None


class HBModel:
    """Static happens-before model of one communication plan."""

    def __init__(self) -> None:
        self.graph = HBGraph()
        # (tag, src, dst) -> planned payload size in bytes.
        self.messages: dict[tuple, int] = {}

    def message_edges(self) -> Iterable[tuple[tuple, tuple]]:
        """HB edges between two *messages*: the target's send is enabled
        by the source's delivery (used by the trace validator)."""
        for u, vs in self.graph.succ.items():
            if not (isinstance(u, tuple) and u and u[0] == "msg"):
                continue
            for v in vs:
                if isinstance(v, tuple) and v and v[0] == "msg":
                    yield u[1:], v[1:]


def _msg(model: HBModel, tag: Any, src: int, dst: int, nbytes: int) -> tuple:
    node = ("msg", tag, src, dst)
    model.graph.add_node(node)
    model.messages[(tag, src, dst)] = int(nbytes)
    return node


def _bcast_delivery_node(
    spec: CollectiveSpec, tree: CommTree, rank: int, root_enabler: Node | None
) -> Node | None:
    """The event whose completion makes ``spec``'s payload available at
    ``rank``: the message from the tree parent, or -- at the root -- the
    event that started the broadcast (``None`` for the diagonal
    broadcast, which starts at supernode release)."""
    if rank == tree.root:
        return root_enabler
    return ("msg", spec.key, tree.parent[rank], rank)


def build_hb_model(
    plans: Sequence[SupernodePlan],
    grid: ProcessorGrid,
    scheme: str = "shifted",
    seed: int = 0,
    *,
    hybrid_threshold: int = 8,
    tree_for: Callable[[CollectiveSpec], CommTree] | None = None,
) -> HBModel:
    """Expand ``plans`` into the full happens-before DAG.

    ``tree_for`` overrides tree construction (tests inject malformed
    trees); the default builds exactly the trees the simulator would.
    """
    if tree_for is None:

        def tree_for(spec: CollectiveSpec) -> CommTree:
            return build_tree(
                scheme,
                spec.root,
                spec.participants,
                collective_seed(seed, spec.key),
                hybrid_threshold=hybrid_threshold,
            )

    model = HBModel()
    g = model.graph
    pr, pc = grid.pr, grid.pc
    plan_by_k = {p.k: p for p in plans}
    # Producers of Ainv blocks visible across supernodes.
    rr_done: set[tuple] = set()
    xb_edge: dict[tuple, tuple[int, int]] = {}
    for p in plans:
        for spec in p.row_reduces:
            rr_done.add(spec.key)
        for p2p in p.cross_backs:
            xb_edge[p2p.key] = (p2p.src, p2p.dst)

    def ainv_producer(j: int, i: int) -> Node | None:
        """Event making Ainv(J, I) available at its consumer rank."""
        if j > i:
            key = ("rr", i, j)
            return ("done", key) if key in rr_done else None
        if j == i:
            return ("fin", i) if i in plan_by_k else None
        key = ("xb", j, i)
        if key in xb_edge:
            src, dst = xb_edge[key]
            return ("msg", key, src, dst)
        return None

    for plan in plans:
        k = plan.k
        fin = ("fin", k)
        g.add_node(fin)
        if not plan.blocks:
            continue
        kc = k % pc

        # -- diag broadcast: chain along the tree; starts at release. ----
        db = plan.diag_bcast
        tdb = tree_for(db) if db is not None else None
        if db is not None:
            for r in tdb.order:
                enab = _bcast_delivery_node(db, tdb, r, None)
                for c in tdb.children.get(r, ()):
                    m = _msg(model, db.key, r, c, db.nbytes)
                    if enab is not None:
                        g.add_edge(enab, m)

        # -- cross-sends, enabled by the diag payload at the L owner; ----
        # -- each enables its column broadcast's root sends. -------------
        cb_by_i = {s.key[2]: s for s in plan.col_bcasts}
        cs_node: dict[int, Node] = {}
        for p2p in plan.cross_sends:
            i = p2p.key[2]
            m = _msg(model, p2p.key, p2p.src, p2p.dst, p2p.nbytes)
            cs_node[i] = m
            if db is not None and p2p.src in set(tdb.order):
                enab = _bcast_delivery_node(db, tdb, p2p.src, None)
                if enab is not None:
                    g.add_edge(enab, m)
            spec = cb_by_i.get(i)
            if spec is None:
                continue
            tcb = tree_for(spec)
            for r in tcb.order:
                enab = _bcast_delivery_node(spec, tcb, r, m)
                for c in tcb.children.get(r, ()):
                    mm = _msg(model, spec.key, r, c, spec.nbytes)
                    if enab is not None:
                        g.add_edge(enab, mm)

        # -- row reduces: tree-internal joins plus the GEMM inputs -------
        # -- (col-bcast delivery and the consumed Ainv block). -----------
        cb_trees = {i: tree_for(s) for i, s in cb_by_i.items()}
        block_ids = [b.snode for b in plan.blocks]
        for spec in plan.row_reduces:
            j = spec.key[2]
            trr = tree_for(spec)
            jrow = (j % pr) * pc
            contributors = {jrow + (i % pc) for i in block_ids}
            for u in trr.order:
                if u == trr.root:
                    out: Node = ("done", spec.key)
                    g.add_node(out)
                else:
                    out = _msg(model, spec.key, u, trr.parent[u], spec.nbytes)
                for c in trr.children.get(u, ()):
                    g.add_edge(("msg", spec.key, c, u), out)
                if u not in contributors:
                    continue
                for i in block_ids:
                    if jrow + (i % pc) != u:
                        continue
                    tcb = cb_trees.get(i)
                    if tcb is not None and u in set(tcb.order):
                        enab = _bcast_delivery_node(
                            cb_by_i[i], tcb, u, cs_node.get(i)
                        )
                        if enab is not None:
                            g.add_edge(enab, out)
                    prod = ainv_producer(j, i)
                    if prod is not None:
                        g.add_edge(prod, out)

        # -- cross-backs fire once their row reduce completes. -----------
        for p2p in plan.cross_backs:
            j = p2p.key[2]
            m = _msg(model, p2p.key, p2p.src, p2p.dst, p2p.nbytes)
            g.add_edge(("done", ("rr", k, j)), m)

        # -- column reduce: contributions gated on local row reduces. ----
        cr = plan.col_reduce
        if cr is None:
            for spec in plan.row_reduces:
                g.add_edge(("done", spec.key), fin)
            continue
        tcr = tree_for(cr)
        contributors = {(j % pr) * pc + kc for j in block_ids}
        for u in tcr.order:
            if u == tcr.root:
                out = fin
            else:
                out = _msg(model, cr.key, u, tcr.parent[u], cr.nbytes)
            for c in tcr.children.get(u, ()):
                g.add_edge(("msg", cr.key, c, u), out)
            if u not in contributors:
                continue
            for j in block_ids:
                if (j % pr) * pc + kc != u:
                    continue
                g.add_edge(("done", ("rr", k, j)), out)
    return model


def diagnose_graph(graph: HBGraph) -> list[Diagnostic]:
    """At most one ``HB001`` diagnostic: the first wait-for cycle."""
    cycle = graph.find_cycle()
    if cycle is None:
        return []
    shown = " -> ".join(repr(n) for n in cycle[:6])
    if len(cycle) > 6:
        shown += f" -> ... ({len(cycle) - 1} events in cycle)"
    return [
        Diagnostic(
            "HB001",
            f"{len(cycle) - 1}-event cycle",
            f"wait-for cycle (deadlock): {shown}",
        )
    ]


def check_deadlock_freedom(
    plans: Sequence[SupernodePlan],
    grid: ProcessorGrid,
    scheme: str = "shifted",
    seed: int = 0,
    *,
    hybrid_threshold: int = 8,
) -> list[Diagnostic]:
    """Build the HB model of ``plans`` and prove it acyclic."""
    model = build_hb_model(
        plans, grid, scheme, seed, hybrid_threshold=hybrid_threshold
    )
    return diagnose_graph(model.graph)


def validate_trace(
    events: Sequence,
    model: HBModel,
) -> list[Diagnostic]:
    """Replay a DES event log against the static HB model.

    ``events`` is the list filled by the :class:`Machine` ``event_log``
    hook: records with ``kind`` ("send"/"deliver"), ``time``, ``src``,
    ``dst``, ``tag`` and ``nbytes`` attributes, in simulation order.
    """
    out: list[Diagnostic] = []
    expected = model.messages
    send_times: dict[tuple, list[float]] = {}
    deliver_times: dict[tuple, list[float]] = {}
    channel_sent: dict[tuple[int, int], list[tuple]] = {}
    channel_fifo_flagged: set[tuple[int, int]] = set()

    for ev in events:
        key = (ev.tag, ev.src, ev.dst)
        if ev.kind == "send":
            planned = expected.get(key)
            if planned is None:
                out.append(
                    Diagnostic(
                        "HB002",
                        f"message {ev.tag!r} {ev.src}->{ev.dst}",
                        "sent but absent from the static plan",
                    )
                )
                continue
            if ev.nbytes != planned:
                out.append(
                    Diagnostic(
                        "HB002",
                        f"message {ev.tag!r} {ev.src}->{ev.dst}",
                        f"sent {ev.nbytes} bytes, plan says {planned}",
                    )
                )
            send_times.setdefault(key, []).append(ev.time)
            if ev.src != ev.dst:
                channel_sent.setdefault((ev.src, ev.dst), []).append(key)
        elif ev.kind == "deliver":
            if key not in expected:
                # Unknown messages are reported once, at their send.
                continue
            sends = send_times.get(key)
            if not sends:
                out.append(
                    Diagnostic(
                        "HB003",
                        f"message {ev.tag!r} {ev.src}->{ev.dst}",
                        "delivered without a matching send",
                    )
                )
            elif ev.time < sends[0]:
                out.append(
                    Diagnostic(
                        "HB003",
                        f"message {ev.tag!r} {ev.src}->{ev.dst}",
                        f"delivered at t={ev.time} before its send at "
                        f"t={sends[0]}",
                    )
                )
            deliver_times.setdefault(key, []).append(ev.time)
            chan = (ev.src, ev.dst)
            if ev.src != ev.dst and chan not in channel_fifo_flagged:
                queue = channel_sent.get(chan, [])
                if queue:
                    head = queue.pop(0)
                    if head != key:
                        out.append(
                            Diagnostic(
                                "HB004",
                                f"channel {ev.src}->{ev.dst}",
                                f"{ev.tag!r} overtook {head[0]!r} "
                                "(non-overtaking violated)",
                            )
                        )
                        channel_fifo_flagged.add(chan)
                        if key in queue:
                            queue.remove(key)

    for key, planned in expected.items():
        tag, src, dst = key
        nsent = len(send_times.get(key, ()))
        ndel = len(deliver_times.get(key, ()))
        if nsent == 0:
            out.append(
                Diagnostic(
                    "HB005",
                    f"message {tag!r} {src}->{dst}",
                    "planned but never sent (orphaned)",
                )
            )
        elif ndel == 0:
            out.append(
                Diagnostic(
                    "HB005",
                    f"message {tag!r} {src}->{dst}",
                    "sent but never delivered (lost)",
                )
            )
        elif nsent > 1 or ndel > 1:
            out.append(
                Diagnostic(
                    "HB005",
                    f"message {tag!r} {src}->{dst}",
                    f"observed {nsent} sends / {ndel} deliveries, expected 1",
                )
            )

    # HB consistency: a message enabled by another's delivery must not be
    # sent before that delivery happens (same virtual instant is fine --
    # handler callbacks post sends at the delivery time).
    for enab, dep in model.message_edges():
        t_del = deliver_times.get(enab)
        t_snd = send_times.get(dep)
        if not t_del or not t_snd:
            continue  # already reported as HB005
        if t_snd[0] < t_del[0]:
            out.append(
                Diagnostic(
                    "HB006",
                    f"message {dep[0]!r} {dep[1]}->{dep[2]}",
                    f"sent at t={t_snd[0]} before its enabling delivery "
                    f"{enab[0]!r} -> rank {enab[2]} at t={t_del[0]}",
                )
            )
    return out
