"""Pass 1 -- static plan verifier (``PLAN0xx`` diagnostics).

Proves, without running the discrete-event simulator, that the output of
:func:`repro.core.plan.iter_plans` is a well-formed communication plan:

* every :class:`~repro.core.plan.CollectiveSpec` has its root among the
  participants, no duplicate participants, and all endpoints on-grid
  (``PLAN001``-``PLAN003``);
* message tags are unique across all *concurrently-live* collectives,
  where liveness windows are computed from the supernode dependency
  order (``PLAN004``, see :func:`liveness_windows`);
* the communication tree each collective would route over (built through
  :func:`repro.comm.trees.build_tree`, exactly as the simulator and the
  analytic volume model build it) is a spanning arborescence of its
  participant set: no duplicate parents, no self-edges, no unreachable
  ranks (``PLAN005``);
* payload sizes are positive and consistent between the send side
  (cross-send / col-bcast) and the reduce side (row-reduce / cross-back)
  of each ``(K, I)`` pair, and between the diagonal broadcast and the
  column reduce (``PLAN006``-``PLAN007``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..comm.trees import CommTree, build_tree
from ..core.grid import ProcessorGrid
from ..core.plan import SupernodePlan
from ..core.volume import collective_seed
from .diagnostics import Diagnostic

__all__ = [
    "liveness_windows",
    "lint_tree",
    "verify_plans",
]


def liveness_windows(plans: Sequence[SupernodePlan]) -> dict[int, tuple[int, int]]:
    """Conservative liveness interval of each supernode's collectives.

    The runtime releases supernodes in descending index order and keeps a
    supernode's collectives alive until its column reduce completes,
    which cannot happen before every supernode it structurally depends on
    (the ancestors appearing in its block rows) has completed.  On a
    virtual unit-step timeline where releasing and completing each take
    one step, supernode ``K`` is live over::

        [release(K), finish(K)]
        release(K) = (#plans - 1) - position of K in descending order
        finish(K)  = 1 + max(release(K), finish(A) for ancestors A)

    Two collectives may be in flight simultaneously iff their supernodes'
    intervals overlap.  This is an approximation of true asynchronous
    execution (which gives no rate guarantees), but it is exactly the
    dependency order the paper's preprocessing step relies on, and it is
    what makes the duplicate-tag check (``PLAN004``) meaningful instead
    of demanding global uniqueness.
    """
    order = sorted((p.k for p in plans), reverse=True)
    release = {k: step for step, k in enumerate(order)}
    deps: dict[int, list[int]] = {
        p.k: [b.snode for b in p.blocks] for p in plans
    }
    finish: dict[int, int] = {}
    for k in order:  # descending: dependencies (larger k) already done
        bound = release[k]
        for d in deps[k]:
            if d in finish:
                bound = max(bound, finish[d])
        finish[k] = bound + 1
    return {k: (release[k], finish[k]) for k in release}


def _windows_overlap(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]


def lint_tree(
    tree: CommTree, participants: Iterable[int] | None = None
) -> Diagnostic | None:
    """Check that ``tree`` is a spanning arborescence (``PLAN005``).

    Returns the single most fundamental defect found, or ``None`` for a
    well-formed tree.  ``participants`` (when given) is the set the tree
    must span exactly.
    """
    subject = f"tree rooted at {tree.root}"
    ranks = set(tree.order)
    if len(ranks) != len(tree.order):
        return Diagnostic("PLAN005", subject, "duplicate ranks in tree order")
    if tree.root not in ranks:
        return Diagnostic("PLAN005", subject, "root is not a tree node")
    if participants is not None:
        expected = set(int(p) for p in participants)
        if ranks != expected:
            missing = sorted(expected - ranks)
            extra = sorted(ranks - expected)
            return Diagnostic(
                "PLAN005",
                subject,
                f"tree does not span the participant set "
                f"(missing {missing}, extra {extra})",
            )
    if tree.root in tree.parent:
        return Diagnostic("PLAN005", subject, "root has a parent edge")
    for r in tree.order:
        if r == tree.root:
            continue
        if r not in tree.parent:
            return Diagnostic(
                "PLAN005", subject, f"rank {r} is orphaned (no parent edge)"
            )
        p = tree.parent[r]
        if p == r:
            return Diagnostic("PLAN005", subject, f"rank {r} is its own parent")
        if p not in ranks:
            return Diagnostic(
                "PLAN005", subject, f"rank {r}'s parent {p} is not a tree node"
            )
    # Child lists must agree with the parent map: every rank appears as a
    # child of exactly its parent, and nobody is listed twice (a rank
    # listed under two parents would receive the payload twice).
    child_total = 0
    seen_children: set[int] = set()
    for owner, kids in tree.children.items():
        for c in kids:
            child_total += 1
            if c in seen_children:
                return Diagnostic(
                    "PLAN005", subject, f"rank {c} has duplicate parents"
                )
            seen_children.add(c)
            if tree.parent.get(c) != owner:
                return Diagnostic(
                    "PLAN005",
                    subject,
                    f"child edge {owner}->{c} contradicts parent map",
                )
    if child_total != len(tree.order) - 1:
        return Diagnostic(
            "PLAN005",
            subject,
            f"{child_total} child edges for {len(tree.order)} ranks "
            "(a spanning arborescence needs exactly n-1)",
        )
    # Reachability: walking child edges from the root must visit everyone
    # (catches cycles among non-root ranks, which the parent checks above
    # cannot see).
    reached = {tree.root}
    frontier = [tree.root]
    while frontier:
        r = frontier.pop()
        for c in tree.children.get(r, ()):
            if c not in reached:
                reached.add(c)
                frontier.append(c)
    if reached != ranks:
        unreachable = sorted(ranks - reached)
        return Diagnostic(
            "PLAN005", subject, f"ranks {unreachable} unreachable from the root"
        )
    return None


def _check_spec_shape(
    spec, nranks: int, out: list[Diagnostic]
) -> None:
    """PLAN001-PLAN003 and PLAN006 for one collective spec."""
    subject = f"key {spec.key!r}"
    parts = spec.participants
    if spec.root not in parts:
        out.append(
            Diagnostic(
                "PLAN001",
                subject,
                f"root {spec.root} is not among participants {parts}",
            )
        )
    if len(set(parts)) != len(parts):
        dupes = sorted({p for p in parts if parts.count(p) > 1})
        out.append(
            Diagnostic("PLAN002", subject, f"duplicate participants {dupes}")
        )
    off = [p for p in sorted(set(parts)) if not (0 <= p < nranks)]
    if off:
        out.append(
            Diagnostic(
                "PLAN003",
                subject,
                f"participants {off} outside grid of {nranks} ranks",
            )
        )
    if spec.nbytes <= 0:
        out.append(
            Diagnostic(
                "PLAN006", subject, f"payload of {spec.nbytes} bytes"
            )
        )


def _check_p2p_shape(p2p, nranks: int, out: list[Diagnostic]) -> None:
    subject = f"key {p2p.key!r}"
    off = [e for e in sorted({p2p.src, p2p.dst}) if not (0 <= e < nranks)]
    if off:
        out.append(
            Diagnostic(
                "PLAN003",
                subject,
                f"endpoints {off} outside grid of {nranks} ranks",
            )
        )
    if p2p.nbytes <= 0:
        out.append(
            Diagnostic("PLAN006", subject, f"payload of {p2p.nbytes} bytes")
        )


def _check_pair_consistency(plan: SupernodePlan, out: list[Diagnostic]) -> None:
    """PLAN007: the bytes of each (K, I) pair must agree on both sides."""
    k = plan.k
    cb = {s.key[2]: s.nbytes for s in plan.col_bcasts}
    rr = {s.key[2]: s.nbytes for s in plan.row_reduces}
    cs = {p.key[2]: p.nbytes for p in plan.cross_sends}
    xb = {p.key[2]: p.nbytes for p in plan.cross_backs}
    for i, nb in cb.items():
        if i in cs and cs[i] != nb:
            out.append(
                Diagnostic(
                    "PLAN007",
                    f"supernode {k} block {i}",
                    f"cross-send carries {cs[i]} bytes but col-bcast {nb}",
                )
            )
        if i in rr and rr[i] != nb:
            out.append(
                Diagnostic(
                    "PLAN007",
                    f"supernode {k} block {i}",
                    f"col-bcast sends {nb} bytes but row-reduce gathers {rr[i]}",
                )
            )
    for j, nb in rr.items():
        if j in xb and xb[j] != nb:
            out.append(
                Diagnostic(
                    "PLAN007",
                    f"supernode {k} block {j}",
                    f"row-reduce gathers {nb} bytes but cross-back carries {xb[j]}",
                )
            )
    if plan.diag_bcast is not None and plan.col_reduce is not None:
        db, cr = plan.diag_bcast.nbytes, plan.col_reduce.nbytes
        if db != cr:
            out.append(
                Diagnostic(
                    "PLAN007",
                    f"supernode {k}",
                    f"diag-bcast sends {db} bytes but col-reduce gathers {cr}",
                )
            )


def verify_plans(
    plans: Sequence[SupernodePlan],
    grid: ProcessorGrid,
    scheme: str = "shifted",
    seed: int = 0,
    *,
    hybrid_threshold: int = 8,
    check_trees: bool = True,
) -> list[Diagnostic]:
    """Run the full static plan verification; returns all diagnostics.

    ``scheme`` / ``seed`` select which communication trees to verify --
    the same :func:`~repro.comm.trees.build_tree` +
    :func:`~repro.core.volume.collective_seed` path the simulator and the
    analytic model use, so a clean pass certifies exactly the trees a run
    would route over.  ``check_trees=False`` skips tree construction for
    a fast shape-only pass.
    """
    out: list[Diagnostic] = []
    nranks = grid.size
    tag_sites: dict[tuple, list[int]] = {}
    for plan in plans:
        for spec in plan.collectives():
            _check_spec_shape(spec, nranks, out)
            tag_sites.setdefault(spec.key, []).append(plan.k)
            if check_trees:
                tree = build_tree(
                    scheme,
                    spec.root,
                    spec.participants,
                    collective_seed(seed, spec.key),
                    hybrid_threshold=hybrid_threshold,
                )
                d = lint_tree(tree, spec.participants)
                if d is not None:
                    out.append(
                        Diagnostic("PLAN005", f"key {spec.key!r}", d.message)
                    )
        for p2p in plan.point_to_points():
            _check_p2p_shape(p2p, nranks, out)
            tag_sites.setdefault(p2p.key, []).append(plan.k)
        _check_pair_consistency(plan, out)

    windows = liveness_windows(plans)
    for key, sites in tag_sites.items():
        if len(sites) < 2:
            continue
        # A tag may legitimately be reused once its previous holder is
        # provably retired; flag only overlapping liveness windows.
        clashing: set[int] = set()
        for idx, k in enumerate(sites):
            for k2 in sites[idx + 1 :]:
                if _windows_overlap(windows[k], windows[k2]):
                    clashing.update((k, k2))
        if clashing:
            out.append(
                Diagnostic(
                    "PLAN004",
                    f"key {key!r}",
                    f"tag live concurrently in supernodes {sorted(clashing)}",
                )
            )
    return out
