"""Pass 3 -- determinism lint (``DET0xx`` diagnostics).

An AST-based linter over ``src/repro`` catching the seeded-randomness
hazards that would silently break reproducibility.  Per-supernode *seed
agreement* is what lets every rank build the identical shifted binary
tree without synchronization (paper §III), and the simulator attributes
run-to-run variation exclusively to its seeded jitter model -- one stray
global-state RNG call or wall-clock read invalidates both properties.

Rules
-----
``DET001``
    Call into the stdlib ``random`` module's global state
    (``random.random()``, ``random.shuffle()``, ...).  Use an explicit
    ``random.Random(seed)`` instance.
``DET002``
    Call into the legacy ``numpy.random`` global state
    (``np.random.rand()``, ``np.random.seed()``, ...).  Use
    ``np.random.default_rng(seed)`` / ``np.random.Generator``.
``DET003``
    Wall-clock reads (``time.time``, ``time.perf_counter``,
    ``datetime.now``, ...) anywhere -- simulation code must use the
    virtual clock -- and ``id()`` / ``hash()`` used in a key position
    (dict key, subscript index, or a ``seed``-like argument), where they
    inject interpreter-run-dependent values.
``DET004``
    Iterating a raw set (set display, set comprehension or ``set(...)``
    call) in a ``for`` loop, comprehension, or ``tuple()``/``list()``
    conversion.  Set order is hash-dependent; wrap in ``sorted(...)``
    before it feeds tree construction or any ordered output.
``DET005``
    Unseeded generator construction: ``np.random.default_rng()`` or
    ``random.Random()`` without arguments.
``DET006``
    Float accumulation into a counter-like target (name matching
    ``count``/``counter``/``volume``) via ``+=`` of a float literal or a
    division -- float rounding makes such counters order-sensitive.

The linter is purely syntactic; it sees through the common import idioms
(``import numpy as np``, ``from numpy import random``, ``from random
import randint``) but does not do type inference, so a set bound to a
variable first is not flagged (documented limitation).

A trailing ``# det: allow(DET003)`` pragma exempts the named rule(s) on
that line (bare ``# det: allow`` exempts all).  Reserved for host-side
orchestration -- progress timers and identity-keyed in-process memos in
:mod:`repro.runner` -- never for code on the simulation's virtual
timeline.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable

from .diagnostics import Diagnostic

__all__ = ["lint_source", "lint_file", "lint_paths", "lint_package"]

# numpy.random names that are explicitly-seeded constructions, not global
# state.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

# stdlib random module-level functions driving the hidden global Random.
_STDLIB_RANDOM_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
    "getrandbits", "randbytes",
}

_WALLCLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime.datetime", "now"),
    ("datetime.datetime", "utcnow"),
}

_COUNTER_NAME = re.compile(r"count|counter|volume", re.IGNORECASE)

# Per-line suppression pragma: ``# det: allow(DET003)`` exempts the
# named rule(s) on that line, ``# det: allow`` exempts every rule.  For
# host-side orchestration only (progress timers, identity-keyed memos
# that never leave the process); simulation code must stay clean.
_ALLOW_PRAGMA = re.compile(
    r"#\s*det:\s*allow(?:\(\s*(DET\d{3}(?:\s*,\s*DET\d{3})*)\s*\))?"
)


def _dotted(node: ast.AST) -> str | None:
    """Source-level dotted name of an expression (``np.random.rand``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportTable:
    """Alias -> canonical dotted module/function name."""

    def __init__(self) -> None:
        self.modules: dict[str, str] = {}  # "np" -> "numpy"
        self.names: dict[str, str] = {}  # "randint" -> "random.randint"

    def visit(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    self.modules[a.asname or a.name.split(".")[0]] = a.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for a in node.names:
                    self.names[a.asname or a.name] = f"{node.module}.{a.name}"

    def canonical(self, dotted: str) -> str:
        """Rewrite a source dotted name onto canonical module names."""
        head, _, rest = dotted.partition(".")
        if head in self.names:
            full = self.names[head]
            return f"{full}.{rest}" if rest else full
        if head in self.modules:
            return f"{self.modules[head]}.{rest}" if rest else self.modules[head]
        return dotted


def _parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    table: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            table[child] = node
    return table


def _in_key_context(
    node: ast.AST, parents: dict[ast.AST, ast.AST], imports: _ImportTable
) -> bool:
    """Whether ``node``'s value feeds a dict key, subscript index, or a
    seed-like argument."""
    child = node
    cur = parents.get(node)
    while cur is not None and not isinstance(cur, ast.stmt):
        if isinstance(cur, ast.Dict) and child in cur.keys:
            return True
        if isinstance(cur, ast.Subscript) and child is cur.slice:
            return True
        if isinstance(cur, ast.Call):
            fn = _dotted(cur.func)
            fn = imports.canonical(fn) if fn else None
            if fn is not None and ("seed" in fn.split(".")[-1].lower()):
                return True
            for kw in cur.keywords:
                if kw.arg in ("key", "seed") and kw.value is child:
                    return True
        child = cur
        cur = parents.get(cur)
    return False


def _is_raw_set(node: ast.AST, imports: _ImportTable) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = _dotted(node.func)
        return fn is not None and imports.canonical(fn) == "set"
    return False


def _has_float_or_div(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
    return False


def _target_name(node: ast.AST) -> str | None:
    """Trailing identifier of an assignment target (unwraps subscripts)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def lint_source(source: str, filename: str = "<string>") -> list[Diagnostic]:
    """Lint one module's source text; returns all ``DET0xx`` findings."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:  # a lint tool reports, it does not crash
        return [
            Diagnostic(
                "DET003",
                f"{filename}:{exc.lineno or 0}",
                f"could not parse module: {exc.msg}",
            )
        ]
    imports = _ImportTable()
    imports.visit(tree)
    parents = _parents(tree)
    out: list[Diagnostic] = []

    # lineno -> codes exempted on that line (None = all codes).
    allowed: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _ALLOW_PRAGMA.search(line)
        if m:
            allowed[lineno] = (
                {c.strip() for c in m.group(1).split(",")} if m.group(1) else None
            )

    def where(node: ast.AST) -> str:
        return f"{filename}:{getattr(node, 'lineno', 0)}"

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            fn = _dotted(node.func)
            canon = imports.canonical(fn) if fn else None
            if canon is not None:
                head, _, last = canon.rpartition(".")
                if canon == "numpy.random.default_rng" and not (
                    node.args or node.keywords
                ):
                    out.append(
                        Diagnostic(
                            "DET005",
                            where(node),
                            "np.random.default_rng() without a seed is "
                            "entropy-seeded; pass an explicit seed",
                        )
                    )
                elif canon == "random.Random" and not (
                    node.args or node.keywords
                ):
                    out.append(
                        Diagnostic(
                            "DET005",
                            where(node),
                            "random.Random() without a seed is "
                            "entropy-seeded; pass an explicit seed",
                        )
                    )
                elif head == "numpy.random" and last not in _NP_RANDOM_ALLOWED:
                    out.append(
                        Diagnostic(
                            "DET002",
                            where(node),
                            f"legacy global-state call np.random.{last}(); "
                            "use an explicit np.random.default_rng(seed)",
                        )
                    )
                elif head == "random" and last in _STDLIB_RANDOM_FUNCS:
                    out.append(
                        Diagnostic(
                            "DET001",
                            where(node),
                            f"stdlib global-state call random.{last}(); "
                            "use an explicit random.Random(seed) instance",
                        )
                    )
                elif (head, last) in _WALLCLOCK:
                    out.append(
                        Diagnostic(
                            "DET003",
                            where(node),
                            f"wall-clock read {canon}(); simulation code "
                            "must use the virtual clock",
                        )
                    )
                elif canon in ("id", "hash") and _in_key_context(
                    node, parents, imports
                ):
                    out.append(
                        Diagnostic(
                            "DET003",
                            where(node),
                            f"{canon}() used in a key/seed position is "
                            "interpreter-run dependent",
                        )
                    )
        if isinstance(node, (ast.For, ast.comprehension)):
            it = node.iter
            if _is_raw_set(it, imports):
                out.append(
                    Diagnostic(
                        "DET004",
                        where(it),
                        "iterating a raw set: order is hash-dependent; "
                        "wrap in sorted(...)",
                    )
                )
        if isinstance(node, ast.Call):
            fn = _dotted(node.func)
            canon = imports.canonical(fn) if fn else None
            if (
                canon in ("tuple", "list", "enumerate")
                and node.args
                and _is_raw_set(node.args[0], imports)
            ):
                out.append(
                    Diagnostic(
                        "DET004",
                        where(node),
                        f"{canon}() over a raw set: order is "
                        "hash-dependent; wrap in sorted(...)",
                    )
                )
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            name = _target_name(node.target)
            if (
                name is not None
                and _COUNTER_NAME.search(name)
                and _has_float_or_div(node.value)
            ):
                out.append(
                    Diagnostic(
                        "DET006",
                        where(node),
                        f"float accumulation into counter {name!r} is "
                        "order-sensitive; accumulate integers",
                    )
                )

    def suppressed(d: Diagnostic) -> bool:
        _, _, lineno = d.subject.rpartition(":")
        codes = allowed.get(int(lineno) if lineno.isdigit() else 0, ())
        return codes is None or d.code in codes

    return [d for d in out if not suppressed(d)]


def lint_file(path: str | Path) -> list[Diagnostic]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Iterable[str | Path]) -> list[Diagnostic]:
    """Lint every ``.py`` file under the given files/directories."""
    out: list[Diagnostic] = []
    for p in paths:
        p = Path(p)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            out.extend(lint_file(f))
    return out


def lint_package() -> list[Diagnostic]:
    """Lint the installed ``repro`` package sources (the CI entry point)."""
    import repro

    return lint_paths([Path(repro.__file__).parent])
