"""Orchestrates the three ``repro check`` passes over workloads.

The CLI and CI entry point: resolves a workload name (every entry of
:mod:`repro.workloads.registry`, plus the ``laplacian`` quick-tier alias
-- a small 2D grid Laplacian used for the full-trace validation run),
builds its communication plans, and runs

1. the static plan verifier (:mod:`repro.check.plan_lint`),
2. the happens-before deadlock proof, optionally followed by a full
   discrete-event run whose structured event log is replayed against the
   static model (:mod:`repro.check.hb`), and
3. the AST determinism lint over the package sources
   (:mod:`repro.check.ast_lint`).

Per-workload checks are independent, so the registry sweep fans out
across the :class:`repro.runner.ParallelRunner` process pool
(``REPRO_JOBS`` / ``repro check --jobs``); findings merge back in
registry order, so the report is identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .diagnostics import Diagnostic
from . import ast_lint, hb, plan_lint

__all__ = ["CheckResult", "check_workload", "run_checks", "QUICK_WORKLOAD"]

# The quick-tier alias: small enough to run the full DES under trace
# validation for every scheme in seconds.
QUICK_WORKLOAD = "laplacian"


@dataclass
class CheckResult:
    """Findings of one checker invocation, grouped by pass."""

    plan: list[Diagnostic] = field(default_factory=list)
    hb: list[Diagnostic] = field(default_factory=list)
    det: list[Diagnostic] = field(default_factory=list)
    # (workload, scheme) pairs whose DES trace was replayed and validated.
    traced: list[tuple[str, str]] = field(default_factory=list)

    def all(self) -> list[Diagnostic]:
        return [*self.plan, *self.hb, *self.det]

    @property
    def clean(self) -> bool:
        return not (self.plan or self.hb or self.det)


def _analyze_workload(name: str, scale: str, max_supernode: int):
    from ..sparse import analyze
    from ..workloads import grid_laplacian_2d, make_workload

    if name == QUICK_WORKLOAD:
        import numpy as np

        matrix = grid_laplacian_2d(12, 12, rng=np.random.default_rng(0))
    else:
        matrix = make_workload(name, scale)
    return analyze(matrix, ordering="nd", max_supernode=max_supernode)


def check_workload(
    name: str,
    *,
    scale: str = "tiny",
    grid_side: int = 4,
    schemes: tuple[str, ...] = ("flat", "binary", "shifted"),
    seed: int = 20160523,
    max_supernode: int = 8,
    trace: bool = False,
    result: CheckResult | None = None,
) -> CheckResult:
    """Run passes 1 and 2 for one workload (pass 3 is source-level).

    With ``trace=True`` a symbolic DES run is executed per scheme with
    the machine's event log enabled, and the log is validated against the
    static happens-before model.
    """
    from ..core import ProcessorGrid, SimulatedPSelInv, iter_plans

    res = result if result is not None else CheckResult()
    prob = _analyze_workload(name, scale, max_supernode)
    grid = ProcessorGrid(grid_side, grid_side)
    plans = list(iter_plans(prob.struct, grid))
    for scheme in schemes:
        res.plan.extend(
            plan_lint.verify_plans(plans, grid, scheme, seed)
        )
        model = hb.build_hb_model(plans, grid, scheme, seed)
        res.hb.extend(hb.diagnose_graph(model.graph))
        if trace:
            log: list = []
            SimulatedPSelInv(
                prob.struct,
                grid,
                scheme,
                seed=seed,
                plans=plans,
                event_log=log,
            ).run()
            res.hb.extend(hb.validate_trace(log, model))
            res.traced.append((name, scheme))
    return res


def _check_task(task: dict) -> CheckResult:
    """One workload's passes 1+2 (module-level so the pool can pickle it)."""
    return check_workload(
        task["name"],
        scale=task["scale"],
        grid_side=task["grid_side"],
        schemes=task["schemes"],
        seed=task["seed"],
        trace=task["trace"],
    )


def run_checks(
    workload: str = "all",
    *,
    scale: str = "tiny",
    grid_side: int = 4,
    schemes: tuple[str, ...] = ("flat", "binary", "shifted"),
    seed: int = 20160523,
    trace: bool | None = None,
    jobs: int | None = None,
    force_jobs: bool = False,
    progress: Callable | None = None,
) -> CheckResult:
    """The full ``repro check`` entry point.

    ``workload="all"`` covers every registry entry at ``scale`` plus the
    quick-tier ``laplacian`` alias.  Trace validation defaults to on for
    the quick alias and off for the (larger) registry workloads; pass
    ``trace=True`` to force it everywhere.

    ``jobs`` selects the process-pool width (None = the ``REPRO_JOBS``
    default, clamped to the available CPUs unless ``force_jobs``);
    per-workload findings merge in registry order, so the result does
    not depend on the worker count.  ``progress`` is the runner's
    per-item callback (see :class:`repro.runner.ParallelRunner`).
    """
    from ..runner import ParallelRunner
    from ..workloads import workload_names

    if workload == "all":
        names = [*workload_names(), QUICK_WORKLOAD]
    else:
        names = [workload]
    tasks = [
        dict(
            name=name,
            scale=scale,
            grid_side=grid_side,
            schemes=tuple(schemes),
            seed=seed,
            trace=trace if trace is not None else name == QUICK_WORKLOAD,
        )
        for name in names
    ]
    res = CheckResult()
    runner = ParallelRunner(jobs, progress=progress, force_jobs=force_jobs)
    for sub in runner.map(_check_task, tasks):
        res.plan.extend(sub.plan)
        res.hb.extend(sub.hb)
        res.det.extend(sub.det)
        res.traced.extend(sub.traced)
    res.det.extend(ast_lint.lint_package())
    return res
