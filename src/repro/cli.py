"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's experiments::

    python -m repro workloads                 # list workload proxies
    python -m repro analyze audikw_1          # symbolic stats (Table II cols)
    python -m repro volumes audikw_1 -g 8     # Tables I/II volume summary
    python -m repro heatmap audikw_1 -g 8     # Fig. 5 ASCII heat maps
    python -m repro scaling -g 16 -r 2        # Fig. 8 mini strong scaling
    python -m repro bench -g 16 -r 2 -j 4     # same sweep, 4 workers
    python -m repro selinv                    # quick numeric demo + check
    python -m repro check                     # communication-correctness
                                              # analyzer (all workloads)
    python -m repro trace -o out.trace.json   # Perfetto timeline of one
                                              # DES run (repro.obs)
    python -m repro hotspots                  # ranked per-rank hot-spot
                                              # report per scheme

All commands run on the simulated machine; nothing requires MPI.  Sweep
commands (``scaling``/``bench``/``check``) fan out across a process pool:
``--jobs N`` overrides the ``REPRO_JOBS`` environment knob (1 = serial;
results are bit-identical either way), and every completed item prints a
progress + elapsed-time line to stderr.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _progress(done: int, total: int, item, result, elapsed: float) -> None:
    """Per-item progress line for long sweeps (stderr, flushed)."""
    if isinstance(item, dict):
        name = str(item.get("name", item))
    elif hasattr(item, "describe"):
        name = item.describe()
    else:
        name = str(item)
    print(
        f"  [{done}/{total}] {name}  ({elapsed:.1f}s elapsed)",
        file=sys.stderr,
        flush=True,
    )


def _cmd_workloads(args) -> int:
    from .workloads import WORKLOADS, workload_names

    print(f"{'name':<20} {'regime':<7} {'paper n':>10}  description")
    for name in workload_names():
        w = WORKLOADS[name]
        print(f"{name:<20} {w.regime:<7} {w.paper_n:>10,}  {w.description[:60]}")
    return 0


def _analyzed(args):
    from .sparse import analyze
    from .workloads import make_workload

    matrix = make_workload(args.workload, args.scale)
    return analyze(matrix, ordering="nd", max_supernode=args.max_supernode)


def _cmd_analyze(args) -> int:
    prob = _analyzed(args)
    st = prob.stats()
    for k, v in st.items():
        print(f"{k:>12}: {v:,}" if isinstance(v, int) else f"{k:>12}: {v:.3f}")
    return 0


def _cmd_volumes(args) -> int:
    from .analysis import Table
    from .core import ProcessorGrid, communication_volumes, iter_plans, volume_summary

    prob = _analyzed(args)
    grid = ProcessorGrid(args.grid, args.grid)
    plans = list(iter_plans(prob.struct, grid))
    for title, getter in (
        ("Col-Bcast sent (MB)  [Table I]", "col_bcast_sent"),
        ("Row-Reduce received (MB)  [Table II]", "row_reduce_received"),
    ):
        table = Table(title, ["scheme", "min", "max", "median", "std"])
        for scheme in ("flat", "binary", "shifted"):
            rep = communication_volumes(
                prob.struct, grid, scheme, seed=args.seed, plans=plans
            )
            s = volume_summary(getattr(rep, getter)())
            table.add(scheme, s["min"], s["max"], s["median"], s["std"])
        print(table.render())
        print()
    return 0


def _cmd_heatmap(args) -> int:
    from .analysis import render_ascii, uniformity
    from .core import ProcessorGrid, communication_volumes, iter_plans

    prob = _analyzed(args)
    grid = ProcessorGrid(args.grid, args.grid)
    plans = list(iter_plans(prob.struct, grid))
    maps = {}
    for scheme in ("flat", "binary", "shifted"):
        rep = communication_volumes(
            prob.struct, grid, scheme, seed=args.seed, plans=plans
        )
        maps[scheme] = rep.heatmap("col-bcast-total")
    vmax = max(maps["flat"].max(), maps["shifted"].max())
    for scheme, hm in maps.items():
        print(f"[{scheme}]  coeff-of-variation={uniformity(hm):.3f}")
        print(render_ascii(hm, vmax=vmax if scheme != "binary" else None))
        print()
    return 0


def _print_sweep_stats(runner) -> None:
    """One stderr line per cache layer for a finished sweep."""
    snap = runner.metrics_snapshot()
    counters, gauges = snap["counters"], snap["gauges"]

    def line(label: str, prefix: str, rate_key: str | None) -> None:
        hits = counters.get(f"{prefix}hits", 0)
        misses = counters.get(f"{prefix}misses", 0)
        if not (hits or misses):
            return
        extra = ""
        if rate_key is not None:
            extra = f"  hit-rate={gauges.get(rate_key, 0.0):.1%}"
        ev = counters.get(f"{prefix}evictions")
        if ev:
            extra += f"  evictions={ev}"
        rb = counters.get(f"{prefix}bytes_read", 0)
        wb = counters.get(f"{prefix}bytes_written", 0)
        if rb or wb:
            extra += f"  read={rb:,}B written={wb:,}B"
        print(
            f"  {label}: {hits} hit(s) / {misses} miss(es){extra}",
            file=sys.stderr,
        )

    line("tree cache", "comm.tree_cache.", "comm.tree_cache.hit_rate")
    line("result store", "runner.store.", "runner.store.hit_rate")


def _cmd_scaling(args) -> int:
    """Fig. 8 mini strong-scaling sweep (also exposed as ``repro bench``).

    Experiments fan out across the parallel runner; records merge in
    spec order, so the printed tables are identical for any ``--jobs``.

    The persistent result store is on by default (records are keyed by a
    stable spec hash, so a re-run with unchanged parameters replays
    stored records instead of simulating); ``--no-store`` disables it,
    ``--refresh`` recomputes and overwrites, ``--store-dir`` relocates it.
    """
    from .analysis import ScalingSeries, Table, speedup_table
    from .runner import ExperimentSpec, ParallelRunner, store
    from .simulate import NetworkConfig

    store.configure(
        enabled=not args.no_store,
        refresh=args.refresh,
        directory=args.store_dir,
    )
    net = NetworkConfig(jitter_sigma=0.2)
    sides = [s for s in (4, 8, 16, 23, 32, 46) if s <= args.grid]
    schemes = ("flat", "binary", "shifted")
    specs = [
        ExperimentSpec(
            workload=args.workload,
            scale=args.scale,
            max_supernode=args.max_supernode,
            grid=(side, side),
            scheme=scheme,
            network=net,
            seed=args.seed,
            jitter_seed=run,
            placement_seed=run + 77,
            lookahead=4,
            label=scheme,
            engine=args.engine,
        )
        for side in sides
        for scheme in schemes
        for run in range(args.runs)
    ]
    runner = ParallelRunner(
        args.jobs, progress=_progress, force_jobs=args.force_jobs
    )
    records = runner.run(specs)
    _print_sweep_stats(runner)
    series = {s: ScalingSeries(s) for s in schemes}
    for rec in records:
        series[rec.spec.label].add(
            rec.spec.grid[0] * rec.spec.grid[1], rec.makespan
        )
    for side in sides:
        for scheme in schemes:
            p = side * side
            print(
                f"P={p:5d} {scheme:8s} "
                f"{series[scheme].mean(p) * 1e3:8.2f} ms "
                f"± {series[scheme].std(p) * 1e3:.2f}",
                file=sys.stderr,
            )
    table = Table("Strong scaling (simulated ms)", ["P", *schemes])
    for side in sides:
        p = side * side
        table.add(p, *(f"{series[s].mean(p) * 1e3:.2f}" for s in schemes))
    print(table.render())
    sp = speedup_table(series["flat"], series["shifted"])
    print("\nshifted speedup over flat: " + "  ".join(
        f"P={p}: {v:.2f}x" for p, v in sp.items()
    ))
    return 0


def _cmd_concurrency(args) -> int:
    from .analysis import concurrency_profile, critical_path, pipeline_depth_estimate

    prob = _analyzed(args)
    prof = concurrency_profile(prob.struct)
    cp = critical_path(prob.struct)
    est = pipeline_depth_estimate(prob.struct, args.grid * args.grid)
    print(f"supernodes        : {prof['nsup']}")
    print(f"task-DAG depth    : {prof['depth']}")
    print(f"max level width   : {prof['max_width']}")
    print(f"work (flops)      : {cp['work']:.3e}")
    print(f"span (flops)      : {cp['span']:.3e}")
    print(f"max speedup bound : {cp['max_speedup']:.1f}x")
    print(
        f"suggested window  : {est['suggested_window']:.0f} supernodes "
        f"for {args.grid * args.grid} ranks"
    )
    return 0


def _cmd_selinv(args) -> int:
    from .core import ProcessorGrid, SimulatedPSelInv
    from .sparse import analyze, selinv_sequential
    from .sparse.factor import factorize
    from .workloads import grid_laplacian_2d

    matrix = grid_laplacian_2d(10, 10, rng=np.random.default_rng(0))
    prob = analyze(matrix, ordering="nd")
    _, inv = selinv_sequential(prob)
    dense_inv = np.linalg.inv(prob.matrix.to_dense())
    rr, cc = inv.stored_positions()
    err = np.abs(inv.to_dense_at_structure()[rr, cc] - dense_inv[rr, cc]).max()
    print(f"sequential selinv on 10x10 Laplacian: max |err| = {err:.2e}")
    raw = factorize(prob.matrix, prob.struct)
    res = SimulatedPSelInv(
        prob.struct, ProcessorGrid(3, 3), "shifted", factor=raw
    ).run()
    perr = np.abs(
        res.inverse.to_dense_at_structure() - inv.to_dense_at_structure()
    ).max()
    print(f"simulated 3x3-grid PSelInv: max |diff| = {perr:.2e}, "
          f"makespan {res.makespan * 1e3:.3f} ms")
    return 0 if max(err, perr) < 1e-9 else 1


def _resolve_problem(workload: str, scale: str, max_supernode: int):
    """Workload name -> analyzed problem, with the quick-tier alias.

    ``laplacian-quick`` / ``laplacian`` is the small seeded 2D grid
    Laplacian the checker's trace tier uses -- small enough to run a
    fully-recorded DES in under a second.
    """
    from .sparse import analyze

    if workload in ("laplacian-quick", "laplacian"):
        from .workloads import grid_laplacian_2d

        matrix = grid_laplacian_2d(12, 12, rng=np.random.default_rng(0))
    else:
        from .workloads import make_workload

        matrix = make_workload(workload, scale)
    return analyze(matrix, ordering="nd", max_supernode=max_supernode)


def _cmd_trace(args) -> int:
    """One fully-telemetered DES run exported as Chrome trace JSON."""
    from .core import ProcessorGrid, SimulatedPSelInv
    from .obs import Telemetry, validate_chrome_trace

    prob = _resolve_problem(args.workload, args.scale, args.max_supernode)
    grid = ProcessorGrid(args.grid, args.grid)
    telemetry = Telemetry.full(
        grid.size, workload=args.workload, scheme=args.scheme
    )
    res = SimulatedPSelInv(
        prob.struct, grid, args.scheme, seed=args.seed, telemetry=telemetry,
        engine=args.engine,
    ).run()
    trace = telemetry.timeline.write(
        args.output,
        workload=args.workload,
        scheme=args.scheme,
        grid=f"{grid.pr}x{grid.pc}",
        seed=args.seed,
        makespan_seconds=res.makespan,
        des_events=res.events,
    )
    summary = validate_chrome_trace(trace)
    print(
        f"wrote {args.output}: {summary['n_events']} trace events, "
        f"{summary['n_lanes']} lanes, "
        f"{(summary['ts_max'] - summary['ts_min']) / 1e3:.3f} ms simulated "
        f"(open in https://ui.perfetto.dev)"
    )
    if args.metrics_out:
        import json

        with open(args.metrics_out, "w") as fh:
            json.dump(telemetry.metrics.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_out}")
    print()
    print(telemetry.hotspots.report(args.top, label=f"{args.scheme}"))
    return 0


def _cmd_hotspots(args) -> int:
    """Per-scheme ranked hot-spot report (the live Fig. 5/7 counterpart)."""
    from .core import ProcessorGrid, SimulatedPSelInv, iter_plans
    from .obs import HotSpotMonitor, MetricsRegistry, Telemetry

    prob = _resolve_problem(args.workload, args.scale, args.max_supernode)
    grid = ProcessorGrid(args.grid, args.grid)
    plans = list(iter_plans(prob.struct, grid))
    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    for scheme in schemes:
        monitor = HotSpotMonitor(grid.size)
        metrics = MetricsRegistry(workload=args.workload, scheme=scheme)
        SimulatedPSelInv(
            prob.struct,
            grid,
            scheme,
            seed=args.seed,
            plans=plans,
            telemetry=Telemetry(hotspots=monitor, metrics=metrics),
            engine=args.engine,
        ).run()
        print(
            monitor.report(
                args.top, label=f"{args.workload} scheme={scheme}"
            )
        )
        snap = metrics.snapshot()
        cache_series = {
            k: v
            for bucket in ("counters", "gauges")
            for k, v in snap[bucket].items()
            if "comm.tree_cache." in k
        }
        if cache_series:
            print("  tree cache (shared LRU, this run's deltas):")
            for k, v in sorted(cache_series.items()):
                name = k.split("{")[0]
                val = f"{v:.3f}" if isinstance(v, float) else str(v)
                print(f"    {name:28s} {val}")
        print()
    return 0


def _cmd_check(args) -> int:
    from .check import CODE_DESCRIPTIONS, run_checks

    if args.codes:
        for code, desc in CODE_DESCRIPTIONS.items():
            print(f"{code}  {desc}")
        return 0
    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    res = run_checks(
        args.workload,
        scale=args.scale,
        grid_side=args.grid,
        schemes=schemes,
        seed=args.seed,
        trace=True if args.trace else None,
        jobs=args.jobs,
        force_jobs=args.force_jobs,
        progress=_progress,
    )
    for d in res.all():
        print(d)
    npass = {"plan": len(res.plan), "hb": len(res.hb), "det": len(res.det)}
    traced = ", ".join(f"{w}/{s}" for w, s in res.traced) or "none"
    print(
        f"plan verifier: {npass['plan']} finding(s) | "
        f"happens-before: {npass['hb']} | determinism lint: {npass['det']}"
    )
    print(f"traces validated: {traced}")
    if res.clean:
        print("check: clean")
        return 0
    print(f"check: {len(res.all())} finding(s)", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="PSelInv tree-based restricted collectives reproduction",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list workload proxies").set_defaults(
        fn=_cmd_workloads
    )

    def common(sp, grid_default=8):
        sp.add_argument("workload", nargs="?", default="audikw_1")
        sp.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
        sp.add_argument("--max-supernode", type=int, default=8)
        sp.add_argument("-g", "--grid", type=int, default=grid_default)
        sp.add_argument("--seed", type=int, default=20160523)

    def jobs_option(sp):
        sp.add_argument(
            "-j",
            "--jobs",
            type=int,
            default=None,
            help="parallel worker processes (default: REPRO_JOBS or all "
            "cores; 1 = serial; results are identical either way)",
        )
        sp.add_argument(
            "--force-jobs",
            action="store_true",
            help="allow --jobs above the available CPU count instead of "
            "clamping (oversubscription only adds scheduler churn, but "
            "measuring that is occasionally the point)",
        )

    def engine_option(sp):
        sp.add_argument(
            "--engine",
            default="batch",
            choices=["batch", "vectorized", "legacy"],
            help="DES engine: calendar-queue batch dispatch (default), "
            "compiled vectorized dispatch, or the binary-heap reference; "
            "outcomes are bit-identical",
        )

    def store_options(sp):
        sp.add_argument(
            "--no-store",
            action="store_true",
            help="disable the persistent result store (always simulate)",
        )
        sp.add_argument(
            "--refresh",
            action="store_true",
            help="recompute every record and overwrite the stored copy",
        )
        sp.add_argument(
            "--store-dir",
            default=None,
            help="result-store root (default: REPRO_STORE_DIR or "
            "~/.cache/repro/store)",
        )

    sp = sub.add_parser("analyze", help="symbolic factorization stats")
    common(sp)
    sp.set_defaults(fn=_cmd_analyze)

    sp = sub.add_parser("volumes", help="Tables I/II volume summaries")
    common(sp)
    sp.set_defaults(fn=_cmd_volumes)

    sp = sub.add_parser("heatmap", help="Fig. 5 ASCII heat maps")
    common(sp)
    sp.set_defaults(fn=_cmd_heatmap)

    sp = sub.add_parser("scaling", help="Fig. 8 mini strong-scaling sweep")
    common(sp, grid_default=16)
    sp.add_argument("-r", "--runs", type=int, default=2)
    jobs_option(sp)
    engine_option(sp)
    store_options(sp)
    sp.set_defaults(fn=_cmd_scaling)

    sp = sub.add_parser(
        "bench",
        help="parallel experiment sweep (the scaling sweep through the "
        "process-pool runner; alias of 'scaling')",
    )
    common(sp, grid_default=16)
    sp.add_argument("-r", "--runs", type=int, default=2)
    jobs_option(sp)
    engine_option(sp)
    store_options(sp)
    sp.set_defaults(fn=_cmd_scaling)

    sp = sub.add_parser(
        "concurrency", help="elimination-tree parallelism profile"
    )
    common(sp)
    sp.set_defaults(fn=_cmd_concurrency)

    sp = sub.add_parser("selinv", help="quick numeric correctness demo")
    sp.set_defaults(fn=_cmd_selinv)

    sp = sub.add_parser(
        "trace",
        help="run one DES experiment with full telemetry and export a "
        "Perfetto-loadable Chrome trace (repro.obs)",
    )
    sp.add_argument(
        "--workload",
        default="laplacian-quick",
        help="registry workload name or 'laplacian-quick' (default)",
    )
    sp.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    sp.add_argument("--max-supernode", type=int, default=8)
    sp.add_argument("-g", "--grid", type=int, default=4)
    sp.add_argument("--seed", type=int, default=20160523)
    sp.add_argument("--scheme", default="shifted")
    sp.add_argument(
        "-o", "--output", default="out.trace.json",
        help="trace file to write (Chrome trace-event JSON)",
    )
    sp.add_argument(
        "--metrics-out",
        default=None,
        help="also write the metrics-registry snapshot as JSON",
    )
    sp.add_argument("-k", "--top", type=int, default=5)
    engine_option(sp)
    sp.set_defaults(fn=_cmd_trace)

    sp = sub.add_parser(
        "hotspots",
        help="ranked top-k hottest-rank report per scheme (live Fig. 5/7)",
    )
    sp.add_argument(
        "--workload",
        default="laplacian-quick",
        help="registry workload name or 'laplacian-quick' (default)",
    )
    sp.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    sp.add_argument("--max-supernode", type=int, default=8)
    sp.add_argument("-g", "--grid", type=int, default=4)
    sp.add_argument("--seed", type=int, default=20160523)
    sp.add_argument(
        "--schemes",
        default="flat,binary,shifted",
        help="comma-separated tree schemes to report on",
    )
    sp.add_argument("-k", "--top", type=int, default=5)
    engine_option(sp)
    sp.set_defaults(fn=_cmd_hotspots)

    sp = sub.add_parser(
        "check",
        help="communication-correctness analyzer (plan verifier, "
        "happens-before/race checker, determinism lint)",
    )
    sp.add_argument(
        "--workload",
        default="all",
        help="registry workload name, 'laplacian' (quick tier), or 'all'",
    )
    sp.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    sp.add_argument("-g", "--grid", type=int, default=4)
    sp.add_argument("--seed", type=int, default=20160523)
    sp.add_argument(
        "--schemes",
        default="flat,binary,shifted",
        help="comma-separated tree schemes to verify",
    )
    sp.add_argument(
        "--trace",
        action="store_true",
        help="force DES trace validation for every checked workload "
        "(default: quick laplacian tier only)",
    )
    sp.add_argument(
        "--codes",
        action="store_true",
        help="list diagnostic codes and exit",
    )
    jobs_option(sp)
    sp.set_defaults(fn=_cmd_check)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
