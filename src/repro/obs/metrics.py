"""Metrics registry: labeled counters, gauges, and histograms.

The telemetry subsystem's second pillar (ISSUE 5).  Instrumented code
holds *instrument* objects -- :class:`Counter`, :class:`Gauge`,
:class:`Histogram` -- obtained once from a :class:`MetricsRegistry` and
updated with plain attribute arithmetic, so the per-event cost is one
method call on a slotted object.  When telemetry is disabled there are
two equally cheap options, both used in the codebase:

* hot paths guard with ``if metrics is not None`` (zero instructions
  beyond one attribute load and an identity test), and
* API-compatible code paths may hold the shared :data:`NULL_SINK`
  instrument (from :class:`NullMetrics`), whose update methods are
  no-ops.

Snapshots are **deterministic**: series are keyed by
``name{label=value,...}`` with sorted labels, and :func:`snapshot`
returns plain nested dicts with sorted keys -- safe to pickle across the
runner's process pool, diff in tests, and merge with
:func:`merge_snapshots` (counters add, gauges keep the maximum,
histograms add bucket-wise), which is how per-worker metrics fold into
one sweep-level export regardless of worker count or completion order.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_SINK",
    "merge_snapshots",
]


class Counter:
    """Monotonically accumulating value (ints stay ints)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount


class Gauge:
    """Last-written value with a high-water helper."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def update_max(self, value) -> None:
        if value > self.value:
            self.value = value


# Default bucket upper bounds: powers of four from 1 to ~10^9, a good
# fit for both byte sizes and fan-out degrees.  The last bucket is
# implicit (+inf).
_DEFAULT_BOUNDS = tuple(4**e for e in range(16))


class Histogram:
    """Fixed-boundary histogram with count/total/min/max side stats."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Iterable[float] = _DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value) -> None:
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value


def _series_key(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """One run's worth of labeled series.

    ``common_labels`` are merged into every series created through this
    registry (e.g. ``MetricsRegistry(scheme="shifted")``), which is how
    per-scheme fan-out metrics stay distinguishable after merging
    snapshots from a sweep.
    """

    def __init__(self, **common_labels: Any) -> None:
        self.common_labels = dict(common_labels)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument factories (memoized per series) -------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _series_key(name, {**self.common_labels, **labels})
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _series_key(name, {**self.common_labels, **labels})
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, *, bounds=_DEFAULT_BOUNDS, **labels) -> Histogram:
        key = _series_key(name, {**self.common_labels, **labels})
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(bounds)
        return inst

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of every series, deterministically ordered."""
        hists = {}
        for key in sorted(self._histograms):
            h = self._histograms[key]
            hists[key] = {
                "bounds": list(h.bounds),
                "bucket_counts": list(h.bucket_counts),
                "count": h.count,
                "total": h.total,
                "min": h.min,
                "max": h.max,
            }
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": hists,
        }


class _NullInstrument:
    """Accepts every instrument update and does nothing."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def update_max(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


#: Shared do-nothing instrument, safe to hold anywhere a Counter/Gauge/
#: Histogram is expected.
NULL_SINK = _NullInstrument()


class NullMetrics:
    """Registry-shaped null sink: every factory returns :data:`NULL_SINK`.

    Lets code take a registry unconditionally without branching; the
    hot-path modules still prefer the ``is not None`` guard, which is
    strictly cheaper (no call at all).
    """

    common_labels: dict[str, Any] = {}

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return NULL_SINK

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return NULL_SINK

    def histogram(self, name: str, **labels: Any) -> _NullInstrument:
        return NULL_SINK

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Deterministically fold many :meth:`MetricsRegistry.snapshot` dicts.

    Counters add, gauges keep the maximum (high-water semantics),
    histograms add bucket-wise (bounds must agree).  Input order does not
    affect the result, so parallel-runner merges are reproducible.
    """
    counters: dict[str, Any] = {}
    gauges: dict[str, Any] = {}
    hists: dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for k, v in snap.get("counters", {}).items():
            counters[k] = counters.get(k, 0) + v
        for k, v in snap.get("gauges", {}).items():
            if k not in gauges or v > gauges[k]:
                gauges[k] = v
        for k, h in snap.get("histograms", {}).items():
            cur = hists.get(k)
            if cur is None:
                hists[k] = {
                    "bounds": list(h["bounds"]),
                    "bucket_counts": list(h["bucket_counts"]),
                    "count": h["count"],
                    "total": h["total"],
                    "min": h["min"],
                    "max": h["max"],
                }
                continue
            if cur["bounds"] != list(h["bounds"]):
                raise ValueError(f"histogram bounds mismatch for {k!r}")
            cur["bucket_counts"] = [
                a + b for a, b in zip(cur["bucket_counts"], h["bucket_counts"])
            ]
            cur["count"] += h["count"]
            cur["total"] += h["total"]
            for side, pick in (("min", min), ("max", max)):
                if h[side] is not None:
                    cur[side] = (
                        h[side] if cur[side] is None else pick(cur[side], h[side])
                    )
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": {k: hists[k] for k in sorted(hists)},
    }
