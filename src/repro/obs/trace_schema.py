"""Structural validation of exported Chrome trace-event JSON.

Shared by the test suite and the CI trace-smoke step: after ``repro
trace`` writes a ``.trace.json``, :func:`validate_chrome_trace` loads it
back and checks the invariants Perfetto / ``chrome://tracing`` rely on:

* top-level object with a ``traceEvents`` list;
* every event carries ``ph``/``pid``/``tid``/``ts`` with sane types;
* ``X`` (complete) events carry a nonnegative ``dur``;
* flow (``s``/``f``) and async (``b``/``e``) events carry an ``id``,
  and every flow/async id that starts also finishes;
* within each ``(pid, tid)`` lane, timestamps are nondecreasing.

Violations raise :class:`TraceSchemaError` with a message naming the
offending event, so CI failures are directly actionable.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["TraceSchemaError", "validate_chrome_trace", "validate_trace_file"]

_REQUIRED = ("ph", "pid", "tid", "ts")
_KNOWN_PHASES = frozenset("XBEbeisfMC")


class TraceSchemaError(ValueError):
    """The trace object violates the Chrome trace-event format."""


def _fail(i: int, event: dict, why: str) -> None:
    raise TraceSchemaError(f"traceEvents[{i}] {why}: {event!r}")


def validate_chrome_trace(trace: Any) -> dict[str, Any]:
    """Validate a loaded trace object; returns summary statistics.

    The summary (event counts per phase, lanes seen, time span) doubles
    as the CI step's human-readable digest.
    """
    if not isinstance(trace, dict):
        raise TraceSchemaError("trace must be a JSON object with traceEvents")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise TraceSchemaError("traceEvents must be a non-empty list")

    last_ts: dict[tuple, float] = {}
    # Flow/async pairing is checked after the loop: events are sorted by
    # lane, so a finish may legitimately precede its start in file order
    # (Perfetto pairs by id, not position).
    flow_starts: dict[Any, list] = {}
    flow_finishes: dict[Any, list] = {}
    open_async: dict[tuple, int] = {}
    phase_counts: dict[str, int] = {}
    lanes: set[tuple] = set()
    t_min = t_max = None

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            _fail(i, {"event": ev}, "is not an object")
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            _fail(i, ev, f"unknown phase {ph!r}")
        phase_counts[ph] = phase_counts.get(ph, 0) + 1
        if ph == "M":
            # Metadata events need no timestamp (Chrome format allows it).
            if "name" not in ev or "args" not in ev or "pid" not in ev:
                _fail(i, ev, "metadata event missing name/args/pid")
            continue
        for key in _REQUIRED:
            if key not in ev:
                _fail(i, ev, f"missing required key {key!r}")
        if not isinstance(ev["pid"], int) or not isinstance(ev["tid"], int):
            _fail(i, ev, "pid/tid must be integers")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            _fail(i, ev, "ts must be a nonnegative number")
        lane = (ev["pid"], ev["tid"])
        lanes.add(lane)
        prev = last_ts.get(lane)
        if prev is not None and ts < prev:
            _fail(i, ev, f"ts decreases within lane {lane} ({ts} < {prev})")
        last_ts[lane] = ts
        end = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                _fail(i, ev, "complete event needs a nonnegative dur")
            end = ts + dur
        elif ph in "sfbe":
            if "id" not in ev:
                _fail(i, ev, "flow/async event missing id")
            if ph == "s":
                flow_starts.setdefault(ev["id"], []).append(ts)
            elif ph == "f":
                flow_finishes.setdefault(ev["id"], []).append(ts)
            elif ph == "b":
                key = (ev.get("cat"), ev["id"])
                open_async[key] = open_async.get(key, 0) + 1
            else:  # "e"
                key = (ev.get("cat"), ev["id"])
                n = open_async.get(key, 0)
                if n <= 0:
                    _fail(i, ev, "async end without a matching begin")
                open_async[key] = n - 1
        t_min = ts if t_min is None or ts < t_min else t_min
        t_max = end if t_max is None or end > t_max else t_max

    orphans = sorted(str(k) for k in flow_finishes if k not in flow_starts)
    if orphans:
        raise TraceSchemaError(f"flow finishes without starts: {orphans[:5]}")
    for fid, starts in flow_starts.items():
        finishes = flow_finishes.get(fid, [])
        if len(finishes) != len(starts):
            raise TraceSchemaError(
                f"flow id {fid!r}: {len(starts)} start(s) but "
                f"{len(finishes)} finish(es)"
            )
        if finishes and min(finishes) < min(starts):
            raise TraceSchemaError(
                f"flow id {fid!r} finishes before it starts "
                f"({min(finishes)} < {min(starts)})"
            )
    dangling = sorted(str(k) for k, n in open_async.items() if n)
    if dangling:
        raise TraceSchemaError(f"unterminated async spans: {dangling[:5]}")

    return {
        "n_events": len(events),
        "phase_counts": {k: phase_counts[k] for k in sorted(phase_counts)},
        "n_lanes": len(lanes),
        "pids": sorted({pid for pid, _ in lanes}),
        "ts_min": t_min,
        "ts_max": t_max,
    }


def validate_trace_file(path) -> dict[str, Any]:
    """Load ``path`` as JSON and :func:`validate_chrome_trace` it."""
    with open(path) as fh:
        trace = json.load(fh)
    return validate_chrome_trace(trace)
