"""Per-rank timeline recording and Chrome-trace-event export.

The telemetry subsystem's first pillar (ISSUE 5): a
:class:`TimelineRecorder` subscribes to the machine's structured
telemetry hook (:class:`~repro.simulate.machine.Machine` calls the
:class:`TelemetrySink` methods when a recorder is attached) and captures
every resource occupation on the simulated machine:

* **compute lane** -- CPU tasks per rank (labelled spans);
* **nic-out lane** -- message injection occupancy at the sender;
* **nic-in lane** -- message ejection occupancy at the receiver;
* **recv lane** -- receive-side software overhead;
* **message flows** -- arrows from each injection slice to the matching
  ejection slice (Chrome flow events, rendered as arrows in Perfetto);
* **collective phases** -- per-supernode Col-Bcast / Row-Reduce /
  Diag-Bcast / Col-Reduce spans derived from the collective tags, the
  timeline counterpart of the paper's per-phase breakdowns.

:meth:`TimelineRecorder.to_chrome_trace` exports the standard JSON
object format (``{"traceEvents": [...]}``), loadable in Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``.  The simulator's
virtual clock (seconds) maps to trace ``ts`` microseconds.  Events are
emitted sorted by ``(pid, tid, ts)``, so every lane is nondecreasing in
time -- a property :mod:`repro.obs.trace_schema` validates.

Recording never schedules events or reads the clock, so enabling it is
observation-only: the simulated outcome is bit-identical with the
recorder on or off (asserted in ``tests/test_obs.py``).
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "TelemetrySink",
    "CompositeSink",
    "TimelineRecorder",
    "LANE_NAMES",
    "PHASE_KINDS",
]

#: tid -> human name of each per-rank lane.
LANE_NAMES = ("compute", "nic-out", "nic-in", "recv")
_COMPUTE, _NIC_OUT, _NIC_IN, _RECV = range(4)

#: Message categories aggregated into per-supernode phase spans.  The
#: collective tags are tuples ``(kind_code, K, ...)`` whose second slot
#: is the supernode index.
PHASE_KINDS = ("diag-bcast", "col-bcast", "row-reduce", "col-reduce")


class TelemetrySink:
    """The machine-side telemetry interface (all hooks optional).

    :class:`~repro.simulate.machine.Machine` invokes these with virtual
    times already computed for its own scheduling -- sinks observe, they
    never influence the simulation.
    """

    def record_send(self, msg, post_time, inj_start, inj_end, arrival) -> None:
        """A network send: NIC-out occupancy ``[inj_start, inj_end]``."""

    def record_local(self, msg, time) -> None:
        """A zero-cost self-send (local hand-off)."""

    def record_receive(self, msg, eject_start, eject_end, oh_start, oh_end) -> None:
        """Arrival: NIC-in ``[eject_start, eject_end]``, then receive
        overhead ``[oh_start, oh_end]`` on the destination CPU."""

    def record_deliver(self, msg, time) -> None:
        """The receiver's handler is about to run."""

    def record_compute(self, rank, start, end, label) -> None:
        """A CPU task occupied ``rank`` for ``[start, end]``."""


class CompositeSink(TelemetrySink):
    """Fan one machine hook out to several sinks (timeline + hot-spot)."""

    def __init__(self, sinks) -> None:
        self.sinks = tuple(sinks)

    def record_send(self, msg, post_time, inj_start, inj_end, arrival) -> None:
        for s in self.sinks:
            s.record_send(msg, post_time, inj_start, inj_end, arrival)

    def record_local(self, msg, time) -> None:
        for s in self.sinks:
            s.record_local(msg, time)

    def record_receive(self, msg, eject_start, eject_end, oh_start, oh_end) -> None:
        for s in self.sinks:
            s.record_receive(msg, eject_start, eject_end, oh_start, oh_end)

    def record_deliver(self, msg, time) -> None:
        for s in self.sinks:
            s.record_deliver(msg, time)

    def record_compute(self, rank, start, end, label) -> None:
        for s in self.sinks:
            s.record_compute(rank, start, end, label)


def _phase_key(msg) -> tuple | None:
    """``(category, supernode)`` for collective-phase messages, else None."""
    tag = msg.tag
    if (
        msg.category in PHASE_KINDS
        and type(tag) is tuple
        and len(tag) >= 2
        and isinstance(tag[1], int)
    ):
        return (msg.category, tag[1])
    return None


class TimelineRecorder(TelemetrySink):
    """Accumulates machine telemetry and exports Chrome trace JSON.

    ``nranks`` sizes the phase-track process id; when omitted it is
    inferred from the highest rank observed.  Raw records are compact
    tuples (the DES emits one per resource occupation), converted to
    trace-event dicts only at export time.
    """

    def __init__(self, nranks: int | None = None) -> None:
        self.nranks = nranks
        # (rank, start, end, label)
        self.compute_spans: list[tuple] = []
        # (src, dst, start, end, category, nbytes, flow_id)
        self.injections: list[tuple] = []
        # (dst, start, end, category, nbytes, flow_id)
        self.ejections: list[tuple] = []
        # (dst, start, end)
        self.overheads: list[tuple] = []
        # (category, supernode) -> [first_time, last_time]
        self.phases: dict[tuple, list] = {}
        self._flow_seq = 0
        # (src, dst, tag) -> flow id of the in-flight message.  Tags are
        # unique per collective and a tree edge sends exactly once, so
        # the triple identifies one message.
        self._in_flight: dict[tuple, int] = {}

    # -- machine hooks -------------------------------------------------------

    def _touch_phase(self, msg, time: float) -> None:
        key = _phase_key(msg)
        if key is None:
            return
        span = self.phases.get(key)
        if span is None:
            self.phases[key] = [time, time]
        else:
            if time < span[0]:
                span[0] = time
            if time > span[1]:
                span[1] = time

    def record_send(self, msg, post_time, inj_start, inj_end, arrival) -> None:
        self._flow_seq += 1
        fid = self._flow_seq
        self._in_flight[(msg.src, msg.dst, msg.tag)] = fid
        self.injections.append(
            (msg.src, msg.dst, inj_start, inj_end, msg.category, msg.nbytes, fid)
        )
        self._touch_phase(msg, post_time)

    def record_local(self, msg, time) -> None:
        self._touch_phase(msg, time)

    def record_receive(self, msg, eject_start, eject_end, oh_start, oh_end) -> None:
        fid = self._in_flight.pop((msg.src, msg.dst, msg.tag), None)
        self.ejections.append(
            (msg.dst, eject_start, eject_end, msg.category, msg.nbytes, fid)
        )
        self.overheads.append((msg.dst, oh_start, oh_end))

    def record_deliver(self, msg, time) -> None:
        self._touch_phase(msg, time)

    def record_compute(self, rank, start, end, label) -> None:
        self.compute_spans.append((rank, start, end, label))

    # -- export --------------------------------------------------------------

    def _resolved_nranks(self) -> int:
        if self.nranks is not None:
            return self.nranks
        top = -1
        for rec in self.injections:
            if rec[0] > top:
                top = rec[0]
            if rec[1] > top:
                top = rec[1]
        for table in (self.ejections, self.overheads, self.compute_spans):
            for rec in table:
                if rec[0] > top:
                    top = rec[0]
        return top + 1

    def to_chrome_trace(self, **metadata: Any) -> dict[str, Any]:
        """The complete trace object (``json.dump``-ready)."""
        us = 1e6  # virtual seconds -> trace microseconds
        nranks = self._resolved_nranks()
        phase_pid = nranks  # one synthetic process after the rank pids
        meta: list[dict] = []
        events: list[dict] = []

        ranks_used = set()
        for rec in self.compute_spans:
            ranks_used.add(rec[0])
        for rec in self.injections:
            ranks_used.add(rec[0])
            ranks_used.add(rec[1])
        for rec in self.ejections:
            ranks_used.add(rec[0])
        for rank in sorted(ranks_used):
            meta.append(
                {
                    "ph": "M", "name": "process_name", "pid": rank, "tid": 0,
                    "args": {"name": f"rank {rank}"},
                }
            )
            meta.append(
                {
                    "ph": "M", "name": "process_sort_index", "pid": rank,
                    "tid": 0, "args": {"sort_index": rank},
                }
            )
            for tid, lane in enumerate(LANE_NAMES):
                meta.append(
                    {
                        "ph": "M", "name": "thread_name", "pid": rank,
                        "tid": tid, "args": {"name": lane},
                    }
                )

        for rank, start, end, label in self.compute_spans:
            events.append(
                {
                    "name": label or "compute", "cat": "compute", "ph": "X",
                    "pid": rank, "tid": _COMPUTE, "ts": start * us,
                    "dur": (end - start) * us,
                }
            )
        for src, dst, start, end, category, nbytes, fid in self.injections:
            events.append(
                {
                    "name": category, "cat": "nic-out", "ph": "X", "pid": src,
                    "tid": _NIC_OUT, "ts": start * us, "dur": (end - start) * us,
                    "args": {"dst": dst, "nbytes": nbytes},
                }
            )
            events.append(
                {
                    "name": "msg", "cat": "msg", "ph": "s", "id": fid,
                    "pid": src, "tid": _NIC_OUT, "ts": start * us,
                }
            )
        for dst, start, end, category, nbytes, fid in self.ejections:
            events.append(
                {
                    "name": category, "cat": "nic-in", "ph": "X", "pid": dst,
                    "tid": _NIC_IN, "ts": start * us, "dur": (end - start) * us,
                    "args": {"nbytes": nbytes},
                }
            )
            if fid is not None:
                events.append(
                    {
                        "name": "msg", "cat": "msg", "ph": "f", "bp": "e",
                        "id": fid, "pid": dst, "tid": _NIC_IN, "ts": start * us,
                    }
                )
        for dst, start, end in self.overheads:
            events.append(
                {
                    "name": "recv-overhead", "cat": "recv", "ph": "X",
                    "pid": dst, "tid": _RECV, "ts": start * us,
                    "dur": (end - start) * us,
                }
            )

        if self.phases:
            meta.append(
                {
                    "ph": "M", "name": "process_name", "pid": phase_pid,
                    "tid": 0, "args": {"name": "collective phases"},
                }
            )
            meta.append(
                {
                    "ph": "M", "name": "process_sort_index", "pid": phase_pid,
                    "tid": 0, "args": {"sort_index": phase_pid},
                }
            )
            kinds = sorted({k for k, _ in self.phases})
            tid_of = {}
            for i, kind in enumerate(kinds):
                tid_of[kind] = i
                meta.append(
                    {
                        "ph": "M", "name": "thread_name", "pid": phase_pid,
                        "tid": i, "args": {"name": kind},
                    }
                )
            pid_seq = 0
            for (kind, k) in sorted(self.phases):
                start, end = self.phases[(kind, k)]
                pid_seq += 1
                common = {
                    "name": f"{kind} K={k}", "cat": kind, "id": pid_seq,
                    "pid": phase_pid, "tid": tid_of[kind],
                }
                events.append({**common, "ph": "b", "ts": start * us})
                events.append({**common, "ph": "e", "ts": end * us})

        # Nondecreasing per lane (and stable for equal timestamps).
        events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
        return {
            "traceEvents": meta + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.obs.TimelineRecorder",
                "time_unit": "virtual seconds * 1e6",
                "nranks": nranks,
                **metadata,
            },
        }

    def write(self, path, **metadata: Any) -> dict[str, Any]:
        """Serialize :meth:`to_chrome_trace` to ``path``; returns the obj."""
        trace = self.to_chrome_trace(**metadata)
        with open(path, "w") as fh:
            json.dump(trace, fh)
            fh.write("\n")
        return trace
