"""Telemetry subsystem: timelines, metrics, and hot-spot monitoring.

The observability layer from ISSUE 5, three pillars in three modules:

* :mod:`repro.obs.timeline` -- per-rank timeline recording exported as
  Chrome trace-event JSON (Perfetto / ``chrome://tracing``);
* :mod:`repro.obs.metrics` -- labeled counter/gauge/histogram registry
  with deterministic snapshots and cross-worker merging;
* :mod:`repro.obs.hotspot` -- streaming per-rank imbalance statistics
  (max/mean, p99/median, Gini) and ranked top-k hot-rank reports.

Everything here is **off by default**: the simulator, machine, network,
and collectives only touch telemetry through ``is not None`` guards on
attributes that default to ``None``, so disabled runs execute the exact
pre-telemetry instruction stream and outcomes are bit-identical
(``tests/test_obs.py`` pins this against a seed-pinned run).

:class:`Telemetry` is the one-stop bundle the high-level entry points
accept (``SimulatedPSelInv(..., telemetry=...)``, the ``repro trace`` /
``repro hotspots`` CLI, and the runner's ``ExperimentSpec.telemetry``
flag): construct it with the pillars you want and pass it down.
"""

from __future__ import annotations

from dataclasses import dataclass

from .hotspot import HotSpotMonitor, gini, imbalance_stats
from .metrics import (
    NULL_SINK,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    merge_snapshots,
)
from .timeline import (
    LANE_NAMES,
    PHASE_KINDS,
    CompositeSink,
    TelemetrySink,
    TimelineRecorder,
)
from .trace_schema import TraceSchemaError, validate_chrome_trace, validate_trace_file

__all__ = [
    "Telemetry",
    "TelemetrySink",
    "CompositeSink",
    "TimelineRecorder",
    "LANE_NAMES",
    "PHASE_KINDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_SINK",
    "merge_snapshots",
    "HotSpotMonitor",
    "gini",
    "imbalance_stats",
    "TraceSchemaError",
    "validate_chrome_trace",
    "validate_trace_file",
]


@dataclass
class Telemetry:
    """Bundle of enabled telemetry pillars, passed to run entry points.

    Any pillar may be ``None`` (disabled).  :meth:`sink` derives the
    single machine-side recorder -- one pillar directly, several behind
    a :class:`CompositeSink`, or ``None`` when no timeline-style pillar
    is active (the machine then skips recording entirely).
    """

    metrics: MetricsRegistry | None = None
    timeline: TimelineRecorder | None = None
    hotspots: HotSpotMonitor | None = None

    @classmethod
    def full(cls, nranks: int, **common_labels) -> "Telemetry":
        """All three pillars enabled (trace CLI / tests convenience)."""
        return cls(
            metrics=MetricsRegistry(**common_labels),
            timeline=TimelineRecorder(nranks),
            hotspots=HotSpotMonitor(nranks),
        )

    def sink(self) -> TelemetrySink | None:
        sinks = [s for s in (self.timeline, self.hotspots) if s is not None]
        if not sinks:
            return None
        if len(sinks) == 1:
            return sinks[0]
        return CompositeSink(sinks)
