"""Streaming per-rank hot-spot monitor and imbalance statistics.

The telemetry subsystem's third pillar (ISSUE 5): the live counterpart
of the paper's Fig. 5/7 per-rank volume heatmaps.  A
:class:`HotSpotMonitor` rides the machine telemetry hook and accumulates
sent/received bytes per ``(rank, category)`` while the DES runs; at any
point :meth:`HotSpotMonitor.imbalance` reduces a category (or the total)
to the classic load-balance figures of merit:

* **max/mean** -- the paper's headline imbalance ratio (1.0 = perfectly
  balanced; the flat scheme's Col-Bcast roots push this far above 1);
* **p99/median** -- tail heaviness, robust to a single outlier rank;
* **Gini** -- distribution-wide inequality in [0, 1).

:meth:`HotSpotMonitor.top_ranks` ranks the k hottest ranks for a
category, and :meth:`HotSpotMonitor.report` renders the CLI table for
``repro hotspots``.  The sent-byte tallies reproduce
:class:`~repro.simulate.machine.CommStats` exactly (same hook, same
increments), so the ranking provably agrees with the Fig. 5 heatmap
pipeline -- ``tests/test_obs.py`` locks that in for the flat, binary,
and shifted schemes.
"""

from __future__ import annotations

import numpy as np

from .timeline import TelemetrySink

__all__ = ["imbalance_stats", "gini", "HotSpotMonitor"]


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a nonnegative 1-D load vector (0 = equal)."""
    v = np.sort(np.asarray(values, dtype=float))
    n = v.size
    total = v.sum()
    if n == 0 or total == 0.0:
        return 0.0
    # Mean absolute difference formulation via the sorted prefix weights.
    weights = np.arange(1, n + 1, dtype=float)
    return float((2.0 * np.dot(weights, v) / (n * total)) - (n + 1.0) / n)


def imbalance_stats(values: np.ndarray) -> dict[str, float]:
    """The monitor's figures of merit for one per-rank load vector."""
    v = np.asarray(values, dtype=float)
    mean = float(v.mean()) if v.size else 0.0
    vmax = float(v.max()) if v.size else 0.0
    median = float(np.median(v)) if v.size else 0.0
    p99 = float(np.percentile(v, 99)) if v.size else 0.0
    return {
        "max": vmax,
        "mean": mean,
        "median": median,
        "p99": p99,
        "max_over_mean": vmax / mean if mean else 0.0,
        "p99_over_median": p99 / median if median else 0.0,
        "gini": gini(v),
    }


class HotSpotMonitor(TelemetrySink):
    """Accumulates per-rank, per-category byte loads as the DES runs."""

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self._sent: dict[str, list] = {}
        self._received: dict[str, list] = {}

    def _get(self, table: dict[str, list], category: str) -> list:
        arr = table.get(category)
        if arr is None:
            arr = [0] * self.nranks
            table[category] = arr
        return arr

    # -- machine hooks -------------------------------------------------------

    def record_send(self, msg, post_time, inj_start, inj_end, arrival) -> None:
        self._get(self._sent, msg.category)[msg.src] += msg.nbytes

    def record_receive(self, msg, eject_start, eject_end, oh_start, oh_end) -> None:
        self._get(self._received, msg.category)[msg.dst] += msg.nbytes

    # -- queries -------------------------------------------------------------

    @property
    def categories(self) -> list[str]:
        return sorted(self._sent.keys() | self._received.keys())

    def sent(self, category: str | None = None) -> np.ndarray:
        """Bytes sent per rank (one category, or all categories summed)."""
        return self._load(self._sent, category)

    def received(self, category: str | None = None) -> np.ndarray:
        """Bytes received per rank (one category, or all summed)."""
        return self._load(self._received, category)

    def _load(self, table: dict[str, list], category: str | None) -> np.ndarray:
        if category is not None:
            return np.asarray(table.get(category, [0] * self.nranks), dtype=np.int64)
        out = np.zeros(self.nranks, dtype=np.int64)
        for arr in table.values():
            out += np.asarray(arr, dtype=np.int64)
        return out

    def col_bcast_sent(self) -> np.ndarray:
        """Fig. 5's load vector: column-broadcast + diagonal-broadcast
        bytes sent per rank (matches ``VolumeReport.col_bcast_sent``)."""
        return self.sent("col-bcast") + self.sent("diag-bcast")

    def row_reduce_sent(self) -> np.ndarray:
        """Fig. 7's load vector: row-reduce bytes sent per rank."""
        return self.sent("row-reduce")

    def imbalance(self, category: str | None = None, *, direction="sent"):
        """Imbalance statistics for one category (None = total)."""
        load = self.sent(category) if direction == "sent" else self.received(category)
        return imbalance_stats(load)

    def top_ranks(
        self, k: int = 5, category: str | None = None, *, direction: str = "sent"
    ) -> list[tuple[int, int]]:
        """The ``k`` hottest ``(rank, bytes)`` pairs, hottest first.

        Ties break toward the lower rank (stable argsort on the negated
        load), so the ranking is deterministic.
        """
        load = self.sent(category) if direction == "sent" else self.received(category)
        order = np.argsort(-load, kind="stable")[:k]
        return [(int(r), int(load[r])) for r in order]

    # -- CLI report ----------------------------------------------------------

    def report(self, k: int = 5, *, label: str = "") -> str:
        """Ranked top-k table per category plus imbalance statistics."""
        lines = []
        title = f"hot-spot report{f' ({label})' if label else ''}"
        lines.append(title)
        lines.append("=" * len(title))
        for category in [None, *self.categories]:
            name = category if category is not None else "TOTAL"
            stats = self.imbalance(category)
            lines.append(
                f"{name}: max/mean {stats['max_over_mean']:.2f}  "
                f"p99/median {stats['p99_over_median']:.2f}  "
                f"gini {stats['gini']:.3f}"
            )
            for pos, (rank, nbytes) in enumerate(self.top_ranks(k, category), 1):
                share = nbytes / stats["max"] if stats["max"] else 0.0
                bar = "#" * int(round(20 * share))
                lines.append(
                    f"  {pos}. rank {rank:>4}  {nbytes:>14,} B  {bar}"
                )
        return "\n".join(lines)
